/**
 * @file
 * Design-space exploration — the paper's motivating use case (Section I,
 * Section VI): evaluate performance, power, energy and area for several
 * processor configurations running the same workload, and print the
 * resulting trade-off table. With Strober this takes minutes per point
 * instead of the years a full gate-level simulation would need.
 */

#include <cstdio>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "workloads/workloads.h"

using namespace strober;

int
main()
{
    workloads::Workload wl = workloads::coremarkLite();
    std::printf("workload: %s (expected checksum 0x%x)\n\n",
                wl.name.c_str(), wl.expectedExit);
    std::printf("%-10s %10s %8s %10s %12s %12s %10s\n", "config",
                "cycles", "CPI", "power(mW)", "EPI(pJ/inst)", "area(um2)",
                "gates");

    for (const cores::SocConfig &cfg :
         {cores::SocConfig::rocket(), cores::SocConfig::boom1w(),
          cores::SocConfig::boom2w()}) {
        rtl::Design soc = cores::buildSoc(cfg);

        core::EnergySimulator::Config ecfg;
        ecfg.sampleSize = 20;
        ecfg.replayLength = 128;
        core::EnergySimulator strober(soc, ecfg);

        cores::SocDriver driver(soc, wl.program);
        core::RunStats run = strober.run(driver, wl.maxCycles);
        if (driver.exitCode() != wl.expectedExit) {
            std::printf("%s: WRONG CHECKSUM 0x%x\n", cfg.name.c_str(),
                        driver.exitCode());
            return 1;
        }
        core::EnergyReport report = strober.estimate();

        double instructions =
            static_cast<double>(driver.commitsSeen());
        double cpi = static_cast<double>(run.targetCycles) / instructions;
        double watts = report.averagePower.mean;
        double epi = watts / ecfg.clockHz *
                     static_cast<double>(run.targetCycles) /
                     instructions * 1e12;
        std::printf("%-10s %10llu %8.2f %10.2f %12.2f %12.0f %10llu\n",
                    cfg.name.c_str(),
                    (unsigned long long)run.targetCycles, cpi,
                    watts * 1e3, epi,
                    strober.synthesis().netlist.totalAreaUm2(),
                    (unsigned long long)strober.synthesis().stats
                        .liveGates);
    }
    std::printf("\n(each row: cycle-exact fast simulation + %d-snapshot "
                "gate-level power estimate)\n", 20);
    return 0;
}
