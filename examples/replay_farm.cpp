/**
 * @file
 * Distributed replay: the paper replays snapshots "on multiple instances
 * of gate-level simulation in parallel" — across machines in practice.
 * This example splits the flow the same way: a *capture* phase runs the
 * fast simulation and serializes every sampled snapshot to a file, and a
 * *farm* phase (which could run anywhere) loads each file, replays it at
 * gate level, and posts back one power number; the "frontend" then only
 * aggregates scalars.
 *
 * It also demonstrates the fault tolerance a real farm needs: snapshot
 * files are written atomically (temp + rename, so a killed capture
 * phase never leaves a torn file), every file read and replay is
 * checked, and to prove the point the example deliberately corrupts two
 * of the files in transit — the farm quarantines them and degrades the
 * estimate over the survivors instead of aborting the run.
 */

#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "fame/snapshot_io.h"
#include "gate/placement.h"
#include "gate/replay.h"
#include "gate/synthesis.h"
#include "inject/fault_injector.h"
#include "power/power_analysis.h"
#include "stats/sampling.h"
#include "workloads/workloads.h"

using namespace strober;

int
main()
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "strober_farm";
    fs::create_directories(dir);

    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::qsortWl();

    // ---- Capture phase (the "FPGA host") -------------------------------
    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 16;
    cfg.replayLength = 128;
    core::EnergySimulator strober(soc, cfg);
    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = strober.run(driver, wl.maxCycles);
    std::printf("capture: %llu cycles, exit 0x%x\n",
                (unsigned long long)run.targetCycles, driver.exitCode());

    std::vector<fs::path> files;
    for (const fame::ReplayableSnapshot *snap :
         strober.sampler().snapshots()) {
        fs::path file =
            dir / ("snap_" + std::to_string(snap->cycle()) + ".strb");
        // Atomic write: the final path either holds a complete,
        // CRC-protected snapshot or does not exist at all.
        util::Status st = fame::writeSnapshotFile(
            file.string(), strober.sampler().chains(), *snap);
        if (!st.isOk()) {
            std::printf("  capture of %s failed (%s); skipping\n",
                        file.filename().c_str(), st.toString().c_str());
            continue;
        }
        files.push_back(file);
    }
    std::printf("wrote %zu snapshot files to %s\n", files.size(),
                dir.c_str());

    // ---- Transport faults (deliberate) ----------------------------------
    // A farm moves snapshots over networks and disks that do fail.
    // Corrupt one file and truncate another to show the pipeline's
    // response; the CRC sections catch both at load time.
    if (files.size() >= 4) {
        (void)inject::corruptFile(files[1].string(),
                                  inject::FileFault::BitFlip, 0xbadbeef);
        (void)inject::corruptFile(files[2].string(),
                                  inject::FileFault::Truncate, 0xbadbeef);
        std::printf("injected transport faults into %s (bit flip) and %s "
                    "(truncation)\n", files[1].filename().c_str(),
                    files[2].filename().c_str());
    }

    // ---- Farm phase (could be other machines) ---------------------------
    gate::SynthesisResult synth = gate::synthesize(soc);
    gate::Placement placed = gate::place(synth.netlist);
    gate::MatchTable table =
        gate::matchDesigns(soc, synth.netlist, synth.guide);
    fame::Fame1Design fd = fame::fame1Transform(soc);
    fame::ScanChains chains(fd.design);

    stats::SampleStats watts;
    std::vector<fs::path> quarantined;
    gate::GateSimulator gsim(synth.netlist);
    for (const fs::path &file : files) {
        util::Result<fame::ReplayableSnapshot> snap =
            fame::readSnapshotFile(file.string(), chains);
        if (!snap.isOk()) {
            std::printf("  %s QUARANTINED: %s\n", file.filename().c_str(),
                        snap.status().toString().c_str());
            quarantined.push_back(file);
            continue;
        }
        util::Result<gate::GateReplayResult> r =
            gate::replayOnGate(gsim, soc, table, *snap);
        if (!r.isOk() || !r->ok()) {
            std::printf("  %s QUARANTINED: %s\n", file.filename().c_str(),
                        r.isOk() ? r->firstMismatch.c_str()
                                 : r.status().toString().c_str());
            quarantined.push_back(file);
            continue;
        }
        power::PowerReport p = power::analyzePower(synth.netlist, placed,
                                                   r->activity, 1e9);
        watts.add(p.totalWatts());
        std::printf("  %s -> %.3f mW\n", file.filename().c_str(),
                    p.totalWatts() * 1e3);
    }

    // ---- Aggregation -----------------------------------------------------
    // The survey-sampling estimators are as valid over the surviving
    // subsample as over the full one — the CI just widens.
    if (watts.size() < 2) {
        std::printf("\nfarm estimate: UNAVAILABLE (%zu of %zu snapshots "
                    "survived; need at least 2 for a CI)\n",
                    watts.size(), files.size());
        return 1;
    }
    stats::Estimate est =
        watts.estimate(0.99, run.targetCycles / cfg.replayLength);
    std::printf("\nfarm estimate%s: %.3f mW +/- %.3f (99%% CI) from %zu "
                "of %zu snapshot files (%zu quarantined)\n",
                quarantined.empty() ? "" : " [degraded]", est.mean * 1e3,
                est.halfWidth * 1e3, watts.size(), files.size(),
                quarantined.size());

    for (const fs::path &file : files)
        fs::remove(file);
    return 0;
}
