/**
 * @file
 * Distributed replay: the paper replays snapshots "on multiple instances
 * of gate-level simulation in parallel" — across machines in practice.
 * This example splits the flow the same way: a *capture* phase runs the
 * fast simulation and serializes every sampled snapshot to a file, and a
 * *farm* phase (which could run anywhere) loads each file, replays it at
 * gate level, and posts back one power number; the "frontend" then only
 * aggregates scalars.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "fame/snapshot_io.h"
#include "gate/placement.h"
#include "gate/replay.h"
#include "gate/synthesis.h"
#include "power/power_analysis.h"
#include "stats/sampling.h"
#include "workloads/workloads.h"

using namespace strober;

int
main()
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "strober_farm";
    fs::create_directories(dir);

    rtl::Design soc = cores::buildSoc(cores::SocConfig::rocket());
    workloads::Workload wl = workloads::qsortWl();

    // ---- Capture phase (the "FPGA host") -------------------------------
    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 16;
    cfg.replayLength = 128;
    core::EnergySimulator strober(soc, cfg);
    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = strober.run(driver, wl.maxCycles);
    std::printf("capture: %llu cycles, exit 0x%x\n",
                (unsigned long long)run.targetCycles, driver.exitCode());

    std::vector<fs::path> files;
    for (const fame::ReplayableSnapshot *snap :
         strober.sampler().snapshots()) {
        fs::path file =
            dir / ("snap_" + std::to_string(snap->cycle()) + ".strb");
        std::ofstream out(file, std::ios::binary);
        fame::writeSnapshot(out, strober.sampler().chains(), *snap);
        files.push_back(file);
    }
    std::printf("wrote %zu snapshot files to %s\n", files.size(),
                dir.c_str());

    // ---- Farm phase (could be other machines) ---------------------------
    gate::SynthesisResult synth = gate::synthesize(soc);
    gate::Placement placed = gate::place(synth.netlist);
    gate::MatchTable table =
        gate::matchDesigns(soc, synth.netlist, synth.guide);
    fame::Fame1Design fd = fame::fame1Transform(soc);
    fame::ScanChains chains(fd.design);

    stats::SampleStats watts;
    gate::GateSimulator gsim(synth.netlist);
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        fame::ReplayableSnapshot snap = fame::readSnapshot(in, chains);
        gate::GateReplayResult r =
            gate::replayOnGate(gsim, soc, table, snap);
        if (!r.ok())
            fatal("replay of %s failed: %s", file.c_str(),
                  r.firstMismatch.c_str());
        power::PowerReport p = power::analyzePower(synth.netlist, placed,
                                                   r.activity, 1e9);
        watts.add(p.totalWatts());
        std::printf("  %s -> %.3f mW\n", file.filename().c_str(),
                    p.totalWatts() * 1e3);
    }

    // ---- Aggregation -----------------------------------------------------
    stats::Estimate est =
        watts.estimate(0.99, run.targetCycles / cfg.replayLength);
    std::printf("\nfarm estimate: %.3f mW +/- %.3f (99%% CI) from %zu "
                "replayed files\n",
                est.mean * 1e3, est.halfWidth * 1e3, files.size());

    for (const fs::path &file : files)
        fs::remove(file);
    return 0;
}
