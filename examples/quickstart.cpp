/**
 * @file
 * Quickstart: the whole Strober flow on a small hand-written design.
 *
 * We build a GCD accelerator in the RTL builder EDSL, drive it with a
 * stream of random operand pairs, and ask EnergySimulator for a
 * workload-specific average-power estimate with a 99% confidence
 * interval — exercising, under the hood: the FAME1 transform, token
 * channels, scan-chain snapshot capture with reservoir sampling,
 * synthesis to gates, RTL/gate matching, snapshot replay with output
 * verification, and per-snapshot power analysis.
 */

#include <cstdio>

#include "core/energy_sim.h"
#include "rtl/builder.h"
#include "stats/rng.h"

using namespace strober;

namespace {

/** A classic iterative GCD unit: start pulses begin, done flags result. */
rtl::Design
buildGcd()
{
    rtl::Builder b("gcd");
    rtl::Signal start = b.input("start", 1);
    rtl::Signal opA = b.input("op_a", 16);
    rtl::Signal opB = b.input("op_b", 16);

    rtl::Scope core(b, "gcd_core");
    rtl::Signal x = b.reg("x", 16, 0);
    rtl::Signal y = b.reg("y", 16, 0);
    rtl::Signal busy = b.reg("busy", 1, 0);

    rtl::Signal yZero = eqImm(y, 0);
    rtl::Signal swap = ltu(x, y);
    rtl::Signal xNext = b.mux(swap, y, x - y);
    rtl::Signal yNext = b.mux(swap, x, y);

    b.next(x, b.mux(start, opA, xNext));
    b.next(y, b.mux(start, opB, yNext), start | (busy & !yZero));
    b.next(busy, b.mux(start, b.lit(1, 1), busy & !yZero));

    b.output("result", x);
    b.output("done", busy & yZero);
    return b.finish();
}

/** Feeds random operand pairs; waits for done between requests. */
class GcdDriver : public core::HostDriver
{
  public:
    explicit GcdDriver(uint64_t problems) : remaining(problems) {}

    void
    drive(core::TargetHarness &h) override
    {
        bool done = h.getOutput(1) != 0;
        if (!launched || done) {
            h.setInput(0, 1); // start
            h.setInput(1, 1 + rng.nextBounded(0xfffe));
            h.setInput(2, 1 + rng.nextBounded(0xfffe));
            launched = true;
            if (done && remaining > 0)
                --remaining;
        } else {
            h.setInput(0, 0);
        }
    }

    bool done() const override { return remaining == 0; }

  private:
    stats::Rng rng{2025};
    uint64_t remaining;
    bool launched = false;
};

} // namespace

int
main()
{
    rtl::Design gcd = buildGcd();
    std::printf("design '%s': %zu nodes, %zu registers, %llu state bits\n",
                gcd.name().c_str(), gcd.numNodes(), gcd.regs().size(),
                (unsigned long long)gcd.stateBits());

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    cfg.confidence = 0.99;
    cfg.clockHz = 1e9;
    core::EnergySimulator strober(gcd, cfg);

    // Phase 1: fast simulation with reservoir-sampled snapshots.
    GcdDriver driver(20000);
    core::RunStats run = strober.run(driver, 10'000'000);
    std::printf("fast sim: %llu target cycles, %llu host cycles, "
                "%llu record events, %.0f kHz wall rate\n",
                (unsigned long long)run.targetCycles,
                (unsigned long long)run.hostCycles,
                (unsigned long long)run.recordCount,
                run.simulatedHz / 1e3);

    // Phases 2-4: ASIC flow, gate-level replay, power aggregation.
    core::EnergyReport report = strober.estimate();
    std::printf("\nreplayed %zu snapshots over a population of %llu "
                "%u-cycle intervals; %llu output mismatches\n",
                report.snapshots, (unsigned long long)report.population,
                cfg.replayLength,
                (unsigned long long)report.replayMismatches);
    std::printf("average power: %.3f mW +/- %.3f mW (%.1f%% relative, "
                "99%% confidence)\n",
                report.averagePower.mean * 1e3,
                report.averagePower.halfWidth * 1e3,
                report.averagePower.relativeError() * 100);
    std::printf("energy per cycle: %.3f pJ\n",
                report.energyPerCycle(cfg.clockHz) * 1e12);
    std::printf("\nper-module breakdown:\n");
    for (const core::GroupEstimate &g : report.groups) {
        std::printf("  %-24s %8.3f mW +/- %.3f\n", g.group.c_str(),
                    g.power.mean * 1e3, g.power.halfWidth * 1e3);
    }
    return report.replayMismatches == 0 ? 0 : 1;
}
