/**
 * @file
 * Counter-based DRAM power estimation (paper Section IV-D): the DRAM's
 * internal operations are reconstructed from the request stream under a
 * known bank-interleaved mapping and open-page policy, then converted to
 * average power with the Micron-spreadsheet-style calculator. Three
 * traffic patterns show the activate/burst trade-off.
 */

#include <cstdio>

#include "dram/dram_model.h"
#include "stats/rng.h"

using namespace strober;

namespace {

void
report(const char *name, const dram::DramModel &model, uint64_t cycles)
{
    const dram::DramCounters &c = model.counters();
    dram::DramPowerBreakdown p = dram::dramPower(c, cycles, 1e9);
    std::printf("%-12s reads=%8llu writes=%8llu act=%8llu rowhit=%5.1f%%"
                "  bg=%5.1f act=%5.1f rd=%5.1f wr=%5.1f ref=%4.1f "
                "total=%6.1f mW\n",
                name, (unsigned long long)c.reads,
                (unsigned long long)c.writes,
                (unsigned long long)c.activations,
                100.0 * static_cast<double>(c.rowHits) /
                    static_cast<double>(c.reads + c.writes),
                p.background * 1e3, p.activate * 1e3, p.read * 1e3,
                p.write * 1e3, p.refresh * 1e3, p.total() * 1e3);
}

} // namespace

int
main()
{
    const uint64_t window = 10'000'000; // cycles at 1 GHz
    std::printf("LPDDR2-S4, 8 banks x 16K rows, bank-interleaved, "
                "open page (window %llu cycles)\n\n",
                (unsigned long long)window);

    {
        // Sequential streaming: high row-hit rate, few activations.
        dram::DramModel m;
        for (uint64_t a = 0; a < 64 * 1024 * 32ull; a += 32)
            m.access(a, false);
        report("stream", m, window);
    }
    {
        // Random access: every access opens a new row.
        dram::DramModel m;
        stats::Rng rng(5);
        for (int i = 0; i < 64 * 1024; ++i)
            m.access(rng.nextBounded(1ull << 28), i % 3 == 0);
        report("random", m, window);
    }
    {
        // Idle: background + refresh only.
        dram::DramModel m;
        m.access(0, false);
        report("idle", m, window);
    }
    return 0;
}
