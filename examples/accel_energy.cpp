/**
 * @file
 * "Arbitrary RTL" demo: Strober on an application-specific accelerator
 * rather than a processor (the paper stresses the methodology is not
 * processor-specific). The target is a streaming dot-product accelerator
 * with a MAC datapath annotated for register retiming — so this example
 * also exercises the Section IV-C3 replay warm-up on a non-CPU design.
 */

#include <cstdio>

#include "core/energy_sim.h"
#include "rtl/builder.h"
#include "stats/rng.h"

using namespace strober;

namespace {

/** Streaming dot-product: consumes (a, b, last) and emits sums. */
rtl::Design
buildDotAccel()
{
    rtl::Builder b("dot_accel");
    rtl::Signal valid = b.input("in_valid", 1);
    rtl::Signal a = b.input("in_a", 16);
    rtl::Signal x = b.input("in_b", 16);
    rtl::Signal last = b.input("in_last", 1);

    b.pushScope("mac");
    // 2-stage retimed multiply feeding an accumulator.
    rtl::Signal prod = a * x; // 32-bit product
    rtl::Signal p1 = b.reg("p1", 32, 0);
    b.next(p1, prod);
    rtl::Signal p2 = b.reg("p2", 32, 0);
    b.next(p2, p1);
    b.annotateRetimed("pipe", 2, {a, x}, p2, {p1, p2});

    // Valid/last ride alongside, outside the retimed region.
    rtl::Signal v1 = b.reg("v1", 1, 0);
    b.next(v1, valid);
    rtl::Signal v2 = b.reg("v2", 1, 0);
    b.next(v2, v1);
    rtl::Signal l1 = b.reg("l1", 1, 0);
    b.next(l1, valid & last);
    rtl::Signal l2 = b.reg("l2", 1, 0);
    b.next(l2, l1);

    b.popScope();
    b.pushScope("acc");
    rtl::Signal acc = b.reg("acc", 32, 0);
    rtl::Signal sum = acc + p2;
    b.next(acc, b.mux(l2, b.lit(0, 32), sum), v2);
    rtl::Signal result = b.reg("result", 32, 0);
    b.next(result, sum, v2 & l2);
    rtl::Signal outValid = b.reg("out_valid", 1, 0);
    b.next(outValid, v2 & l2);
    b.popScope();

    b.output("out_valid", outValid);
    b.output("out_sum", result);
    return b.finish();
}

/** Streams random vectors of random length 4..36. */
class StreamDriver : public core::HostDriver
{
  public:
    explicit StreamDriver(uint64_t vectors) : remaining(vectors) {}

    void
    drive(core::TargetHarness &h) override
    {
        if (h.getOutput(0)) // out_valid
            checksum += static_cast<uint32_t>(h.getOutput(1));
        bool fire = rng.nextBounded(4) != 0; // 75% occupancy
        h.setInput(0, fire);
        h.setInput(1, rng.nextBounded(1 << 16));
        h.setInput(2, rng.nextBounded(1 << 16));
        bool lastBeat = fire && beat + 1 >= length;
        h.setInput(3, lastBeat);
        if (fire) {
            if (lastBeat) {
                beat = 0;
                length = 4 + rng.nextBounded(33);
                if (remaining > 0)
                    --remaining;
            } else {
                ++beat;
            }
        }
    }

    bool done() const override { return remaining == 0; }

    uint32_t checksum = 0;

  private:
    stats::Rng rng{7};
    uint64_t remaining;
    unsigned beat = 0;
    unsigned length = 16;
};

} // namespace

int
main()
{
    rtl::Design accel = buildDotAccel();
    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    core::EnergySimulator strober(accel, cfg);

    StreamDriver driver(30000);
    core::RunStats run = strober.run(driver, 5'000'000);
    core::EnergyReport report = strober.estimate();

    const gate::SynthesisStats &synth = strober.synthesis().stats;
    std::printf("accelerator: %llu gates (%llu retimed flops), "
                "%.0f um^2\n",
                (unsigned long long)synth.liveGates,
                (unsigned long long)synth.retimedDffCount,
                strober.synthesis().netlist.totalAreaUm2());
    std::printf("ran %llu cycles; %zu snapshots replayed, %llu "
                "mismatches\n",
                (unsigned long long)run.targetCycles, report.snapshots,
                (unsigned long long)report.replayMismatches);
    std::printf("average power %.3f mW +/- %.3f (99%% CI)\n",
                report.averagePower.mean * 1e3,
                report.averagePower.halfWidth * 1e3);
    for (const core::GroupEstimate &g : report.groups) {
        std::printf("  %-16s %8.3f mW\n", g.group.c_str(),
                    g.power.mean * 1e3);
    }
    return report.replayMismatches == 0 ? 0 : 1;
}
