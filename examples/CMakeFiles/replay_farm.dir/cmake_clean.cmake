file(REMOVE_RECURSE
  "CMakeFiles/replay_farm.dir/replay_farm.cpp.o"
  "CMakeFiles/replay_farm.dir/replay_farm.cpp.o.d"
  "replay_farm"
  "replay_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
