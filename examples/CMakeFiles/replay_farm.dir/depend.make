# Empty dependencies file for replay_farm.
# This may be replaced when dependencies are built.
