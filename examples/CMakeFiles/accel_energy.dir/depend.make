# Empty dependencies file for accel_energy.
# This may be replaced when dependencies are built.
