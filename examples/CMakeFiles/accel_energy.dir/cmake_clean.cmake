file(REMOVE_RECURSE
  "CMakeFiles/accel_energy.dir/accel_energy.cpp.o"
  "CMakeFiles/accel_energy.dir/accel_energy.cpp.o.d"
  "accel_energy"
  "accel_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
