# Empty dependencies file for dram_power.
# This may be replaced when dependencies are built.
