file(REMOVE_RECURSE
  "CMakeFiles/dram_power.dir/dram_power.cpp.o"
  "CMakeFiles/dram_power.dir/dram_power.cpp.o.d"
  "dram_power"
  "dram_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
