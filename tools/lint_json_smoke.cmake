# Smoke test for strober-lint --json / --disable (driven by ctest; see
# tools/CMakeLists.txt). Checks that the JSON findings file is written,
# is syntactically valid, agrees with the expected warning set on the
# rocket core, and that --disable removes a rule's findings.

set(json "${WORK_DIR}/lint_smoke.json")

execute_process(
    COMMAND ${LINT_CLI} --json ${json} rocket
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "strober-lint --json failed (rc=${rc}): ${err}")
endif()
if(NOT EXISTS ${json})
    message(FATAL_ERROR "--json did not write ${json}")
endif()

file(READ ${json} content)
# string(JSON) validates syntax and lets us count the findings array.
string(JSON nfindings LENGTH ${content} "findings")
if(nfindings LESS 1)
    message(FATAL_ERROR "expected findings on rocket, got ${nfindings}")
endif()
string(JSON rule GET ${content} "findings" 0 "rule")
string(JSON sev GET ${content} "findings" 0 "severity")
if(NOT sev STREQUAL "warning")
    message(FATAL_ERROR "rocket must have warning-severity findings, "
                        "first was '${sev}'")
endif()

# Disabling the first reported rule must remove its findings.
execute_process(
    COMMAND ${LINT_CLI} --json ${json} --disable ${rule} rocket
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "strober-lint --disable failed (rc=${rc}): ${err}")
endif()
file(READ ${json} content)
string(JSON remaining LENGTH ${content} "findings")
if(NOT remaining LESS nfindings)
    message(FATAL_ERROR "--disable ${rule} left ${remaining} findings "
                        "(had ${nfindings})")
endif()
string(JSON i LENGTH ${content} "findings")
math(EXPR last "${remaining} - 1")
foreach(idx RANGE 0 ${last})
    string(JSON r GET ${content} "findings" ${idx} "rule")
    if(r STREQUAL rule)
        message(FATAL_ERROR "--disable ${rule} still reported it")
    endif()
endforeach()

message(STATUS "lint --json smoke OK (${nfindings} -> ${remaining} "
               "findings after --disable ${rule})")
