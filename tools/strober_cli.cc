/**
 * @file
 * The `strober` command-line tool: the packaged entry point for the
 * common flows so the framework is usable without writing C++.
 *
 *   strober info                           # list cores and workloads
 *   strober run    <core> <workload>       # fast sim + energy estimate
 *   strober run    <core> --stimulus F.vcd # ... driven by an external
 *                                          #   VCD trace instead of a
 *                                          #   built-in workload
 *       [--backend B]                      #   fast-sim backend: full |
 *                                          #   activity (default) |
 *                                          #   compiled | compiled-parallel
 *       [--sim-threads N]                  #   threads for the
 *                                          #   compiled-parallel backend
 *       [--jobs N | -j N]                  #   parallel replay workers
 *       [--cache-dir DIR]                  #   persistent replay-result
 *                                          #   cache (src/farm); a warm
 *                                          #   cache re-estimates with
 *                                          #   zero gate-level replays
 *       [--max-dropped-snapshots N]        #   invalidate report past N
 *       [--replay-timeout CYCLES]          #   per-replay watchdog budget
 *       [--dump-stimulus F.vcd]            #   dump a ports-only VCD of
 *                                          #   the workload run and exit
 *                                          #   (re-ingestable through
 *                                          #   --stimulus)
 *       [--report FILE]                    #   write the deterministic
 *                                          #   report rendering (cmp-able
 *                                          #   across backends/machines)
 *       [--stream]                         #   streamed pipeline: replay
 *                                          #   overlaps the fast sim
 *                                          #   (same report, byte for byte)
 *       [--ci-bound R]                     #   adaptive termination: stop
 *                                          #   once the CI half-width over
 *                                          #   the mean drops under R
 *                                          #   (implies --stream)
 *   strober truth  <core> <workload>       # exhaustive gate-level power
 *   strober truth  <core> --stimulus F.vcd # ... driven by a VCD trace
 *       [--saif FILE]                      #   export the measured
 *                                          #   activity as duty-tracked
 *                                          #   SAIF (VCD in, SAIF out)
 *   strober synth  <core> [out.v]          # synthesis stats / Verilog
 *   strober chase  <core> <KiB> [latency]  # pointer-chase latency
 *   strober asm    <file.s>                # assemble + run on the ISS
 *
 * Exit codes of `run`: 0 clean estimate, 1 degraded but valid (some
 * snapshots quarantined / replay mismatches), 2 usage error, 3 invalid
 * estimate (no trustworthy number; see the report's status line), 4
 * stimulus error (unreadable/malformed/unbindable trace file).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "farm/report.h"
#include "lint/diagnostics.h"
#include "sim/vcd.h"
#include "trace/stimulus.h"
#include "gate/saif.h"
#include "gate/verilog.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "util/logging.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

int
cmdInfo()
{
    std::printf("cores:\n");
    for (const char *c : {"rocket", "boom1w", "boom2w"}) {
        cores::SocConfig cfg = coreByName(c);
        rtl::Design d = cores::buildSoc(cfg);
        std::printf("  %-8s fetch/issue %u/%u, %zu RTL nodes, %zu regs\n",
                    c, cfg.fetchWidth, cfg.issueWidth, d.numNodes(),
                    d.regs().size());
    }
    std::printf("workloads:\n  ");
    for (const workloads::Workload &w : workloads::microbenchmarks())
        std::printf("%s ", w.name.c_str());
    for (const workloads::Workload &w : workloads::caseStudies())
        std::printf("%s ", w.name.c_str());
    std::printf("\n");
    return 0;
}

/** Fault-tolerance knobs of `strober run` (see EnergySimulator::Config). */
struct RunOptions
{
    size_t maxDroppedSnapshots = std::numeric_limits<size_t>::max();
    uint64_t replayTimeoutCycles = 0; //!< 0 = auto budget
    unsigned jobs = 1;                //!< parallel replay workers
    std::string cacheDir;             //!< empty = no persistent cache
    sim::Backend backend = sim::Backend::InterpretedActivity;
    std::string stimulus;             //!< VCD trace instead of a workload
    std::string dumpStimulus;         //!< write a ports-only VCD and exit
    std::string reportFile;           //!< deterministic report rendering
    bool stream = false;              //!< overlap replay with the fast sim
    double ciBound = 0;               //!< adaptive stop (implies --stream)
};

/** Ports-only VCD dump of a generator-driven run (no estimate). */
int
cmdDumpStimulus(const rtl::Design &soc, const workloads::Workload &wl,
                const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot create '%s'", path.c_str());
    core::RtlHarness harness(soc);
    sim::VcdWriter::Options vopts;
    vopts.portsOnly = true;
    sim::VcdWriter vcd(out, harness.simulator(), vopts);
    cores::SocDriver driver(soc, wl.program);
    // Same per-cycle contract as the energy-sim loop, with the sample
    // taken after the cycle's inputs are poked and before the edge --
    // VCD timestamp t carries the inputs of target cycle t.
    while (!driver.done() && harness.cycles() < wl.maxCycles) {
        driver.drive(harness);
        vcd.sample();
        harness.clock();
    }
    if (!driver.done())
        fatal("workload did not finish");
    out.close();
    if (!out)
        fatal("writing '%s' failed", path.c_str());
    std::printf("dumped %llu cycles, %zu port signal(s), %zu wide "
                "signal(s) skipped, to %s\n",
                (unsigned long long)harness.cycles(), vcd.signalCount(),
                vcd.wideSignalsSkipped(), path.c_str());
    return 0;
}

int
cmdRun(const std::string &coreName, const std::string &wlName,
       const RunOptions &opts)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    const bool fromTrace = !opts.stimulus.empty();
    workloads::Workload wl;
    trace::TraceWorkload twl;
    if (fromTrace) {
        util::Result<trace::TraceWorkload> r =
            trace::loadTraceWorkload(opts.stimulus);
        if (!r.isOk()) {
            std::fprintf(stderr, "stimulus: %s\n",
                         r.status().toString().c_str());
            return 4;
        }
        twl = r.value();
    } else {
        wl = workloads::byName(wlName);
    }
    if (!opts.dumpStimulus.empty()) {
        if (fromTrace) {
            std::fprintf(stderr, "--dump-stimulus requires a generated "
                                 "workload, not --stimulus\n");
            return 2;
        }
        return cmdDumpStimulus(soc, wl, opts.dumpStimulus);
    }

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    cfg.maxDroppedSnapshots = opts.maxDroppedSnapshots;
    cfg.replayTimeoutCycles = opts.replayTimeoutCycles;
    cfg.parallelReplays = std::max(1u, opts.jobs);
    cfg.backend = opts.backend;
    cfg.stimulusFingerprint = fromTrace ? twl.fingerprint : 0;
    cfg.ciBound = opts.ciBound;
    const bool streamed = opts.stream || opts.ciBound > 0;
    std::unique_ptr<farm::CachingReplayExecutor> cachingExec;
    if (!opts.cacheDir.empty()) {
        if (streamed) {
            // estimateStreaming() replays on its own in-process worker
            // threads and never consults cfg.replayExecutor; a cached
            // streamed run is the farm's job (strober-farm run --stream).
            std::printf("note: --cache-dir is ignored with --stream/"
                        "--ci-bound (use strober-farm run --stream for a "
                        "cached streamed run)\n");
        } else {
            cachingExec = std::make_unique<farm::CachingReplayExecutor>(
                opts.cacheDir);
            cfg.replayExecutor = cachingExec.get();
        }
    }
    core::EnergySimulator strober(soc, cfg);

    std::unique_ptr<cores::SocDriver> socDriver;
    std::unique_ptr<trace::TraceDriver> traceDriver;
    core::HostDriver *driver = nullptr;
    uint64_t maxCycles = 0;
    if (fromTrace) {
        lint::Diagnostics diags;
        util::Result<std::unique_ptr<trace::TraceDriver>> r =
            twl.openDriver(soc, &diags);
        for (const lint::Diagnostic &d : diags.all())
            std::fprintf(stderr, "%s\n", d.str().c_str());
        if (!r.isOk()) {
            std::fprintf(stderr, "stimulus: %s\n",
                         r.status().toString().c_str());
            return 4;
        }
        traceDriver = std::move(r.value());
        driver = traceDriver.get();
        maxCycles = std::numeric_limits<uint64_t>::max();
    } else {
        socDriver = std::make_unique<cores::SocDriver>(soc, wl.program);
        driver = socDriver.get();
        maxCycles = wl.maxCycles;
    }
    core::RunStats run;
    core::EnergyReport rep;
    if (streamed) {
        // One call: fast sim and gate-level replay overlap on the
        // streaming pipeline (and --ci-bound may stop the run early).
        rep = strober.estimateStreaming(*driver, maxCycles, &run);
    } else {
        run = strober.run(*driver, maxCycles);
    }
    if (traceDriver && !traceDriver->status().isOk()) {
        std::fprintf(stderr, "stimulus: %s\n",
                     traceDriver->status().toString().c_str());
        return 4;
    }
    if (!driver->done() && !(streamed && rep.earlyStopped))
        fatal("workload did not finish");
    if (socDriver && driver->done()) {
        std::printf("%s on %s: %llu cycles, %llu instructions "
                    "(CPI %.2f), exit 0x%x%s\n",
                    wl.name.c_str(), coreName.c_str(),
                    (unsigned long long)run.targetCycles,
                    (unsigned long long)socDriver->commitsSeen(),
                    static_cast<double>(run.targetCycles) /
                        static_cast<double>(socDriver->commitsSeen()),
                    socDriver->exitCode(),
                    wl.expectedExit &&
                            socDriver->exitCode() == wl.expectedExit
                        ? " (checksum OK)"
                        : "");
    } else if (socDriver) {
        std::printf("%s on %s: stopped early at %llu cycles "
                    "(--ci-bound met)\n",
                    wl.name.c_str(), coreName.c_str(),
                    (unsigned long long)run.targetCycles);
    } else {
        std::printf("%s on %s: %llu cycles driven from trace\n",
                    twl.name.c_str(), coreName.c_str(),
                    (unsigned long long)run.targetCycles);
    }
    if (!streamed)
        rep = strober.estimate();
    if (!opts.reportFile.empty()) {
        std::ofstream rout(opts.reportFile, std::ios::binary);
        if (!rout)
            fatal("cannot create '%s'", opts.reportFile.c_str());
        rout << farm::renderReportDeterministic(rep);
        rout.close();
        if (!rout)
            fatal("writing '%s' failed", opts.reportFile.c_str());
    }
    std::printf("average power: %.3f mW +/- %.3f (99%% CI, %zu "
                "snapshots, %zu dropped, %llu replay mismatches)\n",
                rep.averagePower.mean * 1e3,
                rep.averagePower.halfWidth * 1e3, rep.snapshots,
                rep.droppedSnapshots,
                (unsigned long long)rep.replayMismatches);
    if (streamed) {
        std::printf("pipeline: fast sim %.3f s, replay %.3f s, overlap "
                    "%.3f s%s; %zu superseded replay(s)\n",
                    rep.fastSimWallSeconds, rep.replayWallSeconds,
                    rep.overlapWallSeconds,
                    rep.earlyStopped ? "; early-stopped on --ci-bound"
                                     : "",
                    rep.supersededReplays);
    }
    if (cachingExec) {
        std::printf("replay cache: %zu hit(s), %zu miss(es), %llu "
                    "replay(s) executed\n",
                    rep.cacheHits, rep.cacheMisses,
                    (unsigned long long)cachingExec->replaysExecuted());
    }
    if (rep.degraded || !rep.valid) {
        std::printf("%s: %s\n", rep.valid ? "degraded" : "INVALID",
                    rep.statusMessage.c_str());
        for (const core::SnapshotOutcome &oc : rep.outcomes) {
            if (!oc.replayed()) {
                std::printf("  snapshot %zu (cycle %llu): %s after %u "
                            "attempt(s): %s\n",
                            oc.index, (unsigned long long)oc.cycle,
                            core::snapshotStatusName(oc.status),
                            oc.attempts, oc.detail.c_str());
            }
        }
    }
    for (const core::GroupEstimate &g : rep.groups) {
        if (g.power.mean > rep.averagePower.mean * 0.01) {
            std::printf("  %-28s %8.3f mW\n", g.group.c_str(),
                        g.power.mean * 1e3);
        }
    }
    // 0 clean, 1 degraded-but-valid, 3 invalid (2 is reserved for
    // usage errors) — scripts can distinguish "usable but check the
    // status line" from "no trustworthy number".
    if (!rep.valid)
        return 3;
    return rep.degraded || rep.replayMismatches ? 1 : 0;
}

/**
 * Gate-level ground truth, optionally driven from a VCD trace instead
 * of a generated workload, and optionally exporting the measured
 * switching activity as a duty-tracked SAIF file — the export half of
 * the VCD-in / SAIF-out interchange loop.
 */
int
cmdTruth(const std::string &coreName, const std::string &wlName,
         const std::string &stimulus, const std::string &saifFile)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    const bool fromTrace = !stimulus.empty();
    workloads::Workload wl;
    if (!fromTrace)
        wl = workloads::byName(wlName);
    core::EnergySimulator::Config cfg;
    core::EnergySimulator strober(soc, cfg);

    // Inline equivalent of core::measureGroundTruth(), opened up so the
    // harness can enable duty tracking (T0/T1 in the SAIF output) and
    // accept either driver kind.
    const gate::SynthesisResult &synth = strober.synthesis();
    core::GateHarness harness(synth.netlist);
    if (!saifFile.empty())
        harness.simulator().enableDutyTracking();
    harness.simulator().clearActivity();

    std::unique_ptr<cores::SocDriver> socDriver;
    std::unique_ptr<trace::TraceDriver> traceDriver;
    core::HostDriver *driver = nullptr;
    uint64_t maxCycles = 0;
    std::string runName;
    if (fromTrace) {
        lint::Diagnostics diags;
        util::Result<std::unique_ptr<trace::TraceDriver>> r =
            trace::TraceDriver::open(stimulus, soc, {}, &diags);
        for (const lint::Diagnostic &d : diags.all())
            std::fprintf(stderr, "%s\n", d.str().c_str());
        if (!r.isOk()) {
            std::fprintf(stderr, "stimulus: %s\n",
                         r.status().toString().c_str());
            return 4;
        }
        traceDriver = std::move(r.value());
        driver = traceDriver.get();
        maxCycles = std::numeric_limits<uint64_t>::max();
        runName = stimulus;
    } else {
        socDriver = std::make_unique<cores::SocDriver>(soc, wl.program);
        driver = socDriver.get();
        maxCycles = wl.maxCycles;
        runName = wl.name;
    }
    std::printf("running %s to completion at gate level (slow; this is "
                "the point)...\n", runName.c_str());
    core::runLoop(harness, *driver, maxCycles);
    if (traceDriver && !traceDriver->status().isOk()) {
        std::fprintf(stderr, "stimulus: %s\n",
                     traceDriver->status().toString().c_str());
        return 4;
    }
    if (harness.cycles() == 0)
        fatal("ground-truth run executed zero cycles");

    gate::ActivityReport activity{harness.simulator().toggleCounts(),
                                  harness.simulator().macroStats(),
                                  harness.simulator().activityCycles()};
    power::PowerReport truth = power::analyzePower(
        synth.netlist, strober.placement(), activity, cfg.clockHz);
    std::printf("exact average power over %llu cycles: %.3f mW\n",
                (unsigned long long)truth.cycles,
                truth.totalWatts() * 1e3);
    std::printf("%s", truth.table().c_str());

    if (!saifFile.empty()) {
        gate::SaifOptions opt;
        opt.designName = coreName;
        opt.clockHz = cfg.clockHz;
        opt.highCycles = &harness.simulator().highCycles();
        std::ofstream out(saifFile, std::ios::binary);
        if (!out)
            fatal("cannot create '%s'", saifFile.c_str());
        out << gate::writeSaif(synth.netlist, activity, opt);
        out.close();
        if (!out)
            fatal("writing '%s' failed", saifFile.c_str());
        std::printf("wrote duty-tracked SAIF activity (%llu cycles) "
                    "to %s\n",
                    (unsigned long long)harness.cycles(),
                    saifFile.c_str());
    }
    return 0;
}

int
cmdSynth(const std::string &coreName, const char *outFile)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    gate::SynthesisResult synth = gate::synthesize(soc);
    std::printf("%s: %llu gates, %zu DFFs (%llu retimed), %llu folded, "
                "%llu swept, %.0f um^2\n",
                coreName.c_str(),
                (unsigned long long)synth.stats.liveGates,
                synth.netlist.dffs().size(),
                (unsigned long long)synth.stats.retimedDffCount,
                (unsigned long long)synth.stats.foldedGates,
                (unsigned long long)synth.stats.sweptGates,
                synth.netlist.totalAreaUm2());
    if (outFile) {
        std::ofstream out(outFile);
        out << gate::writeVerilog(synth.netlist, coreName + "_gates");
        std::printf("wrote %s\n", outFile);
    }
    return 0;
}

int
cmdChase(const std::string &coreName, uint32_t kib, unsigned latency)
{
    cores::SocConfig ccfg = coreByName(coreName);
    rtl::Design soc = cores::buildSoc(ccfg);
    workloads::Workload wl = workloads::pointerChase(kib * 1024, 400);
    cores::SocDriver::Config dcfg;
    dcfg.dram.baseLatencyCycles = latency;
    cores::SocDriver driver(soc, wl.program, dcfg);
    core::RtlHarness harness(soc);
    core::runLoop(harness, driver, wl.maxCycles);
    if (!driver.done())
        fatal("chase did not finish");
    std::printf("%u KiB array, DRAM latency %u: %.1f cycles per load\n",
                kib, latency, driver.exitCode() / 16.0);
    return 0;
}

int
cmdAsm(const char *path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path);
    std::stringstream source;
    source << in.rdbuf();
    isa::Program prog = isa::assemble(source.str());
    std::printf("assembled %u bytes at 0x%08x\n", prog.sizeBytes(),
                prog.base);
    isa::Iss iss;
    iss.loadProgram(prog);
    iss.run();
    std::printf("ISS: %llu instructions, exit 0x%x\n",
                (unsigned long long)iss.instret(), iss.exitCode());
    if (!iss.consoleOutput().empty())
        std::printf("console: %s\n", iss.consoleOutput().c_str());
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: strober info\n"
                 "       strober run    <core> <workload>\n"
                 "       strober run    <core> --stimulus <file.vcd>\n"
                 "                      [--backend full|activity|compiled\n"
                 "                                 |compiled-parallel]\n"
                 "                      [--sim-threads N]\n"
                 "                      [--jobs N | -j N]\n"
                 "                      [--cache-dir DIR]\n"
                 "                      [--max-dropped-snapshots N]\n"
                 "                      [--replay-timeout CYCLES]\n"
                 "                      [--dump-stimulus <file.vcd>]\n"
                 "                      [--report FILE]\n"
                 "                      [--stream]       # overlap replay\n"
                 "                                       #   with the fast sim\n"
                 "                      [--ci-bound R]   # stop early once\n"
                 "                                       #   CI/mean < R\n"
                 "       strober truth  <core> <workload>\n"
                 "       strober truth  <core> --stimulus <file.vcd>\n"
                 "                      [--saif FILE]            # export\n"
                 "                                               #   duty-tracked\n"
                 "                                               #   SAIF activity\n"
                 "       strober synth  <core> [out.v]\n"
                 "       strober chase  <core> <KiB> [dram-latency]\n"
                 "       strober asm    <file.s>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "info")
        return cmdInfo();
    if (cmd == "run") {
        RunOptions opts;
        std::vector<std::string> positional;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--max-dropped-snapshots" && i + 1 < argc) {
                opts.maxDroppedSnapshots =
                    static_cast<size_t>(std::stoull(argv[++i]));
            } else if (arg == "--replay-timeout" && i + 1 < argc) {
                opts.replayTimeoutCycles = std::stoull(argv[++i]);
            } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
                opts.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
            } else if (arg == "--cache-dir" && i + 1 < argc) {
                opts.cacheDir = argv[++i];
            } else if (arg == "--stimulus" && i + 1 < argc) {
                opts.stimulus = argv[++i];
            } else if (arg == "--dump-stimulus" && i + 1 < argc) {
                opts.dumpStimulus = argv[++i];
            } else if (arg == "--report" && i + 1 < argc) {
                opts.reportFile = argv[++i];
            } else if (arg == "--stream") {
                opts.stream = true;
            } else if (arg == "--ci-bound" && i + 1 < argc) {
                opts.ciBound = std::stod(argv[++i]);
                if (!(opts.ciBound > 0)) {
                    std::fprintf(stderr,
                                 "--ci-bound needs a positive relative "
                                 "half-width (e.g. 0.05)\n");
                    return 2;
                }
            } else if (arg == "--backend" && i + 1 < argc) {
                if (!sim::parseBackend(argv[++i], &opts.backend)) {
                    std::fprintf(stderr,
                                 "unknown backend '%s' (full | activity "
                                 "| compiled | compiled-parallel)\n",
                                 argv[i]);
                    return 2;
                }
            } else if (arg == "--sim-threads" && i + 1 < argc) {
                sim::setSimThreads(
                    static_cast<unsigned>(std::stoul(argv[++i])));
            } else if (arg.rfind("--", 0) == 0) {
                std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
                usage();
                return 2;
            } else {
                positional.push_back(arg);
            }
        }
        // <core> <workload>, or <core> alone with --stimulus.
        size_t expected = opts.stimulus.empty() ? 2 : 1;
        if (positional.size() != expected) {
            usage();
            return 2;
        }
        return cmdRun(positional[0],
                      expected == 2 ? positional[1] : std::string(), opts);
    }
    if (cmd == "truth") {
        std::string stimulus, saifFile;
        std::vector<std::string> positional;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--stimulus" && i + 1 < argc) {
                stimulus = argv[++i];
            } else if (arg == "--saif" && i + 1 < argc) {
                saifFile = argv[++i];
            } else if (arg.rfind("--", 0) == 0) {
                std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
                usage();
                return 2;
            } else {
                positional.push_back(arg);
            }
        }
        size_t expected = stimulus.empty() ? 2 : 1;
        if (positional.size() != expected) {
            usage();
            return 2;
        }
        return cmdTruth(positional[0],
                        expected == 2 ? positional[1] : std::string(),
                        stimulus, saifFile);
    }
    if (cmd == "synth" && (argc == 3 || argc == 4))
        return cmdSynth(argv[2], argc == 4 ? argv[3] : nullptr);
    if (cmd == "chase" && (argc == 4 || argc == 5)) {
        return cmdChase(argv[2],
                        static_cast<uint32_t>(std::stoul(argv[3])),
                        argc == 5 ? static_cast<unsigned>(
                                        std::stoul(argv[4]))
                                  : 100);
    }
    if (cmd == "asm" && argc == 3)
        return cmdAsm(argv[2]);
    usage();
    return 2;
}
