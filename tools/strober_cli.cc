/**
 * @file
 * The `strober` command-line tool: the packaged entry point for the
 * common flows so the framework is usable without writing C++.
 *
 *   strober info                           # list cores and workloads
 *   strober run    <core> <workload>       # fast sim + energy estimate
 *       [--backend B]                      #   fast-sim backend: full |
 *                                          #   activity (default) |
 *                                          #   compiled | compiled-parallel
 *       [--sim-threads N]                  #   threads for the
 *                                          #   compiled-parallel backend
 *       [--jobs N | -j N]                  #   parallel replay workers
 *       [--cache-dir DIR]                  #   persistent replay-result
 *                                          #   cache (src/farm); a warm
 *                                          #   cache re-estimates with
 *                                          #   zero gate-level replays
 *       [--max-dropped-snapshots N]        #   invalidate report past N
 *       [--replay-timeout CYCLES]          #   per-replay watchdog budget
 *   strober truth  <core> <workload>       # exhaustive gate-level power
 *   strober synth  <core> [out.v]          # synthesis stats / Verilog
 *   strober chase  <core> <KiB> [latency]  # pointer-chase latency
 *   strober asm    <file.s>                # assemble + run on the ISS
 *
 * Exit codes of `run`: 0 clean estimate, 1 degraded but valid (some
 * snapshots quarantined / replay mismatches), 2 usage error, 3 invalid
 * estimate (no trustworthy number; see the report's status line).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "gate/verilog.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "util/logging.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

int
cmdInfo()
{
    std::printf("cores:\n");
    for (const char *c : {"rocket", "boom1w", "boom2w"}) {
        cores::SocConfig cfg = coreByName(c);
        rtl::Design d = cores::buildSoc(cfg);
        std::printf("  %-8s fetch/issue %u/%u, %zu RTL nodes, %zu regs\n",
                    c, cfg.fetchWidth, cfg.issueWidth, d.numNodes(),
                    d.regs().size());
    }
    std::printf("workloads:\n  ");
    for (const workloads::Workload &w : workloads::microbenchmarks())
        std::printf("%s ", w.name.c_str());
    for (const workloads::Workload &w : workloads::caseStudies())
        std::printf("%s ", w.name.c_str());
    std::printf("\n");
    return 0;
}

/** Fault-tolerance knobs of `strober run` (see EnergySimulator::Config). */
struct RunOptions
{
    size_t maxDroppedSnapshots = std::numeric_limits<size_t>::max();
    uint64_t replayTimeoutCycles = 0; //!< 0 = auto budget
    unsigned jobs = 1;                //!< parallel replay workers
    std::string cacheDir;             //!< empty = no persistent cache
    sim::Backend backend = sim::Backend::InterpretedActivity;
};

int
cmdRun(const std::string &coreName, const std::string &wlName,
       const RunOptions &opts)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    workloads::Workload wl = workloads::byName(wlName);

    core::EnergySimulator::Config cfg;
    cfg.sampleSize = 30;
    cfg.replayLength = 128;
    cfg.maxDroppedSnapshots = opts.maxDroppedSnapshots;
    cfg.replayTimeoutCycles = opts.replayTimeoutCycles;
    cfg.parallelReplays = std::max(1u, opts.jobs);
    cfg.backend = opts.backend;
    std::unique_ptr<farm::CachingReplayExecutor> cachingExec;
    if (!opts.cacheDir.empty()) {
        cachingExec =
            std::make_unique<farm::CachingReplayExecutor>(opts.cacheDir);
        cfg.replayExecutor = cachingExec.get();
    }
    core::EnergySimulator strober(soc, cfg);
    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = strober.run(driver, wl.maxCycles);
    if (!driver.done())
        fatal("workload did not finish");
    std::printf("%s on %s: %llu cycles, %llu instructions "
                "(CPI %.2f), exit 0x%x%s\n",
                wl.name.c_str(), coreName.c_str(),
                (unsigned long long)run.targetCycles,
                (unsigned long long)driver.commitsSeen(),
                static_cast<double>(run.targetCycles) /
                    static_cast<double>(driver.commitsSeen()),
                driver.exitCode(),
                wl.expectedExit && driver.exitCode() == wl.expectedExit
                    ? " (checksum OK)"
                    : "");
    core::EnergyReport rep = strober.estimate();
    std::printf("average power: %.3f mW +/- %.3f (99%% CI, %zu "
                "snapshots, %zu dropped, %llu replay mismatches)\n",
                rep.averagePower.mean * 1e3,
                rep.averagePower.halfWidth * 1e3, rep.snapshots,
                rep.droppedSnapshots,
                (unsigned long long)rep.replayMismatches);
    if (cachingExec) {
        std::printf("replay cache: %zu hit(s), %zu miss(es), %llu "
                    "replay(s) executed\n",
                    rep.cacheHits, rep.cacheMisses,
                    (unsigned long long)cachingExec->replaysExecuted());
    }
    if (rep.degraded || !rep.valid) {
        std::printf("%s: %s\n", rep.valid ? "degraded" : "INVALID",
                    rep.statusMessage.c_str());
        for (const core::SnapshotOutcome &oc : rep.outcomes) {
            if (!oc.replayed()) {
                std::printf("  snapshot %zu (cycle %llu): %s after %u "
                            "attempt(s): %s\n",
                            oc.index, (unsigned long long)oc.cycle,
                            core::snapshotStatusName(oc.status),
                            oc.attempts, oc.detail.c_str());
            }
        }
    }
    for (const core::GroupEstimate &g : rep.groups) {
        if (g.power.mean > rep.averagePower.mean * 0.01) {
            std::printf("  %-28s %8.3f mW\n", g.group.c_str(),
                        g.power.mean * 1e3);
        }
    }
    // 0 clean, 1 degraded-but-valid, 3 invalid (2 is reserved for
    // usage errors) — scripts can distinguish "usable but check the
    // status line" from "no trustworthy number".
    if (!rep.valid)
        return 3;
    return rep.degraded || rep.replayMismatches ? 1 : 0;
}

int
cmdTruth(const std::string &coreName, const std::string &wlName)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    workloads::Workload wl = workloads::byName(wlName);
    core::EnergySimulator::Config cfg;
    core::EnergySimulator strober(soc, cfg);
    cores::SocDriver driver(soc, wl.program);
    std::printf("running %s to completion at gate level (slow; this is "
                "the point)...\n", wl.name.c_str());
    power::PowerReport truth =
        core::measureGroundTruth(strober, driver, wl.maxCycles);
    std::printf("exact average power over %llu cycles: %.3f mW\n",
                (unsigned long long)truth.cycles,
                truth.totalWatts() * 1e3);
    std::printf("%s", truth.table().c_str());
    return 0;
}

int
cmdSynth(const std::string &coreName, const char *outFile)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    gate::SynthesisResult synth = gate::synthesize(soc);
    std::printf("%s: %llu gates, %zu DFFs (%llu retimed), %llu folded, "
                "%llu swept, %.0f um^2\n",
                coreName.c_str(),
                (unsigned long long)synth.stats.liveGates,
                synth.netlist.dffs().size(),
                (unsigned long long)synth.stats.retimedDffCount,
                (unsigned long long)synth.stats.foldedGates,
                (unsigned long long)synth.stats.sweptGates,
                synth.netlist.totalAreaUm2());
    if (outFile) {
        std::ofstream out(outFile);
        out << gate::writeVerilog(synth.netlist, coreName + "_gates");
        std::printf("wrote %s\n", outFile);
    }
    return 0;
}

int
cmdChase(const std::string &coreName, uint32_t kib, unsigned latency)
{
    cores::SocConfig ccfg = coreByName(coreName);
    rtl::Design soc = cores::buildSoc(ccfg);
    workloads::Workload wl = workloads::pointerChase(kib * 1024, 400);
    cores::SocDriver::Config dcfg;
    dcfg.dram.baseLatencyCycles = latency;
    cores::SocDriver driver(soc, wl.program, dcfg);
    core::RtlHarness harness(soc);
    core::runLoop(harness, driver, wl.maxCycles);
    if (!driver.done())
        fatal("chase did not finish");
    std::printf("%u KiB array, DRAM latency %u: %.1f cycles per load\n",
                kib, latency, driver.exitCode() / 16.0);
    return 0;
}

int
cmdAsm(const char *path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path);
    std::stringstream source;
    source << in.rdbuf();
    isa::Program prog = isa::assemble(source.str());
    std::printf("assembled %u bytes at 0x%08x\n", prog.sizeBytes(),
                prog.base);
    isa::Iss iss;
    iss.loadProgram(prog);
    iss.run();
    std::printf("ISS: %llu instructions, exit 0x%x\n",
                (unsigned long long)iss.instret(), iss.exitCode());
    if (!iss.consoleOutput().empty())
        std::printf("console: %s\n", iss.consoleOutput().c_str());
    return 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: strober info\n"
                 "       strober run    <core> <workload>\n"
                 "                      [--backend full|activity|compiled\n"
                 "                                 |compiled-parallel]\n"
                 "                      [--sim-threads N]\n"
                 "                      [--jobs N | -j N]\n"
                 "                      [--cache-dir DIR]\n"
                 "                      [--max-dropped-snapshots N]\n"
                 "                      [--replay-timeout CYCLES]\n"
                 "       strober truth  <core> <workload>\n"
                 "       strober synth  <core> [out.v]\n"
                 "       strober chase  <core> <KiB> [dram-latency]\n"
                 "       strober asm    <file.s>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "info")
        return cmdInfo();
    if (cmd == "run") {
        RunOptions opts;
        std::vector<std::string> positional;
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--max-dropped-snapshots" && i + 1 < argc) {
                opts.maxDroppedSnapshots =
                    static_cast<size_t>(std::stoull(argv[++i]));
            } else if (arg == "--replay-timeout" && i + 1 < argc) {
                opts.replayTimeoutCycles = std::stoull(argv[++i]);
            } else if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
                opts.jobs = static_cast<unsigned>(std::stoul(argv[++i]));
            } else if (arg == "--cache-dir" && i + 1 < argc) {
                opts.cacheDir = argv[++i];
            } else if (arg == "--backend" && i + 1 < argc) {
                if (!sim::parseBackend(argv[++i], &opts.backend)) {
                    std::fprintf(stderr,
                                 "unknown backend '%s' (full | activity "
                                 "| compiled | compiled-parallel)\n",
                                 argv[i]);
                    return 2;
                }
            } else if (arg == "--sim-threads" && i + 1 < argc) {
                sim::setSimThreads(
                    static_cast<unsigned>(std::stoul(argv[++i])));
            } else if (arg.rfind("--", 0) == 0) {
                std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
                usage();
                return 2;
            } else {
                positional.push_back(arg);
            }
        }
        if (positional.size() != 2) {
            usage();
            return 2;
        }
        return cmdRun(positional[0], positional[1], opts);
    }
    if (cmd == "truth" && argc == 4)
        return cmdTruth(argv[2], argv[3]);
    if (cmd == "synth" && (argc == 3 || argc == 4))
        return cmdSynth(argv[2], argc == 4 ? argv[3] : nullptr);
    if (cmd == "chase" && (argc == 4 || argc == 5)) {
        return cmdChase(argv[2],
                        static_cast<uint32_t>(std::stoul(argv[3])),
                        argc == 5 ? static_cast<unsigned>(
                                        std::stoul(argv[4]))
                                  : 100);
    }
    if (cmd == "asm" && argc == 3)
        return cmdAsm(argv[2]);
    usage();
    return 2;
}
