/**
 * @file
 * The `strober-serve` daemon binary: Strober as a long-running service.
 *
 *   strober-serve --socket /run/strober.sock --root /var/lib/strober \
 *       [--cache-dir C] [--runners N] [--max-queue N] [--workers N] \
 *       [--default-deadline DUR] [--worker-wall-cap DUR] \
 *       [--worker-rss-mb MB] [--worker-retries N] [--trim-keep N] \
 *       [--trim-max-age DUR] [--trim-max-bytes B] [--farm-bin PATH]
 *
 * Clients talk to it with `strober-farm submit/wait/stats/...` (or the
 * service::ServiceClient library). Estimate jobs run under per-job
 * wall-clock deadlines; replay workers are separate supervised
 * processes (strober-farm worker) with wall and RSS caps, SIGKILL
 * recovery and bounded backoff retries. SIGTERM drains gracefully:
 * admission stops, running jobs checkpoint their farm leases, the
 * process exits 0 — a later daemon (or a plain `strober-farm run`)
 * resumes the work bit-identically.
 *
 * Durations accept ms/s/m/h suffixes (bare numbers are seconds).
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "core/energy_sim.h"
#include "core/job_control.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "farm/report.h"
#include "farm/stream.h"
#include "lint/diagnostics.h"
#include "service/daemon.h"
#include "service/supervisor.h"
#include "trace/stimulus.h"
#include "util/env.h"
#include "util/logging.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

service::ServiceDaemon *g_daemon = nullptr;

void
onDrainSignal(int)
{
    // Async-signal-safe by construction: one atomic store, one write().
    if (g_daemon != nullptr)
        g_daemon->requestDrain();
}

bool
knownCore(const std::string &name)
{
    return name == "rocket" || name == "boom1w" || name == "boom2w";
}

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    return cores::SocConfig::boom2w();
}

bool
knownWorkload(const std::string &name)
{
    for (const workloads::Workload &w : workloads::microbenchmarks()) {
        if (w.name == name)
            return true;
    }
    for (const workloads::Workload &w : workloads::caseStudies()) {
        if (w.name == name)
            return true;
    }
    return false;
}

/** Knobs of the production executor (fixed at daemon startup). */
struct ServeOptions
{
    std::string farmBin;       //!< strober-farm binary for workers
    unsigned defaultWorkers = 2;
    uint64_t workerWallCapMs = 10 * 60 * 1000;
    unsigned long workerRssMb = 0; //!< 0 = uncapped
    unsigned workerRetries = 2;
    uint64_t leaseDurationMs = 60 * 1000;
    /** Shared with the daemon's Stats endpoint: streamed replays in
     *  flight across every running job. */
    std::shared_ptr<std::atomic<int64_t>> streamGauge;
};

/** Directory of our own binary ("/proc/self/exe" parent). */
std::string
selfDir()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    std::string path(buf);
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

service::JobOutcome
failedOutcome(std::string detail)
{
    service::JobOutcome out;
    out.state = service::JobState::Failed;
    out.exitCode = 3;
    out.detail = std::move(detail);
    return out;
}

service::JobOutcome
canceledOutcome(std::string detail)
{
    service::JobOutcome out;
    out.state = service::JobState::Canceled;
    out.exitCode = 4;
    out.detail = std::move(detail);
    return out;
}

/**
 * The production executor: fast sim + farm plan + supervised worker
 * pool + collect, all scoped to the job's own run directory but
 * sharing the daemon-wide result cache.
 */
service::JobOutcome
runEstimateJob(const service::JobRequest &req, core::JobControl &control,
               const ServeOptions &opts, const std::string &cacheDir)
{
    const service::SubmitRequest &sub = req.submit;
    const bool fromTrace = !sub.stimulusPath.empty();
    if (!knownCore(sub.coreName))
        return failedOutcome("unknown core '" + sub.coreName +
                             "' (rocket | boom1w | boom2w)");
    if (!fromTrace && !knownWorkload(sub.workloadName))
        return failedOutcome("unknown workload '" + sub.workloadName + "'");

    rtl::Design soc = cores::buildSoc(coreByName(sub.coreName));
    workloads::Workload wl;
    trace::TraceWorkload twl;
    if (fromTrace) {
        // Fingerprint + header check only; the body is streamed from
        // disk by the driver below, never buffered.
        util::Result<trace::TraceWorkload> r =
            trace::loadTraceWorkload(sub.stimulusPath);
        if (!r.isOk())
            return failedOutcome("stimulus: " + r.status().toString());
        twl = r.value();
    } else {
        wl = workloads::byName(sub.workloadName);
    }

    core::EnergySimulator::Config simCfg;
    simCfg.sampleSize = sub.sampleSize;
    simCfg.replayLength = static_cast<unsigned>(sub.replayLength);
    simCfg.job = &control;
    simCfg.stimulusFingerprint = fromTrace ? twl.fingerprint : 0;
    simCfg.ciBound = sub.ciBound;

    unsigned workers = sub.workers != 0
                           ? static_cast<unsigned>(sub.workers)
                           : opts.defaultWorkers;
    const bool streamedJob = sub.stream || sub.ciBound > 0;

    farm::FarmConfig fcfg;
    fcfg.dir = req.jobDir;
    fcfg.cacheDir = cacheDir;
    fcfg.shards = std::max(1u, workers);
    fcfg.sim = simCfg;
    fcfg.coreName = sub.coreName;
    fcfg.workloadName = fromTrace ? twl.name : wl.name;
    fcfg.leaseDurationMs = opts.leaseDurationMs;
    farm::FarmOrchestrator orch(soc, fcfg);

    // Streamed jobs open the feed (building the ASIC flow up front) so
    // worker processes replay captures while the fast sim still runs.
    std::unique_ptr<farm::StreamFeed> feed;
    core::EnergySimulator *probeSim = nullptr;
    bool ciStopped = false;
    if (streamedJob) {
        util::Result<std::unique_ptr<farm::StreamFeed>> f =
            orch.openStreamFeed();
        if (!f.isOk())
            return failedOutcome("stream feed: " + f.status().toString());
        feed = std::move(f.value());
        if (opts.streamGauge) {
            std::atomic<int64_t> *g = opts.streamGauge.get();
            feed->inFlightHook = [g](int64_t d) {
                g->fetch_add(d, std::memory_order_relaxed);
            };
        }
        if (sub.ciBound > 0) {
            // Adaptive termination: every 8th interval boundary, fold
            // the completions workers have published so far and stop
            // the fast sim once the CI is tight enough (each real
            // check costs one cache lookup per outstanding capture,
            // hence the throttle).
            simCfg.earlyStopProbe = [&sub, &simCfg, &orch, &feed,
                                     &probeSim, &ciStopped,
                                     calls = uint64_t(0)]() mutable {
                if (++calls % 8 != 0)
                    return false;
                uint64_t population = std::max<uint64_t>(
                    probeSim->sampler().intervalsSeen(), 1);
                ciStopped = feed->ciBoundMet(orch.cache(), sub.ciBound,
                                             simCfg.confidence, population,
                                             simCfg.sampleSize);
                return ciStopped;
            };
        }
    }
    // Zero the in-flight gauge residue however the job exits.
    struct GaugeReset
    {
        farm::StreamFeed *feed = nullptr;
        std::atomic<int64_t> *g = nullptr;
        ~GaugeReset()
        {
            if (feed != nullptr && g != nullptr) {
                g->fetch_sub(static_cast<int64_t>(feed->outstanding()),
                             std::memory_order_relaxed);
            }
        }
    } gaugeReset;
    gaugeReset.feed = feed.get();
    gaugeReset.g = opts.streamGauge ? opts.streamGauge.get() : nullptr;

    // Phase 1: fast simulation + sampling (cheap, deterministic).
    core::EnergySimulator sim(soc, simCfg);
    probeSim = &sim;
    if (feed)
        sim.sampler().setObserver(feed.get());
    std::unique_ptr<cores::SocDriver> socDriver;
    std::unique_ptr<trace::TraceDriver> traceDriver;
    core::HostDriver *driver = nullptr;
    uint64_t maxCycles = 0;
    if (fromTrace) {
        lint::Diagnostics diags;
        util::Result<std::unique_ptr<trace::TraceDriver>> r =
            twl.openDriver(soc, &diags);
        if (!r.isOk())
            return failedOutcome("stimulus: " + r.status().toString() +
                                 (diags.empty() ? "" : "\n" + diags.str()));
        traceDriver = std::move(r.value());
        driver = traceDriver.get();
        maxCycles = UINT64_MAX; // the trace's last timestep ends the run
    } else {
        socDriver.reset(new cores::SocDriver(soc, wl.program));
        driver = socDriver.get();
        maxCycles = wl.maxCycles;
    }
    auto makeSpecs = [&](bool stream) {
        uint64_t deadline =
            control.deadlineUnixMs.load(std::memory_order_relaxed);
        std::vector<service::WorkerSpec> specs(workers);
        for (unsigned i = 0; i < workers; ++i) {
            service::WorkerSpec &spec = specs[i];
            spec.argv = {opts.farmBin,
                         "worker",
                         "--dir",
                         req.jobDir,
                         "--cache-dir",
                         cacheDir,
                         "--slot",
                         std::to_string(i),
                         "--slots",
                         std::to_string(workers)};
            if (stream)
                spec.argv.push_back("--stream");
            if (deadline != 0) {
                spec.argv.push_back("--deadline-unix-ms");
                spec.argv.push_back(std::to_string(deadline));
            }
            if (opts.workerRssMb != 0) {
                spec.env.push_back("STROBER_WORKER_RSS_MB=" +
                                   std::to_string(opts.workerRssMb));
            }
        }
        return specs;
    };
    service::SupervisorConfig scfg;
    scfg.slots = workers;
    scfg.wallCapMs = opts.workerWallCapMs;
    scfg.rssCapBytes = static_cast<uint64_t>(opts.workerRssMb) * 1024 * 1024;
    scfg.maxRetries = opts.workerRetries;
    scfg.stopRequested = [&control] { return control.stopRequested(); };

    // Streamed jobs spawn (supervised) workers before the fast sim so
    // they drain the feed concurrently; superviseUntilDone blocks, so
    // it runs on its own thread. Joined on every exit path.
    service::SupervisionStats sup;
    std::thread supThread;
    struct JoinGuard
    {
        std::thread *t;
        ~JoinGuard()
        {
            if (t->joinable())
                t->join();
        }
    } joinGuard{&supThread};
    auto joinSupervisor = [&] {
        if (supThread.joinable())
            supThread.join();
    };
    if (streamedJob && workers > 0) {
        std::vector<service::WorkerSpec> specs = makeSpecs(true);
        supThread = std::thread([specs, scfg, &sup] {
            sup = service::superviseUntilDone(specs, scfg);
        });
    }

    core::RunStats run = sim.run(*driver, maxCycles);
    if (feed) {
        // Publish a capture that completed exactly at the final cycle,
        // then seal the feed: the done marker is what lets stream
        // workers leave their drain loop, so write it before any
        // failure return below.
        sim.sampler().flushPending();
        sim.sampler().setObserver(nullptr);
        util::Status fst = feed->finish(ciStopped);
        if (!fst.isOk()) {
            warn("stream done marker: %s (workers fall back to their "
                 "wall cap)",
                 fst.toString().c_str());
        }
    }
    if (traceDriver && !traceDriver->status().isOk())
        return failedOutcome("stimulus: " +
                             traceDriver->status().toString());
    if (!driver->done() && !ciStopped)
        return failedOutcome("workload did not finish in its cycle budget");
    if (control.canceled()) {
        joinSupervisor();
        return canceledOutcome("drained during fast simulation");
    }

    uint64_t population = run.targetCycles / simCfg.replayLength;

    auto assemble = [&](util::Result<core::EnergyReport> rep)
        -> service::JobOutcome {
        service::JobOutcome out;
        out.workerRetries = sup.retries;
        out.workerKills = sup.wallKills + sup.rssKills;
        out.streamed = streamedJob;
        out.supersededReplays = feed ? feed->superseded() : 0;
        if (!rep.isOk()) {
            if (rep.status().code() == util::ErrorCode::Canceled) {
                service::JobOutcome c =
                    canceledOutcome(rep.status().toString());
                c.workerRetries = out.workerRetries;
                c.workerKills = out.workerKills;
                c.streamed = out.streamed;
                c.supersededReplays = out.supersededReplays;
                return c;
            }
            out.state = service::JobState::Failed;
            out.exitCode = 3;
            out.detail = "collect failed: " + rep.status().toString();
            return out;
        }
        out.earlyStopped = rep->earlyStopped;
        out.reportText = farm::renderReportDeterministic(*rep);
        out.exitCode = farm::reportExitCode(*rep);
        out.detail = rep->statusMessage;
        out.cacheHits = rep->cacheHits;
        out.cacheMisses = rep->cacheMisses;
        if (control.deadlineExpired() && (rep->degraded || !rep->valid))
            out.state = service::JobState::TimedOut;
        else if (!rep->valid)
            out.state = service::JobState::Failed;
        else if (rep->degraded)
            out.state = service::JobState::Degraded;
        else
            out.state = service::JobState::Done;
        return out;
    };

    if (ciStopped) {
        // Early stop: workers abandon the feed on the "early" marker;
        // aggregate the completed subset — no plan/collect phase.
        joinSupervisor();
        return assemble(orch.collectStreamEarly(*feed, population));
    }

    util::Status st = orch.plan(sim.sampler().snapshots(), population);
    if (!st.isOk())
        return failedOutcome("plan failed: " + st.toString());
    if (control.canceled()) {
        joinSupervisor();
        return canceledOutcome("drained after planning; work is queued");
    }

    if (streamedJob) {
        // Tell the stream workers the manifests on disk are this run's
        // (not a stale prior run's), then wait for them to finish.
        util::Status pm = farm::writePlanMarker(req.jobDir);
        if (!pm.isOk()) {
            warn("plan marker: %s (stream workers give up on their own; "
                 "collect replays inline)",
                 pm.toString().c_str());
        }
        joinSupervisor();
    } else if (workers > 0) {
        std::vector<service::WorkerSpec> specs = makeSpecs(false);
        sup = service::superviseUntilDone(specs, scfg);
    }

    if (control.canceled()) {
        service::JobOutcome out =
            canceledOutcome("drained; leases are checkpointed");
        out.workerRetries = sup.retries;
        out.workerKills = sup.wallKills + sup.rssKills;
        out.streamed = streamedJob;
        return out;
    }

    return assemble(orch.collect());
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: strober-serve --socket S --root D [--cache-dir C]\n"
        "                     [--runners N] [--max-queue N] [--workers N]\n"
        "                     [--default-deadline DUR]\n"
        "                     [--worker-wall-cap DUR] [--worker-rss-mb MB]\n"
        "                     [--worker-retries N] [--lease-duration DUR]\n"
        "                     [--trim-keep N] [--trim-max-age DUR]\n"
        "                     [--trim-max-bytes B] [--farm-bin PATH]\n");
}

uint64_t
parseDurationArg(const char *flag, const std::string &text)
{
    std::optional<uint64_t> ms = util::parseDurationMs(text);
    if (!ms.has_value())
        fatal("%s: '%s' is not a duration (try 250ms, 30s, 5m, 1h)",
              flag, text.c_str());
    return *ms;
}

unsigned long
parseCountArg(const char *flag, const std::string &text)
{
    std::optional<unsigned long> n = util::parseULong(text);
    if (!n.has_value())
        fatal("%s: '%s' is not a non-negative integer", flag,
              text.c_str());
    return *n;
}

} // namespace

int
main(int argc, char **argv)
{
    service::DaemonConfig dcfg;
    ServeOptions opts;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("flag '%s' needs a value", arg.c_str());
            return args[++i];
        };
        if (arg == "--socket") {
            dcfg.socketPath = next();
        } else if (arg == "--root") {
            dcfg.rootDir = next();
        } else if (arg == "--cache-dir") {
            dcfg.cacheDir = next();
        } else if (arg == "--runners") {
            dcfg.runners =
                static_cast<unsigned>(parseCountArg("--runners", next()));
        } else if (arg == "--max-queue") {
            dcfg.maxQueue = parseCountArg("--max-queue", next());
        } else if (arg == "--default-deadline") {
            dcfg.defaultDeadlineMs =
                parseDurationArg("--default-deadline", next());
        } else if (arg == "--workers") {
            opts.defaultWorkers =
                static_cast<unsigned>(parseCountArg("--workers", next()));
        } else if (arg == "--worker-wall-cap") {
            opts.workerWallCapMs =
                parseDurationArg("--worker-wall-cap", next());
        } else if (arg == "--worker-rss-mb") {
            opts.workerRssMb = parseCountArg("--worker-rss-mb", next());
        } else if (arg == "--worker-retries") {
            opts.workerRetries = static_cast<unsigned>(
                parseCountArg("--worker-retries", next()));
        } else if (arg == "--lease-duration") {
            opts.leaseDurationMs =
                parseDurationArg("--lease-duration", next());
        } else if (arg == "--trim-keep") {
            dcfg.trim.keepCount = parseCountArg("--trim-keep", next());
        } else if (arg == "--trim-max-age") {
            dcfg.trim.maxAgeSeconds =
                parseDurationArg("--trim-max-age", next()) / 1000;
        } else if (arg == "--trim-max-bytes") {
            dcfg.trim.maxTotalBytes =
                parseCountArg("--trim-max-bytes", next());
        } else if (arg == "--farm-bin") {
            opts.farmBin = next();
        } else {
            usage();
            return 2;
        }
    }
    if (dcfg.socketPath.empty() || dcfg.rootDir.empty()) {
        usage();
        return 2;
    }
    if (opts.farmBin.empty())
        opts.farmBin = selfDir() + "/strober-farm";
    if (::access(opts.farmBin.c_str(), X_OK) != 0) {
        fatal("worker binary '%s' is not executable (use --farm-bin)",
              opts.farmBin.c_str());
    }

    std::string cacheDir = dcfg.effectiveCacheDir();
    opts.streamGauge = std::make_shared<std::atomic<int64_t>>(0);
    dcfg.streamInFlight = opts.streamGauge;
    dcfg.executor = [&opts, cacheDir](const service::JobRequest &req,
                                      core::JobControl &control) {
        return runEstimateJob(req, control, opts, cacheDir);
    };

    service::ServiceDaemon daemon(dcfg);
    util::Status st = daemon.start();
    if (!st.isOk())
        fatal("cannot start daemon: %s", st.toString().c_str());

    g_daemon = &daemon;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onDrainSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("strober-serve: listening on %s (root %s, cache %s, "
                "%u runner(s), queue bound %zu)\n",
                dcfg.socketPath.c_str(), dcfg.rootDir.c_str(),
                cacheDir.c_str(), std::max(1u, dcfg.runners),
                dcfg.maxQueue);
    std::fflush(stdout);

    // Serve until a drain is requested (SIGTERM/SIGINT or a Shutdown
    // frame), then finish/checkpoint admitted jobs and exit 0.
    daemon.waitDrained();
    daemon.stop();
    std::printf("strober-serve: drained; exiting\n");
    return 0;
}
