/**
 * @file
 * The `strober-serve` daemon binary: Strober as a long-running service.
 *
 *   strober-serve --socket /run/strober.sock --root /var/lib/strober \
 *       [--cache-dir C] [--runners N] [--max-queue N] [--workers N] \
 *       [--default-deadline DUR] [--worker-wall-cap DUR] \
 *       [--worker-rss-mb MB] [--worker-retries N] [--trim-keep N] \
 *       [--trim-max-age DUR] [--trim-max-bytes B] [--farm-bin PATH]
 *
 * Clients talk to it with `strober-farm submit/wait/stats/...` (or the
 * service::ServiceClient library). Estimate jobs run under per-job
 * wall-clock deadlines; replay workers are separate supervised
 * processes (strober-farm worker) with wall and RSS caps, SIGKILL
 * recovery and bounded backoff retries. SIGTERM drains gracefully:
 * admission stops, running jobs checkpoint their farm leases, the
 * process exits 0 — a later daemon (or a plain `strober-farm run`)
 * resumes the work bit-identically.
 *
 * Durations accept ms/s/m/h suffixes (bare numbers are seconds).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "core/energy_sim.h"
#include "core/job_control.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "farm/report.h"
#include "lint/diagnostics.h"
#include "service/daemon.h"
#include "service/supervisor.h"
#include "trace/stimulus.h"
#include "util/env.h"
#include "util/logging.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

service::ServiceDaemon *g_daemon = nullptr;

void
onDrainSignal(int)
{
    // Async-signal-safe by construction: one atomic store, one write().
    if (g_daemon != nullptr)
        g_daemon->requestDrain();
}

bool
knownCore(const std::string &name)
{
    return name == "rocket" || name == "boom1w" || name == "boom2w";
}

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    return cores::SocConfig::boom2w();
}

bool
knownWorkload(const std::string &name)
{
    for (const workloads::Workload &w : workloads::microbenchmarks()) {
        if (w.name == name)
            return true;
    }
    for (const workloads::Workload &w : workloads::caseStudies()) {
        if (w.name == name)
            return true;
    }
    return false;
}

/** Knobs of the production executor (fixed at daemon startup). */
struct ServeOptions
{
    std::string farmBin;       //!< strober-farm binary for workers
    unsigned defaultWorkers = 2;
    uint64_t workerWallCapMs = 10 * 60 * 1000;
    unsigned long workerRssMb = 0; //!< 0 = uncapped
    unsigned workerRetries = 2;
    uint64_t leaseDurationMs = 60 * 1000;
};

/** Directory of our own binary ("/proc/self/exe" parent). */
std::string
selfDir()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    std::string path(buf);
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

service::JobOutcome
failedOutcome(std::string detail)
{
    service::JobOutcome out;
    out.state = service::JobState::Failed;
    out.exitCode = 3;
    out.detail = std::move(detail);
    return out;
}

service::JobOutcome
canceledOutcome(std::string detail)
{
    service::JobOutcome out;
    out.state = service::JobState::Canceled;
    out.exitCode = 4;
    out.detail = std::move(detail);
    return out;
}

/**
 * The production executor: fast sim + farm plan + supervised worker
 * pool + collect, all scoped to the job's own run directory but
 * sharing the daemon-wide result cache.
 */
service::JobOutcome
runEstimateJob(const service::JobRequest &req, core::JobControl &control,
               const ServeOptions &opts, const std::string &cacheDir)
{
    const service::SubmitRequest &sub = req.submit;
    const bool fromTrace = !sub.stimulusPath.empty();
    if (!knownCore(sub.coreName))
        return failedOutcome("unknown core '" + sub.coreName +
                             "' (rocket | boom1w | boom2w)");
    if (!fromTrace && !knownWorkload(sub.workloadName))
        return failedOutcome("unknown workload '" + sub.workloadName + "'");

    rtl::Design soc = cores::buildSoc(coreByName(sub.coreName));
    workloads::Workload wl;
    trace::TraceWorkload twl;
    if (fromTrace) {
        // Fingerprint + header check only; the body is streamed from
        // disk by the driver below, never buffered.
        util::Result<trace::TraceWorkload> r =
            trace::loadTraceWorkload(sub.stimulusPath);
        if (!r.isOk())
            return failedOutcome("stimulus: " + r.status().toString());
        twl = r.value();
    } else {
        wl = workloads::byName(sub.workloadName);
    }

    core::EnergySimulator::Config simCfg;
    simCfg.sampleSize = sub.sampleSize;
    simCfg.replayLength = static_cast<unsigned>(sub.replayLength);
    simCfg.job = &control;
    simCfg.stimulusFingerprint = fromTrace ? twl.fingerprint : 0;

    // Phase 1: fast simulation + sampling (cheap, deterministic).
    core::EnergySimulator sim(soc, simCfg);
    std::unique_ptr<cores::SocDriver> socDriver;
    std::unique_ptr<trace::TraceDriver> traceDriver;
    core::HostDriver *driver = nullptr;
    uint64_t maxCycles = 0;
    if (fromTrace) {
        lint::Diagnostics diags;
        util::Result<std::unique_ptr<trace::TraceDriver>> r =
            twl.openDriver(soc, &diags);
        if (!r.isOk())
            return failedOutcome("stimulus: " + r.status().toString() +
                                 (diags.empty() ? "" : "\n" + diags.str()));
        traceDriver = std::move(r.value());
        driver = traceDriver.get();
        maxCycles = UINT64_MAX; // the trace's last timestep ends the run
    } else {
        socDriver.reset(new cores::SocDriver(soc, wl.program));
        driver = socDriver.get();
        maxCycles = wl.maxCycles;
    }
    core::RunStats run = sim.run(*driver, maxCycles);
    if (traceDriver && !traceDriver->status().isOk())
        return failedOutcome("stimulus: " +
                             traceDriver->status().toString());
    if (!driver->done())
        return failedOutcome("workload did not finish in its cycle budget");
    if (control.canceled())
        return canceledOutcome("drained during fast simulation");

    unsigned workers = sub.workers != 0
                           ? static_cast<unsigned>(sub.workers)
                           : opts.defaultWorkers;

    farm::FarmConfig fcfg;
    fcfg.dir = req.jobDir;
    fcfg.cacheDir = cacheDir;
    fcfg.shards = std::max(1u, workers);
    fcfg.sim = simCfg;
    fcfg.coreName = sub.coreName;
    fcfg.workloadName = fromTrace ? twl.name : wl.name;
    fcfg.leaseDurationMs = opts.leaseDurationMs;
    farm::FarmOrchestrator orch(soc, fcfg);

    uint64_t population = run.targetCycles / simCfg.replayLength;
    util::Status st = orch.plan(sim.sampler().snapshots(), population);
    if (!st.isOk())
        return failedOutcome("plan failed: " + st.toString());
    if (control.canceled())
        return canceledOutcome("drained after planning; work is queued");

    service::SupervisionStats sup;
    if (workers > 0) {
        uint64_t deadline =
            control.deadlineUnixMs.load(std::memory_order_relaxed);
        std::vector<service::WorkerSpec> specs(workers);
        for (unsigned i = 0; i < workers; ++i) {
            service::WorkerSpec &spec = specs[i];
            spec.argv = {opts.farmBin,
                         "worker",
                         "--dir",
                         req.jobDir,
                         "--cache-dir",
                         cacheDir,
                         "--slot",
                         std::to_string(i),
                         "--slots",
                         std::to_string(workers)};
            if (deadline != 0) {
                spec.argv.push_back("--deadline-unix-ms");
                spec.argv.push_back(std::to_string(deadline));
            }
            if (opts.workerRssMb != 0) {
                spec.env.push_back("STROBER_WORKER_RSS_MB=" +
                                   std::to_string(opts.workerRssMb));
            }
        }
        service::SupervisorConfig scfg;
        scfg.slots = workers;
        scfg.wallCapMs = opts.workerWallCapMs;
        scfg.rssCapBytes =
            static_cast<uint64_t>(opts.workerRssMb) * 1024 * 1024;
        scfg.maxRetries = opts.workerRetries;
        scfg.stopRequested = [&control] { return control.stopRequested(); };
        sup = service::superviseUntilDone(specs, scfg);
    }

    if (control.canceled()) {
        service::JobOutcome out =
            canceledOutcome("drained; leases are checkpointed");
        out.workerRetries = sup.retries;
        out.workerKills = sup.wallKills + sup.rssKills;
        return out;
    }

    util::Result<core::EnergyReport> rep = orch.collect();
    service::JobOutcome out;
    out.workerRetries = sup.retries;
    out.workerKills = sup.wallKills + sup.rssKills;
    if (!rep.isOk()) {
        if (rep.status().code() == util::ErrorCode::Canceled)
            return canceledOutcome(rep.status().toString());
        out.state = service::JobState::Failed;
        out.exitCode = 3;
        out.detail = "collect failed: " + rep.status().toString();
        return out;
    }

    out.reportText = farm::renderReportDeterministic(*rep);
    out.exitCode = farm::reportExitCode(*rep);
    out.detail = rep->statusMessage;
    out.cacheHits = rep->cacheHits;
    out.cacheMisses = rep->cacheMisses;
    if (control.deadlineExpired() && (rep->degraded || !rep->valid))
        out.state = service::JobState::TimedOut;
    else if (!rep->valid)
        out.state = service::JobState::Failed;
    else if (rep->degraded)
        out.state = service::JobState::Degraded;
    else
        out.state = service::JobState::Done;
    return out;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: strober-serve --socket S --root D [--cache-dir C]\n"
        "                     [--runners N] [--max-queue N] [--workers N]\n"
        "                     [--default-deadline DUR]\n"
        "                     [--worker-wall-cap DUR] [--worker-rss-mb MB]\n"
        "                     [--worker-retries N] [--lease-duration DUR]\n"
        "                     [--trim-keep N] [--trim-max-age DUR]\n"
        "                     [--trim-max-bytes B] [--farm-bin PATH]\n");
}

uint64_t
parseDurationArg(const char *flag, const std::string &text)
{
    std::optional<uint64_t> ms = util::parseDurationMs(text);
    if (!ms.has_value())
        fatal("%s: '%s' is not a duration (try 250ms, 30s, 5m, 1h)",
              flag, text.c_str());
    return *ms;
}

unsigned long
parseCountArg(const char *flag, const std::string &text)
{
    std::optional<unsigned long> n = util::parseULong(text);
    if (!n.has_value())
        fatal("%s: '%s' is not a non-negative integer", flag,
              text.c_str());
    return *n;
}

} // namespace

int
main(int argc, char **argv)
{
    service::DaemonConfig dcfg;
    ServeOptions opts;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("flag '%s' needs a value", arg.c_str());
            return args[++i];
        };
        if (arg == "--socket") {
            dcfg.socketPath = next();
        } else if (arg == "--root") {
            dcfg.rootDir = next();
        } else if (arg == "--cache-dir") {
            dcfg.cacheDir = next();
        } else if (arg == "--runners") {
            dcfg.runners =
                static_cast<unsigned>(parseCountArg("--runners", next()));
        } else if (arg == "--max-queue") {
            dcfg.maxQueue = parseCountArg("--max-queue", next());
        } else if (arg == "--default-deadline") {
            dcfg.defaultDeadlineMs =
                parseDurationArg("--default-deadline", next());
        } else if (arg == "--workers") {
            opts.defaultWorkers =
                static_cast<unsigned>(parseCountArg("--workers", next()));
        } else if (arg == "--worker-wall-cap") {
            opts.workerWallCapMs =
                parseDurationArg("--worker-wall-cap", next());
        } else if (arg == "--worker-rss-mb") {
            opts.workerRssMb = parseCountArg("--worker-rss-mb", next());
        } else if (arg == "--worker-retries") {
            opts.workerRetries = static_cast<unsigned>(
                parseCountArg("--worker-retries", next()));
        } else if (arg == "--lease-duration") {
            opts.leaseDurationMs =
                parseDurationArg("--lease-duration", next());
        } else if (arg == "--trim-keep") {
            dcfg.trim.keepCount = parseCountArg("--trim-keep", next());
        } else if (arg == "--trim-max-age") {
            dcfg.trim.maxAgeSeconds =
                parseDurationArg("--trim-max-age", next()) / 1000;
        } else if (arg == "--trim-max-bytes") {
            dcfg.trim.maxTotalBytes =
                parseCountArg("--trim-max-bytes", next());
        } else if (arg == "--farm-bin") {
            opts.farmBin = next();
        } else {
            usage();
            return 2;
        }
    }
    if (dcfg.socketPath.empty() || dcfg.rootDir.empty()) {
        usage();
        return 2;
    }
    if (opts.farmBin.empty())
        opts.farmBin = selfDir() + "/strober-farm";
    if (::access(opts.farmBin.c_str(), X_OK) != 0) {
        fatal("worker binary '%s' is not executable (use --farm-bin)",
              opts.farmBin.c_str());
    }

    std::string cacheDir = dcfg.effectiveCacheDir();
    dcfg.executor = [&opts, cacheDir](const service::JobRequest &req,
                                      core::JobControl &control) {
        return runEstimateJob(req, control, opts, cacheDir);
    };

    service::ServiceDaemon daemon(dcfg);
    util::Status st = daemon.start();
    if (!st.isOk())
        fatal("cannot start daemon: %s", st.toString().c_str());

    g_daemon = &daemon;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onDrainSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("strober-serve: listening on %s (root %s, cache %s, "
                "%u runner(s), queue bound %zu)\n",
                dcfg.socketPath.c_str(), dcfg.rootDir.c_str(),
                cacheDir.c_str(), std::max(1u, dcfg.runners),
                dcfg.maxQueue);
    std::fflush(stdout);

    // Serve until a drain is requested (SIGTERM/SIGINT or a Shutdown
    // frame), then finish/checkpoint admitted jobs and exit 0.
    daemon.waitDrained();
    daemon.stop();
    std::printf("strober-serve: drained; exiting\n");
    return 0;
}
