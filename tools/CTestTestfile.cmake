# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lint_cli_smoke "/root/repo/tools/strober-lint" "--fame")
set_tests_properties(lint_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint_cli_rules "/root/repo/tools/strober-lint" "--rules")
set_tests_properties(lint_cli_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
