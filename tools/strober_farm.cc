/**
 * @file
 * The `strober-farm` tool: a durable, multi-process replay farm over a
 * run directory (paper Section III-B: replays are embarrassingly
 * parallel, so throw a pool of gate-level simulator processes at them).
 *
 *   strober-farm run <core> <workload> --dir D [-j N] [--shards S]
 *       # fast sim + plan + N worker processes + collect + report.
 *       # Kill it at any instant and run it again: completed replays
 *       # are not redone and the final report is bit-identical.
 *   strober-farm worker --dir D --shard K       # one detached worker
 *   strober-farm status --dir D                 # work-queue progress
 *   strober-farm gc --cache-dir C --keep N      # trim the result cache
 *
 * Exit codes (same convention as `strober run`): 0 clean estimate,
 * 1 degraded-but-valid, 2 usage error, 3 invalid estimate / run failure.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/energy_sim.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "util/logging.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

/**
 * Deterministic text rendering of a report. Doubles are printed as %.13a
 * hex-floats, so two bit-identical reports produce byte-identical files
 * and `cmp` is a sufficient bit-identity check (the CI kill/resume smoke
 * test relies on this). Wall-clock times and cache hit/miss counts are
 * deliberately excluded: they legitimately differ between cold, warm
 * and resumed runs while the *estimate* must not.
 */
std::string
renderReportDeterministic(const core::EnergyReport &rep)
{
    std::string out;
    out += strfmt("population %llu\n", (unsigned long long)rep.population);
    out += strfmt("snapshots %zu dropped %zu mismatches %llu\n",
                  rep.snapshots, rep.droppedSnapshots,
                  (unsigned long long)rep.replayMismatches);
    out += strfmt("valid %d degraded %d\n", rep.valid ? 1 : 0,
                  rep.degraded ? 1 : 0);
    out += strfmt("status %s\n", rep.statusMessage.c_str());
    out += strfmt("mean %.13a halfwidth %.13a confidence %.13a\n",
                  rep.averagePower.mean, rep.averagePower.halfWidth,
                  rep.averagePower.confidence);
    out += strfmt("modeled-load-seconds %.13a\n", rep.modeledLoadSeconds);
    for (const core::GroupEstimate &g : rep.groups) {
        out += strfmt("group %s mean %.13a halfwidth %.13a\n",
                      g.group.c_str(), g.power.mean, g.power.halfWidth);
    }
    for (const core::SnapshotOutcome &oc : rep.outcomes) {
        out += strfmt("outcome %zu cycle %llu %s attempts %u retried %d "
                      "mismatches %llu\n",
                      oc.index, (unsigned long long)oc.cycle,
                      core::snapshotStatusName(oc.status), oc.attempts,
                      oc.retriedOnAlternateLoader ? 1 : 0,
                      (unsigned long long)oc.mismatches);
    }
    return out;
}

int
reportExitCode(const core::EnergyReport &rep)
{
    if (!rep.valid)
        return 3;
    return rep.degraded || rep.replayMismatches ? 1 : 0;
}

void
printReportSummary(const core::EnergyReport &rep,
                   const farm::ResultCache::Stats &cache)
{
    std::printf("average power: %.3f mW +/- %.3f (%zu snapshots, %zu "
                "dropped, %llu replay mismatches)\n",
                rep.averagePower.mean * 1e3,
                rep.averagePower.halfWidth * 1e3, rep.snapshots,
                rep.droppedSnapshots,
                (unsigned long long)rep.replayMismatches);
    std::printf("collect: %zu result(s) served by the cache, %zu "
                "replayed inline, %llu corrupt cache entr(ies) degraded "
                "to misses\n",
                rep.cacheHits, rep.cacheMisses,
                (unsigned long long)cache.corruptEntries);
    if (rep.degraded || !rep.valid) {
        std::printf("%s: %s\n", rep.valid ? "degraded" : "INVALID",
                    rep.statusMessage.c_str());
    }
}

struct FarmCliOptions
{
    std::string dir;
    std::string cacheDir;
    std::string reportPath; //!< empty = "<dir>/report.txt"
    unsigned jobs = 1;
    unsigned shards = 0; //!< 0 = same as jobs
    unsigned shard = 0;  //!< `worker` only
    bool haveShard = false;
    size_t keep = 0; //!< `gc` only
    core::EnergySimulator::Config sim;
};

/**
 * Worker body shared by `run` (forked children) and `worker` (detached
 * processes): drain every shard congruent to @p slot mod @p slots, then
 * the built-in work stealing covers stragglers.
 */
int
workerBody(const rtl::Design &soc, const FarmCliOptions &opts,
           unsigned slot, unsigned slots, unsigned totalShards)
{
    farm::FarmConfig fcfg;
    fcfg.dir = opts.dir;
    fcfg.cacheDir = opts.cacheDir;
    fcfg.shards = totalShards;
    fcfg.sim = opts.sim;
    farm::FarmOrchestrator orch(soc, fcfg);
    int rc = 0;
    for (unsigned k = slot; k < totalShards; k += slots) {
        util::Status st = orch.workShard(k);
        if (!st.isOk()) {
            std::fprintf(stderr, "worker: shard %u failed: %s\n", k,
                         st.toString().c_str());
            rc = 3;
        }
    }
    return rc;
}

int
cmdRun(const std::string &coreName, const std::string &wlName,
       FarmCliOptions opts)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    workloads::Workload wl = workloads::byName(wlName);
    unsigned shards = opts.shards ? opts.shards : std::max(1u, opts.jobs);

    // Phase 1: fast simulation with snapshot sampling (always rerun —
    // it is cheap and deterministic; the expensive gate-level replays
    // are what the farm caches).
    core::EnergySimulator sim(soc, opts.sim);
    cores::SocDriver driver(soc, wl.program);
    core::RunStats run = sim.run(driver, wl.maxCycles);
    if (!driver.done())
        fatal("workload did not finish");
    std::printf("%s on %s: %llu target cycles sampled into %zu "
                "snapshots\n",
                wl.name.c_str(), coreName.c_str(),
                (unsigned long long)run.targetCycles,
                sim.sampler().snapshots().size());

    farm::FarmConfig fcfg;
    fcfg.dir = opts.dir;
    fcfg.cacheDir = opts.cacheDir;
    fcfg.shards = shards;
    fcfg.sim = opts.sim;
    fcfg.coreName = coreName;
    fcfg.workloadName = wl.name;
    farm::FarmOrchestrator orch(soc, fcfg);

    uint64_t population = run.targetCycles / opts.sim.replayLength;
    util::Status st = orch.plan(sim.sampler().snapshots(), population);
    if (!st.isOk())
        fatal("plan failed: %s", st.toString().c_str());

    // Phase 3: the worker pool. Plain fork(): each child is a real
    // process with its own gate simulator, publishing through the
    // filesystem exactly like a detached `strober-farm worker` would.
    unsigned jobs = std::max(1u, opts.jobs);
    std::vector<pid_t> kids;
    for (unsigned w = 0; w < jobs; ++w) {
        pid_t pid = fork();
        if (pid < 0)
            fatal("fork failed");
        if (pid == 0)
            _exit(workerBody(soc, opts, w, jobs, shards));
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int wstatus = 0;
        waitpid(pid, &wstatus, 0);
        if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
            std::fprintf(stderr,
                         "worker %d exited abnormally; collect() will "
                         "finish its shard inline\n",
                         (int)pid);
        }
    }

    // Phase 4: collect. Stragglers (dead workers, lost cache entries)
    // are replayed inline, so a report always comes out.
    util::Result<core::EnergyReport> rep = orch.collect();
    if (!rep.isOk())
        fatal("collect failed: %s", rep.status().toString().c_str());
    printReportSummary(*rep, orch.cache().stats());

    std::string reportPath =
        opts.reportPath.empty() ? opts.dir + "/report.txt"
                                : opts.reportPath;
    std::ofstream out(reportPath, std::ios::trunc);
    out << renderReportDeterministic(*rep);
    out.close();
    if (!out)
        fatal("cannot write report '%s'", reportPath.c_str());
    std::printf("report written to %s\n", reportPath.c_str());
    return reportExitCode(*rep);
}

int
cmdWorker(const FarmCliOptions &opts)
{
    // Reconstruct the design from the manifest's recorded core name so
    // a detached worker only needs --dir and --shard.
    util::Result<farm::ShardManifest> head = farm::readManifestFile(
        opts.dir + "/" + farm::shardManifestName(0), false);
    if (!head.isOk())
        fatal("cannot read work queue in '%s': %s", opts.dir.c_str(),
              head.status().toString().c_str());
    if (head->coreName.empty())
        fatal("work queue records no core name; use the same binary's "
              "`run` to plan it");
    rtl::Design soc = cores::buildSoc(coreByName(head->coreName));

    FarmCliOptions worker = opts;
    // Replay knobs come from the manifest mirror inside workShard();
    // the local sim config only seeds the non-mirrored defaults.
    unsigned shards = head->shards;
    if (opts.haveShard) {
        if (opts.shard >= shards)
            fatal("--shard %u out of range (%u shards)", opts.shard,
                  shards);
        return workerBody(soc, worker, opts.shard, shards, shards);
    }
    return workerBody(soc, worker, 0, 1, shards);
}

int
cmdStatus(const FarmCliOptions &opts)
{
    util::Result<farm::ShardManifest> head = farm::readManifestFile(
        opts.dir + "/" + farm::shardManifestName(0), false);
    if (!head.isOk())
        fatal("cannot read work queue in '%s': %s", opts.dir.c_str(),
              head.status().toString().c_str());
    farm::FarmOrchestrator::Progress p;
    for (uint32_t k = 0; k < head->shards; ++k) {
        util::Result<farm::ShardManifest> m = farm::readManifestFile(
            opts.dir + "/" + farm::shardManifestName(k), false);
        if (!m.isOk()) {
            std::printf("shard %u: unreadable (%s)\n", k,
                        m.status().toString().c_str());
            continue;
        }
        std::printf("shard %u: %zu pending, %zu leased, %zu done, %zu "
                    "quarantined\n",
                    k, m->count(farm::EntryState::Pending),
                    m->count(farm::EntryState::Leased),
                    m->count(farm::EntryState::Done),
                    m->count(farm::EntryState::Quarantined));
        p.pending += m->count(farm::EntryState::Pending);
        p.leased += m->count(farm::EntryState::Leased);
        p.done += m->count(farm::EntryState::Done);
        p.quarantined += m->count(farm::EntryState::Quarantined);
        p.total += m->entries.size();
    }
    std::printf("%s / %s on %u shard(s): %llu/%llu done, %llu "
                "quarantined\n",
                head->coreName.c_str(), head->workloadName.c_str(),
                head->shards, (unsigned long long)p.done,
                (unsigned long long)p.total,
                (unsigned long long)p.quarantined);
    std::string cacheDir =
        opts.cacheDir.empty() ? opts.dir + "/cache" : opts.cacheDir;
    farm::ResultCache cache(cacheDir);
    std::printf("cache '%s': %zu entr(ies)\n", cacheDir.c_str(),
                cache.entryCount());
    return 0;
}

int
cmdGc(const FarmCliOptions &opts)
{
    farm::ResultCache cache(opts.cacheDir);
    size_t before = cache.entryCount();
    size_t removed = cache.trim(opts.keep);
    std::printf("cache '%s': %zu entr(ies), removed %zu, kept %zu\n",
                opts.cacheDir.c_str(), before, removed, before - removed);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: strober-farm run <core> <workload> --dir D [-j N]\n"
        "                    [--shards S] [--cache-dir C] [--report F]\n"
        "                    [--sample-size N] [--replay-length L]\n"
        "                    [--max-dropped-snapshots N]\n"
        "                    [--replay-timeout CYCLES]\n"
        "                    [--backend full|activity|compiled\n"
        "                               |compiled-parallel]\n"
        "                    [--sim-threads N]\n"
        "       strober-farm worker --dir D [--shard K]\n"
        "       strober-farm status --dir D [--cache-dir C]\n"
        "       strober-farm gc --cache-dir C --keep N\n");
}

bool
parseCommon(const std::vector<std::string> &args, FarmCliOptions &opts,
            std::vector<std::string> &positional)
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("flag '%s' needs a value", arg.c_str());
            return args[++i];
        };
        if (arg == "--dir") {
            opts.dir = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--report") {
            opts.reportPath = next();
        } else if (arg == "-j" || arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shards") {
            opts.shards = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shard") {
            opts.shard = static_cast<unsigned>(std::stoul(next()));
            opts.haveShard = true;
        } else if (arg == "--keep") {
            opts.keep = static_cast<size_t>(std::stoull(next()));
        } else if (arg == "--sample-size") {
            opts.sim.sampleSize = static_cast<size_t>(std::stoull(next()));
        } else if (arg == "--replay-length") {
            opts.sim.replayLength =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--max-dropped-snapshots") {
            opts.sim.maxDroppedSnapshots =
                static_cast<size_t>(std::stoull(next()));
        } else if (arg == "--replay-timeout") {
            opts.sim.replayTimeoutCycles = std::stoull(next());
        } else if (arg == "--backend") {
            const std::string &name = next();
            if (!sim::parseBackend(name, &opts.sim.backend)) {
                std::fprintf(stderr,
                             "unknown backend '%s' (full | activity | "
                             "compiled | compiled-parallel)\n",
                             name.c_str());
                return false;
            }
        } else if (arg == "--sim-threads") {
            sim::setSimThreads(static_cast<unsigned>(std::stoul(next())));
        } else if (arg.rfind("--", 0) == 0 || arg.rfind("-", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return false;
        } else {
            positional.push_back(arg);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    FarmCliOptions opts;
    std::vector<std::string> positional;
    if (!parseCommon(args, opts, positional)) {
        usage();
        return 2;
    }
    if (cmd == "run") {
        if (positional.size() != 2 || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdRun(positional[0], positional[1], opts);
    }
    if (cmd == "worker") {
        if (!positional.empty() || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdWorker(opts);
    }
    if (cmd == "status") {
        if (!positional.empty() || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdStatus(opts);
    }
    if (cmd == "gc") {
        if (!positional.empty() || opts.cacheDir.empty()) {
            usage();
            return 2;
        }
        return cmdGc(opts);
    }
    usage();
    return 2;
}
