/**
 * @file
 * The `strober-farm` tool: a durable, multi-process replay farm over a
 * run directory (paper Section III-B: replays are embarrassingly
 * parallel, so throw a pool of gate-level simulator processes at them).
 *
 *   strober-farm run <core> <workload> --dir D [-j N] [--shards S]
 *       # fast sim + plan + N worker processes + collect + report.
 *       # Kill it at any instant and run it again: completed replays
 *       # are not redone and the final report is bit-identical.
 *   strober-farm worker --dir D --shard K       # one detached worker
 *   strober-farm status --dir D                 # work-queue progress
 *   strober-farm gc --cache-dir C --keep N      # trim the result cache
 *       [--max-age DUR] [--max-bytes B]
 *
 * Client subcommands talk to a running `strober-serve` daemon:
 *
 *   strober-farm submit <core> <workload> --socket S [--deadline DUR]
 *       [--workers N] [--wait [--timeout DUR]]
 *   strober-farm wait --socket S --job ID [--timeout DUR] [--report F]
 *   strober-farm jobstat --socket S --job ID
 *   strober-farm stats --socket S
 *   strober-farm cancel --socket S --job ID
 *   strober-farm shutdown --socket S
 *
 * Exit codes (same convention as `strober run`): 0 clean estimate,
 * 1 degraded-but-valid, 2 usage error, 3 invalid estimate / run
 * failure / unreachable daemon, 4 refused (overloaded or draining) or
 * canceled, 5 wait timeout.
 *
 * A worker receiving SIGTERM drains: the in-flight lease is
 * checkpointed back to Pending and the process exits 0; a resumed run
 * produces the bit-identical report.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/energy_sim.h"
#include "core/job_control.h"
#include "cores/soc.h"
#include "cores/soc_driver.h"
#include "farm/farm.h"
#include "farm/report.h"
#include "farm/stream.h"
#include "service/client.h"
#include "util/env.h"
#include "util/logging.h"
#include "trace/stimulus.h"
#include "workloads/workloads.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

void
printReportSummary(const core::EnergyReport &rep,
                   const farm::ResultCache::Stats &cache)
{
    std::printf("average power: %.3f mW +/- %.3f (%zu snapshots, %zu "
                "dropped, %llu replay mismatches)\n",
                rep.averagePower.mean * 1e3,
                rep.averagePower.halfWidth * 1e3, rep.snapshots,
                rep.droppedSnapshots,
                (unsigned long long)rep.replayMismatches);
    std::printf("collect: %zu result(s) served by the cache, %zu "
                "replayed inline, %llu corrupt cache entr(ies) degraded "
                "to misses\n",
                rep.cacheHits, rep.cacheMisses,
                (unsigned long long)cache.corruptEntries);
    if (rep.degraded || !rep.valid) {
        std::printf("%s: %s\n", rep.valid ? "degraded" : "INVALID",
                    rep.statusMessage.c_str());
    }
}

struct FarmCliOptions
{
    std::string dir;
    std::string cacheDir;
    std::string reportPath; //!< empty = "<dir>/report.txt"
    unsigned jobs = 1;
    unsigned shards = 0; //!< 0 = same as jobs
    unsigned shard = 0;  //!< `worker` only
    bool haveShard = false;
    unsigned slot = 0;  //!< `worker` only: this worker's slot index
    unsigned slots = 0; //!< `worker` only: pool size (0 = not slotted)
    uint64_t deadlineUnixMs = 0; //!< `worker` only: absolute job deadline
    size_t keep = 0;             //!< `gc` only
    bool haveKeep = false;
    uint64_t gcMaxAgeSec = 0;    //!< `gc` only: 0 = no age limit
    uint64_t gcMaxBytes = 0;     //!< `gc` only: 0 = no size budget
    std::string socketPath;      //!< client subcommands
    uint64_t jobId = 0;
    bool haveJob = false;
    uint64_t timeoutMs = 0;      //!< client wait budget; 0 = forever
    uint64_t deadlineMs = 0;     //!< submit: per-job deadline
    unsigned serveWorkers = 0;   //!< submit: worker count (0 = daemon's)
    bool waitAfterSubmit = false;
    std::string stimulus; //!< VCD trace instead of a built-in workload
    bool stream = false;  //!< workers replay while the fast sim runs
    double ciBound = 0;   //!< adaptive stop bound (implies --stream)
    core::EnergySimulator::Config sim;
};

void
onWorkerSigterm(int)
{
    // Drain: the worker loop checkpoints the in-flight lease back to
    // Pending and exits 0. One atomic store — async-signal-safe.
    core::globalJobControl().cancel.store(true, std::memory_order_relaxed);
}

/**
 * Worker body shared by `run` (forked children) and `worker` (detached
 * processes): drain every shard congruent to @p slot mod @p slots, then
 * the built-in work stealing covers stragglers.
 */
int
workerBody(const rtl::Design &soc, const FarmCliOptions &opts,
           unsigned slot, unsigned slots, unsigned totalShards)
{
    // SIGTERM = drain (checkpoint the lease, exit 0); the supervisor in
    // strober-serve relies on this for graceful stop. SIGKILL needs no
    // handling — the farm is crash-only by design.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onWorkerSigterm;
    ::sigaction(SIGTERM, &sa, nullptr);

    // Belt-and-braces memory cap (the supervisor also polls our RSS).
    bool haveRss = false;
    unsigned long rssMb =
        util::envULong("STROBER_WORKER_RSS_MB", 0, &haveRss);
    if (haveRss && rssMb != 0)
        util::applyMemoryRlimitMb(rssMb);

    core::JobControl &job = core::globalJobControl();
    if (opts.deadlineUnixMs != 0) {
        job.deadlineUnixMs.store(opts.deadlineUnixMs,
                                 std::memory_order_relaxed);
    }

    farm::FarmConfig fcfg;
    fcfg.dir = opts.dir;
    fcfg.cacheDir = opts.cacheDir;
    fcfg.shards = totalShards;
    fcfg.sim = opts.sim;
    fcfg.sim.job = &job;
    farm::FarmOrchestrator orch(soc, fcfg);
    if (opts.stream) {
        // Overlap phase: replay feed entries into the cache while the
        // producer's fast sim is still running. An early-stop marker
        // (--ci-bound met) ends the job here; otherwise fall through to
        // the ordinary manifest phase, which finds the cache warm.
        util::Result<farm::StreamDrainOutcome> dr =
            orch.drainStream(slot, slots);
        if (!dr.isOk()) {
            std::fprintf(stderr, "worker: stream drain: %s\n",
                         dr.status().toString().c_str());
            // Not fatal: the plan phase replays whatever was missed.
        } else if (dr->earlyStop || dr->canceled) {
            return 0;
        }
        // The producer plans the manifests only after the fast sim
        // ends; wait for its marker so we never race a stale prior
        // run's queue.
        const uint64_t waitCapMs = 10 * 60 * 1000;
        uint64_t waitedMs = 0;
        while (!farm::planMarkerExists(opts.dir)) {
            if (job.canceled() || job.deadlineExpired())
                return 0;
            if (waitedMs >= waitCapMs) {
                std::fprintf(stderr,
                             "worker: no plan marker after %llu ms; "
                             "exiting (collect replays inline)\n",
                             (unsigned long long)waitedMs);
                return 0;
            }
            ::usleep(50 * 1000);
            waitedMs += 50;
        }
    }
    int rc = 0;
    for (unsigned k = slot; k < totalShards; k += slots) {
        if (job.canceled())
            break;
        util::Status st = orch.workShard(k);
        if (!st.isOk()) {
            std::fprintf(stderr, "worker: shard %u failed: %s\n", k,
                         st.toString().c_str());
            rc = 3;
        }
    }
    return rc;
}

int
cmdRun(const std::string &coreName, const std::string &wlName,
       FarmCliOptions opts)
{
    rtl::Design soc = cores::buildSoc(coreByName(coreName));
    const bool fromTrace = !opts.stimulus.empty();
    workloads::Workload wl;
    trace::TraceWorkload twl;
    core::EnergySimulator::Config simCfg = opts.sim;
    if (fromTrace) {
        util::Result<trace::TraceWorkload> r =
            trace::loadTraceWorkload(opts.stimulus);
        if (!r.isOk())
            fatal("stimulus: %s", r.status().toString().c_str());
        twl = r.value();
        simCfg.stimulusFingerprint = twl.fingerprint;
    } else {
        wl = workloads::byName(wlName);
    }
    unsigned shards = opts.shards ? opts.shards : std::max(1u, opts.jobs);
    if (opts.ciBound > 0)
        opts.stream = true; // the bound is evaluated over streamed results
    simCfg.ciBound = opts.ciBound;

    farm::FarmConfig fcfg;
    fcfg.dir = opts.dir;
    fcfg.cacheDir = opts.cacheDir;
    fcfg.shards = shards;
    fcfg.sim = simCfg;
    fcfg.coreName = coreName;
    fcfg.workloadName = fromTrace ? twl.name : wl.name;
    farm::FarmOrchestrator orch(soc, fcfg);

    // Streamed runs open the feed (building the ASIC flow up front) so
    // the forked workers replay captures while the fast sim still runs.
    std::unique_ptr<farm::StreamFeed> feed;
    core::EnergySimulator *probeSim = nullptr;
    bool ciStopped = false;
    if (opts.stream) {
        util::Result<std::unique_ptr<farm::StreamFeed>> f =
            orch.openStreamFeed();
        if (!f.isOk())
            fatal("stream feed: %s", f.status().toString().c_str());
        feed = std::move(f.value());
        if (opts.ciBound > 0) {
            // Throttled CI check: every 8th interval boundary, fold the
            // results workers published so far and stop once tight.
            simCfg.earlyStopProbe = [&opts, &simCfg, &orch, &feed,
                                     &probeSim, &ciStopped,
                                     calls = uint64_t(0)]() mutable {
                if (++calls % 8 != 0)
                    return false;
                uint64_t population = std::max<uint64_t>(
                    probeSim->sampler().intervalsSeen(), 1);
                ciStopped = feed->ciBoundMet(orch.cache(), opts.ciBound,
                                             simCfg.confidence, population,
                                             simCfg.sampleSize);
                return ciStopped;
            };
        }
    }

    // Phase 1: fast simulation with snapshot sampling (always rerun —
    // it is cheap and deterministic; the expensive gate-level replays
    // are what the farm caches).
    core::EnergySimulator sim(soc, simCfg);
    probeSim = &sim;
    if (feed)
        sim.sampler().setObserver(feed.get());

    // Streamed: the worker pool forks before the fast sim and drains
    // the feed concurrently (children inherit soc read-only; each opens
    // its own orchestrator over the shared run directory).
    unsigned jobs = std::max(1u, opts.jobs);
    std::vector<pid_t> kids;
    auto forkWorkers = [&] {
        for (unsigned w = 0; w < jobs; ++w) {
            pid_t pid = fork();
            if (pid < 0)
                fatal("fork failed");
            if (pid == 0)
                _exit(workerBody(soc, opts, w, jobs, shards));
            kids.push_back(pid);
        }
    };
    auto reapWorkers = [&] {
        for (pid_t pid : kids) {
            int wstatus = 0;
            waitpid(pid, &wstatus, 0);
            if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
                std::fprintf(stderr,
                             "worker %d exited abnormally; collect() "
                             "will finish its shard inline\n",
                             (int)pid);
            }
        }
        kids.clear();
    };
    if (opts.stream)
        forkWorkers();

    std::unique_ptr<cores::SocDriver> socDriver;
    std::unique_ptr<trace::TraceDriver> traceDriver;
    core::HostDriver *driver = nullptr;
    uint64_t maxCycles = 0;
    if (fromTrace) {
        util::Result<std::unique_ptr<trace::TraceDriver>> r =
            twl.openDriver(soc);
        if (!r.isOk())
            fatal("stimulus: %s", r.status().toString().c_str());
        traceDriver = std::move(r.value());
        driver = traceDriver.get();
        maxCycles = UINT64_MAX; // the trace's last timestep ends the run
    } else {
        socDriver.reset(new cores::SocDriver(soc, wl.program));
        driver = socDriver.get();
        maxCycles = wl.maxCycles;
    }
    core::RunStats run = sim.run(*driver, maxCycles);
    if (feed) {
        // Publish a capture completed exactly at the final cycle, then
        // seal the feed — the done marker is what releases draining
        // workers, so write it before any failure exit below.
        sim.sampler().flushPending();
        sim.sampler().setObserver(nullptr);
        util::Status fst = feed->finish(ciStopped);
        if (!fst.isOk()) {
            std::fprintf(stderr, "stream done marker: %s\n",
                         fst.toString().c_str());
        }
    }
    if (traceDriver && !traceDriver->status().isOk())
        fatal("stimulus: %s", traceDriver->status().toString().c_str());
    if (!driver->done() && !ciStopped)
        fatal("workload did not finish");
    std::printf("%s on %s: %llu target cycles sampled into %zu "
                "snapshots%s\n",
                fromTrace ? twl.name.c_str() : wl.name.c_str(),
                coreName.c_str(), (unsigned long long)run.targetCycles,
                sim.sampler().snapshots().size(),
                ciStopped ? " (stopped early: --ci-bound met)" : "");
    if (feed) {
        std::printf("stream: %llu capture(s) published, %llu "
                    "superseded by reservoir replacement\n",
                    (unsigned long long)feed->published(),
                    (unsigned long long)feed->superseded());
    }

    uint64_t population = run.targetCycles / opts.sim.replayLength;
    util::Result<core::EnergyReport> rep =
        util::Status(util::ErrorCode::InvalidArgument, "unreachable");
    if (ciStopped) {
        // Early stop: workers abandon the feed on the "early" marker;
        // aggregate the completed subset — no plan/collect phase.
        reapWorkers();
        rep = orch.collectStreamEarly(*feed, population);
        if (!rep.isOk())
            fatal("collect failed: %s", rep.status().toString().c_str());
    } else {
        util::Status st =
            orch.plan(sim.sampler().snapshots(), population);
        if (!st.isOk())
            fatal("plan failed: %s", st.toString().c_str());

        // Phase 3: the worker pool. Plain fork(): each child is a real
        // process with its own gate simulator, publishing through the
        // filesystem exactly like a detached `strober-farm worker`
        // would. Streamed workers are already running — release them
        // into the manifest phase with the plan marker.
        if (opts.stream) {
            util::Status pm = farm::writePlanMarker(opts.dir);
            if (!pm.isOk()) {
                std::fprintf(stderr, "plan marker: %s\n",
                             pm.toString().c_str());
            }
        } else {
            forkWorkers();
        }
        reapWorkers();

        // Phase 4: collect. Stragglers (dead workers, lost cache
        // entries) are replayed inline, so a report always comes out.
        rep = orch.collect();
        if (!rep.isOk())
            fatal("collect failed: %s", rep.status().toString().c_str());
    }
    printReportSummary(*rep, orch.cache().stats());

    std::string reportPath =
        opts.reportPath.empty() ? opts.dir + "/report.txt"
                                : opts.reportPath;
    std::ofstream out(reportPath, std::ios::trunc);
    out << farm::renderReportDeterministic(*rep);
    out.close();
    if (!out)
        fatal("cannot write report '%s'", reportPath.c_str());
    std::printf("report written to %s\n", reportPath.c_str());
    return farm::reportExitCode(*rep);
}

int
cmdWorker(const FarmCliOptions &opts)
{
    // Reconstruct the design from the manifest's recorded core name so
    // a detached worker only needs --dir and --shard. Stream workers
    // start before any shard manifest exists — they read the feed's
    // compatibility meta file (same format, header only) instead.
    std::string headPath =
        opts.stream ? farm::streamMetaPath(opts.dir)
                    : opts.dir + "/" + farm::shardManifestName(0);
    util::Result<farm::ShardManifest> head =
        farm::readManifestFile(headPath, false);
    for (unsigned waited = 0; opts.stream && !head.isOk() && waited < 600;
         ++waited) {
        // The producer may still be opening the feed; give it a minute.
        ::usleep(100 * 1000);
        head = farm::readManifestFile(headPath, false);
    }
    if (!head.isOk())
        fatal("cannot read work queue in '%s': %s", opts.dir.c_str(),
              head.status().toString().c_str());
    if (head->coreName.empty())
        fatal("work queue records no core name; use the same binary's "
              "`run` to plan it");
    rtl::Design soc = cores::buildSoc(coreByName(head->coreName));

    FarmCliOptions worker = opts;
    // Replay knobs come from the manifest mirror inside workShard();
    // the local sim config only seeds the non-mirrored defaults.
    unsigned shards = head->shards;
    if (opts.haveShard) {
        if (opts.shard >= shards)
            fatal("--shard %u out of range (%u shards)", opts.shard,
                  shards);
        return workerBody(soc, worker, opts.shard, shards, shards);
    }
    if (opts.slots != 0) {
        // Slotted pool member (strober-serve's supervisor spawns these):
        // drain every shard congruent to slot mod slots, steal the rest.
        if (opts.slot >= opts.slots)
            fatal("--slot %u out of range (%u slots)", opts.slot,
                  opts.slots);
        return workerBody(soc, worker, opts.slot, opts.slots, shards);
    }
    return workerBody(soc, worker, 0, 1, shards);
}

int
cmdStatus(const FarmCliOptions &opts)
{
    util::Result<farm::ShardManifest> head = farm::readManifestFile(
        opts.dir + "/" + farm::shardManifestName(0), false);
    if (!head.isOk())
        fatal("cannot read work queue in '%s': %s", opts.dir.c_str(),
              head.status().toString().c_str());
    farm::FarmOrchestrator::Progress p;
    for (uint32_t k = 0; k < head->shards; ++k) {
        util::Result<farm::ShardManifest> m = farm::readManifestFile(
            opts.dir + "/" + farm::shardManifestName(k), false);
        if (!m.isOk()) {
            std::printf("shard %u: unreadable (%s)\n", k,
                        m.status().toString().c_str());
            continue;
        }
        std::printf("shard %u: %zu pending, %zu leased, %zu done, %zu "
                    "quarantined\n",
                    k, m->count(farm::EntryState::Pending),
                    m->count(farm::EntryState::Leased),
                    m->count(farm::EntryState::Done),
                    m->count(farm::EntryState::Quarantined));
        p.pending += m->count(farm::EntryState::Pending);
        p.leased += m->count(farm::EntryState::Leased);
        p.done += m->count(farm::EntryState::Done);
        p.quarantined += m->count(farm::EntryState::Quarantined);
        p.total += m->entries.size();
    }
    std::printf("%s / %s on %u shard(s): %llu/%llu done, %llu "
                "quarantined\n",
                head->coreName.c_str(), head->workloadName.c_str(),
                head->shards, (unsigned long long)p.done,
                (unsigned long long)p.total,
                (unsigned long long)p.quarantined);
    std::string cacheDir =
        opts.cacheDir.empty() ? opts.dir + "/cache" : opts.cacheDir;
    farm::ResultCache cache(cacheDir);
    std::printf("cache '%s': %zu entr(ies)\n", cacheDir.c_str(),
                cache.entryCount());
    return 0;
}

int
cmdGc(const FarmCliOptions &opts)
{
    farm::ResultCache cache(opts.cacheDir);
    farm::ResultCache::TrimPolicy policy;
    if (opts.haveKeep)
        policy.keepCount = opts.keep;
    policy.maxAgeSeconds = opts.gcMaxAgeSec;
    policy.maxTotalBytes = opts.gcMaxBytes;
    farm::ResultCache::TrimResult res = cache.trim(policy);
    std::printf("cache '%s': %zu entr(ies) examined, evictions %zu "
                "(%llu bytes), kept %zu (%llu bytes)\n",
                opts.cacheDir.c_str(), res.examined, res.evicted,
                (unsigned long long)res.bytesEvicted,
                res.examined - res.evicted,
                (unsigned long long)res.bytesKept);
    return 0;
}

// --- client subcommands (talk to a running strober-serve daemon) ----

/** Map a final JobStatusReply onto this tool's exit-code convention. */
int
finishFromReply(const service::JobStatusReply &rep,
                const FarmCliOptions &opts)
{
    std::printf("job %llu: %s", (unsigned long long)rep.jobId,
                service::jobStateName(rep.state));
    if (!rep.detail.empty())
        std::printf(" (%s)", rep.detail.c_str());
    std::printf("\n");
    if (!rep.reportText.empty()) {
        if (!opts.reportPath.empty()) {
            std::ofstream out(opts.reportPath, std::ios::trunc);
            out << rep.reportText;
            out.close();
            if (!out)
                fatal("cannot write report '%s'",
                      opts.reportPath.c_str());
            std::printf("report written to %s\n",
                        opts.reportPath.c_str());
        } else {
            std::fputs(rep.reportText.c_str(), stdout);
        }
    }
    return rep.exitCode >= 0 ? static_cast<int>(rep.exitCode) : 3;
}

int
cmdWait(const FarmCliOptions &opts)
{
    service::ServiceClient client(opts.socketPath);
    util::Result<service::JobStatusReply> rep =
        client.wait(opts.jobId, opts.timeoutMs);
    if (!rep.isOk()) {
        std::fprintf(stderr, "wait: %s\n",
                     rep.status().toString().c_str());
        return rep.status().code() == util::ErrorCode::Timeout ? 5 : 3;
    }
    return finishFromReply(*rep, opts);
}

int
cmdSubmit(const std::string &coreName, const std::string &wlName,
          const FarmCliOptions &opts)
{
    service::SubmitRequest req;
    req.coreName = coreName;
    req.workloadName = wlName;
    req.stimulusPath = opts.stimulus;
    req.sampleSize = opts.sim.sampleSize;
    req.replayLength = opts.sim.replayLength;
    req.deadlineMs = opts.deadlineMs;
    req.workers = opts.serveWorkers;
    req.ciBound = opts.ciBound;
    req.stream = opts.stream;
    service::ServiceClient client(opts.socketPath);
    util::Result<service::SubmitResult> res = client.submit(req);
    if (!res.isOk()) {
        std::fprintf(stderr, "submit: %s\n",
                     res.status().toString().c_str());
        return 3;
    }
    if (!res->accepted) {
        std::fprintf(stderr, "submit refused: %s\n",
                     res->refusal.c_str());
        return 4;
    }
    std::printf("job %llu accepted\n", (unsigned long long)res->jobId);
    if (!opts.waitAfterSubmit)
        return 0;
    FarmCliOptions waitOpts = opts;
    waitOpts.jobId = res->jobId;
    return cmdWait(waitOpts);
}

int
cmdJobstat(const FarmCliOptions &opts)
{
    service::ServiceClient client(opts.socketPath);
    util::Result<service::JobStatusReply> rep = client.status(opts.jobId);
    if (!rep.isOk()) {
        std::fprintf(stderr, "jobstat: %s\n",
                     rep.status().toString().c_str());
        return 3;
    }
    std::printf("job %llu: %s exit %lld%s%s\n",
                (unsigned long long)rep->jobId,
                service::jobStateName(rep->state),
                (long long)rep->exitCode,
                rep->detail.empty() ? "" : " ",
                rep->detail.c_str());
    return 0;
}

int
cmdStats(const FarmCliOptions &opts)
{
    service::ServiceClient client(opts.socketPath);
    util::Result<service::StatsVector> stats = client.stats();
    if (!stats.isOk()) {
        std::fprintf(stderr, "stats: %s\n",
                     stats.status().toString().c_str());
        return 3;
    }
    for (const auto &kv : *stats) {
        std::printf("%s %llu\n", kv.first.c_str(),
                    (unsigned long long)kv.second);
    }
    return 0;
}

int
cmdCancel(const FarmCliOptions &opts)
{
    service::ServiceClient client(opts.socketPath);
    util::Status st = client.cancel(opts.jobId);
    if (!st.isOk()) {
        std::fprintf(stderr, "cancel: %s\n", st.toString().c_str());
        return 3;
    }
    std::printf("job %llu cancel requested\n",
                (unsigned long long)opts.jobId);
    return 0;
}

int
cmdShutdown(const FarmCliOptions &opts)
{
    service::ServiceClient client(opts.socketPath);
    util::Status st = client.shutdownDaemon();
    if (!st.isOk()) {
        std::fprintf(stderr, "shutdown: %s\n", st.toString().c_str());
        return 3;
    }
    std::printf("daemon drain requested\n");
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: strober-farm run <core> <workload> --dir D [-j N]\n"
        "       strober-farm run <core> --stimulus F.vcd --dir D ...\n"
        "                    [--shards S] [--cache-dir C] [--report F]\n"
        "                    [--sample-size N] [--replay-length L]\n"
        "                    [--max-dropped-snapshots N]\n"
        "                    [--replay-timeout CYCLES]\n"
        "                    [--backend full|activity|compiled\n"
        "                               |compiled-parallel]\n"
        "                    [--sim-threads N]\n"
        "                    [--stream] [--ci-bound X]\n"
        "       strober-farm worker --dir D [--shard K] [--stream]\n"
        "                    [--slot I --slots N] [--deadline-unix-ms T]\n"
        "       strober-farm status --dir D [--cache-dir C]\n"
        "       strober-farm gc --cache-dir C [--keep N] [--max-age DUR]\n"
        "                    [--max-bytes B]\n"
        "       strober-farm submit <core> <workload> --socket S\n"
        "       strober-farm submit <core> --stimulus F.vcd --socket S\n"
        "                    [--deadline DUR] [--workers N]\n"
        "                    [--sample-size N] [--replay-length L]\n"
        "                    [--stream] [--ci-bound X]\n"
        "                    [--wait [--timeout DUR]] [--report F]\n"
        "       strober-farm wait --socket S --job ID [--timeout DUR]\n"
        "                    [--report F]\n"
        "       strober-farm jobstat --socket S --job ID\n"
        "       strober-farm stats --socket S\n"
        "       strober-farm cancel --socket S --job ID\n"
        "       strober-farm shutdown --socket S\n");
}

uint64_t
durationArg(const char *flag, const std::string &text)
{
    std::optional<uint64_t> ms = util::parseDurationMs(text);
    if (!ms.has_value())
        fatal("%s: '%s' is not a duration (try 250ms, 30s, 5m, 1h)",
              flag, text.c_str());
    return *ms;
}

bool
parseCommon(const std::vector<std::string> &args, FarmCliOptions &opts,
            std::vector<std::string> &positional)
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                fatal("flag '%s' needs a value", arg.c_str());
            return args[++i];
        };
        if (arg == "--dir") {
            opts.dir = next();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next();
        } else if (arg == "--report") {
            opts.reportPath = next();
        } else if (arg == "--stimulus") {
            opts.stimulus = next();
        } else if (arg == "-j" || arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shards") {
            opts.shards = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--shard") {
            opts.shard = static_cast<unsigned>(std::stoul(next()));
            opts.haveShard = true;
        } else if (arg == "--slot") {
            opts.slot = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--slots") {
            opts.slots = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--deadline-unix-ms") {
            opts.deadlineUnixMs = std::stoull(next());
        } else if (arg == "--keep") {
            opts.keep = static_cast<size_t>(std::stoull(next()));
            opts.haveKeep = true;
        } else if (arg == "--max-age") {
            opts.gcMaxAgeSec = durationArg("--max-age", next()) / 1000;
        } else if (arg == "--max-bytes") {
            opts.gcMaxBytes = std::stoull(next());
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--job") {
            opts.jobId = std::stoull(next());
            opts.haveJob = true;
        } else if (arg == "--timeout") {
            opts.timeoutMs = durationArg("--timeout", next());
        } else if (arg == "--deadline") {
            opts.deadlineMs = durationArg("--deadline", next());
        } else if (arg == "--workers") {
            opts.serveWorkers = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--wait") {
            opts.waitAfterSubmit = true;
        } else if (arg == "--stream") {
            opts.stream = true;
        } else if (arg == "--ci-bound") {
            opts.ciBound = std::stod(next());
            if (!(opts.ciBound > 0)) {
                std::fprintf(stderr,
                             "--ci-bound must be a positive relative "
                             "error (e.g. 0.05)\n");
                return false;
            }
        } else if (arg == "--sample-size") {
            opts.sim.sampleSize = static_cast<size_t>(std::stoull(next()));
        } else if (arg == "--replay-length") {
            opts.sim.replayLength =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--max-dropped-snapshots") {
            opts.sim.maxDroppedSnapshots =
                static_cast<size_t>(std::stoull(next()));
        } else if (arg == "--replay-timeout") {
            opts.sim.replayTimeoutCycles = std::stoull(next());
        } else if (arg == "--backend") {
            const std::string &name = next();
            if (!sim::parseBackend(name, &opts.sim.backend)) {
                std::fprintf(stderr,
                             "unknown backend '%s' (full | activity | "
                             "compiled | compiled-parallel)\n",
                             name.c_str());
                return false;
            }
        } else if (arg == "--sim-threads") {
            sim::setSimThreads(static_cast<unsigned>(std::stoul(next())));
        } else if (arg.rfind("--", 0) == 0 || arg.rfind("-", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return false;
        } else {
            positional.push_back(arg);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    FarmCliOptions opts;
    std::vector<std::string> positional;
    if (!parseCommon(args, opts, positional)) {
        usage();
        return 2;
    }
    if (cmd == "run") {
        size_t expected = opts.stimulus.empty() ? 2 : 1;
        if (positional.size() != expected || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdRun(positional[0],
                      expected == 2 ? positional[1] : std::string(),
                      opts);
    }
    if (cmd == "worker") {
        if (!positional.empty() || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdWorker(opts);
    }
    if (cmd == "status") {
        if (!positional.empty() || opts.dir.empty()) {
            usage();
            return 2;
        }
        return cmdStatus(opts);
    }
    if (cmd == "gc") {
        bool haveLimit =
            opts.haveKeep || opts.gcMaxAgeSec != 0 || opts.gcMaxBytes != 0;
        if (!positional.empty() || opts.cacheDir.empty() || !haveLimit) {
            usage();
            return 2;
        }
        return cmdGc(opts);
    }
    if (cmd == "submit") {
        size_t expected = opts.stimulus.empty() ? 2 : 1;
        if (positional.size() != expected || opts.socketPath.empty()) {
            usage();
            return 2;
        }
        return cmdSubmit(positional[0],
                         expected == 2 ? positional[1] : std::string(),
                         opts);
    }
    if (cmd == "wait") {
        if (!positional.empty() || opts.socketPath.empty() ||
            !opts.haveJob) {
            usage();
            return 2;
        }
        return cmdWait(opts);
    }
    if (cmd == "jobstat") {
        if (!positional.empty() || opts.socketPath.empty() ||
            !opts.haveJob) {
            usage();
            return 2;
        }
        return cmdJobstat(opts);
    }
    if (cmd == "stats") {
        if (!positional.empty() || opts.socketPath.empty()) {
            usage();
            return 2;
        }
        return cmdStats(opts);
    }
    if (cmd == "cancel") {
        if (!positional.empty() || opts.socketPath.empty() ||
            !opts.haveJob) {
            usage();
            return 2;
        }
        return cmdCancel(opts);
    }
    if (cmd == "shutdown") {
        if (!positional.empty() || opts.socketPath.empty()) {
            usage();
            return 2;
        }
        return cmdShutdown(opts);
    }
    usage();
    return 2;
}
