# Empty dependencies file for strober_farm_cli.
# This may be replaced when dependencies are built.
