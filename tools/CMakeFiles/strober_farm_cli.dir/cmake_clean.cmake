file(REMOVE_RECURSE
  "CMakeFiles/strober_farm_cli.dir/strober_farm.cc.o"
  "CMakeFiles/strober_farm_cli.dir/strober_farm.cc.o.d"
  "strober-farm"
  "strober-farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_farm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
