file(REMOVE_RECURSE
  "CMakeFiles/strober_lint_cli.dir/strober_lint.cc.o"
  "CMakeFiles/strober_lint_cli.dir/strober_lint.cc.o.d"
  "strober-lint"
  "strober-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_lint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
