# Empty dependencies file for strober_lint_cli.
# This may be replaced when dependencies are built.
