file(REMOVE_RECURSE
  "CMakeFiles/strober_cli.dir/strober_cli.cc.o"
  "CMakeFiles/strober_cli.dir/strober_cli.cc.o.d"
  "strober"
  "strober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
