# Empty dependencies file for strober_cli.
# This may be replaced when dependencies are built.
