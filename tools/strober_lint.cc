/**
 * @file
 * The `strober-lint` command-line tool: run the structural lint rules
 * (src/lint) over the bundled cores and, with --fame, the cross-layer
 * verification passes over their FAME1-transformed forms.
 *
 *   strober-lint                       # lint rocket, boom1w and boom2w
 *   strober-lint rocket boom2w        # lint a subset
 *   strober-lint --fame rocket        # + FAME1 gating / scan coverage
 *   strober-lint --werror             # exit 1 on warnings too
 *   strober-lint --rules              # list the registered rules
 *   strober-lint --json out.json      # machine-readable findings
 *   strober-lint --disable a,b        # skip the listed rule ids
 *
 * Exit status: 0 when every linted design is clean of errors (and of
 * warnings under --werror), 1 otherwise.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fame/fame1.h"
#include "fame/scan_chain.h"
#include "lint/lint.h"
#include "cores/soc.h"
#include "util/logging.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

int
listRules()
{
    std::printf("%-20s %-8s %s\n", "rule", "severity", "description");
    for (const auto &pass : lint::Registry::global().passes()) {
        std::printf("%-20s %-8s %s\n", pass->rule(),
                    lint::severityName(pass->severity()),
                    pass->description());
    }
    std::printf("%-20s %-8s %s\n", "fame-gating", "error",
                "post-FAME1: every state enable dominated by host_en "
                "(--fame)");
    std::printf("%-20s %-8s %s\n", "scan-coverage", "error",
                "post-FAME1: every state bit in the scan chains exactly "
                "once (--fame)");
    return 0;
}

/** Print @p diags; @return the finding count that affects exit status. */
size_t
report(const char *subject, const lint::Diagnostics &diags, bool werror)
{
    for (const lint::Diagnostic &d : diags.all())
        std::printf("%s: %s\n", subject, d.str().c_str());
    return diags.errorCount() + (werror ? diags.warningCount() : 0);
}

/** Escape @p s for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Findings accumulated across designs for --json. */
struct JsonFinding
{
    std::string design;
    lint::Diagnostic diag;
};

void
writeJson(const std::string &path, const std::vector<JsonFinding> &all)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    std::fprintf(f, "{\n  \"findings\": [\n");
    for (size_t i = 0; i < all.size(); ++i) {
        const JsonFinding &jf = all[i];
        std::fprintf(
            f,
            "    {\"design\": \"%s\", \"rule\": \"%s\", "
            "\"severity\": \"%s\", \"node\": %lld, \"path\": \"%s\", "
            "\"message\": \"%s\"}%s\n",
            jsonEscape(jf.design).c_str(),
            jsonEscape(jf.diag.rule).c_str(),
            lint::severityName(jf.diag.severity),
            jf.diag.node == rtl::kNoNode
                ? -1ll
                : static_cast<long long>(jf.diag.node),
            jsonEscape(jf.diag.path).c_str(),
            jsonEscape(jf.diag.message).c_str(),
            i + 1 < all.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** Split a comma-separated rule list ("a,b,c"). */
std::vector<std::string>
splitRules(const std::string &arg)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= arg.size()) {
        size_t comma = arg.find(',', start);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > start)
            out.push_back(arg.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fame = false;
    bool werror = false;
    std::string jsonPath;
    lint::Options options;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--fame")) {
            fame = true;
        } else if (!std::strcmp(argv[i], "--werror")) {
            werror = true;
        } else if (!std::strcmp(argv[i], "--rules")) {
            return listRules();
        } else if (!std::strcmp(argv[i], "--json")) {
            if (++i >= argc)
                fatal("--json needs a path argument");
            jsonPath = argv[i];
        } else if (!std::strcmp(argv[i], "--disable")) {
            if (++i >= argc)
                fatal("--disable needs a comma-separated rule list");
            for (std::string &rule : splitRules(argv[i])) {
                if (!lint::Registry::global().find(rule))
                    fatal("--disable: unknown rule '%s' (try --rules)",
                          rule.c_str());
                options.disabled.push_back(std::move(rule));
            }
        } else if (!std::strcmp(argv[i], "--help")) {
            std::printf("usage: strober-lint [--fame] [--werror] "
                        "[--rules] [--json <path>] "
                        "[--disable <rule,...>] [core...]\n");
            return 0;
        } else if (argv[i][0] == '-') {
            fatal("unknown option '%s' (try --help)", argv[i]);
        } else {
            names.push_back(argv[i]);
        }
    }
    if (names.empty())
        names = {"rocket", "boom1w", "boom2w"};

    size_t failures = 0;
    std::vector<JsonFinding> jsonFindings;
    auto collect = [&](const std::string &design,
                       const lint::Diagnostics &diags) {
        if (jsonPath.empty())
            return;
        for (const lint::Diagnostic &d : diags.all())
            jsonFindings.push_back({design, d});
    };
    for (const std::string &name : names) {
        rtl::Design design = cores::buildSoc(coreByName(name));
        lint::Diagnostics diags = lint::run(design, options);
        failures += report(name.c_str(), diags, werror);
        collect(name, diags);
        std::printf("%s: %zu error(s), %zu warning(s) over %zu nodes\n",
                    name.c_str(), diags.errorCount(),
                    diags.warningCount(), design.numNodes());

        if (fame) {
            fame::Fame1Design f1 = fame::fame1Transform(design);
            std::string subject = name + "+fame1";
            lint::Diagnostics gating =
                lint::verifyFame1Gating(f1.design, f1.hostEnable);
            gating.merge(fame::verifyScanCoverage(f1.design));
            failures += report(subject.c_str(), gating, werror);
            collect(subject, gating);
            std::printf("%s: gating + scan coverage %s\n", subject.c_str(),
                        gating.hasErrors() ? "FAILED" : "verified");
        }
    }
    if (!jsonPath.empty())
        writeJson(jsonPath, jsonFindings);
    return failures ? 1 : 0;
}
