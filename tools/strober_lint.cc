/**
 * @file
 * The `strober-lint` command-line tool: run the structural lint rules
 * (src/lint) over the bundled cores and, with --fame, the cross-layer
 * verification passes over their FAME1-transformed forms.
 *
 *   strober-lint                       # lint rocket, boom1w and boom2w
 *   strober-lint rocket boom2w        # lint a subset
 *   strober-lint --fame rocket        # + FAME1 gating / scan coverage
 *   strober-lint --werror             # exit 1 on warnings too
 *   strober-lint --rules              # list the registered rules
 *
 * Exit status: 0 when every linted design is clean of errors (and of
 * warnings under --werror), 1 otherwise.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fame/fame1.h"
#include "fame/scan_chain.h"
#include "lint/lint.h"
#include "cores/soc.h"
#include "util/logging.h"

using namespace strober;

namespace {

cores::SocConfig
coreByName(const std::string &name)
{
    if (name == "rocket")
        return cores::SocConfig::rocket();
    if (name == "boom1w")
        return cores::SocConfig::boom1w();
    if (name == "boom2w")
        return cores::SocConfig::boom2w();
    fatal("unknown core '%s' (rocket | boom1w | boom2w)", name.c_str());
}

int
listRules()
{
    std::printf("%-20s %-8s %s\n", "rule", "severity", "description");
    for (const auto &pass : lint::Registry::global().passes()) {
        std::printf("%-20s %-8s %s\n", pass->rule(),
                    lint::severityName(pass->severity()),
                    pass->description());
    }
    std::printf("%-20s %-8s %s\n", "fame-gating", "error",
                "post-FAME1: every state enable dominated by host_en "
                "(--fame)");
    std::printf("%-20s %-8s %s\n", "scan-coverage", "error",
                "post-FAME1: every state bit in the scan chains exactly "
                "once (--fame)");
    return 0;
}

/** Print @p diags; @return the finding count that affects exit status. */
size_t
report(const char *subject, const lint::Diagnostics &diags, bool werror)
{
    for (const lint::Diagnostic &d : diags.all())
        std::printf("%s: %s\n", subject, d.str().c_str());
    return diags.errorCount() + (werror ? diags.warningCount() : 0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool fame = false;
    bool werror = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--fame")) {
            fame = true;
        } else if (!std::strcmp(argv[i], "--werror")) {
            werror = true;
        } else if (!std::strcmp(argv[i], "--rules")) {
            return listRules();
        } else if (!std::strcmp(argv[i], "--help")) {
            std::printf("usage: strober-lint [--fame] [--werror] "
                        "[--rules] [core...]\n");
            return 0;
        } else if (argv[i][0] == '-') {
            fatal("unknown option '%s' (try --help)", argv[i]);
        } else {
            names.push_back(argv[i]);
        }
    }
    if (names.empty())
        names = {"rocket", "boom1w", "boom2w"};

    size_t failures = 0;
    for (const std::string &name : names) {
        rtl::Design design = cores::buildSoc(coreByName(name));
        lint::Diagnostics diags = lint::run(design);
        failures += report(name.c_str(), diags, werror);
        std::printf("%s: %zu error(s), %zu warning(s) over %zu nodes\n",
                    name.c_str(), diags.errorCount(),
                    diags.warningCount(), design.numNodes());

        if (fame) {
            fame::Fame1Design f1 = fame::fame1Transform(design);
            std::string subject = name + "+fame1";
            lint::Diagnostics gating =
                lint::verifyFame1Gating(f1.design, f1.hostEnable);
            gating.merge(fame::verifyScanCoverage(f1.design));
            failures += report(subject.c_str(), gating, werror);
            std::printf("%s: gating + scan coverage %s\n", subject.c_str(),
                        gating.hasErrors() ? "FAILED" : "verified");
        }
    }
    return failures ? 1 : 0;
}
