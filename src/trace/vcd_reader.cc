#include "trace/vcd_reader.h"

#include <cstdio>
#include <fstream>

namespace strober {
namespace trace {

namespace {

/** Join scope path + leaf name into strober's '/' convention. */
std::string
normalizeName(const std::vector<std::string> &scopes, const std::string &leaf)
{
    std::string full;
    for (const std::string &s : scopes) {
        full += s;
        full += '/';
    }
    // VCD consumers write '.' hierarchy inside leaf names (our own
    // VcdWriter does); fold those into the same separator.
    for (char c : leaf)
        full += c == '.' ? '/' : c;
    return full;
}

/** Read one whitespace-delimited token; false at EOF. */
bool
nextToken(std::istream &in, std::string &tok)
{
    return static_cast<bool>(in >> tok);
}

/** Consume tokens until "$end"; false if EOF hits first. */
bool
skipToEnd(std::istream &in)
{
    std::string tok;
    while (nextToken(in, tok))
        if (tok == "$end")
            return true;
    return false;
}

/** Strict decimal parse; false on empty/garbage/overflow. */
bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        uint64_t d = static_cast<uint64_t>(c - '0');
        if (v > (~0ULL - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

} // namespace

int
VcdHeader::findVar(const std::string &name) const
{
    for (size_t i = 0; i < vars.size(); ++i)
        if (vars[i].name == name)
            return static_cast<int>(i);
    return -1;
}

util::Result<VcdHeader>
parseVcdHeader(std::istream &in)
{
    VcdHeader hdr;
    std::vector<std::string> scopes;
    std::string tok;
    while (nextToken(in, tok)) {
        if (tok == "$enddefinitions") {
            if (!skipToEnd(in))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated header: missing $end "
                                    "after $enddefinitions");
            return hdr;
        }
        if (tok == "$scope") {
            // "$scope <type> <name> $end"
            std::string type, name;
            if (!nextToken(in, type) || !nextToken(in, name))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated $scope declaration");
            if (name == "$end")
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: $scope missing name");
            scopes.push_back(name);
            if (!skipToEnd(in))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated $scope declaration");
            continue;
        }
        if (tok == "$upscope") {
            if (!scopes.empty())
                scopes.pop_back();
            if (!skipToEnd(in))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated $upscope");
            continue;
        }
        if (tok == "$var") {
            // "$var <type> <width> <code> <name> [index] $end"
            std::string type, widthTok, code, name;
            if (!nextToken(in, type) || !nextToken(in, widthTok) ||
                !nextToken(in, code) || !nextToken(in, name))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated $var declaration");
            uint64_t width = 0;
            if (!parseU64(widthTok, width) || width == 0)
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: bad $var width '%s' for '%s'",
                                    widthTok.c_str(), name.c_str());
            if (name == "$end" || code == "$end")
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: $var declaration missing fields");
            VcdVar v;
            v.code = code;
            v.name = normalizeName(scopes, name);
            v.width = static_cast<unsigned>(width);
            hdr.vars.push_back(std::move(v));
            if (!skipToEnd(in))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated $var declaration");
            continue;
        }
        if (!tok.empty() && tok[0] == '$') {
            // $date, $version, $comment, $timescale, anything else:
            // capture timescale text, skip the rest.
            bool isTimescale = tok == "$timescale";
            std::string text;
            bool closed = false;
            std::string t;
            while (nextToken(in, t)) {
                if (t == "$end") {
                    closed = true;
                    break;
                }
                if (!text.empty())
                    text += ' ';
                text += t;
            }
            if (!closed)
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: truncated %s section",
                                    tok.c_str());
            if (isTimescale)
                hdr.timescale = text;
            continue;
        }
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: unexpected token '%s' in header "
                            "(missing $enddefinitions?)",
                            tok.c_str());
    }
    return util::errorf(util::ErrorCode::Corrupt,
                        "vcd: truncated header: EOF before $enddefinitions");
}

VcdCursor::VcdCursor(std::istream &in, const VcdHeader &header)
    : is(in), hdr(header)
{
    values.assign(hdr.vars.size(), 0);
    for (size_t i = 0; i < hdr.vars.size(); ++i)
        byCode[hdr.vars[i].code].push_back(i);
}

util::Status
VcdCursor::applyScalar(const std::string &token)
{
    char v = token[0];
    std::string code = token.substr(1);
    if (code.empty())
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: scalar change '%s' missing identifier",
                            token.c_str());
    auto it = byCode.find(code);
    if (it == byCode.end())
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: unknown identifier code '%s'",
                            code.c_str());
    if (v == 'x' || v == 'X' || v == 'z' || v == 'Z')
        return util::errorf(util::ErrorCode::Unsupported,
                            "vcd: 4-state value '%c' on '%s' unsupported "
                            "(strober values are 2-state)",
                            v, hdr.vars[it->second.front()].name.c_str());
    uint64_t bitVal = v == '1' ? 1 : 0;
    for (size_t idx : it->second)
        if (!hdr.vars[idx].wide())
            values[idx] = bitVal;
    return util::Status();
}

util::Status
VcdCursor::applyVector(const std::string &bitsToken)
{
    // "b<bits>" already consumed as one token; identifier follows.
    std::string code;
    if (!nextToken(is, code))
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: vector change '%s' missing identifier",
                            bitsToken.c_str());
    auto it = byCode.find(code);
    if (it == byCode.end())
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: unknown identifier code '%s'",
                            code.c_str());
    const VcdVar &var = hdr.vars[it->second.front()];
    const std::string bits = bitsToken.substr(1);
    if (bits.empty())
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: empty vector value for '%s'",
                            var.name.c_str());
    if (bits.size() > var.width)
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: value '%s' wider than declared width %u "
                            "of '%s'",
                            bitsToken.c_str(), var.width, var.name.c_str());
    uint64_t v = 0;
    for (char c : bits) {
        if (c == 'x' || c == 'X' || c == 'z' || c == 'Z')
            return util::errorf(util::ErrorCode::Unsupported,
                                "vcd: 4-state value '%s' on '%s' "
                                "unsupported (strober values are 2-state)",
                                bitsToken.c_str(), var.name.c_str());
        if (c != '0' && c != '1')
            return util::errorf(util::ErrorCode::Corrupt,
                                "vcd: bad vector digit '%c' in '%s'", c,
                                bitsToken.c_str());
        if (!var.wide())
            v = (v << 1) | static_cast<uint64_t>(c - '0');
    }
    for (size_t idx : it->second)
        if (!hdr.vars[idx].wide())
            values[idx] = v;
    return util::Status();
}

util::Status
VcdCursor::prime()
{
    // Consume initial-value changes ($dumpvars block and any changes
    // before the first '#'), stopping at the first timestamp or EOF.
    primed = true;
    std::string tok;
    while (nextToken(is, tok)) {
        if (tok[0] == '#') {
            uint64_t t = 0;
            if (!parseU64(tok.substr(1), t))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: bad timestamp '%s'", tok.c_str());
            pending = t;
            pendingValid = true;
            return util::Status();
        }
        util::Status s = bodyToken(tok);
        if (!s.isOk())
            return s;
    }
    return util::Status(); // empty body: no timesteps at all
}

/** Handle one non-timestamp body token (value change or directive). */
util::Status
VcdCursor::bodyToken(const std::string &tok)
{
    if (tok == "$dumpvars" || tok == "$dumpall" || tok == "$dumpon" ||
        tok == "$dumpoff" || tok == "$end")
        return util::Status();
    if (tok == "$comment") {
        if (!skipToEnd(is))
            return util::errorf(util::ErrorCode::Corrupt,
                                "vcd: truncated $comment in body");
        return util::Status();
    }
    if (tok[0] == 'b' || tok[0] == 'B')
        return applyVector(tok);
    if (tok[0] == 'r' || tok[0] == 'R' || tok[0] == 's' || tok[0] == 'S')
        return util::errorf(util::ErrorCode::Unsupported,
                            "vcd: real/string value change '%s' unsupported",
                            tok.c_str());
    if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' || tok[0] == 'X' ||
        tok[0] == 'z' || tok[0] == 'Z')
        return applyScalar(tok);
    return util::errorf(util::ErrorCode::Corrupt,
                        "vcd: unexpected token '%s' in value-change section",
                        tok.c_str());
}

util::Result<bool>
VcdCursor::advance()
{
    if (!primed) {
        util::Status s = prime();
        if (!s.isOk())
            return s;
    }
    if (!pendingValid)
        return false;
    if (haveCurrent && pending <= currentTime)
        return util::errorf(util::ErrorCode::Corrupt,
                            "vcd: out-of-order timestamp #%llu after #%llu",
                            static_cast<unsigned long long>(pending),
                            static_cast<unsigned long long>(currentTime));
    currentTime = pending;
    haveCurrent = true;
    pendingValid = false;
    ++steps;

    std::string tok;
    while (nextToken(is, tok)) {
        if (tok[0] == '#') {
            uint64_t t = 0;
            if (!parseU64(tok.substr(1), t))
                return util::errorf(util::ErrorCode::Corrupt,
                                    "vcd: bad timestamp '%s'", tok.c_str());
            pending = t;
            pendingValid = true;
            return true;
        }
        util::Status s = bodyToken(tok);
        if (!s.isOk())
            return s;
    }
    return true; // EOF: this was the final timestep
}

util::Result<uint64_t>
fileFingerprint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return util::errorf(util::ErrorCode::IoError,
                            "cannot open stimulus file '%s'", path.c_str());
    uint64_t h = 0xcbf29ce484222325ULL;
    char buf[1 << 16];
    while (in) {
        in.read(buf, sizeof(buf));
        std::streamsize n = in.gcount();
        for (std::streamsize i = 0; i < n; ++i) {
            h ^= static_cast<unsigned char>(buf[i]);
            h *= 0x100000001b3ULL;
        }
    }
    if (in.bad())
        return util::errorf(util::ErrorCode::IoError,
                            "read error on stimulus file '%s'",
                            path.c_str());
    return h;
}

} // namespace trace
} // namespace strober
