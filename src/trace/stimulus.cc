#include "trace/stimulus.h"

#include <algorithm>

namespace strober {
namespace trace {

namespace {

/** Normalize a user-facing name to the '/' hierarchy convention. */
std::string
normalize(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += c == '.' ? '/' : c;
    return out;
}

/** Leaf component of a hierarchical name. */
std::string
baseName(const std::string &name)
{
    size_t pos = name.rfind('/');
    return pos == std::string::npos ? name : name.substr(pos + 1);
}

/** Case-insensitive "looks like a clock" name heuristic. */
bool
clockLike(const std::string &name)
{
    std::string lower = baseName(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return lower.find("clk") != std::string::npos ||
           lower.find("clock") != std::string::npos;
}

/** @p varName matches @p portName exactly or after dropping leading
 *  trace scopes ("top/io_a" drives port "io_a"). */
bool
suffixMatch(const std::string &varName, const std::string &portName)
{
    if (varName.size() <= portName.size())
        return false;
    return varName.compare(varName.size() - portName.size(),
                           portName.size(), portName) == 0 &&
           varName[varName.size() - portName.size() - 1] == '/';
}

} // namespace

util::Result<Stimulus>
Stimulus::bind(const rtl::Design &design, const VcdHeader &header,
               const StimulusOptions &opts, lint::Diagnostics *diags)
{
    lint::Diagnostics local;
    lint::Diagnostics &d = diags ? *diags : local;
    const std::string clockName = normalize(opts.clockSignal);

    Stimulus st;
    std::vector<bool> bound(header.vars.size(), false);
    const std::vector<rtl::NodeId> &inputs = design.inputs();
    for (size_t port = 0; port < inputs.size(); ++port) {
        const rtl::Node &node = design.node(inputs[port]);
        std::vector<size_t> exact, suffix;
        for (size_t v = 0; v < header.vars.size(); ++v) {
            const std::string &vn = header.vars[v].name;
            if (!clockName.empty() && vn == clockName)
                continue;
            if (vn == node.name)
                exact.push_back(v);
            else if (suffixMatch(vn, node.name))
                suffix.push_back(v);
        }
        const std::vector<size_t> &cands = exact.empty() ? suffix : exact;
        if (cands.empty()) {
            d.error("trace-unbound-input", inputs[port], node.name,
                    "no trace signal drives this input port");
            continue;
        }
        if (cands.size() > 1) {
            d.error("trace-ambiguous", inputs[port], node.name,
                    "multiple trace signals match this input port ('" +
                        header.vars[cands[0]].name + "', '" +
                        header.vars[cands[1]].name + "', ...)");
            continue;
        }
        const VcdVar &var = header.vars[cands[0]];
        if (var.width != node.width) {
            d.error("trace-width-mismatch", inputs[port], node.name,
                    "trace signal '" + var.name + "' is " +
                        std::to_string(var.width) + " bits, port is " +
                        std::to_string(node.width));
            continue;
        }
        st.portBindings.push_back(PortBinding{cands[0], port});
        bound[cands[0]] = true;
    }

    for (size_t v = 0; v < header.vars.size(); ++v) {
        if (bound[v])
            continue;
        const VcdVar &var = header.vars[v];
        if (var.name == clockName ||
            (var.width == 1 && clockLike(var.name)))
            d.warning("trace-clock-ignored", rtl::kNoNode, var.name,
                      "clock-like trace signal ignored (the target clock "
                      "is implicit: one timestep per cycle)");
        else
            d.info("trace-unused", rtl::kNoNode, var.name,
                   "trace signal not bound to any input port");
    }

    if (d.hasErrors())
        return util::errorf(util::ErrorCode::InvalidArgument,
                            "trace binding failed (%zu error(s)): %s",
                            d.errorCount(), d.firstError()->str().c_str());
    return st;
}

util::Result<std::unique_ptr<TraceDriver>>
TraceDriver::open(const std::string &path, const rtl::Design &design,
                  const StimulusOptions &opts, lint::Diagnostics *diags)
{
    std::unique_ptr<TraceDriver> drv(new TraceDriver());
    drv->file.open(path, std::ios::binary);
    if (!drv->file)
        return util::errorf(util::ErrorCode::IoError,
                            "cannot open stimulus file '%s'", path.c_str());
    util::Result<VcdHeader> hdr = parseVcdHeader(drv->file);
    if (!hdr.isOk())
        return hdr.status();
    drv->header.reset(new VcdHeader(std::move(hdr.value())));
    util::Result<Stimulus> st =
        Stimulus::bind(design, *drv->header, opts, diags);
    if (!st.isOk())
        return st.status();
    drv->bindings = st.value().bindings();
    drv->cursor.reset(new VcdCursor(drv->file, *drv->header));
    util::Result<bool> first = drv->cursor->advance();
    if (!first.isOk())
        return first.status();
    if (!first.value())
        return util::errorf(util::ErrorCode::InvalidArgument,
                            "stimulus '%s' contains no timesteps",
                            path.c_str());
    drv->sawStep = true;
    return drv;
}

void
TraceDriver::drive(core::TargetHarness &harness)
{
    if (done())
        return;
    const uint64_t c = harness.cycles();
    while (cursor->hasPending() && cursor->pendingTime() <= c) {
        util::Result<bool> r = cursor->advance();
        if (!r.isOk()) {
            err = r.status();
            return;
        }
    }
    for (const PortBinding &b : bindings)
        harness.setInput(b.portIndex, cursor->value(b.varIndex));
    ++driven;
    if (!cursor->hasPending() && c >= cursor->time())
        finished = true; // final timestamped cycle is now driven
}

util::Result<std::unique_ptr<TraceDriver>>
TraceWorkload::openDriver(const rtl::Design &design,
                          lint::Diagnostics *diags) const
{
    return TraceDriver::open(path, design, StimulusOptions{}, diags);
}

util::Result<TraceWorkload>
loadTraceWorkload(const std::string &path)
{
    util::Result<uint64_t> fp = fileFingerprint(path);
    if (!fp.isOk())
        return fp.status();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return util::errorf(util::ErrorCode::IoError,
                            "cannot open stimulus file '%s'", path.c_str());
    util::Result<VcdHeader> hdr = parseVcdHeader(in);
    if (!hdr.isOk())
        return hdr.status();
    TraceWorkload wl;
    size_t slash = path.find_last_of('/');
    wl.name =
        "trace:" + (slash == std::string::npos ? path
                                               : path.substr(slash + 1));
    wl.path = path;
    wl.fingerprint = fp.value();
    return wl;
}

} // namespace trace
} // namespace strober
