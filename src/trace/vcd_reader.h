/**
 * @file
 * Streaming VCD (Value Change Dump) ingest — the import half of the
 * trace interchange loop (ROADMAP: "External stimulus + activity
 * interchange"). The reader is two-pass over a single forward scan:
 *
 *  1. `parseVcdHeader()` tokenizes the declaration section ($scope /
 *     $var / $timescale / $upscope / $enddefinitions), producing a
 *     `VcdHeader` with one `VcdVar` per declaration, hierarchical
 *     names normalized to strober's '/'-separated convention.
 *  2. `VcdCursor` then walks the value-change body one timestep at a
 *     time. Memory is bounded by the number of declared signals (one
 *     sticky uint64_t per variable), never by file length — a
 *     multi-gigabyte trace streams through a fixed-size cursor.
 *
 * Malformed input is a `Status` error, never a crash: truncated
 * headers, unknown identifier codes, vector values wider than their
 * declaration and out-of-order timestamps all surface as
 * ErrorCode::Corrupt; real-number and 4-state (x/z) value changes are
 * rejected as ErrorCode::Unsupported (strober's RTL values are
 * 2-state, <= 64 bits).
 */

#ifndef STROBER_TRACE_VCD_READER_H
#define STROBER_TRACE_VCD_READER_H

#include <cstdint>
#include <istream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace strober {
namespace trace {

/** One $var declaration. */
struct VcdVar
{
    std::string code;   //!< short printable identifier code
    std::string name;   //!< full hierarchical name, '/'-separated
    unsigned width = 1; //!< declared bit width

    /** Wider than the 64-bit value cursor; declared but not tracked. */
    bool wide() const { return width > 64; }
};

/** Parsed declaration section of a VCD document. */
struct VcdHeader
{
    std::string timescale; //!< e.g. "1ns"; empty if not declared
    std::vector<VcdVar> vars;

    /** Index of the variable with exactly @p name, or -1. */
    int findVar(const std::string &name) const;
};

/**
 * Parse the header, leaving @p in positioned at the first body token.
 * Fails with Corrupt on a truncated or malformed declaration section
 * (EOF before $enddefinitions, bad $var arity, zero/garbage widths).
 */
util::Result<VcdHeader> parseVcdHeader(std::istream &in);

/**
 * Per-timestep cursor over the value-change body. Values are sticky:
 * after `advance()` returns true, `value(i)` is variable i's value as
 * of `time()` (initial-value changes before the first '#' timestamp
 * are folded into the first step). Variables with width > 64 are
 * syntax-checked but not stored.
 */
class VcdCursor
{
  public:
    /** @p in must be positioned just past the header (same stream). */
    VcdCursor(std::istream &in, const VcdHeader &header);

    /**
     * Load the next timestep. @return true when a step was loaded,
     * false at end of trace; errors are Corrupt (unknown id code,
     * over-wide value, out-of-order timestamp) or Unsupported (real
     * or x/z value change).
     */
    util::Result<bool> advance();

    /** Timestamp of the step most recently loaded by advance(). */
    uint64_t time() const { return currentTime; }

    /** True when another timestep is buffered ahead of the cursor. */
    bool hasPending() const { return pendingValid; }
    /** Timestamp of that buffered step (valid iff hasPending()). */
    uint64_t pendingTime() const { return pending; }

    /** Sticky value of variable @p varIndex (0 until first change). */
    uint64_t value(size_t varIndex) const { return values[varIndex]; }

    /** Timesteps delivered so far. */
    uint64_t stepsDelivered() const { return steps; }

  private:
    std::istream &is;
    const VcdHeader &hdr;
    std::unordered_map<std::string, std::vector<size_t>> byCode;
    std::vector<uint64_t> values;
    uint64_t currentTime = 0;
    uint64_t pending = 0;
    uint64_t steps = 0;
    bool pendingValid = false;
    bool primed = false;
    bool haveCurrent = false;

    util::Status prime();
    util::Status bodyToken(const std::string &token);
    util::Status applyScalar(const std::string &token);
    util::Status applyVector(const std::string &bitsToken);
};

/**
 * Streaming FNV-1a 64 content hash of @p path — the trace identity
 * folded into replay cache keys so results from different stimulus
 * files can never alias. IoError if the file cannot be read.
 */
util::Result<uint64_t> fileFingerprint(const std::string &path);

} // namespace trace
} // namespace strober

#endif // STROBER_TRACE_VCD_READER_H
