/**
 * @file
 * Trace stimulus: bind VCD signals to a design's input ports and
 * replay the trace through any `core::TargetHarness` as a
 * `core::HostDriver`. This is the adapter that makes an external
 * `.vcd` behave exactly like a built-in generated workload — the
 * same EnergySimulator pipeline (sampling, snapshots, replay, farm
 * caching) runs unchanged on top of it.
 *
 * Ingest model: VCD timestamp t carries the input-port values for
 * target cycle t (the convention `sim::VcdWriter` ports-only dumps
 * follow: sample after poking the cycle's inputs, before the clock
 * edge). Values are sticky across timestamp gaps. The trace ends the
 * workload: the driver reports done() after driving the final
 * timestamped cycle.
 *
 * Binding rules (lint-style `Diagnostics`, rule ids "trace-*"):
 *  - exact hierarchical name match first ('.' and '/' equivalent),
 *    then a unique suffix match ignoring leading trace scopes;
 *  - every design input must bind to exactly one trace signal
 *    (missing -> error[trace-unbound-input], multiple candidates ->
 *    error[trace-ambiguous]);
 *  - widths must agree exactly (error[trace-width-mismatch]);
 *  - clock-like 1-bit signals that match no input are ignored with
 *    warning[trace-clock-ignored] (strober's clock is implicit in
 *    clock()); other unbound trace signals are info[trace-unused].
 */

#ifndef STROBER_TRACE_STIMULUS_H
#define STROBER_TRACE_STIMULUS_H

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/harness.h"
#include "lint/diagnostics.h"
#include "rtl/ir.h"
#include "trace/vcd_reader.h"
#include "util/status.h"

namespace strober {
namespace trace {

/** Binding knobs. */
struct StimulusOptions
{
    /**
     * Name of a trace signal to treat as the (implicit) clock and
     * exclude from binding, in addition to the clock-name heuristic.
     */
    std::string clockSignal;
};

/** One resolved input binding: trace variable -> harness input port. */
struct PortBinding
{
    size_t varIndex = 0;  //!< index into VcdHeader::vars
    size_t portIndex = 0; //!< positional input port in the harness
};

/** The signal-to-port map produced by binding a header to a design. */
class Stimulus
{
  public:
    /**
     * Resolve every design input against the trace header. All
     * findings (including non-fatal ones) land in @p diags when
     * provided; the Result is an error iff any binding rule failed.
     */
    static util::Result<Stimulus> bind(const rtl::Design &design,
                                       const VcdHeader &header,
                                       const StimulusOptions &opts = {},
                                       lint::Diagnostics *diags = nullptr);

    const std::vector<PortBinding> &bindings() const { return portBindings; }

  private:
    std::vector<PortBinding> portBindings;
};

/**
 * HostDriver that streams a bound VCD through a harness. Owns the
 * file stream: memory use is bounded by the trace's signal count, not
 * its length, so the service daemon can run multi-gigabyte stimulus
 * jobs without buffering.
 *
 * drive() cannot return a Status (the HostDriver contract is
 * void), so a mid-body parse error makes the driver report done()
 * immediately and parks the error in status() — callers must check
 * status() after the run loop exits.
 */
class TraceDriver : public core::HostDriver
{
  public:
    /** Open @p path, parse the header, bind, prime the cursor. */
    static util::Result<std::unique_ptr<TraceDriver>>
    open(const std::string &path, const rtl::Design &design,
         const StimulusOptions &opts = {},
         lint::Diagnostics *diags = nullptr);

    void drive(core::TargetHarness &harness) override;
    bool done() const override { return finished || !err.isOk(); }

    /** Sticky first parse error encountered while streaming. */
    const util::Status &status() const { return err; }

    /** Target cycles driven so far. */
    uint64_t cyclesDriven() const { return driven; }

    /** Last timestamp in the trace seen so far (valid once done). */
    uint64_t lastTimestamp() const { return cursor->time(); }

  private:
    TraceDriver() = default;

    std::ifstream file;
    std::unique_ptr<VcdHeader> header; //!< stable address for cursor
    std::unique_ptr<VcdCursor> cursor;
    std::vector<PortBinding> bindings;
    util::Status err;
    uint64_t driven = 0;
    bool finished = false;
    bool sawStep = false;
};

/**
 * A trace file packaged as a workload: name, identity fingerprint and
 * a driver factory. The fingerprint joins the replay `CacheKey` (via
 * EnergySimulator::Config::stimulusFingerprint) so cached results can
 * never alias across different stimulus files.
 */
struct TraceWorkload
{
    std::string name;        //!< "trace:<basename>" for reports/manifests
    std::string path;        //!< stimulus file (streamed per run)
    uint64_t fingerprint = 0; //!< FNV-1a 64 of the file contents

    util::Result<std::unique_ptr<TraceDriver>>
    openDriver(const rtl::Design &design,
               lint::Diagnostics *diags = nullptr) const;
};

/**
 * Fingerprint @p path and validate its header parses. Does not read
 * the body; binding errors surface when a driver is opened against a
 * concrete design.
 */
util::Result<TraceWorkload> loadTraceWorkload(const std::string &path);

} // namespace trace
} // namespace strober

#endif // STROBER_TRACE_STIMULUS_H
