/**
 * @file
 * Packed little-endian bit streams. Scan-chain snapshots are serialized
 * through these, so a snapshot is literally the bit string that would be
 * shifted out of the FPGA's scan chains.
 */

#ifndef STROBER_UTIL_BITSTREAM_H
#define STROBER_UTIL_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {

/** Appends fields of up to 64 bits to a packed word vector. */
class BitWriter
{
  public:
    /** Append the low @p width bits of @p value. */
    void
    put(uint64_t value, unsigned width)
    {
        if (width == 0 || width > 64)
            panic("BitWriter field width %u out of range", width);
        value = truncate(value, width);
        while (words.size() * 64 < cursor + width)
            words.push_back(0);
        unsigned wordIdx = static_cast<unsigned>(cursor / 64);
        unsigned bitIdx = static_cast<unsigned>(cursor % 64);
        words[wordIdx] |= value << bitIdx;
        if (bitIdx + width > 64)
            words[wordIdx + 1] |= value >> (64 - bitIdx);
        cursor += width;
    }

    uint64_t bitCount() const { return cursor; }
    const std::vector<uint64_t> &data() const { return words; }
    std::vector<uint64_t> take() { return std::move(words); }

  private:
    std::vector<uint64_t> words;
    uint64_t cursor = 0;
};

/** Reads fields back out of a packed word vector. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint64_t> &data) : words(data) {}

    /** Read the next @p width bits. */
    uint64_t
    get(unsigned width)
    {
        if (width == 0 || width > 64)
            panic("BitReader field width %u out of range", width);
        unsigned wordIdx = static_cast<unsigned>(cursor / 64);
        unsigned bitIdx = static_cast<unsigned>(cursor % 64);
        if ((cursor + width + 63) / 64 > words.size())
            panic("BitReader overrun");
        uint64_t v = words[wordIdx] >> bitIdx;
        if (bitIdx + width > 64)
            v |= words[wordIdx + 1] << (64 - bitIdx);
        cursor += width;
        return truncate(v, width);
    }

    uint64_t bitsRead() const { return cursor; }

  private:
    const std::vector<uint64_t> &words;
    uint64_t cursor = 0;
};

} // namespace strober

#endif // STROBER_UTIL_BITSTREAM_H
