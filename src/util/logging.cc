#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace strober {

namespace {
bool quietFlag = false;
} // namespace

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

} // namespace strober
