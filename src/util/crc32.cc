#include "util/crc32.h"

#include <array>

namespace strober {
namespace util {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1) ? 0xEDB88320u : 0u);
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    static const std::array<uint32_t, 256> table = makeTable();
    const auto *bytes = static_cast<const uint8_t *>(data);
    crc = ~crc;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
    return ~crc;
}

} // namespace util
} // namespace strober
