# Empty dependencies file for strober_util.
# This may be replaced when dependencies are built.
