file(REMOVE_RECURSE
  "CMakeFiles/strober_util.dir/crc32.cc.o"
  "CMakeFiles/strober_util.dir/crc32.cc.o.d"
  "CMakeFiles/strober_util.dir/logging.cc.o"
  "CMakeFiles/strober_util.dir/logging.cc.o.d"
  "CMakeFiles/strober_util.dir/status.cc.o"
  "CMakeFiles/strober_util.dir/status.cc.o.d"
  "libstrober_util.a"
  "libstrober_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
