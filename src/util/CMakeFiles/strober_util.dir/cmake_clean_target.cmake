file(REMOVE_RECURSE
  "libstrober_util.a"
)
