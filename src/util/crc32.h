/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used as the
 * per-section integrity check of the snapshot file format. Supports
 * incremental computation so serializers can fold bytes in as they
 * stream them.
 */

#ifndef STROBER_UTIL_CRC32_H
#define STROBER_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace strober {
namespace util {

/**
 * Fold @p len bytes at @p data into a running CRC. Start (and finish)
 * with @p crc = 0; chaining calls with the previous return value
 * computes the CRC of the concatenation.
 */
uint32_t crc32Update(uint32_t crc, const void *data, size_t len);

/** One-shot CRC-32 of a buffer. */
inline uint32_t
crc32(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace util
} // namespace strober

#endif // STROBER_UTIL_CRC32_H
