/**
 * @file
 * Structured, propagated error handling for the replay pipeline.
 *
 * The capture → serialize → replay → aggregate pipeline used to report
 * every failure through fatal(), which kills the whole process — one
 * corrupt snapshot aborts a multi-hour farm run. The paper's sampling
 * statistics (Section III-A) support a much better policy: drop the bad
 * sample, recompute the estimate over the survivors, and report the
 * widened bound. That requires failures to be *values* that flow up to
 * the estimator instead of process exits, which is what Status and
 * Result<T> provide.
 *
 * Conventions:
 *  - Functions that can fail for data-dependent reasons (corrupt file,
 *    mismatched geometry, diverging replay, watchdog timeout) return
 *    Status or Result<T>.
 *  - fatal() remains for genuine caller bugs (API misuse) and
 *    unrecoverable configuration errors; panic() for internal invariant
 *    violations. See util/logging.h.
 */

#ifndef STROBER_UTIL_STATUS_H
#define STROBER_UTIL_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace strober {
namespace util {

/** Failure classes of the snapshot/replay pipeline. */
enum class ErrorCode
{
    Ok = 0,
    IoError,          //!< stream/file write or read failed (disk full, ...)
    Corrupt,          //!< integrity violation: bad CRC, truncation, bounds
    Unsupported,      //!< recognized but unsupported (format version)
    GeometryMismatch, //!< snapshot shape does not match the design
    LoadFailure,      //!< state transfer into the simulator failed
    Divergence,       //!< replay outputs disagree with the recorded trace
    Timeout,          //!< replay exceeded its cycle budget (watchdog)
    InvalidArgument,  //!< malformed request (e.g. incomplete snapshot)
    Canceled,         //!< job canceled / drained; work is checkpointed
    Overloaded,       //!< admission refused: bounded queue is full
};

/** Stable lowercase name for an ErrorCode ("corrupt", "timeout", ...). */
const char *errorCodeName(ErrorCode code);

/** An error code plus a human-readable message. Cheap to copy when ok. */
class Status
{
  public:
    Status() = default;
    Status(ErrorCode code, std::string message)
        : errCode(code), msg(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    bool isOk() const { return errCode == ErrorCode::Ok; }
    ErrorCode code() const { return errCode; }
    const std::string &message() const { return msg; }

    /** "corrupt: snapshot stream truncated" (or "ok"). */
    std::string toString() const;

  private:
    ErrorCode errCode = ErrorCode::Ok;
    std::string msg;
};

/** printf-style Status construction. */
Status errorf(ErrorCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Either a value or a non-ok Status. value() on an error is a caller
 * bug and panics; check isOk() (or status()) first.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : val(std::move(value)) {}
    Result(Status status) : st(std::move(status)) { assertNotOk(); }

    bool isOk() const { return st.isOk(); }
    const Status &status() const { return st; }

    T &value()
    {
        assertHasValue();
        return *val;
    }
    const T &value() const
    {
        assertHasValue();
        return *val;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status st;
    std::optional<T> val;

    void assertNotOk() const;
    void assertHasValue() const;
};

namespace detail {
[[noreturn]] void resultValueOnError(const Status &st);
[[noreturn]] void resultConstructedOk();
} // namespace detail

template <typename T>
void
Result<T>::assertNotOk() const
{
    if (st.isOk())
        detail::resultConstructedOk();
}

template <typename T>
void
Result<T>::assertHasValue() const
{
    if (!val)
        detail::resultValueOnError(st);
}

} // namespace util
} // namespace strober

#endif // STROBER_UTIL_STATUS_H
