/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts so a debugger/core dump can pinpoint it.
 *  - fatal():  the *user* asked for something impossible (bad config,
 *              malformed input); exits with an error code.
 *  - warn():   something is suspicious but simulation can continue.
 *  - inform(): plain status output.
 */

#ifndef STROBER_UTIL_LOGGING_H
#define STROBER_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace strober {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

/** Abort with a message; use for violated internal invariants. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (benches use this to keep output clean). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently suppressed. */
bool isQuiet();

} // namespace strober

#endif // STROBER_UTIL_LOGGING_H
