/**
 * @file
 * Process-environment helpers shared by the simulator, the farm and the
 * service daemon: strict environment-variable parsing (one definition
 * instead of the per-module ad-hoc getenv idioms), human-friendly
 * duration parsing for CLI flags, wall-clock access, and the
 * rlimit//proc supervision helpers the worker-supervision path uses
 * (the CommandRunner wall-clock/memory-cap idiom, in-process).
 *
 * Parsing is deliberately strict: a signed value, garbage, trailing
 * junk or overflow never "mostly parses" — it falls back exactly like
 * an unset variable, so STROBER_SIM_THREADS=-1 can never wrap into 2^64
 * threads and a typo'd cap never silently disables supervision.
 */

#ifndef STROBER_UTIL_ENV_H
#define STROBER_UTIL_ENV_H

#include <cstdint>
#include <optional>
#include <string>

#include <sys/types.h>

namespace strober {
namespace util {

/**
 * Parse @p text as a strict base-10 unsigned integer. Rejects empty
 * strings, any sign character, non-digit garbage, trailing junk and
 * values that overflow unsigned long.
 */
std::optional<unsigned long> parseULong(const std::string &text);

/**
 * Read env var @p name as an unsigned integer. Unset, empty or
 * unparseable (per parseULong) returns @p fallback; @p present, when
 * non-null, reports whether a valid value was read.
 */
unsigned long envULong(const char *name, unsigned long fallback = 0,
                       bool *present = nullptr);

/**
 * Read env var @p name as a boolean flag: unset, empty or "0" is
 * false, anything else is true.
 */
bool envFlag(const char *name);

/**
 * Parse a duration like "250ms", "30s", "5m", "2h" into milliseconds.
 * A bare number is seconds (the natural CLI unit). Rejects signs,
 * garbage, unknown suffixes and overflow.
 */
std::optional<uint64_t> parseDurationMs(const std::string &text);

/** envULong-style duration read: fallback on unset/invalid. */
uint64_t envDurationMs(const char *name, uint64_t fallback);

/** Milliseconds since the Unix epoch (lease deadlines, job clocks). */
uint64_t nowUnixMs();

/** Monotonic milliseconds (supervision intervals; never steps). */
uint64_t monotonicMs();

/**
 * Cap this process's address space at @p mb megabytes (RLIMIT_AS), the
 * worker-side half of memory supervision: even if the supervisor's
 * /proc polling misses a fast allocation spike, the allocation itself
 * fails. @return false if the limit could not be applied.
 */
bool applyMemoryRlimitMb(unsigned long mb);

/**
 * Resident-set size of @p pid in bytes via /proc/<pid>/status (the
 * supervisor-side half of memory supervision); 0 when unreadable.
 */
uint64_t processRssBytes(pid_t pid);

} // namespace util
} // namespace strober

#endif // STROBER_UTIL_ENV_H
