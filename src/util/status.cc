#include "util/status.h"

#include <cstdarg>

#include "util/logging.h"

namespace strober {
namespace util {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::Corrupt:
        return "corrupt";
      case ErrorCode::Unsupported:
        return "unsupported";
      case ErrorCode::GeometryMismatch:
        return "geometry-mismatch";
      case ErrorCode::LoadFailure:
        return "load-failure";
      case ErrorCode::Divergence:
        return "divergence";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::Canceled:
        return "canceled";
      case ErrorCode::Overloaded:
        return "overloaded";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(errCode)) + ": " + msg;
}

Status
errorf(ErrorCode code, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    return Status(code, std::move(msg));
}

namespace detail {

void
resultValueOnError(const Status &st)
{
    panic("Result::value() on an error result (%s)", st.toString().c_str());
}

void
resultConstructedOk()
{
    panic("Result<T> constructed from an ok Status without a value");
}

} // namespace detail

} // namespace util
} // namespace strober
