/**
 * @file
 * Bit-manipulation helpers shared by the RTL interpreter, the gate-level
 * simulator and the ISA layer. All RTL values are carried in uint64_t and
 * masked to their declared width after every operation.
 */

#ifndef STROBER_UTIL_BITS_H
#define STROBER_UTIL_BITS_H

#include <cstdint>

namespace strober {

/** @return a mask with the low @p width bits set (width in [0, 64]). */
constexpr uint64_t
bitMask(unsigned width)
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Truncate @p v to @p width bits. */
constexpr uint64_t
truncate(uint64_t v, unsigned width)
{
    return v & bitMask(width);
}

/** Sign-extend the low @p width bits of @p v to 64 bits. */
constexpr uint64_t
signExtend(uint64_t v, unsigned width)
{
    if (width == 0 || width >= 64)
        return v;
    uint64_t sign = 1ULL << (width - 1);
    return (v ^ sign) - sign;
}

/** Extract bits [hi:lo] of @p v (inclusive). */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & bitMask(hi - lo + 1);
}

/** Extract a single bit of @p v. */
constexpr uint64_t
bit(uint64_t v, unsigned pos)
{
    return (v >> pos) & 1ULL;
}

/** Insert @p field into bits [hi:lo] of @p v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned hi, unsigned lo, uint64_t field)
{
    uint64_t mask = bitMask(hi - lo + 1) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** @return ceil(log2(n)), with clog2(0) == clog2(1) == 0. */
constexpr unsigned
clog2(uint64_t n)
{
    unsigned r = 0;
    while ((1ULL << r) < n)
        ++r;
    return r;
}

/** @return true if @p n is a power of two (n > 0). */
constexpr bool
isPow2(uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace strober

#endif // STROBER_UTIL_BITS_H
