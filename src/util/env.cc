#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>

#include <sys/resource.h>

namespace strober {
namespace util {

std::optional<unsigned long>
parseULong(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    // strtoul() accepts "-1" (wrapping to ULONG_MAX), "+3", leading
    // whitespace and hex; all of those are rejected here — env values
    // and CLI counts are plain base-10 digits or nothing.
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long n = std::strtoul(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        return std::nullopt;
    return n;
}

unsigned long
envULong(const char *name, unsigned long fallback, bool *present)
{
    if (present != nullptr)
        *present = false;
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    std::optional<unsigned long> n = parseULong(v);
    if (!n.has_value())
        return fallback;
    if (present != nullptr)
        *present = true;
    return *n;
}

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

std::optional<uint64_t>
parseDurationMs(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    size_t digits = 0;
    while (digits < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[digits])))
        ++digits;
    if (digits == 0)
        return std::nullopt;
    std::optional<unsigned long> n = parseULong(text.substr(0, digits));
    if (!n.has_value())
        return std::nullopt;
    std::string unit = text.substr(digits);
    uint64_t scale;
    if (unit == "ms")
        scale = 1;
    else if (unit == "" || unit == "s")
        scale = 1000;
    else if (unit == "m")
        scale = 60'000;
    else if (unit == "h")
        scale = 3'600'000;
    else
        return std::nullopt;
    uint64_t value = *n;
    if (scale != 0 && value > UINT64_MAX / scale)
        return std::nullopt;
    return value * scale;
}

uint64_t
envDurationMs(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    std::optional<uint64_t> ms = parseDurationMs(v);
    return ms.has_value() ? *ms : fallback;
}

uint64_t
nowUnixMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

uint64_t
monotonicMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
applyMemoryRlimitMb(unsigned long mb)
{
    if (mb == 0)
        return false;
    struct rlimit lim;
    lim.rlim_cur = static_cast<rlim_t>(mb) * 1024 * 1024;
    lim.rlim_max = lim.rlim_cur;
    struct rlimit cur;
    if (::getrlimit(RLIMIT_AS, &cur) == 0 &&
        cur.rlim_max != RLIM_INFINITY && cur.rlim_max < lim.rlim_max) {
        lim.rlim_cur = cur.rlim_max; // cannot raise the hard limit
        lim.rlim_max = cur.rlim_max;
    }
    return ::setrlimit(RLIMIT_AS, &lim) == 0;
}

uint64_t
processRssBytes(pid_t pid)
{
    std::ifstream in("/proc/" + std::to_string(pid) + "/status");
    if (!in)
        return 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmRSS:", 0) != 0)
            continue;
        // "VmRSS:     1234 kB"
        size_t pos = line.find_first_of("0123456789", 6);
        if (pos == std::string::npos)
            return 0;
        return std::strtoull(line.c_str() + pos, nullptr, 10) * 1024ull;
    }
    return 0;
}

} // namespace util
} // namespace strober
