
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/cell_library.cc" "src/gate/CMakeFiles/strober_gate.dir/cell_library.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/cell_library.cc.o.d"
  "/root/repo/src/gate/gate_sim.cc" "src/gate/CMakeFiles/strober_gate.dir/gate_sim.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/gate_sim.cc.o.d"
  "/root/repo/src/gate/matching.cc" "src/gate/CMakeFiles/strober_gate.dir/matching.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/matching.cc.o.d"
  "/root/repo/src/gate/netlist.cc" "src/gate/CMakeFiles/strober_gate.dir/netlist.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/netlist.cc.o.d"
  "/root/repo/src/gate/placement.cc" "src/gate/CMakeFiles/strober_gate.dir/placement.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/placement.cc.o.d"
  "/root/repo/src/gate/replay.cc" "src/gate/CMakeFiles/strober_gate.dir/replay.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/replay.cc.o.d"
  "/root/repo/src/gate/saif.cc" "src/gate/CMakeFiles/strober_gate.dir/saif.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/saif.cc.o.d"
  "/root/repo/src/gate/state_loader.cc" "src/gate/CMakeFiles/strober_gate.dir/state_loader.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/state_loader.cc.o.d"
  "/root/repo/src/gate/synthesis.cc" "src/gate/CMakeFiles/strober_gate.dir/synthesis.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/synthesis.cc.o.d"
  "/root/repo/src/gate/timed_sim.cc" "src/gate/CMakeFiles/strober_gate.dir/timed_sim.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/timed_sim.cc.o.d"
  "/root/repo/src/gate/verilog.cc" "src/gate/CMakeFiles/strober_gate.dir/verilog.cc.o" "gcc" "src/gate/CMakeFiles/strober_gate.dir/verilog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/rtl/CMakeFiles/strober_rtl.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/strober_sim.dir/DependInfo.cmake"
  "/root/repo/src/fame/CMakeFiles/strober_fame.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/strober_stats.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  "/root/repo/src/codegen/CMakeFiles/strober_codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
