file(REMOVE_RECURSE
  "CMakeFiles/strober_gate.dir/cell_library.cc.o"
  "CMakeFiles/strober_gate.dir/cell_library.cc.o.d"
  "CMakeFiles/strober_gate.dir/gate_sim.cc.o"
  "CMakeFiles/strober_gate.dir/gate_sim.cc.o.d"
  "CMakeFiles/strober_gate.dir/matching.cc.o"
  "CMakeFiles/strober_gate.dir/matching.cc.o.d"
  "CMakeFiles/strober_gate.dir/netlist.cc.o"
  "CMakeFiles/strober_gate.dir/netlist.cc.o.d"
  "CMakeFiles/strober_gate.dir/placement.cc.o"
  "CMakeFiles/strober_gate.dir/placement.cc.o.d"
  "CMakeFiles/strober_gate.dir/replay.cc.o"
  "CMakeFiles/strober_gate.dir/replay.cc.o.d"
  "CMakeFiles/strober_gate.dir/saif.cc.o"
  "CMakeFiles/strober_gate.dir/saif.cc.o.d"
  "CMakeFiles/strober_gate.dir/state_loader.cc.o"
  "CMakeFiles/strober_gate.dir/state_loader.cc.o.d"
  "CMakeFiles/strober_gate.dir/synthesis.cc.o"
  "CMakeFiles/strober_gate.dir/synthesis.cc.o.d"
  "CMakeFiles/strober_gate.dir/timed_sim.cc.o"
  "CMakeFiles/strober_gate.dir/timed_sim.cc.o.d"
  "CMakeFiles/strober_gate.dir/verilog.cc.o"
  "CMakeFiles/strober_gate.dir/verilog.cc.o.d"
  "libstrober_gate.a"
  "libstrober_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
