# Empty dependencies file for strober_gate.
# This may be replaced when dependencies are built.
