file(REMOVE_RECURSE
  "libstrober_gate.a"
)
