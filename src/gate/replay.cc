#include "gate/replay.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

util::Result<GateReplayResult>
replayOnGate(GateSimulator &gsim, const rtl::Design &target,
             const MatchTable &table, const fame::ReplayableSnapshot &snap,
             const ReplayOptions &options)
{
    using util::ErrorCode;

    if (!snap.complete) {
        return util::errorf(ErrorCode::InvalidArgument,
                            "replaying an incomplete snapshot");
    }
    const GateNetlist &nl = gsim.netlist();
    if (snap.outputTrace.size() != snap.inputTrace.size()) {
        return util::errorf(ErrorCode::GeometryMismatch,
                            "snapshot trace has %zu input cycles but %zu "
                            "output cycles",
                            snap.inputTrace.size(), snap.outputTrace.size());
    }

    // Watchdog bookkeeping: every simulator step (and every injected
    // stall cycle) consumes budget; exceeding it means the replay hung.
    uint64_t consumed = options.injectedStallCycles;
    auto overBudget = [&]() {
        return options.cycleBudget != 0 && consumed > options.cycleBudget;
    };
    if (overBudget()) {
        return util::errorf(ErrorCode::Timeout,
                            "replay stalled: %llu cycles consumed before "
                            "any progress (budget %llu)",
                            (unsigned long long)consumed,
                            (unsigned long long)options.cycleBudget);
    }

    GateReplayResult result;
    gsim.reset();

    // --- Retiming warm-up (Section IV-C3) --------------------------------
    // Force every region's inputs with its captured history so the moved
    // registers reach the values they must hold at the capture cycle.
    unsigned maxLat = 0;
    for (const RetimeNetInfo &r : nl.retime())
        maxLat = std::max(maxLat, r.latency);
    if (maxLat > 0) {
        if (snap.retimeHistory.size() != nl.retime().size()) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot carries %zu retime histories, "
                                "netlist has %zu regions",
                                snap.retimeHistory.size(),
                                nl.retime().size());
        }
        for (unsigned t = 0; t < maxLat; ++t) {
            for (size_t ri = 0; ri < nl.retime().size(); ++ri) {
                const RetimeNetInfo &region = nl.retime()[ri];
                const auto &history = snap.retimeHistory[ri];
                // The last `latency` warm-up cycles carry this region's
                // history; earlier cycles hold its oldest value.
                unsigned lat = region.latency;
                size_t idx = 0;
                if (t + lat >= maxLat && !history.empty()) {
                    idx = std::min(history.size() - 1,
                                   static_cast<size_t>(t + lat - maxLat));
                }
                if (history.empty())
                    continue;
                const std::vector<uint64_t> &values = history[idx];
                if (values.size() != region.inputNets.size()) {
                    return util::errorf(
                        ErrorCode::GeometryMismatch,
                        "retime region %zu history row has %zu values, "
                        "region has %zu inputs",
                        ri, values.size(), region.inputNets.size());
                }
                for (size_t in = 0; in < region.inputNets.size(); ++in) {
                    const std::vector<NetId> &nets = region.inputNets[in];
                    uint64_t v = values[in];
                    for (size_t b = 0; b < nets.size(); ++b)
                        gsim.forceNet(nets[b], bit(v, b));
                }
            }
            gsim.step();
            ++consumed;
            if (overBudget()) {
                return util::errorf(
                    ErrorCode::Timeout,
                    "replay exceeded its cycle budget during retiming "
                    "warm-up (%llu consumed, budget %llu)",
                    (unsigned long long)consumed,
                    (unsigned long long)options.cycleBudget);
            }
        }
        gsim.releaseForces();
    }

    // --- State loading ----------------------------------------------------
    util::Result<LoadReport> load =
        loadState(gsim, target, table, snap.state, options.loader);
    if (!load.isOk()) {
        const util::Status &st = load.status();
        return util::Status(st.code() == ErrorCode::GeometryMismatch
                                ? ErrorCode::GeometryMismatch
                                : ErrorCode::LoadFailure,
                            "state load failed: " + st.message());
    }
    result.load = *load;

    // --- Drive the I/O trace and verify outputs --------------------------
    gsim.clearActivity();
    for (size_t t = 0; t < snap.inputTrace.size(); ++t) {
        const auto &inputs = snap.inputTrace[t];
        if (inputs.size() != nl.inputs().size()) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot trace has %zu inputs, netlist "
                                "has %zu",
                                inputs.size(), nl.inputs().size());
        }
        for (size_t i = 0; i < inputs.size(); ++i)
            gsim.pokePort(i, inputs[i]);

        const auto &expected = snap.outputTrace[t];
        if (expected.size() != nl.outputs().size()) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot trace has %zu outputs, netlist "
                                "has %zu",
                                expected.size(), nl.outputs().size());
        }
        for (size_t o = 0; o < nl.outputs().size(); ++o) {
            uint64_t got = gsim.peekPort(o);
            if (got != expected[o]) {
                ++result.outputMismatches;
                if (result.firstMismatch.empty()) {
                    result.firstMismatch = strfmt(
                        "cycle +%zu output '%s': got 0x%llx expected 0x%llx",
                        t, nl.outputs()[o].name.c_str(),
                        (unsigned long long)got,
                        (unsigned long long)expected[o]);
                }
            }
        }
        gsim.step();
        ++result.cyclesReplayed;
        ++consumed;
        if (overBudget()) {
            return util::errorf(ErrorCode::Timeout,
                                "replay exceeded its cycle budget after "
                                "%llu of %zu trace cycles (budget %llu)",
                                (unsigned long long)result.cyclesReplayed,
                                snap.inputTrace.size(),
                                (unsigned long long)options.cycleBudget);
        }
    }

    result.activity.netToggles = gsim.toggleCounts();
    result.activity.macroAccesses = gsim.macroStats();
    result.activity.cycles = gsim.activityCycles();
    return result;
}

} // namespace gate
} // namespace strober
