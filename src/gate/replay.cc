#include "gate/replay.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

GateReplayResult
replayOnGate(GateSimulator &gsim, const rtl::Design &target,
             const MatchTable &table, const fame::ReplayableSnapshot &snap,
             LoaderKind loader)
{
    if (!snap.complete)
        fatal("replaying an incomplete snapshot");
    const GateNetlist &nl = gsim.netlist();

    GateReplayResult result;
    gsim.reset();

    // --- Retiming warm-up (Section IV-C3) --------------------------------
    // Force every region's inputs with its captured history so the moved
    // registers reach the values they must hold at the capture cycle.
    unsigned maxLat = 0;
    for (const RetimeNetInfo &r : nl.retime())
        maxLat = std::max(maxLat, r.latency);
    if (maxLat > 0) {
        if (snap.retimeHistory.size() != nl.retime().size())
            fatal("snapshot retime history does not match the netlist");
        for (unsigned t = 0; t < maxLat; ++t) {
            for (size_t ri = 0; ri < nl.retime().size(); ++ri) {
                const RetimeNetInfo &region = nl.retime()[ri];
                const auto &history = snap.retimeHistory[ri];
                // The last `latency` warm-up cycles carry this region's
                // history; earlier cycles hold its oldest value.
                unsigned lat = region.latency;
                size_t idx = 0;
                if (t + lat >= maxLat && !history.empty()) {
                    idx = std::min(history.size() - 1,
                                   static_cast<size_t>(t + lat - maxLat));
                }
                if (history.empty())
                    continue;
                const std::vector<uint64_t> &values = history[idx];
                for (size_t in = 0; in < region.inputNets.size(); ++in) {
                    const std::vector<NetId> &nets = region.inputNets[in];
                    uint64_t v = values.at(in);
                    for (size_t b = 0; b < nets.size(); ++b)
                        gsim.forceNet(nets[b], bit(v, b));
                }
            }
            gsim.step();
        }
        gsim.releaseForces();
    }

    // --- State loading ----------------------------------------------------
    result.load = loadState(gsim, target, table, snap.state, loader);

    // --- Drive the I/O trace and verify outputs --------------------------
    gsim.clearActivity();
    for (size_t t = 0; t < snap.inputTrace.size(); ++t) {
        const auto &inputs = snap.inputTrace[t];
        for (size_t i = 0; i < inputs.size(); ++i)
            gsim.pokePort(i, inputs[i]);

        const auto &expected = snap.outputTrace[t];
        for (size_t o = 0; o < nl.outputs().size(); ++o) {
            uint64_t got = gsim.peekPort(o);
            if (got != expected[o]) {
                ++result.outputMismatches;
                if (result.firstMismatch.empty()) {
                    result.firstMismatch = strfmt(
                        "cycle +%zu output '%s': got 0x%llx expected 0x%llx",
                        t, nl.outputs()[o].name.c_str(),
                        (unsigned long long)got,
                        (unsigned long long)expected[o]);
                }
            }
        }
        gsim.step();
        ++result.cyclesReplayed;
    }

    result.activity.netToggles = gsim.toggleCounts();
    result.activity.macroAccesses = gsim.macroStats();
    result.activity.cycles = gsim.activityCycles();
    return result;
}

} // namespace gate
} // namespace strober
