/**
 * @file
 * Gate-level snapshot replay (paper Sections III-B, IV-C): warm the
 * retimed regions by forcing their inputs from the captured history,
 * load the RTL state through the matching table, drive the recorded
 * input tokens for L cycles while verifying every output token, and
 * collect the switching activity the power analysis consumes.
 *
 * Replay failures (geometry mismatches, load failures, watchdog
 * timeouts) are returned as util::Status values so a farm can
 * quarantine the one bad snapshot and keep going; output divergence is
 * reported as data in GateReplayResult and classified by the caller.
 */

#ifndef STROBER_GATE_REPLAY_H
#define STROBER_GATE_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "gate/state_loader.h"
#include "util/status.h"

namespace strober {
namespace gate {

/** Activity extracted from one replay (the "SAIF" of this flow). */
struct ActivityReport
{
    std::vector<uint64_t> netToggles;
    std::vector<MacroStats> macroAccesses;
    uint64_t cycles = 0;
};

/** Result of replaying one snapshot at gate level. */
struct GateReplayResult
{
    uint64_t cyclesReplayed = 0;
    uint64_t outputMismatches = 0;
    std::string firstMismatch;
    LoadReport load;
    ActivityReport activity;

    bool ok() const { return outputMismatches == 0; }
};

/** Knobs for one replay attempt. */
struct ReplayOptions
{
    LoaderKind loader = LoaderKind::FastVpi;
    /**
     * Watchdog: total simulator steps (retiming warm-up + trace cycles
     * + injected stalls) this replay may consume before it is declared
     * hung and fails with ErrorCode::Timeout. 0 disables the watchdog.
     */
    uint64_t cycleBudget = 0;
    /**
     * Fault injection: phantom cycles a hung gate-level simulator burns
     * before making progress. Counted against the watchdog budget;
     * tests use this to prove the timeout path quarantines cleanly.
     */
    uint64_t injectedStallCycles = 0;
};

/**
 * Replay @p snap on @p gsim. The simulator is reset first; snapshots are
 * independent, so callers may reuse one simulator across replays (or use
 * several in parallel processes, as the paper does). On error the
 * simulator's state is unspecified, but the next replay's reset()
 * re-establishes a clean slate.
 */
util::Result<GateReplayResult> replayOnGate(
    GateSimulator &gsim, const rtl::Design &target, const MatchTable &table,
    const fame::ReplayableSnapshot &snap, const ReplayOptions &options = {});

/** Convenience overload keeping the historical loader-only signature. */
inline util::Result<GateReplayResult>
replayOnGate(GateSimulator &gsim, const rtl::Design &target,
             const MatchTable &table, const fame::ReplayableSnapshot &snap,
             LoaderKind loader)
{
    ReplayOptions options;
    options.loader = loader;
    return replayOnGate(gsim, target, table, snap, options);
}

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_REPLAY_H
