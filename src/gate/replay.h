/**
 * @file
 * Gate-level snapshot replay (paper Sections III-B, IV-C): warm the
 * retimed regions by forcing their inputs from the captured history,
 * load the RTL state through the matching table, drive the recorded
 * input tokens for L cycles while verifying every output token, and
 * collect the switching activity the power analysis consumes.
 */

#ifndef STROBER_GATE_REPLAY_H
#define STROBER_GATE_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "gate/state_loader.h"

namespace strober {
namespace gate {

/** Activity extracted from one replay (the "SAIF" of this flow). */
struct ActivityReport
{
    std::vector<uint64_t> netToggles;
    std::vector<MacroStats> macroAccesses;
    uint64_t cycles = 0;
};

/** Result of replaying one snapshot at gate level. */
struct GateReplayResult
{
    uint64_t cyclesReplayed = 0;
    uint64_t outputMismatches = 0;
    std::string firstMismatch;
    LoadReport load;
    ActivityReport activity;

    bool ok() const { return outputMismatches == 0; }
};

/**
 * Replay @p snap on @p gsim. The simulator is reset first; snapshots are
 * independent, so callers may reuse one simulator across replays (or use
 * several in parallel processes, as the paper does).
 */
GateReplayResult replayOnGate(GateSimulator &gsim, const rtl::Design &target,
                              const MatchTable &table,
                              const fame::ReplayableSnapshot &snap,
                              LoaderKind loader = LoaderKind::FastVpi);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_REPLAY_H
