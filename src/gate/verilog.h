/**
 * @file
 * Structural Verilog export of a synthesized gate netlist. The paper's
 * flow hands a Verilog netlist between every CAD tool (Figure 5); this
 * exporter makes the internal netlist consumable by external tools
 * (simulators, equivalence checkers, or a real PrimeTime run) — gates as
 * primitive instances, flip-flops as always-blocks, SRAM macros as
 * behavioral arrays.
 */

#ifndef STROBER_GATE_VERILOG_H
#define STROBER_GATE_VERILOG_H

#include <string>

#include "gate/netlist.h"

namespace strober {
namespace gate {

/** Render @p netlist as a self-contained Verilog module. */
std::string writeVerilog(const GateNetlist &netlist,
                         const std::string &moduleName);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_VERILOG_H
