/**
 * @file
 * Logic synthesis: lower a word-level rtl::Design to a structural gate
 * netlist over the cell library (the repository's Design Compiler
 * substitute; paper Figure 5).
 *
 * What it does, and why each piece matters to the Strober flow:
 *  - Bit-blasts word operations (ripple-carry adders, array multiplier,
 *    restoring divider, barrel shifters, mux/logic per bit).
 *  - Folds constants and sweeps dead gates (so gate names cannot be
 *    derived from RTL names positionally — the reason the matching step
 *    exists).
 *  - Mangles and uniquifies flip-flop names the way ASIC tools do
 *    ("core/fetch/pc" -> "core_fetch_pc_reg_3_"), and emits a guide file
 *    (like DC's .svf) recording the renames; the matcher *verifies* every
 *    guided candidate rather than trusting it (paper Section IV-C1).
 *  - Maps rtl memories to SRAM macros (not flop arrays), as a real flow
 *    would.
 *  - Retimes annotated pipeline regions: the RTL pipeline registers are
 *    dissolved and new register rows are inserted at delay-balanced cuts
 *    of the bit-level cone, so no gate DFF corresponds to those RTL
 *    registers (paper Section IV-C3) — snapshot replay must warm them by
 *    forcing the region inputs instead.
 */

#ifndef STROBER_GATE_SYNTHESIS_H
#define STROBER_GATE_SYNTHESIS_H

#include <string>
#include <vector>

#include "gate/netlist.h"
#include "rtl/ir.h"

namespace strober {
namespace gate {

/**
 * Synthesis guide info ("svf"): the rename records the synthesis tool
 * hands to the formal-verification tool. Candidates only — the matcher
 * must verify them.
 */
struct SynthesisGuide
{
    /** Per RTL register: post-synthesis DFF names, LSB first. Empty when
     *  the register was dissolved by retiming. */
    std::vector<std::vector<std::string>> regDffNames;
    /** Per RTL register: true if dissolved by retiming. */
    std::vector<bool> regRetimed;
    /** Per RTL memory: macro instance name. */
    std::vector<std::string> memMacroNames;
};

/** Synthesis statistics (reported by benches). */
struct SynthesisStats
{
    uint64_t foldedGates = 0;   //!< constant-folded / strength-reduced
    uint64_t sweptGates = 0;    //!< removed by dead-gate elimination
    uint64_t liveGates = 0;
    uint64_t dffCount = 0;
    uint64_t retimedDffCount = 0;
};

/** Result bundle of one synthesis run. */
struct SynthesisResult
{
    GateNetlist netlist;
    SynthesisGuide guide;
    SynthesisStats stats;
};

/** Synthesize @p target (the original, non-FAME design). */
SynthesisResult synthesize(const rtl::Design &target);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_SYNTHESIS_H
