/**
 * @file
 * RTL-to-gate matching — the repository's Formality substitute (paper
 * Section IV-C1).
 *
 * Synthesis mangles and uniquifies names, so RTL register names cannot be
 * used directly to initialize gate-level state. As in the paper's flow,
 * the synthesis tool emits guide information about the renames it
 * performed (SynthesisGuide, like DC's .svf), and the matching step
 * builds the name-mapping table from it — then *verifies* the mapping by
 * co-simulating the RTL and gate netlists from reset with shared stimulus
 * and checking that every matched (register bit, DFF) pair follows the
 * same trajectory and all outputs agree.
 *
 * Registers dissolved by retiming have no gate counterpart; they are
 * recorded as retimed and handled by the replay warm-up instead.
 */

#ifndef STROBER_GATE_MATCHING_H
#define STROBER_GATE_MATCHING_H

#include <cstdint>
#include <vector>

#include "gate/netlist.h"
#include "gate/synthesis.h"
#include "rtl/ir.h"

namespace strober {
namespace gate {

/** The verified RTL-state to gate-state mapping table. */
struct MatchTable
{
    /** Per RTL register: per bit, the matched DFF net (empty if retimed). */
    std::vector<std::vector<NetId>> regToDff;
    /** Per RTL register: dissolved by retiming (load skipped; replay
     *  warm-up recovers it). */
    std::vector<bool> regRetimed;
    /** Per RTL register: trajectory-verified during matching. */
    std::vector<bool> regVerified;
    /** Per RTL memory: macro index in the gate netlist. */
    std::vector<int> memToMacro;

    uint64_t matchedRegs = 0;
    uint64_t retimedRegs = 0;
    uint64_t verifiedRegs = 0;
    /** Outputs agreed on every compared verification cycle. */
    bool outputsEquivalent = false;
};

struct MatchConfig
{
    unsigned verifyCycles = 128;  //!< co-simulation length
    uint64_t seed = 0xf0f0f0f0ULL;
    /**
     * Drive random input stimulus during verification. Designs with
     * retimed regions should verify with quiescent (zero) inputs instead,
     * because retiming changes the first-latency-cycles behaviour of the
     * region (replay output checking provides the strong guarantee
     * there); matchDesigns picks this automatically unless overridden.
     */
    bool randomStimulus = true;
    bool autoStimulus = true; //!< pick stimulus mode from retime presence
};

/**
 * Build and verify the match table between @p target and @p netlist using
 * the synthesis @p guide. Calls fatal() if a guided candidate fails
 * verification (that would be a synthesis bug); registers that cannot be
 * verified due to retiming influence are flagged unverified with a
 * warning.
 */
MatchTable matchDesigns(const rtl::Design &target, const GateNetlist &netlist,
                        const SynthesisGuide &guide,
                        MatchConfig config = MatchConfig());

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_MATCHING_H
