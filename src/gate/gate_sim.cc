#include "gate/gate_sim.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

GateSimulator::GateSimulator(const GateNetlist &netlist) : nl(netlist)
{
    compileOrder();
    reset();
}

void
GateSimulator::compileOrder()
{
    size_t n = nl.numNodes();
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NetId>> users(n);

    auto deps = [&](NetId id, auto &&visit) {
        const GateNode &g = nl.node(id);
        switch (g.type) {
          case CellType::PrimaryInput:
          case CellType::Tie0:
          case CellType::Tie1:
          case CellType::Dff:
            return; // sources
          case CellType::MacroOut: {
            uint32_t mi = g.aux >> 16;
            uint32_t port = (g.aux >> 8) & 0xff;
            const MacroMem &m = nl.macros()[mi];
            if (m.syncRead)
                return; // registered read data: state
            for (NetId a : m.reads[port].addr)
                visit(a);
            if (m.reads[port].en != kNoNet)
                visit(m.reads[port].en);
            return;
          }
          default:
            for (NetId in : g.in) {
                if (in != kNoNet)
                    visit(in);
            }
            return;
        }
    };

    for (NetId id = 0; id < n; ++id) {
        deps(id, [&](NetId dep) {
            ++pending[id];
            users[dep].push_back(id);
        });
    }
    std::vector<NetId> ready;
    combOrder.clear();
    combOrder.reserve(n);
    // Kahn's algorithm; sources excluded from the evaluation list.
    for (NetId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            ready.push_back(id);
    }
    size_t processed = 0;
    while (!ready.empty()) {
        NetId id = ready.back();
        ready.pop_back();
        ++processed;
        const GateNode &g = nl.node(id);
        bool isEval = !g.dead && g.type != CellType::PrimaryInput &&
                      g.type != CellType::Tie0 &&
                      g.type != CellType::Tie1 && g.type != CellType::Dff &&
                      !(g.type == CellType::MacroOut &&
                        nl.macros()[g.aux >> 16].syncRead);
        if (isEval)
            combOrder.push_back(id);
        for (NetId u : users[id]) {
            if (--pending[u] == 0)
                ready.push_back(u);
        }
    }
    if (processed != n)
        fatal("gate netlist has a combinational cycle");
}

void
GateSimulator::reset()
{
    values.assign(nl.numNodes(), 0);
    toggles.assign(nl.numNodes(), 0);
    forces.assign(nl.numNodes(), -1);
    anyForce = false;
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &g = nl.node(id);
        if (g.type == CellType::Tie1)
            values[id] = 1;
        else if (g.type == CellType::Dff)
            values[id] = g.init;
    }
    macroContents.clear();
    macroAcc.assign(nl.macros().size(), MacroStats{});
    syncReadPending.clear();
    for (const MacroMem &m : nl.macros()) {
        macroContents.emplace_back(m.depth, 0);
        for (size_t i = 0; i < m.init.size(); ++i)
            macroContents.back()[i] = m.init[i];
        syncReadPending.emplace_back(m.reads.size() * m.width, 0);
    }
    dffPending.assign(nl.numNodes(), 0);
    cycleCount = 0;
    activityStart = 0;
    combStale = true;
    // Settle the reset state so the first cycle's activity reflects real
    // switching, not the zero-to-reset-value transition.
    evalComb();
    std::fill(toggles.begin(), toggles.end(), 0);
}

void
GateSimulator::pokePort(size_t idx, uint64_t value)
{
    const BitPort &p = nl.inputs().at(idx);
    for (size_t b = 0; b < p.bits.size(); ++b) {
        uint8_t v = (value >> b) & 1;
        if (values[p.bits[b]] != v) {
            ++toggles[p.bits[b]];
            values[p.bits[b]] = v;
            combStale = true;
        }
    }
}

uint64_t
GateSimulator::peekPort(size_t idx)
{
    if (combStale)
        evalComb();
    return busValue(nl.outputs().at(idx).bits);
}

uint64_t
GateSimulator::busValue(const std::vector<NetId> &bitNets) const
{
    uint64_t v = 0;
    for (size_t b = 0; b < bitNets.size(); ++b)
        v |= static_cast<uint64_t>(values[bitNets[b]] & 1) << b;
    return v;
}

void
GateSimulator::evalComb()
{
    if (anyForce) {
        // Forces on source nets (PIs, DFF outputs, ties) are applied up
        // front; comb nets are overridden at evaluation time below.
        for (NetId id : forcedNets)
            values[id] = static_cast<uint8_t>(forces[id]);
    }
    for (NetId id : combOrder) {
        const GateNode &g = nl.node(id);
        uint8_t r = 0;
        switch (g.type) {
          case CellType::Buf:
            r = values[g.in[0]];
            break;
          case CellType::Inv:
            r = values[g.in[0]] ^ 1;
            break;
          case CellType::And2:
            r = values[g.in[0]] & values[g.in[1]];
            break;
          case CellType::Or2:
            r = values[g.in[0]] | values[g.in[1]];
            break;
          case CellType::Nand2:
            r = (values[g.in[0]] & values[g.in[1]]) ^ 1;
            break;
          case CellType::Nor2:
            r = (values[g.in[0]] | values[g.in[1]]) ^ 1;
            break;
          case CellType::Xor2:
            r = values[g.in[0]] ^ values[g.in[1]];
            break;
          case CellType::Xnor2:
            r = values[g.in[0]] ^ values[g.in[1]] ^ 1;
            break;
          case CellType::Mux2:
            r = values[g.in[0]] ? values[g.in[1]] : values[g.in[2]];
            break;
          case CellType::MacroOut: {
            // Async read data bit.
            uint32_t mi = g.aux >> 16;
            uint32_t port = (g.aux >> 8) & 0xff;
            uint32_t bitIdx = g.aux & 0xff;
            const MacroMem &m = nl.macros()[mi];
            uint64_t addr = busValue(m.reads[port].addr);
            uint64_t word =
                addr < m.depth ? macroContents[mi][addr] : 0;
            r = static_cast<uint8_t>((word >> bitIdx) & 1);
            break;
          }
          default:
            panic("unexpected cell in comb order");
        }
        if (anyForce && forces[id] >= 0)
            r = static_cast<uint8_t>(forces[id]);
        if (values[id] != r) {
            ++toggles[id];
            values[id] = r;
        }
    }
    evalCount += combOrder.size();
    combStale = false;
}

void
GateSimulator::step(uint64_t n)
{
    for (uint64_t k = 0; k < n; ++k) {
        if (combStale)
            evalComb();

        // Latch DFF next values.
        for (NetId id : nl.dffs())
            dffPending[id] = values[nl.node(id).in[0]];

        // Sync macro reads latch old contents; count accesses.
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            if (m.syncRead) {
                for (size_t p = 0; p < m.reads.size(); ++p) {
                    const auto &port = m.reads[p];
                    bool en =
                        port.en == kNoNet || values[port.en];
                    if (!en)
                        continue;
                    uint64_t addr = busValue(port.addr);
                    uint64_t word =
                        addr < m.depth ? macroContents[mi][addr] : 0;
                    for (unsigned b = 0; b < m.width; ++b)
                        syncReadPending[mi][p * m.width + b] =
                            static_cast<uint8_t>((word >> b) & 1);
                    ++macroAcc[mi].reads;
                }
            } else {
                // Async ports burn a read access every cycle.
                macroAcc[mi].reads += m.reads.size();
            }
        }

        // Macro writes (after reads: read-before-write).
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            for (const auto &port : m.writes) {
                bool en = port.en == kNoNet || values[port.en];
                if (!en)
                    continue;
                uint64_t addr = busValue(port.addr);
                if (addr < m.depth)
                    macroContents[mi][addr] = busValue(port.data);
                ++macroAcc[mi].writes;
            }
        }

        // Commit state, counting output toggles.
        for (NetId id : nl.dffs()) {
            if (values[id] != dffPending[id]) {
                ++toggles[id];
                values[id] = dffPending[id];
            }
        }
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            if (!m.syncRead)
                continue;
            for (size_t p = 0; p < m.reads.size(); ++p) {
                const auto &port = m.reads[p];
                bool en = port.en == kNoNet || values[port.en];
                if (!en)
                    continue;
                for (unsigned b = 0; b < m.width; ++b) {
                    NetId net = port.data[b];
                    uint8_t v = syncReadPending[mi][p * m.width + b];
                    if (values[net] != v) {
                        ++toggles[net];
                        values[net] = v;
                    }
                }
            }
        }

        if (dutyTracking) {
            if (highTime.size() != values.size())
                highTime.assign(values.size(), 0);
            for (size_t i = 0; i < values.size(); ++i)
                highTime[i] += values[i];
        }

        ++cycleCount;
        combStale = true;
    }
}

void
GateSimulator::clearActivity()
{
    std::fill(toggles.begin(), toggles.end(), 0);
    std::fill(highTime.begin(), highTime.end(), 0);
    macroAcc.assign(nl.macros().size(), MacroStats{});
    activityStart = cycleCount;
}

void
GateSimulator::setDff(NetId net, bool value)
{
    if (nl.node(net).type != CellType::Dff)
        fatal("setDff on non-DFF net %u ('%s')", net,
              nl.node(net).name.c_str());
    values[net] = value;
    combStale = true;
}

uint64_t
GateSimulator::macroWord(size_t macroIdx, uint64_t addr) const
{
    return macroContents.at(macroIdx).at(addr);
}

void
GateSimulator::setMacroWord(size_t macroIdx, uint64_t addr, uint64_t value)
{
    const MacroMem &m = nl.macros().at(macroIdx);
    macroContents.at(macroIdx).at(addr) = truncate(value, m.width);
    combStale = true;
}

uint64_t
GateSimulator::macroReadData(size_t macroIdx, size_t port) const
{
    const MacroMem &m = nl.macros().at(macroIdx);
    uint64_t v = 0;
    for (unsigned b = 0; b < m.width; ++b)
        v |= static_cast<uint64_t>(values[m.reads[port].data[b]] & 1) << b;
    return v;
}

void
GateSimulator::setMacroReadData(size_t macroIdx, size_t port, uint64_t value)
{
    const MacroMem &m = nl.macros().at(macroIdx);
    if (!m.syncRead)
        fatal("setMacroReadData on async macro '%s'", m.name.c_str());
    for (unsigned b = 0; b < m.width; ++b)
        values[m.reads[port].data[b]] = (value >> b) & 1;
    combStale = true;
}

void
GateSimulator::forceNet(NetId net, bool value)
{
    if (forces[net] < 0)
        forcedNets.push_back(net);
    forces[net] = value ? 1 : 0;
    anyForce = true;
    combStale = true;
}

void
GateSimulator::releaseForces()
{
    for (NetId id : forcedNets)
        forces[id] = -1;
    forcedNets.clear();
    anyForce = false;
    combStale = true;
}

} // namespace gate
} // namespace strober
