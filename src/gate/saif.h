/**
 * @file
 * SAIF (Switching Activity Interchange Format) emission. In the paper's
 * flow, VCS writes a SAIF file per replayed snapshot and PrimeTime PX
 * consumes it ("We provide the switching activity interface format
 * (SAIF) files to the power analysis tool", Section IV-E) — the format
 * also being what makes the power-analysis time independent of the
 * replay length. This module renders an ActivityReport as a standard
 * backward-SAIF file so external power tools could consume this flow's
 * activity directly.
 *
 * Duty cycles (T0/T1) require per-net high-time, which the gate
 * simulator collects only when duty tracking is enabled
 * (GateSimulator::enableDutyTracking); otherwise T0/T1 are split evenly
 * and only TC (toggle counts) carries information.
 */

#ifndef STROBER_GATE_SAIF_H
#define STROBER_GATE_SAIF_H

#include <string>

#include "gate/netlist.h"
#include "gate/replay.h"

namespace strober {
namespace gate {

struct SaifOptions
{
    std::string designName = "top";
    double clockHz = 1e9;
    /** Per-net cycles-at-1, parallel to nets; empty = assume 50/50. */
    const std::vector<uint64_t> *highCycles = nullptr;
    /** Skip nets with zero toggles to keep files small. */
    bool omitQuiet = false;
};

/** Render @p activity as a SAIF 2.0 document. */
std::string writeSaif(const GateNetlist &netlist,
                      const ActivityReport &activity,
                      const SaifOptions &options);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_SAIF_H
