#include "gate/netlist.h"

#include <deque>

#include "util/logging.h"

namespace strober {
namespace gate {

uint32_t
GateNetlist::addGroup(const std::string &path)
{
    auto it = groupIndex.find(path);
    if (it != groupIndex.end())
        return it->second;
    uint32_t idx = static_cast<uint32_t>(groups.size());
    groups.push_back(path);
    groupIndex[path] = idx;
    return idx;
}

NetId
GateNetlist::findDff(const std::string &name) const
{
    if (dffByName.empty()) {
        for (NetId id : dffNets)
            dffByName[nodes[id].name] = id;
    }
    auto it = dffByName.find(name);
    return it == dffByName.end() ? kNoNet : it->second;
}

int
GateNetlist::findInput(const std::string &name) const
{
    for (size_t i = 0; i < inputPorts.size(); ++i) {
        if (inputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
GateNetlist::findOutput(const std::string &name) const
{
    for (size_t i = 0; i < outputPorts.size(); ++i) {
        if (outputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
GateNetlist::findMacro(const std::string &name) const
{
    for (size_t i = 0; i < macroMems.size(); ++i) {
        if (macroMems[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

uint64_t
GateNetlist::liveGateCount() const
{
    uint64_t count = 0;
    for (const GateNode &n : nodes) {
        if (!n.dead && n.type != CellType::PrimaryInput &&
            n.type != CellType::MacroOut) {
            ++count;
        }
    }
    return count;
}

double
GateNetlist::totalAreaUm2() const
{
    double area = 0.0;
    for (const GateNode &n : nodes) {
        if (!n.dead)
            area += cellSpec(n.type).areaUm2;
    }
    const LibraryConstants &lib = libraryConstants();
    for (const MacroMem &m : macroMems)
        area += lib.sramAreaUm2PerBit * static_cast<double>(m.width) *
                static_cast<double>(m.depth);
    return area;
}

void
GateNetlist::sweepDeadGates()
{
    std::vector<bool> live(nodes.size(), false);
    std::deque<NetId> work;

    auto markRoot = [&](NetId id) {
        if (id != kNoNet && !live[id]) {
            live[id] = true;
            work.push_back(id);
        }
    };

    for (const BitPort &p : outputPorts)
        for (NetId id : p.bits)
            markRoot(id);
    // All state is observable through scan/snapshot loading, so DFFs and
    // macro port connections keep their fanin cones alive.
    for (NetId id : dffNets)
        markRoot(id);
    for (const MacroMem &m : macroMems) {
        for (const auto &r : m.reads) {
            for (NetId id : r.addr)
                markRoot(id);
            for (NetId id : r.data)
                markRoot(id);
            markRoot(r.en);
        }
        for (const auto &w : m.writes) {
            for (NetId id : w.addr)
                markRoot(id);
            for (NetId id : w.data)
                markRoot(id);
            markRoot(w.en);
        }
    }

    while (!work.empty()) {
        NetId id = work.front();
        work.pop_front();
        const GateNode &n = nodes[id];
        for (NetId in : n.in) {
            if (in != kNoNet && !live[in]) {
                live[in] = true;
                work.push_back(in);
            }
        }
    }

    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i] && nodes[i].type != CellType::PrimaryInput)
            nodes[i].dead = true;
    }
}

} // namespace gate
} // namespace strober
