#include "gate/netlist.h"

#include <deque>

#include "util/logging.h"

namespace strober {
namespace gate {

uint32_t
GateNetlist::addGroup(const std::string &path)
{
    auto it = groupIndex.find(path);
    if (it != groupIndex.end())
        return it->second;
    uint32_t idx = static_cast<uint32_t>(groups.size());
    groups.push_back(path);
    groupIndex[path] = idx;
    return idx;
}

NetId
GateNetlist::findDff(const std::string &name) const
{
    if (dffByName.empty()) {
        for (NetId id : dffNets)
            dffByName[nodes[id].name] = id;
    }
    auto it = dffByName.find(name);
    return it == dffByName.end() ? kNoNet : it->second;
}

int
GateNetlist::findInput(const std::string &name) const
{
    for (size_t i = 0; i < inputPorts.size(); ++i) {
        if (inputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
GateNetlist::findOutput(const std::string &name) const
{
    for (size_t i = 0; i < outputPorts.size(); ++i) {
        if (outputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
GateNetlist::findMacro(const std::string &name) const
{
    for (size_t i = 0; i < macroMems.size(); ++i) {
        if (macroMems[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

uint64_t
GateNetlist::liveGateCount() const
{
    uint64_t count = 0;
    for (const GateNode &n : nodes) {
        if (!n.dead && n.type != CellType::PrimaryInput &&
            n.type != CellType::MacroOut) {
            ++count;
        }
    }
    return count;
}

double
GateNetlist::totalAreaUm2() const
{
    double area = 0.0;
    for (const GateNode &n : nodes) {
        if (!n.dead)
            area += cellSpec(n.type).areaUm2;
    }
    const LibraryConstants &lib = libraryConstants();
    for (const MacroMem &m : macroMems)
        area += lib.sramAreaUm2PerBit * static_cast<double>(m.width) *
                static_cast<double>(m.depth);
    return area;
}

void
GateNetlist::sweepDeadGates()
{
    std::vector<bool> live(nodes.size(), false);
    std::deque<NetId> work;

    auto markRoot = [&](NetId id) {
        if (id != kNoNet && !live[id]) {
            live[id] = true;
            work.push_back(id);
        }
    };

    for (const BitPort &p : outputPorts)
        for (NetId id : p.bits)
            markRoot(id);
    // All state is observable through scan/snapshot loading, so DFFs and
    // macro port connections keep their fanin cones alive.
    for (NetId id : dffNets)
        markRoot(id);
    for (const MacroMem &m : macroMems) {
        for (const auto &r : m.reads) {
            for (NetId id : r.addr)
                markRoot(id);
            for (NetId id : r.data)
                markRoot(id);
            markRoot(r.en);
        }
        for (const auto &w : m.writes) {
            for (NetId id : w.addr)
                markRoot(id);
            for (NetId id : w.data)
                markRoot(id);
            markRoot(w.en);
        }
    }

    while (!work.empty()) {
        NetId id = work.front();
        work.pop_front();
        const GateNode &n = nodes[id];
        for (NetId in : n.in) {
            if (in != kNoNet && !live[in]) {
                live[in] = true;
                work.push_back(in);
            }
        }
    }

    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!live[i] && nodes[i].type != CellType::PrimaryInput)
            nodes[i].dead = true;
    }
}

namespace {

/** FNV-1a, folded 8 bytes at a time; order-sensitive by construction. */
class StructHash
{
  public:
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (v >> (8 * i)) & 0xff;
            state *= 0x100000001b3ull;
        }
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (char c : s) {
            state ^= static_cast<uint8_t>(c);
            state *= 0x100000001b3ull;
        }
    }

    void
    nets(const std::vector<NetId> &v)
    {
        u64(v.size());
        for (NetId id : v)
            u64(id);
    }

    uint64_t value() const { return state; }

  private:
    uint64_t state = 0xcbf29ce484222325ull;
};

} // namespace

uint64_t
netlistFingerprint(const GateNetlist &netlist)
{
    StructHash h;
    h.u64(netlist.numNodes());
    for (NetId id = 0; id < netlist.numNodes(); ++id) {
        const GateNode &n = netlist.node(id);
        h.u64(static_cast<uint64_t>(n.type) |
              (static_cast<uint64_t>(n.group) << 8) |
              (static_cast<uint64_t>(n.init) << 40) |
              (static_cast<uint64_t>(n.dead) << 41));
        h.u64(n.in[0]);
        h.u64(n.in[1]);
        h.u64(n.in[2]);
        h.u64(n.aux);
    }
    h.u64(netlist.inputs().size());
    for (const BitPort &p : netlist.inputs()) {
        h.str(p.name);
        h.nets(p.bits);
    }
    h.u64(netlist.outputs().size());
    for (const BitPort &p : netlist.outputs()) {
        h.str(p.name);
        h.nets(p.bits);
    }
    h.u64(netlist.macros().size());
    for (const MacroMem &m : netlist.macros()) {
        h.str(m.name);
        h.u64(m.width);
        h.u64(m.depth);
        h.u64(m.syncRead);
        h.u64(m.group);
        h.u64(m.reads.size());
        for (const MacroMem::ReadPort &rp : m.reads) {
            h.nets(rp.addr);
            h.nets(rp.data);
            h.u64(rp.en);
        }
        h.u64(m.writes.size());
        for (const MacroMem::WritePort &wp : m.writes) {
            h.nets(wp.addr);
            h.nets(wp.data);
            h.u64(wp.en);
        }
        h.u64(m.init.size());
        for (uint64_t w : m.init)
            h.u64(w);
    }
    h.u64(netlist.retime().size());
    for (const RetimeNetInfo &r : netlist.retime()) {
        h.str(r.name);
        h.u64(r.latency);
        h.u64(r.inputNets.size());
        for (const auto &bits : r.inputNets)
            h.nets(bits);
        h.u64(r.dffNames.size());
        for (const std::string &name : r.dffNames)
            h.str(name);
    }
    h.nets(netlist.dffs());
    h.u64(netlist.groupNames().size());
    for (const std::string &g : netlist.groupNames())
        h.str(g);
    return h.value();
}

} // namespace gate
} // namespace strober
