/**
 * @file
 * Structural gate-level netlist: the output of synthesis (src/gate/
 * synthesis.h) and the input to placement, matching, gate-level
 * simulation and power analysis.
 *
 * Conventions:
 *  - One node per net; the node index IS the net id. Every node is either
 *    a primary-input bit, a tie cell, a combinational cell, a flip-flop,
 *    or one data bit of an SRAM macro read port.
 *  - Memories are SRAM macros (as in a real ASIC flow), with word-level
 *    contents and per-access energy, not flop arrays.
 *  - Node names are post-synthesis (mangled/uniquified) names; instance
 *    grouping for power/area breakdown is by @ref GateNode::group, an
 *    index into groupNames() derived from the RTL hierarchy.
 */

#ifndef STROBER_GATE_NETLIST_H
#define STROBER_GATE_NETLIST_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gate/cell_library.h"

namespace strober {
namespace gate {

using NetId = uint32_t;
constexpr NetId kNoNet = UINT32_MAX;

/** One gate (and the net it drives). */
struct GateNode
{
    CellType type = CellType::Tie0;
    NetId in[3] = {kNoNet, kNoNet, kNoNet};
    uint32_t group = 0;   //!< index into GateNetlist::groupNames()
    uint32_t aux = 0;     //!< MacroOut: (macro << 16)|(port << 8)|bit
    bool init = false;    //!< Dff reset value
    bool dead = false;    //!< swept by dead-gate elimination
    std::string name;     //!< post-synthesis name (Dffs and macros only)
};

/** A word-level port of the netlist (bundle of bit nets, LSB first). */
struct BitPort
{
    std::string name;
    std::vector<NetId> bits;
};

/** An SRAM macro. */
struct MacroMem
{
    std::string name;
    unsigned width = 0;
    uint64_t depth = 0;
    bool syncRead = false;
    uint32_t group = 0;

    struct ReadPort
    {
        std::vector<NetId> addr;
        std::vector<NetId> data; //!< MacroOut nodes
        NetId en = kNoNet;       //!< kNoNet = always enabled
    };
    struct WritePort
    {
        std::vector<NetId> addr;
        std::vector<NetId> data;
        NetId en = kNoNet;
    };
    std::vector<ReadPort> reads;
    std::vector<WritePort> writes;
    /** Reset contents (mirrors rtl::MemInfo::init). */
    std::vector<uint64_t> init;
};

/** Register-retiming bookkeeping exported by synthesis for replay. */
struct RetimeNetInfo
{
    std::string name;
    unsigned latency = 0;
    /** Gate nets of each region input (one bit vector per RTL input). */
    std::vector<std::vector<NetId>> inputNets;
    /** Names of the retimed DFFs synthesis inserted. */
    std::vector<std::string> dffNames;
};

/** A complete gate-level netlist. */
class GateNetlist
{
  public:
    NetId
    addNode(GateNode node)
    {
        nodes.push_back(std::move(node));
        return static_cast<NetId>(nodes.size() - 1);
    }

    const GateNode &node(NetId id) const { return nodes[id]; }
    GateNode &node(NetId id) { return nodes[id]; }
    size_t numNodes() const { return nodes.size(); }

    std::vector<BitPort> &inputs() { return inputPorts; }
    const std::vector<BitPort> &inputs() const { return inputPorts; }
    std::vector<BitPort> &outputs() { return outputPorts; }
    const std::vector<BitPort> &outputs() const { return outputPorts; }

    std::vector<MacroMem> &macros() { return macroMems; }
    const std::vector<MacroMem> &macros() const { return macroMems; }

    std::vector<RetimeNetInfo> &retime() { return retimeInfos; }
    const std::vector<RetimeNetInfo> &retime() const { return retimeInfos; }

    /** Register an instance-path group; @return its index. */
    uint32_t addGroup(const std::string &path);
    const std::vector<std::string> &groupNames() const { return groups; }

    /** All Dff nets, in creation order. */
    const std::vector<NetId> &dffs() const { return dffNets; }
    void noteDff(NetId id) { dffNets.push_back(id); }

    /** Find a Dff net by its post-synthesis name; kNoNet if absent. */
    NetId findDff(const std::string &name) const;

    int findInput(const std::string &name) const;
    int findOutput(const std::string &name) const;
    int findMacro(const std::string &name) const;

    /** Live (non-dead) gate count, by cell type and total. */
    uint64_t liveGateCount() const;
    /** Total cell area (um^2), live gates + macros. */
    double totalAreaUm2() const;

    /** Mark gates not reachable from outputs/state as dead. */
    void sweepDeadGates();

  private:
    std::vector<GateNode> nodes;
    std::vector<BitPort> inputPorts;
    std::vector<BitPort> outputPorts;
    std::vector<MacroMem> macroMems;
    std::vector<RetimeNetInfo> retimeInfos;
    std::vector<std::string> groups;
    std::map<std::string, uint32_t> groupIndex;
    std::vector<NetId> dffNets;
    mutable std::map<std::string, NetId> dffByName; //!< lazy cache
};

/**
 * Structural fingerprint of a netlist: a 64-bit hash over every gate
 * (type, fanin, group, aux, init, dead flag), port, macro geometry,
 * retiming annotation and DFF ordering — everything replay and power
 * analysis consume. Two netlists with equal fingerprints replay a given
 * snapshot identically, which is what lets the farm's result cache key
 * on it: any synthesis change (cell remap, retiming, sweep) changes the
 * fingerprint and invalidates cached results.
 */
uint64_t netlistFingerprint(const GateNetlist &netlist);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_NETLIST_H
