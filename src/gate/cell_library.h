/**
 * @file
 * A small standard-cell library: the repository's stand-in for the TSMC
 * 45 nm library the paper synthesizes into. Per-cell electrical numbers
 * (input capacitance, internal switching energy, leakage, area, delay)
 * are representative of a generic 45 nm process at 1.0 V — the power
 * analysis only needs them to be *consistent*, since every experiment
 * compares estimates produced through the same library.
 */

#ifndef STROBER_GATE_CELL_LIBRARY_H
#define STROBER_GATE_CELL_LIBRARY_H

#include <cstdint>

namespace strober {
namespace gate {

/** Cell kinds in the gate netlist. */
enum class CellType : uint8_t {
    PrimaryInput, //!< not a cell; a top-level input bit
    Tie0,         //!< constant 0 driver
    Tie1,         //!< constant 1 driver
    Buf,
    Inv,
    And2,
    Or2,
    Nand2,
    Nor2,
    Xor2,
    Xnor2,
    Mux2,         //!< inputs: sel, a (sel=1), b (sel=0)
    Dff,          //!< inputs: d; state element
    MacroOut,     //!< one data bit of an SRAM macro read port
};

/** Electrical and physical characteristics of one cell type. */
struct CellSpec
{
    const char *name;
    unsigned numInputs;
    double inputCapFf;     //!< capacitance per input pin (fF)
    double internalEnFj;   //!< internal energy per output toggle (fJ)
    double leakageNw;      //!< leakage power (nW)
    double areaUm2;        //!< cell area (um^2)
    double delayPs;        //!< nominal propagation delay (ps)
};

/** @return the characteristics of @p type. */
const CellSpec &cellSpec(CellType type);

/** Library-level constants. */
struct LibraryConstants
{
    double vdd = 1.0;            //!< supply (V)
    double wireCapFfPerUm = 0.2; //!< routed wire capacitance per um
    /** SRAM macro energies (pJ per access) and leakage, scaled by bits. */
    double sramReadPjPerBit = 0.012;
    double sramWritePjPerBit = 0.016;
    double sramLeakNwPerBit = 0.008;
    double sramAreaUm2PerBit = 0.6;
    /** Clock network: effective switched capacitance per flip-flop
     *  (clock pin + its share of the buffer tree and clock wiring),
     *  toggling every cycle regardless of data activity. */
    double clockCapFfPerDff = 2.4;
};

/** @return the process constants used by placement and power analysis. */
const LibraryConstants &libraryConstants();

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_CELL_LIBRARY_H
