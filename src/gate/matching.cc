#include "gate/matching.h"

#include <algorithm>

#include "gate/gate_sim.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

MatchTable
matchDesigns(const rtl::Design &target, const GateNetlist &netlist,
             const SynthesisGuide &guide, MatchConfig config)
{
    MatchTable table;
    table.regToDff.resize(target.regs().size());
    table.regRetimed.assign(target.regs().size(), false);
    table.regVerified.assign(target.regs().size(), false);

    bool hasRetiming = !netlist.retime().empty();
    if (config.autoStimulus && hasRetiming)
        config.randomStimulus = false;

    // --- Build candidates from the synthesis guide ----------------------
    for (size_t i = 0; i < target.regs().size(); ++i) {
        if (guide.regRetimed.at(i)) {
            table.regRetimed[i] = true;
            ++table.retimedRegs;
            continue;
        }
        const rtl::Node &n = target.node(target.regs()[i].node);
        const auto &names = guide.regDffNames.at(i);
        if (names.size() != n.width)
            fatal("guide for register '%s' names %zu DFFs, width is %u",
                  n.name.c_str(), names.size(), n.width);
        std::vector<NetId> nets;
        for (const std::string &name : names) {
            NetId net = netlist.findDff(name);
            if (net == kNoNet)
                fatal("guide names unknown DFF '%s'", name.c_str());
            nets.push_back(net);
        }
        table.regToDff[i] = std::move(nets);
        ++table.matchedRegs;
    }

    table.memToMacro.resize(target.mems().size(), -1);
    for (size_t mi = 0; mi < target.mems().size(); ++mi) {
        int macro = netlist.findMacro(guide.memMacroNames.at(mi));
        if (macro < 0)
            fatal("guide names unknown macro '%s'",
                  guide.memMacroNames[mi].c_str());
        table.memToMacro[mi] = macro;
    }

    // --- Verify by lock-step co-simulation ------------------------------
    sim::Simulator rtlSim(target);
    GateSimulator gateSim(netlist);
    stats::Rng rng(config.seed);

    unsigned settle = 0;
    for (const RetimeNetInfo &r : netlist.retime())
        settle = std::max(settle, r.latency);

    std::vector<uint64_t> outputDisagreements(target.outputs().size(), 0);
    std::vector<uint64_t> trajectoryMismatch(target.regs().size(), 0);

    for (unsigned cycle = 0; cycle < config.verifyCycles; ++cycle) {
        for (size_t i = 0; i < target.inputs().size(); ++i) {
            const rtl::Node &in = target.node(target.inputs()[i]);
            uint64_t v = config.randomStimulus
                             ? truncate(rng.next(), in.width)
                             : 0;
            rtlSim.poke(target.inputs()[i], v);
            gateSim.pokePort(i, v);
        }
        if (cycle >= settle) {
            for (size_t o = 0; o < target.outputs().size(); ++o) {
                uint64_t want = rtlSim.peek(target.outputs()[o].node);
                if (gateSim.peekPort(o) != want)
                    ++outputDisagreements[o];
            }
        }
        rtlSim.step();
        gateSim.step();

        for (size_t i = 0; i < target.regs().size(); ++i) {
            if (table.regRetimed[i])
                continue;
            uint64_t rv = rtlSim.regValue(i);
            const auto &nets = table.regToDff[i];
            for (size_t b = 0; b < nets.size(); ++b) {
                if (gateSim.dffValue(nets[b]) != static_cast<bool>(
                        bit(rv, static_cast<unsigned>(b)))) {
                    ++trajectoryMismatch[i];
                    break;
                }
            }
        }
    }

    // Memory contents must also agree at the end of the run.
    bool memAgree = true;
    for (size_t mi = 0; mi < target.mems().size(); ++mi) {
        const rtl::MemInfo &m = target.mems()[mi];
        size_t macro = static_cast<size_t>(table.memToMacro[mi]);
        for (uint64_t a = 0; a < m.depth && memAgree; ++a) {
            if (rtlSim.memWord(mi, a) != gateSim.macroWord(macro, a))
                memAgree = false;
        }
    }

    for (size_t i = 0; i < target.regs().size(); ++i) {
        if (table.regRetimed[i])
            continue;
        if (trajectoryMismatch[i] == 0) {
            table.regVerified[i] = true;
            ++table.verifiedRegs;
        } else if (hasRetiming) {
            warn("match verification inconclusive for register '%s' "
                 "(downstream of a retimed region; replay checking covers "
                 "it)", target.node(target.regs()[i].node).name.c_str());
        } else {
            fatal("matched register '%s' failed trajectory verification",
                  target.node(target.regs()[i].node).name.c_str());
        }
    }

    uint64_t totalOutputMismatch = 0;
    for (uint64_t d : outputDisagreements)
        totalOutputMismatch += d;
    table.outputsEquivalent = totalOutputMismatch == 0 && memAgree;
    if (!table.outputsEquivalent && !hasRetiming)
        fatal("RTL and gate netlist are not equivalent "
              "(%llu output disagreements, memories %s)",
              (unsigned long long)totalOutputMismatch,
              memAgree ? "agree" : "disagree");

    return table;
}

} // namespace gate
} // namespace strober
