/**
 * @file
 * Snapshot state loaders for gate-level simulation (paper Section
 * IV-C2). The paper found that driving the simulator's command
 * interface one register at a time ran at ~400 commands/second (40
 * minutes per design load) and replaced it with a VPI-based bulk loader
 * at ~20000 commands/second (54 seconds). Both are implemented here:
 * they perform identical state transfers but model the respective
 * command costs, so the bench for that engineering point can report the
 * contrast.
 */

#ifndef STROBER_GATE_STATE_LOADER_H
#define STROBER_GATE_STATE_LOADER_H

#include <cstdint>

#include "fame/scan_chain.h"
#include "gate/gate_sim.h"
#include "gate/matching.h"
#include "util/status.h"

namespace strober {
namespace gate {

/** Loader accounting. */
struct LoadReport
{
    uint64_t commands = 0;
    double modeledSeconds = 0.0;
    uint64_t skippedRetimed = 0; //!< register bits left to warm-up
};

enum class LoaderKind
{
    SlowScript, //!< simulator command scripts: ~400 cmds/s
    FastVpi,    //!< compiled VPI loader: ~20000 cmds/s
};

/** @return the other loader (bounded-retry fallback in the estimator). */
LoaderKind alternateLoader(LoaderKind kind);

/** @return the modeled command rate for @p kind (commands per second). */
double loaderCommandRate(LoaderKind kind);

/**
 * Load @p state into @p gsim using the match table. Registers dissolved
 * by retiming are skipped (replay warm-up recovers them). Commands are
 * one per flip-flop bit plus one per memory word. Fails with
 * GeometryMismatch when the snapshot state's shape (register count,
 * memory depths, sync-read ports) does not match the target design —
 * the simulator may be partially written at that point, so the caller
 * must treat the attempt as failed and not replay.
 */
util::Result<LoadReport> loadState(GateSimulator &gsim,
                                   const rtl::Design &target,
                                   const MatchTable &table,
                                   const fame::StateSnapshot &state,
                                   LoaderKind kind);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_STATE_LOADER_H
