/**
 * @file
 * Gate-level simulator with switching-activity collection — the
 * repository's substitute for VCS driving a post-layout netlist (paper
 * Figure 5). Deliberately detailed (every net of every bit-blasted gate
 * is evaluated and toggle-counted each cycle), which is what makes it
 * orders of magnitude slower than the word-level fast simulator and
 * reproduces the speed gap the sampling methodology exploits.
 *
 * Activity semantics: zero-delay, one evaluation per cycle; a net's
 * toggle count increments whenever its settled value differs from the
 * previous cycle's settled value. SRAM macros count read and write
 * accesses instead (their energy is per-access, as in real flows).
 */

#ifndef STROBER_GATE_GATE_SIM_H
#define STROBER_GATE_GATE_SIM_H

#include <cstdint>
#include <vector>

#include "gate/netlist.h"

namespace strober {
namespace gate {

/** Per-macro access counters. */
struct MacroStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
};

/** Cycle-based two-valued gate-level simulator. */
class GateSimulator
{
  public:
    explicit GateSimulator(const GateNetlist &netlist);

    const GateNetlist &netlist() const { return nl; }

    /** DFFs to their init values, macros to zero, counters cleared. */
    void reset();

    /** Drive input port @p idx with @p value (bit-sliced onto PI nets). */
    void pokePort(size_t idx, uint64_t value);
    /** Read output port @p idx (evaluates if stale). */
    uint64_t peekPort(size_t idx);

    void evalComb();
    void step(uint64_t n = 1);
    uint64_t cycle() const { return cycleCount; }

    /** Per-net toggle counts since the last clearActivity(). */
    const std::vector<uint64_t> &toggleCounts() const { return toggles; }
    const std::vector<MacroStats> &macroStats() const { return macroAcc; }
    /** Cycles elapsed since the last clearActivity(). */
    uint64_t activityCycles() const { return cycleCount - activityStart; }
    void clearActivity();

    /** Gate evaluations executed (simulation-rate reporting). */
    uint64_t gateEvals() const { return evalCount; }

    /** Collect per-net time-at-1 (SAIF T0/T1); costs ~one pass/cycle. */
    void enableDutyTracking() { dutyTracking = true; }
    /** Cycles each net spent at 1 since clearActivity (empty unless
     *  duty tracking is enabled). */
    const std::vector<uint64_t> &highCycles() const { return highTime; }

    // --- State access (loaders / verification) -------------------------
    bool dffValue(NetId net) const { return values[net] != 0; }
    void setDff(NetId net, bool value);
    uint64_t macroWord(size_t macroIdx, uint64_t addr) const;
    void setMacroWord(size_t macroIdx, uint64_t addr, uint64_t value);
    /** Registered read data of a sync macro port. */
    uint64_t macroReadData(size_t macroIdx, size_t port) const;
    void setMacroReadData(size_t macroIdx, size_t port, uint64_t value);

    // --- Forcing (retiming warm-up) --------------------------------------
    /** Override a net's value during evaluation until released. */
    void forceNet(NetId net, bool value);
    void releaseForces();

  private:
    const GateNetlist &nl;
    std::vector<uint8_t> values;
    std::vector<uint64_t> toggles;
    std::vector<uint64_t> highTime;
    bool dutyTracking = false;
    std::vector<int8_t> forces; //!< -1 none, else forced value
    std::vector<NetId> forcedNets;
    bool anyForce = false;
    std::vector<std::vector<uint64_t>> macroContents;
    std::vector<MacroStats> macroAcc;
    std::vector<uint8_t> dffPending;
    std::vector<std::vector<uint8_t>> syncReadPending; //!< [macro][port*w+b]
    std::vector<NetId> combOrder;
    uint64_t cycleCount = 0;
    uint64_t activityStart = 0;
    uint64_t evalCount = 0;
    bool combStale = true;

    void compileOrder();
    uint64_t busValue(const std::vector<NetId> &bitNets) const;
    void setBus(const std::vector<NetId> &bitNets, uint64_t value,
                bool countToggles);
};

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_GATE_SIM_H
