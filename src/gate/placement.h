/**
 * @file
 * Floorplanning and placement — the repository's IC Compiler substitute
 * (paper Figure 5, Figure 6). Instances are clustered by their RTL
 * hierarchy group into rectangular blocks packed onto a near-square die;
 * per-net wire capacitance is estimated from half-perimeter wire length.
 * The power analysis consumes the wire capacitances; the Figure-6 bench
 * prints the block floorplan.
 */

#ifndef STROBER_GATE_PLACEMENT_H
#define STROBER_GATE_PLACEMENT_H

#include <string>
#include <vector>

#include "gate/netlist.h"

namespace strober {
namespace gate {

/** One placed hierarchy block. */
struct BlockPlacement
{
    std::string name;
    double areaUm2 = 0;
    double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    uint64_t gates = 0;
    uint64_t macroBits = 0;
};

/** Placement result: per-net wire caps and the block floorplan. */
struct Placement
{
    double dieWidthUm = 0;
    double dieHeightUm = 0;
    double utilization = 0.7; //!< placement density target
    std::vector<BlockPlacement> blocks;      //!< by group index
    std::vector<double> netWireCapFf;        //!< per net (driver-indexed)
    std::vector<float> gateX, gateY;         //!< per gate location

    double totalWireCapFf() const;
};

/** Place @p netlist and estimate wire parasitics. */
Placement place(const GateNetlist &netlist);

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_PLACEMENT_H
