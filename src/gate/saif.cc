#include "gate/saif.h"

#include <sstream>

#include "util/logging.h"

namespace strober {
namespace gate {

namespace {

/** SAIF identifiers cannot contain brackets; escape like netlist tools. */
std::string
saifName(const std::string &name, NetId id)
{
    if (name.empty())
        return "n" + std::to_string(id);
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '[')
            out += "_";
        else if (c == ']')
            continue;
        else if (c == '/')
            out += ".";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
writeSaif(const GateNetlist &netlist, const ActivityReport &activity,
          const SaifOptions &options)
{
    if (activity.netToggles.size() != netlist.numNodes())
        fatal("SAIF: activity does not match netlist");
    if (options.highCycles &&
        options.highCycles->size() != netlist.numNodes())
        fatal("SAIF: duty data does not match netlist");

    // Duration in picoseconds at the target clock.
    double cyclePs = 1e12 / options.clockHz;
    uint64_t durationPs =
        static_cast<uint64_t>(cyclePs * static_cast<double>(activity.cycles));

    std::ostringstream os;
    os << "(SAIFILE\n"
          "  (SAIFVERSION \"2.0\")\n"
          "  (DIRECTION \"backward\")\n"
          "  (DESIGN \"" << options.designName << "\")\n"
          "  (TIMESCALE 1 ps)\n"
          "  (DURATION " << durationPs << ")\n"
          "  (INSTANCE " << options.designName << "\n"
          "    (NET\n";

    for (NetId id = 0; id < netlist.numNodes(); ++id) {
        const GateNode &n = netlist.node(id);
        if (n.dead)
            continue;
        uint64_t toggles = activity.netToggles[id];
        if (options.omitQuiet && toggles == 0)
            continue;
        uint64_t t1Ps;
        if (options.highCycles) {
            t1Ps = static_cast<uint64_t>(
                cyclePs *
                static_cast<double>((*options.highCycles)[id]));
        } else {
            t1Ps = durationPs / 2;
        }
        uint64_t t0Ps = durationPs - t1Ps;
        os << "      (" << saifName(n.name, id) << "\n"
           << "        (T0 " << t0Ps << ") (T1 " << t1Ps
           << ") (TX 0)\n"
           << "        (TC " << toggles << ") (IG 0)\n"
           << "      )\n";
    }
    os << "    )\n  )\n)\n";
    return os.str();
}

} // namespace gate
} // namespace strober
