#include "gate/cell_library.h"

#include "util/logging.h"

namespace strober {
namespace gate {

const CellSpec &
cellSpec(CellType type)
{
    // Representative 45 nm numbers: caps in fF, internal energy in fJ per
    // output transition, leakage in nW, area in um^2, delay in ps.
    static const CellSpec specs[] = {
        {"PI",     0, 0.0, 0.00, 0.0,  0.0,  0.0},
        {"TIE0",   0, 0.0, 0.00, 0.4,  0.5,  0.0},
        {"TIE1",   0, 0.0, 0.00, 0.4,  0.5,  0.0},
        {"BUF_X1", 1, 1.0, 0.60, 1.2,  1.1,  35.0},
        {"INV_X1", 1, 1.0, 0.45, 1.0,  0.8,  20.0},
        {"AND2_X1", 2, 1.1, 0.85, 1.6, 1.6,  45.0},
        {"OR2_X1",  2, 1.1, 0.85, 1.6, 1.6,  45.0},
        {"NAND2_X1", 2, 1.0, 0.55, 1.3, 1.1, 30.0},
        {"NOR2_X1",  2, 1.0, 0.55, 1.3, 1.1, 32.0},
        {"XOR2_X1",  2, 1.8, 1.40, 2.2, 2.4, 60.0},
        {"XNOR2_X1", 2, 1.8, 1.40, 2.2, 2.4, 60.0},
        {"MUX2_X1",  3, 1.4, 1.20, 2.0, 2.7, 55.0},
        {"DFF_X1",   1, 1.2, 2.80, 3.5, 4.5, 90.0},
        {"MACRO_Q",  0, 0.0, 0.00, 0.0, 0.0,  0.0},
    };
    unsigned idx = static_cast<unsigned>(type);
    if (idx >= sizeof(specs) / sizeof(specs[0]))
        panic("unknown cell type %u", idx);
    return specs[idx];
}

const LibraryConstants &
libraryConstants()
{
    static const LibraryConstants constants;
    return constants;
}

} // namespace gate
} // namespace strober
