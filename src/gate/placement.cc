#include "gate/placement.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace strober {
namespace gate {

double
Placement::totalWireCapFf() const
{
    double total = 0;
    for (double c : netWireCapFf)
        total += c;
    return total;
}

Placement
place(const GateNetlist &nl)
{
    const LibraryConstants &lib = libraryConstants();
    Placement p;

    // --- Block areas by hierarchy group --------------------------------
    size_t numGroups = nl.groupNames().size();
    p.blocks.resize(numGroups);
    for (size_t g = 0; g < numGroups; ++g)
        p.blocks[g].name = nl.groupNames()[g];

    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &n = nl.node(id);
        if (n.dead || n.type == CellType::PrimaryInput ||
            n.type == CellType::MacroOut) {
            continue;
        }
        BlockPlacement &blk = p.blocks[n.group];
        blk.areaUm2 += cellSpec(n.type).areaUm2;
        ++blk.gates;
    }
    for (const MacroMem &m : nl.macros()) {
        BlockPlacement &blk = p.blocks[m.group];
        uint64_t bits = static_cast<uint64_t>(m.width) * m.depth;
        blk.areaUm2 += lib.sramAreaUm2PerBit * static_cast<double>(bits);
        blk.macroBits += bits;
    }

    double totalArea = 0;
    for (const BlockPlacement &b : p.blocks)
        totalArea += b.areaUm2;
    double dieArea = totalArea / p.utilization;
    double die = std::sqrt(std::max(dieArea, 1.0));
    p.dieWidthUm = die;
    p.dieHeightUm = die;

    // --- Shelf-pack blocks, largest first -------------------------------
    std::vector<size_t> order(numGroups);
    for (size_t i = 0; i < numGroups; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return p.blocks[a].areaUm2 > p.blocks[b].areaUm2;
    });

    double cursorX = 0, cursorY = 0, shelfH = 0;
    for (size_t gi : order) {
        BlockPlacement &blk = p.blocks[gi];
        double blockArea = blk.areaUm2 / p.utilization;
        double w = std::sqrt(std::max(blockArea, 1.0));
        double h = w;
        if (cursorX + w > die + 1e-9) {
            cursorX = 0;
            cursorY += shelfH;
            shelfH = 0;
        }
        blk.x0 = cursorX;
        blk.y0 = cursorY;
        blk.x1 = cursorX + w;
        blk.y1 = cursorY + h;
        cursorX += w;
        shelfH = std::max(shelfH, h);
    }
    p.dieHeightUm = std::max(die, cursorY + shelfH);

    // --- Row placement of gates inside their block ----------------------
    p.gateX.assign(nl.numNodes(), 0.0f);
    p.gateY.assign(nl.numNodes(), 0.0f);
    std::vector<uint32_t> blockFill(numGroups, 0);
    std::vector<uint32_t> blockCols(numGroups, 1);
    for (size_t g = 0; g < numGroups; ++g) {
        const BlockPlacement &blk = p.blocks[g];
        double w = blk.x1 - blk.x0;
        // Rough site pitch: average cell ~1.5 um wide.
        blockCols[g] = std::max(1u, static_cast<uint32_t>(w / 1.5));
    }
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &n = nl.node(id);
        if (n.dead)
            continue;
        if (n.type == CellType::PrimaryInput) {
            // Pads along the bottom edge.
            p.gateX[id] = static_cast<float>((id % 997) * die / 997.0);
            p.gateY[id] = 0.0f;
            continue;
        }
        const BlockPlacement &blk = p.blocks[n.group];
        uint32_t slot = blockFill[n.group]++;
        uint32_t cols = blockCols[n.group];
        double x = blk.x0 + (slot % cols) * 1.5 + 0.75;
        double y = blk.y0 + (slot / cols) * 1.5 + 0.75;
        p.gateX[id] = static_cast<float>(std::min(x, blk.x1));
        p.gateY[id] = static_cast<float>(std::min(y, blk.y1));
    }

    // --- Half-perimeter wire length per net -----------------------------
    p.netWireCapFf.assign(nl.numNodes(), 0.0);
    std::vector<float> minX(nl.numNodes()), maxX(nl.numNodes());
    std::vector<float> minY(nl.numNodes()), maxY(nl.numNodes());
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        minX[id] = maxX[id] = p.gateX[id];
        minY[id] = maxY[id] = p.gateY[id];
    }
    auto extend = [&](NetId net, NetId sink) {
        minX[net] = std::min(minX[net], p.gateX[sink]);
        maxX[net] = std::max(maxX[net], p.gateX[sink]);
        minY[net] = std::min(minY[net], p.gateY[sink]);
        maxY[net] = std::max(maxY[net], p.gateY[sink]);
    };
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &n = nl.node(id);
        if (n.dead)
            continue;
        for (NetId in : n.in) {
            if (in != kNoNet)
                extend(in, id);
        }
    }
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        if (nl.node(id).dead)
            continue;
        double hpwl = (maxX[id] - minX[id]) + (maxY[id] - minY[id]);
        p.netWireCapFf[id] = hpwl * lib.wireCapFfPerUm;
    }
    return p;
}

} // namespace gate
} // namespace strober
