#include "gate/timed_sim.h"

#include <algorithm>
#include <queue>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

namespace {

/** Integer propagation delay in picoseconds for queue ordering. */
uint32_t
delayPsOf(CellType type)
{
    return static_cast<uint32_t>(cellSpec(type).delayPs);
}

constexpr uint32_t kMacroReadDelayPs = 250;

} // namespace

TimedGateSimulator::TimedGateSimulator(const GateNetlist &netlist)
    : nl(netlist)
{
    fanout.resize(nl.numNodes());
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &g = nl.node(id);
        if (g.dead)
            continue;
        switch (g.type) {
          case CellType::PrimaryInput:
          case CellType::Tie0:
          case CellType::Tie1:
          case CellType::Dff:
          case CellType::MacroOut:
            break;
          default:
            for (NetId in : g.in) {
                if (in != kNoNet)
                    fanout[in].push_back(id);
            }
            break;
        }
    }
    // Async macro read data depends on its port's address nets.
    for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
        const MacroMem &m = nl.macros()[mi];
        if (m.syncRead)
            continue;
        for (const auto &port : m.reads) {
            for (NetId a : port.addr) {
                for (NetId dataNet : port.data)
                    fanout[a].push_back(dataNet);
            }
        }
    }
    reset();
}

void
TimedGateSimulator::reset()
{
    values.assign(nl.numNodes(), 0);
    toggles.assign(nl.numNodes(), 0);
    dirty.assign(nl.numNodes(), 0);
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        const GateNode &g = nl.node(id);
        if (g.type == CellType::Tie1)
            values[id] = 1;
        else if (g.type == CellType::Dff)
            values[id] = g.init;
    }
    macroContents.clear();
    syncReadPending.clear();
    for (const MacroMem &m : nl.macros()) {
        macroContents.emplace_back(m.depth, 0);
        for (size_t i = 0; i < m.init.size(); ++i)
            macroContents.back()[i] = m.init[i];
        syncReadPending.emplace_back(m.reads.size() * m.width, 0);
    }
    macroAcc.assign(nl.macros().size(), MacroStats{});
    dffPending.assign(nl.numNodes(), 0);
    cycleCount = 0;
    activityStart = 0;
    eventCount = 0;
    pendingSources.clear();
    // Settle the reset state once (without counting its activity).
    for (NetId id = 0; id < nl.numNodes(); ++id) {
        if (!nl.node(id).dead)
            pendingSources.push_back(id);
    }
    settle();
    clearActivity();
}

void
TimedGateSimulator::pokePort(size_t idx, uint64_t value)
{
    const BitPort &p = nl.inputs().at(idx);
    for (size_t b = 0; b < p.bits.size(); ++b) {
        uint8_t v = (value >> b) & 1;
        if (values[p.bits[b]] != v) {
            values[p.bits[b]] = v;
            ++toggles[p.bits[b]];
            pendingSources.push_back(p.bits[b]);
            settled = false;
        }
    }
}

uint64_t
TimedGateSimulator::busValue(const std::vector<NetId> &bits) const
{
    uint64_t v = 0;
    for (size_t b = 0; b < bits.size(); ++b)
        v |= static_cast<uint64_t>(values[bits[b]] & 1) << b;
    return v;
}

uint8_t
TimedGateSimulator::evalGate(NetId id) const
{
    const GateNode &g = nl.node(id);
    switch (g.type) {
      case CellType::Buf:
        return values[g.in[0]];
      case CellType::Inv:
        return values[g.in[0]] ^ 1;
      case CellType::And2:
        return values[g.in[0]] & values[g.in[1]];
      case CellType::Or2:
        return values[g.in[0]] | values[g.in[1]];
      case CellType::Nand2:
        return (values[g.in[0]] & values[g.in[1]]) ^ 1;
      case CellType::Nor2:
        return (values[g.in[0]] | values[g.in[1]]) ^ 1;
      case CellType::Xor2:
        return values[g.in[0]] ^ values[g.in[1]];
      case CellType::Xnor2:
        return values[g.in[0]] ^ values[g.in[1]] ^ 1;
      case CellType::Mux2:
        return values[g.in[0]] ? values[g.in[1]] : values[g.in[2]];
      case CellType::MacroOut: {
        uint32_t mi = g.aux >> 16;
        uint32_t port = (g.aux >> 8) & 0xff;
        uint32_t bitIdx = g.aux & 0xff;
        const MacroMem &m = nl.macros()[mi];
        uint64_t addr = busValue(m.reads[port].addr);
        uint64_t word = addr < m.depth ? macroContents[mi][addr] : 0;
        return static_cast<uint8_t>((word >> bitIdx) & 1);
      }
      default:
        panic("evalGate on a non-combinational node");
    }
}

void
TimedGateSimulator::settle()
{
    // Min-heap of (time_ps, net) evaluation events.
    using Event = std::pair<uint32_t, NetId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;

    auto scheduleFanout = [&](NetId src, uint32_t now) {
        for (NetId g : fanout[src]) {
            uint32_t delay = nl.node(g).type == CellType::MacroOut
                                 ? kMacroReadDelayPs
                                 : delayPsOf(nl.node(g).type);
            queue.push({now + delay, g});
        }
    };

    for (NetId src : pendingSources)
        scheduleFanout(src, 0);
    pendingSources.clear();

    while (!queue.empty()) {
        auto [now, id] = queue.top();
        queue.pop();
        ++eventCount;
        const GateNode &g = nl.node(id);
        if (g.dead)
            continue;
        if (g.type == CellType::MacroOut &&
            nl.macros()[g.aux >> 16].syncRead) {
            continue; // state, not combinational
        }
        uint8_t out = evalGate(id);
        if (out != values[id]) {
            values[id] = out;
            ++toggles[id];
            scheduleFanout(id, now);
        }
    }
    settled = true;
}

uint64_t
TimedGateSimulator::peekPort(size_t idx)
{
    if (!settled)
        settle();
    return busValue(nl.outputs().at(idx).bits);
}

void
TimedGateSimulator::step(uint64_t n)
{
    for (uint64_t k = 0; k < n; ++k) {
        if (!settled)
            settle();

        for (NetId id : nl.dffs())
            dffPending[id] = values[nl.node(id).in[0]];

        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            if (m.syncRead) {
                for (size_t p = 0; p < m.reads.size(); ++p) {
                    const auto &port = m.reads[p];
                    bool en = port.en == kNoNet || values[port.en];
                    if (!en)
                        continue;
                    uint64_t addr = busValue(port.addr);
                    uint64_t word =
                        addr < m.depth ? macroContents[mi][addr] : 0;
                    for (unsigned b = 0; b < m.width; ++b)
                        syncReadPending[mi][p * m.width + b] =
                            static_cast<uint8_t>((word >> b) & 1);
                    ++macroAcc[mi].reads;
                }
            } else {
                macroAcc[mi].reads += m.reads.size();
            }
        }
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            for (const auto &port : m.writes) {
                bool en = port.en == kNoNet || values[port.en];
                if (!en)
                    continue;
                uint64_t addr = busValue(port.addr);
                if (addr < m.depth)
                    macroContents[mi][addr] = busValue(port.data);
                ++macroAcc[mi].writes;
            }
        }

        for (NetId id : nl.dffs()) {
            if (values[id] != dffPending[id]) {
                values[id] = dffPending[id];
                ++toggles[id];
                pendingSources.push_back(id);
                settled = false;
            }
        }
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            if (!m.syncRead)
                continue;
            for (size_t p = 0; p < m.reads.size(); ++p) {
                const auto &port = m.reads[p];
                bool en = port.en == kNoNet || values[port.en];
                if (!en)
                    continue;
                for (unsigned b = 0; b < m.width; ++b) {
                    NetId net = port.data[b];
                    uint8_t v = syncReadPending[mi][p * m.width + b];
                    if (values[net] != v) {
                        values[net] = v;
                        ++toggles[net];
                        pendingSources.push_back(net);
                        settled = false;
                    }
                }
            }
        }
        // Macro CONTENT changes can alter async read data even when no
        // address net toggled; re-schedule async data bits.
        for (size_t mi = 0; mi < nl.macros().size(); ++mi) {
            const MacroMem &m = nl.macros()[mi];
            if (m.syncRead)
                continue;
            for (const auto &port : m.reads) {
                for (NetId dataNet : port.data) {
                    uint8_t v = evalGate(dataNet);
                    if (values[dataNet] != v) {
                        values[dataNet] = v;
                        ++toggles[dataNet];
                        pendingSources.push_back(dataNet);
                        settled = false;
                    }
                }
            }
        }

        ++cycleCount;
    }
}

void
TimedGateSimulator::clearActivity()
{
    std::fill(toggles.begin(), toggles.end(), 0);
    macroAcc.assign(nl.macros().size(), MacroStats{});
    activityStart = cycleCount;
}

} // namespace gate
} // namespace strober
