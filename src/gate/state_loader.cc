#include "gate/state_loader.h"

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

LoaderKind
alternateLoader(LoaderKind kind)
{
    return kind == LoaderKind::FastVpi ? LoaderKind::SlowScript
                                       : LoaderKind::FastVpi;
}

double
loaderCommandRate(LoaderKind kind)
{
    switch (kind) {
      case LoaderKind::SlowScript:
        return 400.0;
      case LoaderKind::FastVpi:
        return 20000.0;
    }
    return 0.0;
}

util::Result<LoadReport>
loadState(GateSimulator &gsim, const rtl::Design &target,
          const MatchTable &table, const fame::StateSnapshot &state,
          LoaderKind kind)
{
    using util::ErrorCode;

    // Validate the snapshot state's shape against the design before
    // touching the simulator: a mismatched snapshot must not half-load.
    if (state.regValues.size() != target.regs().size()) {
        return util::errorf(ErrorCode::GeometryMismatch,
                            "snapshot has %zu register values, design "
                            "has %zu",
                            state.regValues.size(), target.regs().size());
    }
    if (state.memContents.size() != target.mems().size()) {
        return util::errorf(ErrorCode::GeometryMismatch,
                            "snapshot has %zu memories, design has %zu",
                            state.memContents.size(), target.mems().size());
    }
    for (size_t mi = 0; mi < target.mems().size(); ++mi) {
        const rtl::MemInfo &m = target.mems()[mi];
        if (state.memContents[mi].size() != m.depth) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot memory %zu holds %zu words, "
                                "design needs %llu",
                                mi, state.memContents[mi].size(),
                                (unsigned long long)m.depth);
        }
        if (m.syncRead &&
            (mi >= state.syncReadData.size() ||
             state.syncReadData[mi].size() != m.reads.size())) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot memory %zu sync-read data does "
                                "not cover %zu read ports",
                                mi, m.reads.size());
        }
    }

    LoadReport report;

    for (size_t i = 0; i < target.regs().size(); ++i) {
        unsigned width = target.node(target.regs()[i].node).width;
        if (table.regRetimed[i]) {
            report.skippedRetimed += width;
            continue;
        }
        uint64_t value = state.regValues[i];
        const auto &nets = table.regToDff[i];
        for (unsigned b = 0; b < width; ++b) {
            gsim.setDff(nets[b], bit(value, b));
            ++report.commands; // one deposit command per flip-flop
        }
    }

    for (size_t mi = 0; mi < target.mems().size(); ++mi) {
        const rtl::MemInfo &m = target.mems()[mi];
        size_t macro = static_cast<size_t>(table.memToMacro[mi]);
        for (uint64_t a = 0; a < m.depth; ++a) {
            gsim.setMacroWord(macro, a, state.memContents[mi][a]);
            ++report.commands; // one word per command
        }
        if (m.syncRead) {
            for (size_t p = 0; p < m.reads.size(); ++p) {
                gsim.setMacroReadData(macro, p, state.syncReadData[mi][p]);
                ++report.commands;
            }
        }
    }

    report.modeledSeconds =
        static_cast<double>(report.commands) / loaderCommandRate(kind);
    return report;
}

} // namespace gate
} // namespace strober
