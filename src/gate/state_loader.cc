#include "gate/state_loader.h"

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

double
loaderCommandRate(LoaderKind kind)
{
    switch (kind) {
      case LoaderKind::SlowScript:
        return 400.0;
      case LoaderKind::FastVpi:
        return 20000.0;
    }
    return 0.0;
}

LoadReport
loadState(GateSimulator &gsim, const rtl::Design &target,
          const MatchTable &table, const fame::StateSnapshot &state,
          LoaderKind kind)
{
    LoadReport report;

    for (size_t i = 0; i < target.regs().size(); ++i) {
        unsigned width = target.node(target.regs()[i].node).width;
        if (table.regRetimed[i]) {
            report.skippedRetimed += width;
            continue;
        }
        uint64_t value = state.regValues.at(i);
        const auto &nets = table.regToDff[i];
        for (unsigned b = 0; b < width; ++b) {
            gsim.setDff(nets[b], bit(value, b));
            ++report.commands; // one deposit command per flip-flop
        }
    }

    for (size_t mi = 0; mi < target.mems().size(); ++mi) {
        const rtl::MemInfo &m = target.mems()[mi];
        size_t macro = static_cast<size_t>(table.memToMacro[mi]);
        for (uint64_t a = 0; a < m.depth; ++a) {
            gsim.setMacroWord(macro, a, state.memContents.at(mi).at(a));
            ++report.commands; // one word per command
        }
        if (m.syncRead) {
            for (size_t p = 0; p < m.reads.size(); ++p) {
                gsim.setMacroReadData(macro, p,
                                      state.syncReadData.at(mi).at(p));
                ++report.commands;
            }
        }
    }

    report.modeledSeconds =
        static_cast<double>(report.commands) / loaderCommandRate(kind);
    return report;
}

} // namespace gate
} // namespace strober
