#include "gate/synthesis.h"

#include <algorithm>
#include <map>

#include "lint/lint.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace gate {

namespace {

using rtl::Design;
using rtl::kNoNode;
using rtl::NodeId;
using rtl::Op;

/** Sanitize an RTL hierarchical name into an ASIC-style instance name. */
std::string
mangle(const std::string &rtlName)
{
    std::string out;
    out.reserve(rtlName.size());
    for (char c : rtlName)
        out += (c == '/' ? '_' : c);
    return out;
}

class Synthesizer
{
  public:
    explicit Synthesizer(const Design &design) : d(design) {}

    SynthesisResult
    run()
    {
        computeRegions();
        createLeaves();
        lowerAll();
        connectState();
        buildOutputs();
        retimeRegions();
        uint64_t preSweep = result.netlist.liveGateCount();
        result.netlist.sweepDeadGates();
        result.stats.sweptGates = preSweep - result.netlist.liveGateCount();
        result.stats.liveGates = result.netlist.liveGateCount();
        result.stats.dffCount = result.netlist.dffs().size();
        return std::move(result);
    }

  private:
    const Design &d;
    SynthesisResult result;
    GateNetlist &nl = result.netlist;

    std::vector<std::vector<NetId>> bits; //!< per RTL node, LSB first
    NetId tie0Net = kNoNet;
    NetId tie1Net = kNoNet;
    std::map<NetId, NetId> invCache; //!< net -> its inverse

    /** region index per RTL node (-1 = none). */
    std::vector<int32_t> regionOf;
    /** region index per gate (-1 = none). */
    std::vector<int32_t> gateRegion;
    int32_t currentRegion = -1;
    uint32_t currentGroup = 0;

    std::map<std::string, unsigned> nameUniq;

    // ------------------------------------------------------------------
    // Gate-construction helpers with constant folding.
    // ------------------------------------------------------------------

    bool isTie0(NetId n) const { return nl.node(n).type == CellType::Tie0; }
    bool isTie1(NetId n) const { return nl.node(n).type == CellType::Tie1; }

    NetId
    newGate(CellType type, NetId a = kNoNet, NetId b = kNoNet,
            NetId c = kNoNet)
    {
        GateNode g;
        g.type = type;
        g.in[0] = a;
        g.in[1] = b;
        g.in[2] = c;
        g.group = currentGroup;
        NetId id = nl.addNode(std::move(g));
        gateRegion.push_back(currentRegion);
        return id;
    }

    NetId
    tie0()
    {
        if (tie0Net == kNoNet) {
            int32_t saved = currentRegion;
            currentRegion = -1;
            tie0Net = newGate(CellType::Tie0);
            currentRegion = saved;
        }
        return tie0Net;
    }

    NetId
    tie1()
    {
        if (tie1Net == kNoNet) {
            int32_t saved = currentRegion;
            currentRegion = -1;
            tie1Net = newGate(CellType::Tie1);
            currentRegion = saved;
        }
        return tie1Net;
    }

    NetId tieBit(bool v) { return v ? tie1() : tie0(); }

    NetId
    mkInv(NetId a)
    {
        if (isTie0(a))
            return tie1();
        if (isTie1(a))
            return tie0();
        auto it = invCache.find(a);
        if (it != invCache.end())
            return it->second;
        // inv(inv(x)) == x
        if (nl.node(a).type == CellType::Inv)
            return nl.node(a).in[0];
        NetId id = newGate(CellType::Inv, a);
        invCache[a] = id;
        return id;
    }

    NetId
    mkAnd(NetId a, NetId b)
    {
        if (isTie0(a) || isTie0(b)) {
            ++result.stats.foldedGates;
            return tie0();
        }
        if (isTie1(a)) {
            ++result.stats.foldedGates;
            return b;
        }
        if (isTie1(b) || a == b) {
            ++result.stats.foldedGates;
            return a;
        }
        return newGate(CellType::And2, a, b);
    }

    NetId
    mkOr(NetId a, NetId b)
    {
        if (isTie1(a) || isTie1(b)) {
            ++result.stats.foldedGates;
            return tie1();
        }
        if (isTie0(a)) {
            ++result.stats.foldedGates;
            return b;
        }
        if (isTie0(b) || a == b) {
            ++result.stats.foldedGates;
            return a;
        }
        return newGate(CellType::Or2, a, b);
    }

    NetId
    mkXor(NetId a, NetId b)
    {
        if (a == b) {
            ++result.stats.foldedGates;
            return tie0();
        }
        if (isTie0(a)) {
            ++result.stats.foldedGates;
            return b;
        }
        if (isTie0(b)) {
            ++result.stats.foldedGates;
            return a;
        }
        if (isTie1(a)) {
            ++result.stats.foldedGates;
            return mkInv(b);
        }
        if (isTie1(b)) {
            ++result.stats.foldedGates;
            return mkInv(a);
        }
        return newGate(CellType::Xor2, a, b);
    }

    /** mux: sel ? a : b */
    NetId
    mkMux(NetId sel, NetId a, NetId b)
    {
        if (a == b) {
            ++result.stats.foldedGates;
            return a;
        }
        if (isTie1(sel)) {
            ++result.stats.foldedGates;
            return a;
        }
        if (isTie0(sel)) {
            ++result.stats.foldedGates;
            return b;
        }
        if (isTie1(a) && isTie0(b)) {
            ++result.stats.foldedGates;
            return sel;
        }
        if (isTie0(a) && isTie1(b)) {
            ++result.stats.foldedGates;
            return mkInv(sel);
        }
        return newGate(CellType::Mux2, sel, a, b);
    }

    /** Full adder; @return sum net, sets @p cout. */
    NetId
    fullAdder(NetId a, NetId b, NetId cin, NetId &cout)
    {
        NetId axb = mkXor(a, b);
        NetId sum = mkXor(axb, cin);
        cout = mkOr(mkAnd(a, b), mkAnd(axb, cin));
        return sum;
    }

    /** Ripple add a + b + cin; vectors equal width. @p cout optional. */
    std::vector<NetId>
    rippleAdd(const std::vector<NetId> &a, const std::vector<NetId> &b,
              NetId cin, NetId *coutOut = nullptr)
    {
        std::vector<NetId> sum(a.size());
        NetId carry = cin;
        for (size_t i = 0; i < a.size(); ++i) {
            NetId cout;
            sum[i] = fullAdder(a[i], b[i], carry, cout);
            carry = cout;
        }
        if (coutOut)
            *coutOut = carry;
        return sum;
    }

    std::vector<NetId>
    invertAll(const std::vector<NetId> &a)
    {
        std::vector<NetId> out(a.size());
        for (size_t i = 0; i < a.size(); ++i)
            out[i] = mkInv(a[i]);
        return out;
    }

    NetId
    orReduce(const std::vector<NetId> &a)
    {
        NetId acc = tie0();
        for (NetId n : a)
            acc = mkOr(acc, n);
        return acc;
    }

    NetId
    andReduce(const std::vector<NetId> &a)
    {
        NetId acc = tie1();
        for (NetId n : a)
            acc = mkAnd(acc, n);
        return acc;
    }

    NetId
    xorReduce(const std::vector<NetId> &a)
    {
        NetId acc = tie0();
        for (NetId n : a)
            acc = mkXor(acc, n);
        return acc;
    }

    /** a < b (unsigned): not carry-out of a + ~b + 1. */
    NetId
    lessUnsigned(const std::vector<NetId> &a, const std::vector<NetId> &b)
    {
        NetId cout = kNoNet;
        rippleAdd(a, invertAll(b), tie1(), &cout);
        return mkInv(cout);
    }

    // ------------------------------------------------------------------
    // Region computation (retiming).
    // ------------------------------------------------------------------

    void
    computeRegions()
    {
        regionOf.assign(d.numNodes(), -1);
        for (size_t ri = 0; ri < d.retimeRegions().size(); ++ri) {
            const rtl::RetimeRegion &region = d.retimeRegions()[ri];
            std::vector<bool> isInput(d.numNodes(), false);
            for (NodeId in : region.inputs)
                isInput[in] = true;
            std::vector<bool> isRegionReg(d.numNodes(), false);
            for (NodeId r : region.regs)
                isRegionReg[r] = true;

            std::vector<NodeId> stack{region.output};
            std::vector<bool> seen(d.numNodes(), false);
            while (!stack.empty()) {
                NodeId id = stack.back();
                stack.pop_back();
                if (seen[id] || isInput[id])
                    continue;
                seen[id] = true;
                const rtl::Node &n = d.node(id);
                if (n.op == Op::Reg) {
                    if (!isRegionReg[id])
                        continue; // external register: a region source
                    const rtl::RegInfo &info = d.regs()[n.aux];
                    if (info.en != kNoNode &&
                        d.node(info.en).name != "host_en") {
                        fatal("retime region '%s': register '%s' has an "
                              "enable; regions must be free-running",
                              region.name.c_str(), n.name.c_str());
                    }
                    regionOf[id] = static_cast<int32_t>(ri);
                    stack.push_back(info.next);
                    continue;
                }
                if (n.op == Op::Input || n.op == Op::Const ||
                    n.op == Op::MemRead) {
                    continue; // sources; constants stay unregioned
                }
                regionOf[id] = static_cast<int32_t>(ri);
                for (unsigned i = 0; i < rtl::opArity(n.op); ++i)
                    stack.push_back(n.args[i]);
            }
            for (NodeId r : region.regs) {
                if (!seen[r])
                    fatal("retime region '%s': register '%s' is not in the "
                          "output cone", region.name.c_str(),
                          d.node(r).name.c_str());
            }
            // Region registers other than the output must not feed logic
            // outside the region (their values cease to exist).
            for (NodeId id = 0; id < d.numNodes(); ++id) {
                if (regionOf[id] == static_cast<int32_t>(ri) ||
                    id == region.output) {
                    continue;
                }
                const rtl::Node &n = d.node(id);
                for (unsigned i = 0; i < rtl::opArity(n.op); ++i) {
                    NodeId arg = n.args[i];
                    if (arg != region.output && isRegionReg[arg])
                        fatal("retime region '%s': internal register '%s' "
                              "is used outside the region",
                              region.name.c_str(),
                              d.node(arg).name.c_str());
                }
            }
        }
    }

    /** Topological order where region registers follow their next-state. */
    std::vector<NodeId>
    levelizeForSynthesis()
    {
        size_t n = d.numNodes();
        std::vector<uint32_t> pending(n, 0);
        std::vector<std::vector<NodeId>> users(n);

        auto deps = [&](NodeId id, auto &&visit) {
            const rtl::Node &node = d.node(id);
            if (node.op == Op::Reg) {
                if (regionOf[id] >= 0)
                    visit(d.regs()[node.aux].next); // dissolved register
                return;
            }
            if (node.op == Op::MemRead) {
                uint32_t memIdx = node.aux >> 16;
                uint32_t portIdx = node.aux & 0xffff;
                const rtl::MemInfo &m = d.mems()[memIdx];
                if (!m.syncRead)
                    visit(m.reads[portIdx].addr);
                return;
            }
            for (unsigned i = 0; i < rtl::opArity(node.op); ++i)
                visit(node.args[i]);
        };

        for (NodeId id = 0; id < n; ++id) {
            deps(id, [&](NodeId dep) {
                ++pending[id];
                users[dep].push_back(id);
            });
        }
        std::vector<NodeId> order, ready;
        order.reserve(n);
        for (NodeId id = 0; id < n; ++id) {
            if (pending[id] == 0)
                ready.push_back(id);
        }
        while (!ready.empty()) {
            NodeId id = ready.back();
            ready.pop_back();
            order.push_back(id);
            for (NodeId u : users[id]) {
                if (--pending[u] == 0)
                    ready.push_back(u);
            }
        }
        if (order.size() != n)
            fatal("retime region is not feed-forward (cycle through a "
                  "dissolved register)");
        return order;
    }

    // ------------------------------------------------------------------
    // Leaf creation (pass 1).
    // ------------------------------------------------------------------

    uint32_t
    groupOf(const rtl::Node &n)
    {
        return nl.addGroup(n.scope.empty() ? "top" : n.scope);
    }

    std::string
    uniquify(const std::string &base)
    {
        unsigned &count = nameUniq[base];
        std::string name =
            count == 0 ? base : base + "_" + std::to_string(count);
        ++count;
        return name;
    }

    void
    createLeaves()
    {
        bits.assign(d.numNodes(), {});
        gateRegion.reserve(d.numNodes() * 8);
        result.guide.regDffNames.resize(d.regs().size());
        result.guide.regRetimed.assign(d.regs().size(), false);
        result.guide.memMacroNames.resize(d.mems().size());

        // Primary inputs.
        for (NodeId id : d.inputs()) {
            const rtl::Node &n = d.node(id);
            BitPort port;
            port.name = n.name;
            currentGroup = groupOf(n);
            currentRegion = -1;
            for (unsigned b = 0; b < n.width; ++b) {
                GateNode g;
                g.type = CellType::PrimaryInput;
                g.group = currentGroup;
                g.name = mangle(n.name) + "[" + std::to_string(b) + "]";
                NetId net = nl.addNode(std::move(g));
                gateRegion.push_back(-1);
                port.bits.push_back(net);
            }
            bits[id] = port.bits;
            nl.inputs().push_back(std::move(port));
        }

        // Flip-flops for non-retimed registers.
        for (size_t i = 0; i < d.regs().size(); ++i) {
            const rtl::RegInfo &r = d.regs()[i];
            NodeId id = r.node;
            if (regionOf[id] >= 0) {
                result.guide.regRetimed[i] = true;
                continue; // dissolved by retiming
            }
            const rtl::Node &n = d.node(id);
            currentGroup = groupOf(n);
            currentRegion = -1;
            std::string base = uniquify(mangle(n.name) + "_reg");
            std::vector<NetId> q(n.width);
            for (unsigned b = 0; b < n.width; ++b) {
                GateNode g;
                g.type = CellType::Dff;
                g.group = currentGroup;
                g.init = bit(r.init, b);
                g.name = base + "_" + std::to_string(b) + "_";
                std::string dffName = g.name;
                NetId net = nl.addNode(std::move(g));
                gateRegion.push_back(-1);
                nl.noteDff(net);
                result.guide.regDffNames[i].push_back(std::move(dffName));
                q[b] = net;
            }
            bits[id] = std::move(q);
        }

        // SRAM macros; sync read-port data bits are state nodes.
        for (size_t mi = 0; mi < d.mems().size(); ++mi) {
            const rtl::MemInfo &m = d.mems()[mi];
            MacroMem macro;
            macro.name = uniquify(mangle(m.name) + "_macro");
            macro.width = m.width;
            macro.depth = m.depth;
            macro.syncRead = m.syncRead;
            macro.group = nl.addGroup(m.name);
            macro.reads.resize(m.reads.size());
            macro.writes.resize(m.writes.size());
            macro.init = m.init;
            result.guide.memMacroNames[mi] = macro.name;
            for (size_t p = 0; p < m.reads.size(); ++p) {
                const rtl::MemReadPort &port = m.reads[p];
                std::vector<NetId> q(m.width);
                for (unsigned b = 0; b < m.width; ++b) {
                    GateNode g;
                    g.type = CellType::MacroOut;
                    g.group = macro.group;
                    g.aux = (static_cast<uint32_t>(mi) << 16) |
                            (static_cast<uint32_t>(p) << 8) | b;
                    g.name = macro.name + "_q" + std::to_string(p) + "[" +
                             std::to_string(b) + "]";
                    NetId net = nl.addNode(std::move(g));
                    gateRegion.push_back(-1);
                    q[b] = net;
                }
                macro.reads[p].data = q;
                bits[port.data] = std::move(q);
            }
            nl.macros().push_back(std::move(macro));
        }
    }

    // ------------------------------------------------------------------
    // Combinational lowering (pass 2).
    // ------------------------------------------------------------------

    void
    lowerAll()
    {
        for (NodeId id : levelizeForSynthesis()) {
            const rtl::Node &n = d.node(id);
            if (!bits[id].empty())
                continue; // leaf created in pass 1
            currentGroup = groupOf(n);
            currentRegion = regionOf[id];
            lower(id, n);
            if (bits[id].size() != n.width)
                panic("lowering '%s' (%s): produced %zu bits, want %u",
                      n.name.c_str(), rtl::opName(n.op), bits[id].size(),
                      n.width);
        }
    }

    void
    lower(NodeId id, const rtl::Node &n)
    {
        auto A = [&]() -> const std::vector<NetId> & {
            return bits[n.args[0]];
        };
        auto B = [&]() -> const std::vector<NetId> & {
            return bits[n.args[1]];
        };

        switch (n.op) {
          case Op::Const: {
            std::vector<NetId> v(n.width);
            for (unsigned b = 0; b < n.width; ++b)
                v[b] = tieBit(bit(n.imm, b));
            bits[id] = std::move(v);
            return;
          }
          case Op::Reg:
            // Dissolved (retimed) register: pass through its next-state.
            bits[id] = bits[d.regs()[n.aux].next];
            return;
          case Op::MemRead: {
            // Async read: materialize MacroOut bits now (addr is lowered).
            uint32_t mi = n.aux >> 16;
            uint32_t p = n.aux & 0xffff;
            MacroMem &macro = nl.macros()[mi];
            std::vector<NetId> q(n.width);
            for (unsigned b = 0; b < n.width; ++b) {
                GateNode g;
                g.type = CellType::MacroOut;
                g.group = macro.group;
                g.aux = (mi << 16) | (p << 8) | b;
                g.name = macro.name + "_q" + std::to_string(p) + "[" +
                         std::to_string(b) + "]";
                NetId net = nl.addNode(std::move(g));
                gateRegion.push_back(-1);
                q[b] = net;
            }
            macro.reads[p].data = q;
            bits[id] = std::move(q);
            return;
          }
          case Op::Not:
            bits[id] = invertAll(A());
            return;
          case Op::Neg: {
            // -a = ~a + 1
            std::vector<NetId> zero(n.width, tie0());
            bits[id] = rippleAdd(invertAll(A()), zero, tie1());
            return;
          }
          case Op::RedOr:
            bits[id] = {orReduce(A())};
            return;
          case Op::RedAnd:
            bits[id] = {andReduce(A())};
            return;
          case Op::RedXor:
            bits[id] = {xorReduce(A())};
            return;
          case Op::SExt: {
            std::vector<NetId> v = A();
            NetId sign = v.back();
            while (v.size() < n.width)
                v.push_back(sign);
            bits[id] = std::move(v);
            return;
          }
          case Op::Pad: {
            std::vector<NetId> v = A();
            while (v.size() < n.width)
                v.push_back(tie0());
            bits[id] = std::move(v);
            return;
          }
          case Op::Bits: {
            const std::vector<NetId> &a = A();
            std::vector<NetId> v;
            for (unsigned b = n.bitsLo(); b <= n.bitsHi(); ++b)
                v.push_back(a[b]);
            bits[id] = std::move(v);
            return;
          }
          case Op::Add:
            bits[id] = rippleAdd(A(), B(), tie0());
            return;
          case Op::Sub:
            bits[id] = rippleAdd(A(), invertAll(B()), tie1());
            return;
          case Op::Mul:
            bits[id] = lowerMul(A(), B(), n.width);
            return;
          case Op::Divu:
          case Op::Remu:
            bits[id] = lowerDiv(A(), B(), n.op == Op::Remu);
            return;
          case Op::And: {
            std::vector<NetId> v(n.width);
            for (unsigned b = 0; b < n.width; ++b)
                v[b] = mkAnd(A()[b], B()[b]);
            bits[id] = std::move(v);
            return;
          }
          case Op::Or: {
            std::vector<NetId> v(n.width);
            for (unsigned b = 0; b < n.width; ++b)
                v[b] = mkOr(A()[b], B()[b]);
            bits[id] = std::move(v);
            return;
          }
          case Op::Xor: {
            std::vector<NetId> v(n.width);
            for (unsigned b = 0; b < n.width; ++b)
                v[b] = mkXor(A()[b], B()[b]);
            bits[id] = std::move(v);
            return;
          }
          case Op::Shl:
            bits[id] = lowerShift(A(), B(), /*right=*/false, kNoNet);
            return;
          case Op::Shru:
            bits[id] = lowerShift(A(), B(), /*right=*/true, kNoNet);
            return;
          case Op::Sra:
            bits[id] = lowerShift(A(), B(), /*right=*/true, A().back());
            return;
          case Op::Eq:
            bits[id] = {mkInv(neBit(A(), B()))};
            return;
          case Op::Ne:
            bits[id] = {neBit(A(), B())};
            return;
          case Op::Ltu:
            bits[id] = {lessUnsigned(A(), B())};
            return;
          case Op::Lts: {
            // Flip sign bits, then unsigned compare.
            std::vector<NetId> a = A(), b = B();
            a.back() = mkInv(a.back());
            b.back() = mkInv(b.back());
            bits[id] = {lessUnsigned(a, b)};
            return;
          }
          case Op::Cat: {
            std::vector<NetId> v = B(); // low part
            for (NetId bitNet : A())
                v.push_back(bitNet);
            bits[id] = std::move(v);
            return;
          }
          case Op::Mux: {
            NetId sel = bits[n.args[0]][0];
            const std::vector<NetId> &t = bits[n.args[1]];
            const std::vector<NetId> &f = bits[n.args[2]];
            std::vector<NetId> v(n.width);
            for (unsigned b = 0; b < n.width; ++b)
                v[b] = mkMux(sel, t[b], f[b]);
            bits[id] = std::move(v);
            return;
          }
          case Op::Input:
            panic("input should have been created in pass 1");
        }
    }

    NetId
    neBit(const std::vector<NetId> &a, const std::vector<NetId> &b)
    {
        std::vector<NetId> diffs(a.size());
        for (size_t i = 0; i < a.size(); ++i)
            diffs[i] = mkXor(a[i], b[i]);
        return orReduce(diffs);
    }

    std::vector<NetId>
    lowerMul(const std::vector<NetId> &a, const std::vector<NetId> &b,
             unsigned width)
    {
        // Shift-add array multiplier over the full product width.
        std::vector<NetId> acc(width, tie0());
        for (size_t i = 0; i < b.size() && i < width; ++i) {
            std::vector<NetId> pp(width, tie0());
            for (size_t j = 0; j < a.size() && i + j < width; ++j)
                pp[i + j] = mkAnd(a[j], b[i]);
            acc = rippleAdd(acc, pp, tie0());
        }
        return acc;
    }

    std::vector<NetId>
    lowerDiv(const std::vector<NetId> &a, const std::vector<NetId> &b,
             bool wantRemainder)
    {
        // Combinational restoring divider, one conditional-subtract row
        // per quotient bit (MSB first).
        size_t w = a.size();
        std::vector<NetId> rem(w, tie0());
        std::vector<NetId> quot(w, tie0());
        for (size_t i = w; i-- > 0;) {
            // rem = (rem << 1) | a[i]
            std::vector<NetId> shifted(w);
            shifted[0] = a[i];
            for (size_t j = 1; j < w; ++j)
                shifted[j] = rem[j - 1];
            NetId msbOut = rem[w - 1]; // shifted-out bit (must join compare)
            // Compare {msbOut, shifted} >= b  <=>  NOT ({msbOut,shifted} < b)
            std::vector<NetId> wide = shifted;
            wide.push_back(msbOut);
            std::vector<NetId> bWide = b;
            bWide.push_back(tie0());
            NetId less = lessUnsigned(wide, bWide);
            NetId geq = mkInv(less);
            // diff = shifted - b (only valid when geq)
            std::vector<NetId> diff =
                rippleAdd(shifted, invertAll(b), tie1());
            for (size_t j = 0; j < w; ++j)
                rem[j] = mkMux(geq, diff[j], shifted[j]);
            quot[i] = geq;
        }
        // RISC-V x/0 semantics: quotient all-ones, remainder = dividend.
        NetId bZero = mkInv(orReduce(b));
        std::vector<NetId> out(w);
        for (size_t j = 0; j < w; ++j) {
            out[j] = wantRemainder ? mkMux(bZero, a[j], rem[j])
                                   : mkMux(bZero, tie1(), quot[j]);
        }
        return out;
    }

    std::vector<NetId>
    lowerShift(const std::vector<NetId> &a, const std::vector<NetId> &amt,
               bool right, NetId fill)
    {
        size_t w = a.size();
        NetId fillNet = fill == kNoNet ? tie0() : fill;
        unsigned stages = clog2(w);
        std::vector<NetId> cur = a;
        for (unsigned s = 0; s < stages && s < amt.size(); ++s) {
            uint64_t dist = 1ULL << s;
            std::vector<NetId> shifted(w);
            for (size_t i = 0; i < w; ++i) {
                size_t src;
                bool inRange;
                if (right) {
                    src = i + dist;
                    inRange = src < w;
                } else {
                    inRange = i >= dist;
                    src = inRange ? i - dist : 0;
                }
                shifted[i] = inRange ? cur[src] : fillNet;
            }
            std::vector<NetId> next(w);
            for (size_t i = 0; i < w; ++i)
                next[i] = mkMux(amt[s], shifted[i], cur[i]);
            cur = std::move(next);
        }
        // Any amount bit beyond the barrel range forces fill.
        NetId big = tie0();
        for (size_t s = stages; s < amt.size(); ++s)
            big = mkOr(big, amt[s]);
        if (!isTie0(big)) {
            for (size_t i = 0; i < w; ++i)
                cur[i] = mkMux(big, fillNet, cur[i]);
        }
        return cur;
    }

    // ------------------------------------------------------------------
    // State connection (pass 3).
    // ------------------------------------------------------------------

    void
    connectState()
    {
        for (size_t i = 0; i < d.regs().size(); ++i) {
            const rtl::RegInfo &r = d.regs()[i];
            if (regionOf[r.node] >= 0)
                continue; // dissolved
            const rtl::Node &n = d.node(r.node);
            currentGroup = groupOf(n);
            currentRegion = -1;
            const std::vector<NetId> &q = bits[r.node];
            const std::vector<NetId> &next = bits[r.next];
            NetId en = r.en == kNoNode ? kNoNet : bits[r.en][0];
            for (unsigned b = 0; b < n.width; ++b) {
                NetId dNet = next[b];
                if (en != kNoNet)
                    dNet = mkMux(en, next[b], q[b]); // enable -> D-mux
                nl.node(q[b]).in[0] = dNet;
            }
        }

        for (size_t mi = 0; mi < d.mems().size(); ++mi) {
            const rtl::MemInfo &m = d.mems()[mi];
            MacroMem &macro = nl.macros()[mi];
            for (size_t p = 0; p < m.reads.size(); ++p) {
                macro.reads[p].addr = bits[m.reads[p].addr];
                macro.reads[p].en = m.reads[p].en == kNoNode
                                        ? kNoNet
                                        : bits[m.reads[p].en][0];
            }
            for (size_t p = 0; p < m.writes.size(); ++p) {
                macro.writes[p].addr = bits[m.writes[p].addr];
                macro.writes[p].data = bits[m.writes[p].data];
                macro.writes[p].en = m.writes[p].en == kNoNode
                                         ? kNoNet
                                         : bits[m.writes[p].en][0];
            }
        }
    }

    void
    buildOutputs()
    {
        for (const rtl::OutputPort &o : d.outputs()) {
            BitPort port;
            port.name = o.name;
            port.bits = bits[o.node];
            nl.outputs().push_back(std::move(port));
        }
    }

    // ------------------------------------------------------------------
    // Retiming insertion (pass 4).
    // ------------------------------------------------------------------

    void
    retimeRegions()
    {
        for (size_t ri = 0; ri < d.retimeRegions().size(); ++ri)
            retimeOne(static_cast<int32_t>(ri), d.retimeRegions()[ri]);
    }

    void
    retimeOne(int32_t ri, const rtl::RetimeRegion &region)
    {
        RetimeNetInfo info;
        info.name = region.name;
        info.latency = region.latency;
        for (NodeId in : region.inputs)
            info.inputNets.push_back(bits[in]);

        // Region gates in creation order are topologically sorted.
        std::vector<NetId> regionGates;
        std::vector<uint32_t> depth(nl.numNodes(), 0);
        uint32_t maxDepth = 0;
        for (NetId g = 0; g < nl.numNodes(); ++g) {
            if (gateRegion[g] != ri)
                continue;
            regionGates.push_back(g);
            uint32_t dIn = 0;
            for (NetId in : nl.node(g).in) {
                if (in != kNoNet)
                    dIn = std::max(dIn, depth[in]);
            }
            depth[g] = dIn + 1;
            maxDepth = std::max(maxDepth, depth[g]);
        }

        auto stageOf = [&](NetId net) -> uint32_t {
            if (gateRegion[net] != ri)
                return 0;
            return std::min<uint64_t>(
                region.latency,
                static_cast<uint64_t>(depth[net]) * (region.latency + 1) /
                    (maxDepth + 1));
        };

        // Memoized per-source pipeline chains.
        std::map<NetId, std::vector<NetId>> chains;
        unsigned dffCounter = 0;
        auto delayed = [&](NetId src, uint32_t k) -> NetId {
            if (k == 0)
                return src;
            std::vector<NetId> &chain = chains[src];
            while (chain.size() < k) {
                GateNode g;
                g.type = CellType::Dff;
                g.group = nl.addGroup(region.name);
                g.init = false;
                g.name = mangle(region.name) + "_rt_reg_" +
                         std::to_string(dffCounter++) + "_";
                g.in[0] = chain.empty() ? src : chain.back();
                NetId net = nl.addNode(std::move(g));
                gateRegion.push_back(-1); // chains are not re-retimed
                nl.noteDff(net);
                info.dffNames.push_back(nl.node(net).name);
                chain.push_back(net);
            }
            return chain[k - 1];
        };

        // Insert DFFs on stage-crossing edges inside the region. Note:
        // delayed() appends nodes, so re-fetch the gate after each call
        // rather than holding a reference into the node vector.
        for (NetId g : regionGates) {
            uint32_t sg = stageOf(g);
            for (unsigned pin = 0; pin < 3; ++pin) {
                NetId in = nl.node(g).in[pin];
                if (in == kNoNet)
                    continue;
                uint32_t sp = stageOf(in);
                if (sg > sp) {
                    NetId replacement = delayed(in, sg - sp);
                    nl.node(g).in[pin] = replacement;
                }
            }
        }

        // Pad region outputs up to the full latency and repoint all
        // external users.
        const std::vector<NetId> outBits = bits[region.output];
        std::map<NetId, NetId> outputRewrite;
        for (NetId o : outBits) {
            uint32_t k = region.latency - stageOf(o);
            if (k > 0)
                outputRewrite[o] = delayed(o, k);
        }
        if (!outputRewrite.empty())
            rewriteUsers(outputRewrite, ri);
        if (!outputRewrite.empty()) {
            // Keep the RTL->net map coherent so later consumers of the
            // region output (including later retimed regions recording
            // their input nets) see the padded nets.
            for (std::vector<NetId> &nodeBits : bits) {
                for (NetId &bitNet : nodeBits) {
                    auto it = outputRewrite.find(bitNet);
                    if (it != outputRewrite.end())
                        bitNet = it->second;
                }
            }
        }

        nl.retime().push_back(std::move(info));
    }

    /** Repoint every non-region user of the rewritten nets. */
    void
    rewriteUsers(const std::map<NetId, NetId> &rewrite, int32_t ri)
    {
        // Nets in the replacement chains must keep their original inputs.
        std::vector<bool> isChainDff(nl.numNodes(), false);
        for (const auto &[from, to] : rewrite) {
            // Walk back the chain from `to` to `from`.
            NetId cur = to;
            while (cur != from && nl.node(cur).type == CellType::Dff) {
                isChainDff[cur] = true;
                cur = nl.node(cur).in[0];
            }
        }

        auto fix = [&](NetId &net) {
            auto it = rewrite.find(net);
            if (it != rewrite.end())
                net = it->second;
        };

        for (NetId g = 0; g < nl.numNodes(); ++g) {
            if (isChainDff[g] || gateRegion[g] == ri)
                continue;
            for (NetId &in : nl.node(g).in) {
                if (in != kNoNet)
                    fix(in);
            }
        }
        for (BitPort &p : nl.outputs())
            for (NetId &bitNet : p.bits)
                fix(bitNet);
        for (MacroMem &m : nl.macros()) {
            for (auto &r : m.reads) {
                for (NetId &a : r.addr)
                    fix(a);
                if (r.en != kNoNet)
                    fix(r.en);
            }
            for (auto &w : m.writes) {
                for (NetId &a : w.addr)
                    fix(a);
                for (NetId &dn : w.data)
                    fix(dn);
                if (w.en != kNoNet)
                    fix(w.en);
            }
        }
    }
};

} // namespace

SynthesisResult
synthesize(const rtl::Design &target)
{
    // Lint before lowering: synthesis assumes every IR invariant the
    // error rules encode (widths, acyclicity, retime-region legality).
    lint::Options opts;
    opts.minSeverity = lint::Severity::Error;
    lint::Diagnostics diags = lint::run(target, opts);
    if (diags.hasErrors()) {
        fatal("synthesis target '%s' failed lint with %zu error(s):\n%s",
              target.name().c_str(), diags.errorCount(),
              diags.str().c_str());
    }

    Synthesizer synth(target);
    SynthesisResult result = synth.run();
    uint64_t retimed = 0;
    for (const RetimeNetInfo &r : result.netlist.retime())
        retimed += r.dffNames.size();
    result.stats.retimedDffCount = retimed;
    return result;
}

} // namespace gate
} // namespace strober
