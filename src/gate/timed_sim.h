/**
 * @file
 * Event-driven, delay-annotated gate-level simulation. The paper's
 * gate-level runs use a commercial simulator on the post-layout netlist,
 * "accounting for detailed timing" — which captures glitches (multiple
 * transitions of a net within one cycle) that a zero-delay evaluator
 * like GateSimulator cannot see. This simulator propagates events
 * through per-cell propagation delays inside each cycle, so its toggle
 * counts include glitch activity; it is correspondingly slower, which is
 * also faithful.
 *
 * Functional results (settled values, state updates) are identical to
 * GateSimulator; only the activity differs: toggles(timed) >=
 * toggles(zero-delay), and the difference is the glitch power the
 * ablation bench quantifies.
 */

#ifndef STROBER_GATE_TIMED_SIM_H
#define STROBER_GATE_TIMED_SIM_H

#include <cstdint>
#include <map>
#include <vector>

#include "gate/gate_sim.h"
#include "gate/netlist.h"

namespace strober {
namespace gate {

/** Event-driven two-valued simulator with per-cell delays. */
class TimedGateSimulator
{
  public:
    explicit TimedGateSimulator(const GateNetlist &netlist);

    void reset();
    void pokePort(size_t idx, uint64_t value);
    uint64_t peekPort(size_t idx);
    void step(uint64_t n = 1);
    uint64_t cycle() const { return cycleCount; }

    /** Per-net transition counts *including glitches*. */
    const std::vector<uint64_t> &toggleCounts() const { return toggles; }
    const std::vector<MacroStats> &macroStats() const { return macroAcc; }
    uint64_t activityCycles() const { return cycleCount - activityStart; }
    void clearActivity();

    /** Events processed (a measure of the extra timing detail). */
    uint64_t eventsProcessed() const { return eventCount; }

  private:
    const GateNetlist &nl;
    std::vector<uint8_t> values;
    std::vector<uint64_t> toggles;
    std::vector<std::vector<NetId>> fanout;       //!< per net
    std::vector<std::vector<uint32_t>> macroAddrFanout; //!< macro deps
    std::vector<std::vector<uint64_t>> macroContents;
    std::vector<MacroStats> macroAcc;
    std::vector<uint8_t> dffPending;
    std::vector<std::vector<uint8_t>> syncReadPending;
    std::vector<uint8_t> dirty; //!< net scheduled flag per wave
    uint64_t cycleCount = 0;
    uint64_t activityStart = 0;
    uint64_t eventCount = 0;
    bool settled = false;
    std::vector<NetId> pendingSources; //!< sources changed since settle

    void settle();
    uint8_t evalGate(NetId id) const;
    uint64_t busValue(const std::vector<NetId> &bits) const;
};

} // namespace gate
} // namespace strober

#endif // STROBER_GATE_TIMED_SIM_H
