#include "codegen/jit.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include <dlfcn.h>
#include <unistd.h>

#include "codegen/codegen.h"
#include "util/env.h"
#include "util/logging.h"

#ifndef STROBER_HOST_CXX
#define STROBER_HOST_CXX ""
#endif

namespace strober {
namespace codegen {

using util::ErrorCode;
using util::Result;
using util::Status;
using util::errorf;

namespace {

/** Can @p compiler be invoked? (`command -v` through the shell, so
 *  both bare names on $PATH and absolute paths work.) */
bool
compilerUsable(const std::string &compiler)
{
    if (compiler.empty())
        return false;
    std::string cmd =
        "command -v '" + compiler + "' > /dev/null 2> /dev/null";
    int rc = std::system(cmd.c_str());
    return rc == 0;
}

/** Best-effort removal of the JIT scratch directory. */
void
cleanupDir(const std::string &dir, const std::string &src,
           const std::string &so, const std::string &log)
{
    ::unlink(src.c_str());
    ::unlink(so.c_str());
    ::unlink(log.c_str());
    ::rmdir(dir.c_str());
}

std::string
readWholeFile(const std::string &path, size_t limit = 4096)
{
    std::ifstream in(path);
    std::string out;
    char c;
    while (out.size() < limit && in.get(c))
        out.push_back(c);
    return out;
}

} // namespace

CompiledSim::~CompiledSim()
{
    if (handle != nullptr)
        ::dlclose(handle);
}

std::string
hostCompiler()
{
    if (util::envFlag("STROBER_DISABLE_JIT"))
        return "";
    const char *env = std::getenv("STROBER_CXX");
    if (env != nullptr && env[0] != '\0')
        return compilerUsable(env) ? env : "";
    const char *candidates[] = {STROBER_HOST_CXX, "c++", "g++", "clang++"};
    for (const char *c : candidates) {
        if (compilerUsable(c))
            return c;
    }
    return "";
}

Result<std::unique_ptr<CompiledSim>>
compileSimulator(const std::string &source, const std::string &tag)
{
    std::string cxx = hostCompiler();
    if (cxx.empty())
        return Status(ErrorCode::Unsupported,
                      "no host C++ compiler available (set $STROBER_CXX, "
                      "or unset $STROBER_DISABLE_JIT)");

    const char *tmp = std::getenv("TMPDIR");
    std::string dirTemplate =
        std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
        "/strober-jit-XXXXXX";
    std::vector<char> dirBuf(dirTemplate.begin(), dirTemplate.end());
    dirBuf.push_back('\0');
    if (::mkdtemp(dirBuf.data()) == nullptr)
        return errorf(ErrorCode::IoError,
                      "cannot create JIT scratch directory under '%s'",
                      dirTemplate.c_str());
    std::string dir = dirBuf.data();
    std::string src = dir + "/" + tag + ".cc";
    std::string so = dir + "/" + tag + ".so";
    std::string log = dir + "/" + tag + ".log";

    {
        std::ofstream out(src, std::ios::trunc);
        out << source;
        if (!out.flush()) {
            cleanupDir(dir, src, so, log);
            return errorf(ErrorCode::IoError, "cannot write '%s'",
                          src.c_str());
        }
    }

    std::string cmd = "'" + cxx + "' -std=c++17 -O2 -fPIC -shared -o '" +
                      so + "' '" + src + "' > '" + log + "' 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::string diag = readWholeFile(log);
        cleanupDir(dir, src, so, log);
        return errorf(ErrorCode::IoError,
                      "JIT compile failed (%s, exit %d):\n%s", cxx.c_str(),
                      rc, diag.c_str());
    }

    void *handle = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    // The object stays mapped after dlopen; the files can go now.
    cleanupDir(dir, src, so, log);
    if (handle == nullptr)
        return errorf(ErrorCode::IoError, "dlopen failed: %s", ::dlerror());

    std::unique_ptr<CompiledSim> sim(new CompiledSim());
    sim->handle = handle;
    sim->evalFn = reinterpret_cast<CompiledSim::Fn>(
        ::dlsym(handle, kEvalSymbol));
    sim->commitFn = reinterpret_cast<CompiledSim::Fn>(
        ::dlsym(handle, kCommitSymbol));
    const auto *numSlots = reinterpret_cast<const uint64_t *>(
        ::dlsym(handle, kNumSlotsSymbol));
    const auto *numMems = reinterpret_cast<const uint64_t *>(
        ::dlsym(handle, kNumMemsSymbol));
    if (sim->evalFn == nullptr || sim->commitFn == nullptr ||
        numSlots == nullptr || numMems == nullptr)
        return Status(ErrorCode::Corrupt,
                      "compiled module is missing entry points");
    sim->slots = *numSlots;
    sim->mems = *numMems;

    // Partitioned modules additionally stamp a chunk count and export
    // one eval function per chunk; a plain module has neither.
    const auto *numChunks = reinterpret_cast<const uint64_t *>(
        ::dlsym(handle, kNumChunksSymbol));
    if (numChunks != nullptr) {
        sim->chunkFns.reserve(*numChunks);
        for (uint64_t c = 0; c < *numChunks; ++c) {
            std::string sym = kChunkSymbolPrefix + std::to_string(c);
            auto fn = reinterpret_cast<CompiledSim::ChunkFn>(
                ::dlsym(handle, sym.c_str()));
            if (fn == nullptr)
                return errorf(ErrorCode::Corrupt,
                              "partitioned module is missing '%s'",
                              sym.c_str());
            sim->chunkFns.push_back(fn);
        }
    }
    return sim;
}

} // namespace codegen
} // namespace strober
