/**
 * @file
 * Compiled-simulation source emitter: lower a Design's optimized
 * evaluation plan (rtl::buildEvalPlan) to specialized C++ — one
 * straight-line eval() over the flat slot array plus one commit() for
 * the clock edge, with widths, masks, immediates and memory bounds
 * baked in as constants. The emitted translation unit is what the JIT
 * (codegen/jit.h) hands to the host toolchain; sim::Simulator calls
 * the resulting functions behind sim::Backend::Compiled.
 *
 * Contract: for the same (design, plan) the emitted source is
 * byte-identical across runs (locked by the golden test in
 * tests/test_codegen.cc), and executing it is bit-identical to the
 * interpreter executing the same plan (locked by the three-way
 * differential suite). Every expression mirrors rtl::evalOp exactly,
 * including the shift clamps and the division-by-zero rules.
 */

#ifndef STROBER_CODEGEN_CODEGEN_H
#define STROBER_CODEGEN_CODEGEN_H

#include <string>

#include "rtl/ir.h"
#include "rtl/opt.h"

namespace strober {
namespace codegen {

/** Exported symbol names of the emitted translation unit. */
constexpr const char *kEvalSymbol = "strober_eval";
constexpr const char *kCommitSymbol = "strober_commit";
constexpr const char *kNumSlotsSymbol = "strober_num_slots";
constexpr const char *kNumMemsSymbol = "strober_num_mems";
/** Chunk count stamp; absent (0) in non-partitioned modules. */
constexpr const char *kNumChunksSymbol = "strober_num_chunks";
/** Per-chunk eval functions: strober_eval_chunk_<k>, k in [0,chunks). */
constexpr const char *kChunkSymbolPrefix = "strober_eval_chunk_";

/**
 * Emit the specialized C++ translation unit for @p design under
 * @p plan. Deterministic: a pure function of its arguments.
 */
std::string emitSimulatorSource(const rtl::Design &design,
                                const rtl::EvalPlan &plan);

/**
 * Emit the partitioned (compiled-parallel) translation unit: one
 * `strober_eval_chunk_<k>(slots, mems, dirty)` per chunk of @p part —
 * each step stores only on change and ORs its consumer chunks' bits
 * into the caller's dirty bitmap — plus a sequential strober_eval full
 * sweep, the shared strober_commit, and geometry stamps including
 * strober_num_chunks. Deterministic: a pure function of its arguments.
 */
std::string emitPartitionedSource(const rtl::Design &design,
                                  const rtl::EvalPlan &plan,
                                  const rtl::EvalPartition &part);

} // namespace codegen
} // namespace strober

#endif // STROBER_CODEGEN_CODEGEN_H
