#include "codegen/codegen.h"

#include <algorithm>
#include <cstdio>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace codegen {

using rtl::EvalStep;
using rtl::Op;
using rtl::kNoSlot;

namespace {

/** Statements per emitted eval function; keeps any single function
 *  small enough that -O2 compile time stays linear in design size. */
constexpr size_t kChunkStmts = 2048;

std::string
hexU64(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llxull", (unsigned long long)v);
    return buf;
}

std::string
dec(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    return buf;
}

std::string
slot(uint32_t s)
{
    return "s[" + dec(s) + "]";
}

/** Wrap @p expr in the width mask (a no-op at 64 bits). */
std::string
masked(const std::string &expr, unsigned width)
{
    if (width >= 64)
        return expr;
    return "(" + expr + ") & " + hexU64(bitMask(width));
}

/** Sign-extend @p expr from @p width to 64 bits (two's-complement). */
std::string
sext64(const std::string &expr, unsigned width)
{
    if (width == 0 || width >= 64)
        return expr;
    std::string sign = hexU64(1ULL << (width - 1));
    return "((" + expr + " ^ " + sign + ") - " + sign + ")";
}

/** The pieces of one step's computation: an optional prelude declaring
 *  locals, and the value expression. Shared by the straight-line and
 *  the chunked (dirty-gated) emitters so their semantics cannot drift
 *  apart. */
struct StepParts
{
    std::string prelude; //!< "" or "uint64_t amt = ...; "
    std::string expr;
};

/**
 * The expression computing EvalStep @p st. Semantics mirror
 * rtl::evalOp case-for-case; keep the two in sync.
 */
StepParts
stepParts(const rtl::Design &d, const EvalStep &st)
{
    const std::string a = slot(st.a);
    const std::string b = slot(st.b);
    const std::string c = slot(st.c);
    const unsigned w = st.width;
    std::string expr;
    switch (st.op) {
      case Op::Not:
        expr = masked("~" + a, w);
        break;
      case Op::Neg:
        expr = masked("0ull - " + a, w);
        break;
      case Op::RedOr:
        expr = "(uint64_t)(" + a + " != 0ull)";
        break;
      case Op::RedAnd:
        expr = "(uint64_t)(" + a + " == " + hexU64(bitMask(st.widthA)) + ")";
        break;
      case Op::RedXor:
        expr = "(uint64_t)(__builtin_popcountll(" + a + ") & 1)";
        break;
      case Op::SExt:
        expr = masked(sext64(a, st.widthA), w);
        break;
      case Op::Pad:
        expr = a;
        break;
      case Op::Bits: {
        unsigned hi = static_cast<unsigned>(st.imm >> 8);
        unsigned lo = static_cast<unsigned>(st.imm & 0xff);
        expr = lo ? masked(a + " >> " + dec(lo), hi - lo + 1)
                  : masked(a, hi - lo + 1);
        break;
      }
      case Op::Add:
        expr = masked(a + " + " + b, w);
        break;
      case Op::Sub:
        expr = masked(a + " - " + b, w);
        break;
      case Op::Mul:
        expr = masked(a + " * " + b, w);
        break;
      case Op::Divu:
        expr = b + " == 0ull ? " + hexU64(bitMask(w)) + " : " + a + " / " + b;
        break;
      case Op::Remu:
        expr = b + " == 0ull ? " + a + " : " + a + " % " + b;
        break;
      case Op::And:
        expr = a + " & " + b;
        break;
      case Op::Or:
        expr = a + " | " + b;
        break;
      case Op::Xor:
        expr = a + " ^ " + b;
        break;
      case Op::Shl:
        expr = b + " >= " + dec(w) + "ull ? 0ull : " +
               masked("(" + a + " << " + b + ")", w);
        break;
      case Op::Shru:
        expr = b + " >= " + dec(w) + "ull ? 0ull : " + a + " >> " + b;
        break;
      case Op::Sra: {
        // amt = min(b, width) capped at 63 == min(b, min(width, 63)).
        unsigned cap = w > 63 ? 63 : w;
        return {"uint64_t amt = " + b + " < " + dec(cap) + "ull ? " + b +
                    " : " + dec(cap) + "ull; ",
                masked("(uint64_t)((int64_t)" + sext64(a, st.widthA) +
                           " >> amt)",
                       w)};
      }
      case Op::Eq:
        expr = "(uint64_t)(" + a + " == " + b + ")";
        break;
      case Op::Ne:
        expr = "(uint64_t)(" + a + " != " + b + ")";
        break;
      case Op::Ltu:
        expr = "(uint64_t)(" + a + " < " + b + ")";
        break;
      case Op::Lts:
        expr = "(uint64_t)((int64_t)" + sext64(a, st.widthA) +
               " < (int64_t)" + sext64(b, st.widthB) + ")";
        break;
      case Op::Cat:
        expr = masked("(" + a + " << " + dec(st.widthB) + ") | " + b, w);
        break;
      case Op::Mux:
        expr = a + " & 1ull ? " + b + " : " + c;
        break;
      case Op::MemRead: {
        const rtl::MemInfo &m = d.mems()[st.a];
        expr = b + " < " + dec(m.depth) + "ull ? m[" + dec(st.a) + "][" + b +
               "] : 0ull";
        break;
      }
      default:
        panic("codegen: unexpected op %s in evaluation plan",
              rtl::opName(st.op));
    }
    return {"", expr};
}

/** One statement computing EvalStep @p st into its destination slot. */
std::string
stepStmt(const rtl::Design &d, const EvalStep &st)
{
    StepParts p = stepParts(d, st);
    const std::string dst = slot(st.dst);
    if (p.prelude.empty())
        return "  " + dst + " = " + p.expr + ";\n";
    return "  { " + p.prelude + dst + " = " + p.expr + "; }\n";
}

/** "(s[en] & 1ull)" or "" when the port has no enable. */
std::string
enableExpr(rtl::NodeId en, const rtl::EvalPlan &plan)
{
    if (en == rtl::kNoNode)
        return "";
    return "(" + slot(plan.slotOf[en]) + " & 1ull)";
}

/** Append strober_commit: latch registers and sync-read data
 *  (read-before-write), apply memory writes (last port wins), then
 *  store the pendings — the same order as Simulator::commitEdge. */
void
emitCommit(std::string &out, const rtl::Design &d,
           const rtl::EvalPlan &plan)
{
    out += "extern \"C\" void strober_commit(uint64_t* s, uint64_t* const* "
           "m) {\n";
    out += "  (void)m;\n";
    const auto &regs = d.regs();
    for (size_t i = 0; i < regs.size(); ++i) {
        const rtl::RegInfo &r = regs[i];
        std::string nextV = slot(plan.slotOf[r.next]);
        std::string oldV = slot(plan.slotOf[r.node]);
        std::string en = enableExpr(r.en, plan);
        out += "  const uint64_t rp" + dec(i) + " = " +
               (en.empty() ? nextV : en + " ? " + nextV + " : " + oldV) +
               ";\n";
    }
    size_t flat = 0;
    for (size_t mi = 0; mi < d.mems().size(); ++mi) {
        const rtl::MemInfo &m = d.mems()[mi];
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads) {
            std::string read = slot(plan.slotOf[p.addr]) + " < " +
                               dec(m.depth) + "ull ? m[" + dec(mi) + "][" +
                               slot(plan.slotOf[p.addr]) + "] : 0ull";
            std::string en = enableExpr(p.en, plan);
            out += "  const uint64_t sp" + dec(flat) + " = " +
                   (en.empty() ? "(" + read + ")"
                               : en + " ? (" + read + ") : " +
                                     slot(plan.slotOf[p.data])) +
                   ";\n";
            ++flat;
        }
    }
    for (size_t mi = 0; mi < d.mems().size(); ++mi) {
        const rtl::MemInfo &m = d.mems()[mi];
        for (const rtl::MemWritePort &p : m.writes) {
            std::string en = enableExpr(p.en, plan);
            std::string body = "{ const uint64_t a = " +
                               slot(plan.slotOf[p.addr]) + "; if (a < " +
                               dec(m.depth) + "ull) m[" + dec(mi) +
                               "][a] = " + slot(plan.slotOf[p.data]) +
                               "; }";
            out += en.empty() ? "  " + body + "\n"
                              : "  if (" + en + ") " + body + "\n";
        }
    }
    for (size_t i = 0; i < regs.size(); ++i)
        out += "  " + slot(plan.slotOf[regs[i].node]) + " = rp" + dec(i) +
               ";\n";
    flat = 0;
    for (const rtl::MemInfo &m : d.mems()) {
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads) {
            out += "  " + slot(plan.slotOf[p.data]) + " = sp" + dec(flat) +
                   ";\n";
            ++flat;
        }
    }
    out += "}\n\n";
}

/** Append the geometry stamps; the loader cross-checks them before
 *  trusting the module (a stale .so over a changed design is a hard
 *  error). */
void
emitStamps(std::string &out, const rtl::Design &d,
           const rtl::EvalPlan &plan, size_t numChunks)
{
    out += "extern \"C\" const uint64_t strober_num_slots = " +
           dec(plan.numSlots) + ";\n";
    out += "extern \"C\" const uint64_t strober_num_mems = " +
           dec(d.mems().size()) + ";\n";
    if (numChunks > 0)
        out += "extern \"C\" const uint64_t strober_num_chunks = " +
               dec(numChunks) + ";\n";
}

} // namespace

std::string
emitSimulatorSource(const rtl::Design &d, const rtl::EvalPlan &plan)
{
    std::string out;
    out.reserve(64 * 1024);
    out += "// Specialized simulator for design '" + d.name() +
           "' — generated by strober codegen; do not edit.\n";
    out += "// slots=" + dec(plan.numSlots) +
           " hot=" + dec(plan.hotProgram.size()) +
           " folded=" + dec(plan.stats.folded) +
           " aliased=" + dec(plan.stats.aliased) +
           " cold=" + dec(plan.stats.cold) + "\n";
    out += "#include <cstdint>\n\n";

    // Eval: the hot program as straight-line code, chunked so no one
    // function overwhelms the host compiler's per-function analyses.
    size_t numChunks =
        (plan.hotProgram.size() + kChunkStmts - 1) / kChunkStmts;
    for (size_t chunk = 0; chunk < numChunks; ++chunk) {
        out += "static void eval_" + dec(chunk) +
               "(uint64_t* __restrict__ s, uint64_t* const* __restrict__ "
               "m) {\n";
        out += "  (void)m;\n";
        size_t lo = chunk * kChunkStmts;
        size_t hi = std::min(lo + kChunkStmts, plan.hotProgram.size());
        for (size_t i = lo; i < hi; ++i)
            out += stepStmt(d, plan.hotProgram[i]);
        out += "}\n\n";
    }

    out += "extern \"C\" void strober_eval(uint64_t* s, uint64_t* const* "
           "m) {\n";
    if (numChunks == 0)
        out += "  (void)s; (void)m;\n";
    for (size_t chunk = 0; chunk < numChunks; ++chunk)
        out += "  eval_" + dec(chunk) + "(s, m);\n";
    out += "}\n\n";

    emitCommit(out, d, plan);
    emitStamps(out, d, plan, 0);
    return out;
}

std::string
emitPartitionedSource(const rtl::Design &d, const rtl::EvalPlan &plan,
                      const rtl::EvalPartition &part)
{
    const auto &hot = plan.hotProgram;
    const uint32_t numChunks = static_cast<uint32_t>(part.chunks.size());
    const uint32_t words = part.dirtyWords();

    std::string out;
    out.reserve(64 * 1024);
    out += "// Partitioned simulator for design '" + d.name() +
           "' — generated by strober codegen; do not edit.\n";
    out += "// slots=" + dec(plan.numSlots) + " hot=" + dec(hot.size()) +
           " chunks=" + dec(numChunks) + " levels=" +
           dec(part.numLevels()) + " clusters=" + dec(part.clusters) +
           "\n";
    out += "#include <cstdint>\n\n";

    // One function per chunk. Each step stores its slot only when the
    // value changed, accumulating the consumer chunks' dirty bits in
    // locals; the accumulated words are published once at the end with
    // relaxed atomic ORs (chunks of one level run concurrently; the
    // level barrier orders the reads that follow).
    for (uint32_t c = 0; c < numChunks; ++c) {
        out += "extern \"C\" void " + std::string(kChunkSymbolPrefix) +
               dec(c) +
               "(uint64_t* __restrict__ s, uint64_t* const* __restrict__ "
               "m, uint64_t* __restrict__ d) {\n";
        out += "  (void)m; (void)d;\n";

        // Dirty words this chunk's outputs can touch, in first-use order.
        std::vector<uint32_t> usedWords;
        auto wordVar = [&](uint32_t word) {
            return "w" + dec(word);
        };
        std::string body;
        for (uint32_t i : part.chunks[c].steps) {
            const EvalStep &st = hot[i];
            StepParts p = stepParts(d, st);
            const std::string dst = slot(st.dst);

            // Consumer chunks of this step's slot, as (word, mask).
            std::vector<std::pair<uint32_t, uint64_t>> marks;
            for (uint32_t k = part.slotChunksBegin[st.dst];
                 k < part.slotChunksBegin[st.dst + 1]; ++k) {
                uint32_t consumer = part.slotChunks[k];
                uint32_t word = consumer >> 6;
                uint64_t bit = 1ULL << (consumer & 63);
                if (!marks.empty() && marks.back().first == word)
                    marks.back().second |= bit;
                else
                    marks.emplace_back(word, bit);
            }
            if (marks.empty()) {
                // No cross-chunk consumer: a plain store suffices.
                if (p.prelude.empty())
                    body += "  " + dst + " = " + p.expr + ";\n";
                else
                    body += "  { " + p.prelude + dst + " = " + p.expr +
                            "; }\n";
                continue;
            }
            for (const auto &[word, mask] : marks) {
                if (std::find(usedWords.begin(), usedWords.end(), word) ==
                    usedWords.end())
                    usedWords.push_back(word);
            }
            body += "  { " + p.prelude + "const uint64_t nv = " + p.expr +
                    "; if (" + dst + " != nv) { " + dst + " = nv;";
            for (const auto &[word, mask] : marks)
                body += " " + wordVar(word) + " |= " + hexU64(mask) + ";";
            body += " } }\n";
        }
        std::sort(usedWords.begin(), usedWords.end());
        for (uint32_t word : usedWords)
            out += "  uint64_t " + wordVar(word) + " = 0ull;\n";
        out += body;
        for (uint32_t word : usedWords)
            out += "  if (" + wordVar(word) + ") __atomic_fetch_or(d + " +
                   dec(word) + ", " + wordVar(word) +
                   ", __ATOMIC_RELAXED);\n";
        out += "}\n\n";
    }

    // Sequential full sweep over all chunks (chunk ids are level-major,
    // hence topologically ordered); dirty marks land in a scratch
    // bitmap. The runtime uses this for whole-design sanity sweeps —
    // per-cycle evaluation drives the chunk functions directly.
    out += "extern \"C\" void strober_eval(uint64_t* s, uint64_t* const* "
           "m) {\n";
    if (numChunks == 0) {
        out += "  (void)s; (void)m;\n";
    } else {
        out += "  uint64_t scratch[" + dec(words) + "] = {0};\n";
        for (uint32_t c = 0; c < numChunks; ++c)
            out += "  " + std::string(kChunkSymbolPrefix) + dec(c) +
                   "(s, m, scratch);\n";
    }
    out += "}\n\n";

    emitCommit(out, d, plan);
    emitStamps(out, d, plan, numChunks == 0 ? 0 : numChunks);
    return out;
}

} // namespace codegen
} // namespace strober
