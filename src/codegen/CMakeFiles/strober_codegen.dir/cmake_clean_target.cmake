file(REMOVE_RECURSE
  "libstrober_codegen.a"
)
