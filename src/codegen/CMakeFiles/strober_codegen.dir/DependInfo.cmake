
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/codegen.cc" "src/codegen/CMakeFiles/strober_codegen.dir/codegen.cc.o" "gcc" "src/codegen/CMakeFiles/strober_codegen.dir/codegen.cc.o.d"
  "/root/repo/src/codegen/jit.cc" "src/codegen/CMakeFiles/strober_codegen.dir/jit.cc.o" "gcc" "src/codegen/CMakeFiles/strober_codegen.dir/jit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/rtl/CMakeFiles/strober_rtl.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
