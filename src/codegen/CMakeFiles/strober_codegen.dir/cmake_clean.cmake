file(REMOVE_RECURSE
  "CMakeFiles/strober_codegen.dir/codegen.cc.o"
  "CMakeFiles/strober_codegen.dir/codegen.cc.o.d"
  "CMakeFiles/strober_codegen.dir/jit.cc.o"
  "CMakeFiles/strober_codegen.dir/jit.cc.o.d"
  "libstrober_codegen.a"
  "libstrober_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
