# Empty dependencies file for strober_codegen.
# This may be replaced when dependencies are built.
