/**
 * @file
 * Host-toolchain JIT for the compiled-simulation backend: write the
 * emitted translation unit (codegen/codegen.h) to a private temp
 * directory, compile it into a shared object with the host C++
 * compiler, dlopen() it and resolve the entry points.
 *
 * Compiler discovery, in order:
 *  1. $STROBER_CXX — explicit operator override;
 *  2. the compiler this binary was built with (baked in by CMake);
 *  3. `c++`, `g++`, `clang++` on $PATH.
 * Setting $STROBER_DISABLE_JIT to any non-empty value makes discovery
 * report "no compiler" — the hook the no-toolchain fallback test (and
 * an operator on a stripped-down machine) uses to force
 * sim::Backend::Compiled to degrade to the interpreter.
 *
 * Failures are values (util::Status), never process exits: a missing
 * compiler or a failed compile must leave the caller free to fall
 * back to interpretation with a warning.
 */

#ifndef STROBER_CODEGEN_JIT_H
#define STROBER_CODEGEN_JIT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace strober {
namespace codegen {

/** A dlopen()ed compiled simulator; closes the handle on destruction. */
class CompiledSim
{
  public:
    using Fn = void (*)(uint64_t *, uint64_t *const *);
    /** Per-chunk eval over (slots, memory pointers, dirty bitmap):
     *  evaluates one partition chunk, ORing consumer-chunk dirty bits
     *  into the bitmap with relaxed atomics. */
    using ChunkFn = void (*)(uint64_t *, uint64_t *const *, uint64_t *);

    CompiledSim(const CompiledSim &) = delete;
    CompiledSim &operator=(const CompiledSim &) = delete;
    ~CompiledSim();

    /** Combinational sweep over (slots, memory pointers). */
    Fn eval() const { return evalFn; }
    /** Clock-edge commit over (slots, memory pointers). */
    Fn commit() const { return commitFn; }
    /** Geometry stamps baked into the module (cross-checked on load). */
    uint64_t numSlots() const { return slots; }
    uint64_t numMems() const { return mems; }
    /** Chunk functions of a partitioned module; empty for plain ones. */
    const std::vector<ChunkFn> &chunks() const { return chunkFns; }

  private:
    friend util::Result<std::unique_ptr<CompiledSim>>
    compileSimulator(const std::string &, const std::string &);
    CompiledSim() = default;

    void *handle = nullptr;
    Fn evalFn = nullptr;
    Fn commitFn = nullptr;
    uint64_t slots = 0;
    uint64_t mems = 0;
    std::vector<ChunkFn> chunkFns;
};

/**
 * The host C++ compiler to JIT with, or "" when none is available
 * (nothing usable found, or $STROBER_DISABLE_JIT is set).
 */
std::string hostCompiler();

/**
 * Compile @p source into a shared object and load it. @p tag names the
 * temp artifacts (diagnostics only; any identifier-ish string works).
 * Errors: Unsupported when no compiler is available, IoError for
 * temp-dir/compile/dlopen failures, Corrupt when the module's geometry
 * stamps or entry points are missing.
 */
util::Result<std::unique_ptr<CompiledSim>>
compileSimulator(const std::string &source, const std::string &tag);

} // namespace codegen
} // namespace strober

#endif // STROBER_CODEGEN_JIT_H
