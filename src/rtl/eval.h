/**
 * @file
 * The single source of truth for combinational op semantics. Every
 * evaluator in the repository — the interpreter sweep
 * (sim::Simulator), the constant folder (rtl::buildEvalPlan) and the
 * compiled-code emitter (codegen::emitSimulatorSource) — must agree
 * bit-for-bit on what each Op computes; the first two call this
 * function directly and the third is differentially tested against it
 * (tests/test_differential.cc, tests/test_codegen.cc).
 *
 * Width conventions (they matter for the odd corners):
 *  - `width` is the result width; every result is truncated to it.
 *  - `widthA`/`widthB` are the *original* operand widths, used by the
 *    ops whose meaning depends on them (RedAnd, SExt, Sra, Lts, Cat).
 *  - Dynamic shift amounts are unbounded 64-bit values: Shl/Shru of
 *    `width` or more yields 0; Sra fills with the sign bit.
 *  - Divu/Remu define division by zero: x/0 = all-ones, x%0 = x.
 */

#ifndef STROBER_RTL_EVAL_H
#define STROBER_RTL_EVAL_H

#include <algorithm>
#include <cstdint>

#include "rtl/ir.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace rtl {

/**
 * Evaluate one combinational @p op over operand values @p a / @p b /
 * @p c (already masked to their widths). Op::MemRead is the one comb
 * op this cannot evaluate (it needs memory contents); callers own it.
 */
inline uint64_t
evalOp(Op op, unsigned width, unsigned widthA, unsigned widthB,
       uint64_t imm, uint64_t a, uint64_t b, uint64_t c)
{
    switch (op) {
      case Op::Not:
        return truncate(~a, width);
      case Op::Neg:
        return truncate(0 - a, width);
      case Op::RedOr:
        return a != 0;
      case Op::RedAnd:
        return a == bitMask(widthA);
      case Op::RedXor:
        return static_cast<uint64_t>(__builtin_popcountll(a)) & 1;
      case Op::SExt:
        return truncate(signExtend(a, widthA), width);
      case Op::Pad:
        return a;
      case Op::Bits:
        return bits(a, static_cast<unsigned>(imm >> 8),
                    static_cast<unsigned>(imm & 0xff));
      case Op::Add:
        return truncate(a + b, width);
      case Op::Sub:
        return truncate(a - b, width);
      case Op::Mul:
        return truncate(a * b, width);
      case Op::Divu:
        return b == 0 ? bitMask(width) : a / b;
      case Op::Remu:
        return b == 0 ? a : a % b;
      case Op::And:
        return a & b;
      case Op::Or:
        return a | b;
      case Op::Xor:
        return a ^ b;
      case Op::Shl:
        // Clamp before the C++ shift (<< by >= 64 is undefined).
        return b >= width ? 0 : truncate(a << b, width);
      case Op::Shru:
        return b >= width ? 0 : a >> b;
      case Op::Sra: {
        // Shifting by >= width fills with the sign bit; cap the actual
        // C++ shift at 63 (bit 63 of the sign-extended operand IS the
        // sign, so >> 63 realizes the full fill without UB).
        uint64_t amt = std::min<uint64_t>(b, width);
        if (amt > 63)
            amt = 63;
        int64_t x = static_cast<int64_t>(signExtend(a, widthA));
        return truncate(static_cast<uint64_t>(x >> amt), width);
      }
      case Op::Eq:
        return a == b;
      case Op::Ne:
        return a != b;
      case Op::Ltu:
        return a < b;
      case Op::Lts:
        return static_cast<int64_t>(signExtend(a, widthA)) <
               static_cast<int64_t>(signExtend(b, widthB));
      case Op::Cat:
        return truncate((a << widthB) | b, width);
      case Op::Mux:
        return a & 1 ? b : c;
      default:
        panic("evalOp: op %s is not a pure combinational function",
              opName(op));
    }
    return 0;
}

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_EVAL_H
