/**
 * @file
 * Netlist pre-optimization for the fast simulator: lower a Design's
 * combinational graph into an EvalPlan — the optimized, slot-renumbered
 * evaluation schedule that both the interpreter backends and the
 * compiled-code backend (src/codegen) execute.
 *
 * Passes, run in one topological sweep plus a liveness pass:
 *  1. Constant folding: nodes whose operands all fold become
 *     compile-time constants (evaluated with rtl::evalOp, so folding
 *     can never disagree with the interpreter).
 *  2. Common-subexpression elimination: structurally identical ops
 *     over identical operand sources collapse to one representative;
 *     commutative ops (Add/Mul/And/Or/Xor/Eq/Ne) canonicalize operand
 *     order first. Value-passthrough ops (Pad always; SExt and
 *     full-range Bits at equal widths; Mux with a folded selector)
 *     alias straight to their source.
 *  3. Dead-node sweep: nodes not reachable from any root (outputs,
 *     register next/enable, memory-port operands, retime annotations)
 *     are moved off the per-cycle hot path into a cold program that
 *     only runs when such a node is actually peeked.
 *  4. Dense slot renumbering: live values get contiguous slots in a
 *     flat array — leaves first, then the hot schedule in evaluation
 *     order, then deduplicated constants, then cold nodes — so the
 *     per-cycle working set is cache-contiguous instead of scattered
 *     across NodeId space.
 *
 * Observability contract: *every* node still has a value. slotOf maps
 * each NodeId to the slot carrying its (representative's) value;
 * aliases share their representative's slot, folded nodes share a
 * preset constant slot, and cold nodes are refreshed by evaluating
 * coldProgram before reading. sim::Simulator::peek() hides all of
 * this, so scan chains, snapshots, VCD dumping and the differential
 * tests see exactly the values the unoptimized sweep would produce.
 */

#ifndef STROBER_RTL_OPT_H
#define STROBER_RTL_OPT_H

#include <cstdint>
#include <vector>

#include "lint/diagnostics.h"
#include "rtl/ir.h"

namespace strober {
namespace rtl {

/** Index into an EvalPlan's flat value array. */
using SlotId = uint32_t;

/** Sentinel for "no slot" (e.g. an absent enable operand). */
constexpr SlotId kNoSlot = UINT32_MAX;

/**
 * One scheduled combinational operation over the slot array. Operand
 * slots are fully resolved: an argument that was folded reads a
 * constant slot, an aliased argument reads its representative's slot.
 * For Op::MemRead, @ref a is the memory index and @ref b the address
 * slot. @ref widthA / @ref widthB are the *original* operand widths
 * (aliasing never changes a value, but it can change the width of the
 * node a slot came from, and RedAnd/SExt/Sra/Lts/Cat semantics depend
 * on the consumer's view of the operand width).
 */
struct EvalStep
{
    Op op = Op::Const;
    uint16_t width = 0;
    uint8_t widthA = 0;
    uint8_t widthB = 0;
    SlotId dst = kNoSlot;
    uint32_t a = 0, b = 0, c = 0;
    uint64_t imm = 0;
};

/** Optimization statistics (reporting and tests). */
struct EvalPlanStats
{
    uint32_t folded = 0;   //!< comb nodes that became constants
    uint32_t aliased = 0;  //!< comb nodes merged into a representative
    uint32_t cold = 0;     //!< live-value dead nodes moved off the hot path
    uint32_t hot = 0;      //!< scheduled per-cycle operations
    uint32_t constSlots = 0; //!< deduplicated constant slots
    // Dataflow-powered subsets of the above (see rtl/dataflow.h; all
    // proofs use arbitrary-state-sound facts, so they hold under
    // setRegValue/scan-restore/fault injection too):
    uint32_t dfFolded = 0;    //!< folded via known-bits/range proofs
    uint32_t dfMuxPruned = 0; //!< Mux arms pruned via a decided selector
    uint32_t dfAliased = 0;   //!< identity/absorption aliases proven
};

/** The optimized evaluation schedule of one Design. */
struct EvalPlan
{
    /** Per node: the slot carrying its value (always valid). */
    std::vector<SlotId> slotOf;
    /** Per node: value only fresh after coldProgram ran (see above). */
    std::vector<uint8_t> coldNode;
    /** Total slots in the flat value array. */
    uint32_t numSlots = 0;
    /** Constant slots and their values (applied at reset). */
    std::vector<std::pair<SlotId, uint64_t>> slotInit;
    /**
     * Per-cycle schedule, in a topological order of the optimized
     * graph: every step's operands are produced by leaves, constants
     * or strictly earlier steps. Draining dirty steps in ascending
     * index order is therefore a sub-sequence of the full sweep.
     */
    std::vector<EvalStep> hotProgram;
    /** Dead-node schedule, topological; runs only on cold peeks. */
    std::vector<EvalStep> coldProgram;
    EvalPlanStats stats;
};

/** Knobs for buildEvalPlan (tests and benchmarks compare with/without
 *  the dataflow strengthening; production callers use the defaults). */
struct EvalPlanOptions
{
    /**
     * Use rtl::analyzeDataflow arbitrary-state facts for bit-level
     * dead-code elimination: provably-constant net folding, decided-Mux
     * arm pruning, and identity/absorption aliasing (And with a proven
     * superset mask, Or into proven ones, shift/add/sub/xor by proven
     * zero, SExt of a proven-nonnegative value, Bits dropping only
     * proven-zero bits). Every transform is value-preserving in every
     * reachable *or manufactured* state, so the observability contract
     * (peek == unoptimized sweep) still holds bit-for-bit.
     */
    bool dataflow = true;
};

/**
 * Build the optimized evaluation plan for @p design. Same contract as
 * analyzeComb(): calls fatal() naming a node on a combinational cycle.
 */
EvalPlan buildEvalPlan(const Design &design,
                       const EvalPlanOptions &options = {});

// --- Partitioning pass (compiled-parallel backend) ---------------------
//
// The hot program is clustered into *chunks* — balanced groups of steps
// evaluated as a unit — arranged into *levels* executed in order with a
// barrier between them. All data dependencies between steps either stay
// inside one chunk or cross a level boundary (never between two chunks
// of the same level), so the chunks of one level can run on any number
// of threads in any order and still produce exactly the full sweep's
// values. Each chunk carries a dirty bit: a chunk is re-evaluated only
// when one of its input slots changed — the chunk-granular
// generalization of InterpretedActivity's per-step dirty bitmap that
// the compiled-parallel backend's JIT'd chunk functions test and
// propagate (src/codegen).

/** Target clusters (parallel chunks) per level. Fixed — NOT derived
 *  from the thread count — so the partition, the emitted code, and
 *  every evaluation counter are identical whatever --sim-threads is. */
constexpr uint32_t kDefaultPartitionClusters = 8;

/** Minimum hot steps per level: consecutive topological ranks are
 *  merged until a level carries at least this much work, bounding the
 *  number of per-cycle barriers. */
constexpr uint32_t kDefaultPartitionGrain = 512;

/** One cluster of hot-program steps evaluated as a unit. */
struct EvalChunk
{
    uint32_t level = 0;           //!< executing level (barrier group)
    std::vector<uint32_t> steps;  //!< hot-program indices, ascending
};

/** Level-ordered clustering of an EvalPlan's hot program. */
struct EvalPartition
{
    uint32_t clusters = 0;  //!< requested clusters per level
    /** Chunks in level-major order: level of chunk c is
     *  nondecreasing in c, so one level is a contiguous id range. */
    std::vector<EvalChunk> chunks;
    /** Per level l: chunks [levelBegin[l], levelBegin[l+1]). */
    std::vector<uint32_t> levelBegin;
    /** Per hot-program step: owning chunk id. */
    std::vector<uint32_t> stepChunk;
    /** CSR: per slot, the chunks that consume it and must go dirty
     *  when it changes — excluding the chunk producing it (in-chunk
     *  edges are satisfied by the chunk's own ascending execution). */
    std::vector<uint32_t> slotChunksBegin;
    std::vector<uint32_t> slotChunks;
    /** Per memory: chunks with an async MemRead of it (marked dirty
     *  on memory mutation, mirroring the interpreter's memReadSteps). */
    std::vector<std::vector<uint32_t>> memChunks;

    uint32_t numLevels() const
    {
        return levelBegin.empty()
                   ? 0
                   : static_cast<uint32_t>(levelBegin.size() - 1);
    }
    /** Words of the chunk dirty bitmap. */
    uint32_t dirtyWords() const
    {
        return static_cast<uint32_t>((chunks.size() + 63) / 64);
    }
};

/**
 * Cluster @p plan's hot program into a level-ordered, balanced
 * partition. Deterministic: a pure function of its arguments.
 * @p numMems is the design's memory count (for memChunks).
 */
EvalPartition
partitionEvalPlan(const EvalPlan &plan, size_t numMems,
                  uint32_t clusters = kDefaultPartitionClusters,
                  uint32_t minLevelSteps = kDefaultPartitionGrain);

/**
 * Statically prove @p partition data-race-free for @p plan: any thread
 * assignment of one level's chunks produces exactly the full sweep's
 * values. Obligations checked (one lint rule id per violation class):
 *
 *  - "partition-coverage": every hot-program step appears in exactly
 *    one chunk, chunk step lists are ascending, stepChunk agrees with
 *    the chunk contents, and no chunk is empty.
 *  - "partition-geometry": chunks are level-major, levelBegin tiles
 *    them exactly, and every CSR index/chunk id is in range
 *    (slotChunksBegin spans plan.numSlots, memChunks spans numMems).
 *  - "partition-level-race": no step depends on a slot produced by a
 *    *different* chunk of the *same* level (such an edge would race
 *    under concurrent chunk execution).
 *  - "partition-double-writer": no two chunks of one level write the
 *    same slot (concurrent writers - the store order would matter).
 *  - "partition-dirty-closure": every cross-chunk consumer of a slot
 *    is listed in the slot's CSR entry, and every chunk with an async
 *    MemRead of memory m is listed in memChunks[m]; a missing edge
 *    would leave a chunk clean after its input changed.
 *
 * Pure and non-fatal: returns the accumulated diagnostics (empty =
 * proven). sim::Simulator panics on any error from this gate before
 * attaching a compiled-parallel module.
 */
lint::Diagnostics verifyPartition(const EvalPlan &plan,
                                  const EvalPartition &partition,
                                  size_t numMems);

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_OPT_H
