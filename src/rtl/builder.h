/**
 * @file
 * A small hardware-construction EDSL over the netlist IR — the repo's
 * stand-in for Chisel. Designs are built by calling methods on a Builder;
 * Signal is a lightweight value handle with overloaded operators.
 *
 * Example (counter with enable):
 * @code
 *   Builder b("counter");
 *   Signal en = b.input("en", 1);
 *   Signal cnt = b.reg("cnt", 8, 0);
 *   b.next(cnt, cnt + b.lit(1, 8), en);
 *   b.output("out", cnt);
 *   Design d = b.finish();
 * @endcode
 */

#ifndef STROBER_RTL_BUILDER_H
#define STROBER_RTL_BUILDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace rtl {

class Builder;

/** A value handle produced by Builder; copyable and cheap. */
class Signal
{
  public:
    Signal() = default;
    Signal(Builder *builder, NodeId id) : b(builder), nid(id) {}

    bool valid() const { return b != nullptr; }
    NodeId id() const { return nid; }
    Builder *builder() const { return b; }
    unsigned width() const;

    /** Extract one bit as a 1-bit signal. */
    Signal bit(unsigned pos) const;
    /** Extract bits [hi:lo]. */
    Signal bits(unsigned hi, unsigned lo) const;

  private:
    Builder *b = nullptr;
    NodeId nid = kNoNode;
};

/** Handle to a memory created by Builder::mem(). */
struct MemHandle
{
    int index = -1;
    bool valid() const { return index >= 0; }
};

/** RAII naming scope: names created inside get "prefix/" prepended. */
class Scope
{
  public:
    Scope(Builder &b, const std::string &name);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Builder &builder;
};

/**
 * Builds a Design incrementally. All factory methods return Signals whose
 * lifetime is tied to this Builder; finish() validates and releases the
 * completed Design.
 */
class Builder
{
  public:
    explicit Builder(std::string designName);

    // --- Ports -----------------------------------------------------------
    Signal input(const std::string &name, unsigned width);
    void output(const std::string &name, Signal value);

    // --- Literals --------------------------------------------------------
    Signal lit(uint64_t value, unsigned width);

    // --- State -----------------------------------------------------------
    /** Create a register; its next-state must be set with next(). */
    Signal reg(const std::string &name, unsigned width, uint64_t init = 0);
    /** Set a register's next-state driver (and optional enable). */
    void next(Signal regSig, Signal value, Signal enable = Signal());

    /** Create a memory. @p syncRead selects registered read data. */
    MemHandle mem(const std::string &name, unsigned width, uint64_t depth,
                  bool syncRead = false);
    /** Combinational read port (async memories only). */
    Signal memRead(MemHandle m, Signal addr);
    /** Registered read port (sync memories only); data valid next cycle. */
    Signal memReadSync(MemHandle m, Signal addr, Signal enable = Signal());
    /** Write port. */
    void memWrite(MemHandle m, Signal addr, Signal data,
                  Signal enable = Signal());
    /** Set a memory's reset contents (free lists, microcode, ...). */
    void memInit(MemHandle m, std::vector<uint64_t> contents);

    // --- Forward references ---------------------------------------------
    /** Declare a wire to be assigned later (exactly once). */
    Signal wire(const std::string &name, unsigned width);
    /** Assign a previously declared wire. */
    void assign(Signal wireSig, Signal value);

    // --- Combinational operations -----------------------------------------
    Signal unary(Op op, Signal a, unsigned width = 0);
    Signal binary(Op op, Signal a, Signal b);
    Signal mux(Signal sel, Signal t, Signal f);
    Signal cat(Signal hi, Signal lo);
    Signal extract(Signal a, unsigned hi, unsigned lo);
    Signal pad(Signal a, unsigned width);
    Signal sext(Signal a, unsigned width);
    /** Zero-extend or truncate to exactly @p width. */
    Signal resize(Signal a, unsigned width);
    Signal redOr(Signal a) { return unary(Op::RedOr, a, 1); }
    Signal redAnd(Signal a) { return unary(Op::RedAnd, a, 1); }
    Signal redXor(Signal a) { return unary(Op::RedXor, a, 1); }

    /** Concatenate many signals, first element most significant. */
    Signal catAll(const std::vector<Signal> &parts);

    /** One-hot select: pick values[i] where sel == i (priority mux tree). */
    Signal select(Signal sel, const std::vector<Signal> &values);

    // --- Annotations -------------------------------------------------------
    /**
     * Mark a feed-forward pipeline region for retiming: synthesis may move
     * @p regs; replay recovers them by forcing @p inputs / checking
     * @p output for @p latency warm-up cycles (paper Section IV-C3).
     */
    void annotateRetimed(const std::string &name, unsigned latency,
                         const std::vector<Signal> &inputs, Signal output,
                         const std::vector<Signal> &regs);

    // --- Naming -----------------------------------------------------------
    void pushScope(const std::string &name);
    void popScope();
    /** @return @p name prefixed with the current scope path. */
    std::string scopedName(const std::string &name) const;

    // --- Completion ---------------------------------------------------------
    /** Validate (Design::check) and return the finished design. */
    Design finish();

    /** Access the design under construction (advanced use / transforms). */
    Design &designUnderConstruction() { return d; }

    Signal signalOf(NodeId id) { return Signal(this, id); }

  private:
    friend class Signal;
    Design d;
    std::vector<std::string> scopes;
    std::vector<bool> wireAssigned; // parallel to nodes; true for non-wires
    bool finished = false;

    /** Stamp the current scope onto @p n and append it. */
    NodeId addNodeStamped(Node n);
};

// Operator sugar; both operands must come from the same Builder.
Signal operator+(Signal a, Signal b);
Signal operator-(Signal a, Signal b);
Signal operator*(Signal a, Signal b);
Signal operator&(Signal a, Signal b);
Signal operator|(Signal a, Signal b);
Signal operator^(Signal a, Signal b);
Signal operator~(Signal a);
Signal operator!(Signal a); //!< 1-bit logical not (redOr then invert)

Signal eq(Signal a, Signal b);
Signal ne(Signal a, Signal b);
Signal ltu(Signal a, Signal b);
Signal lts(Signal a, Signal b);
Signal geu(Signal a, Signal b);
Signal ges(Signal a, Signal b);
Signal shl(Signal a, Signal amount);
Signal shru(Signal a, Signal amount);
Signal sra(Signal a, Signal amount);
Signal divu(Signal a, Signal b);
Signal remu(Signal a, Signal b);

/** eq against a literal of matching width. */
Signal eqImm(Signal a, uint64_t value);

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_BUILDER_H
