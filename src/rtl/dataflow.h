/**
 * @file
 * Forward abstract interpretation over a Design: per-node known-bits
 * (zero/one masks) and unsigned constant-range facts, with a fixed-point
 * solver across register feedback.
 *
 * Two soundness regimes, selected by DataflowOptions::assumeReset:
 *
 *  - assumeReset = true ("reset-reachable"): registers start at their
 *    declared init value and the solver iterates reg -> next -> reg
 *    until a fixed point (with range widening so counters terminate).
 *    The facts hold in every state reachable from reset under arbitrary
 *    inputs. This is what the semantic lint rules use: it can prove a
 *    mux arm unreachable or an enable stuck even through feedback.
 *
 *  - assumeReset = false ("arbitrary-state"): registers, inputs and
 *    memory read data are unconstrained (top within their width mask),
 *    so every fact holds in *any* masked state — including states
 *    manufactured by setRegValue(), scan-chain restore, snapshot load
 *    and fault injection. This is the only regime rtl::buildEvalPlan
 *    may fold against: the EvalPlan observability contract promises
 *    peek() matches the unoptimized sweep in whatever state the
 *    simulator has been put.
 *
 * Transfer functions mirror rtl::evalOp() bit-for-bit (division by
 * zero, shift-past-width, Mux on sel&1, operand-width corners); the
 * conformance fuzz in tests/test_dataflow.cc drives a Simulator and
 * asserts every computed fact contains every observed node value.
 */

#ifndef STROBER_RTL_DATAFLOW_H
#define STROBER_RTL_DATAFLOW_H

#include <cstdint>
#include <vector>

#include "rtl/ir.h"
#include "util/bits.h"

namespace strober {
namespace rtl {

/**
 * What is known about one node's value. A fact is a set of possible
 * values: the intersection of a known-bits constraint (bit i is 0
 * wherever zeros has it, 1 wherever ones has it) and an unsigned range
 * [lo, hi]. Invariants after normalize():
 *  - zeros and ones are disjoint; ones is within the width mask and
 *    zeros covers everything above it (values are always masked);
 *  - ones <= lo <= hi <= maxPossible();
 *  - lo == hi exactly when the value is a proven constant.
 */
struct ValueFact
{
    uint64_t zeros = ~0ull; //!< bits known to be 0 (includes >= width)
    uint64_t ones = 0;      //!< bits known to be 1
    uint64_t lo = 0;        //!< least possible value
    uint64_t hi = 0;        //!< greatest possible value
    uint16_t width = 1;     //!< declared width of the node (1..64)

    /** Nothing known beyond the width mask. */
    static ValueFact
    top(unsigned w)
    {
        ValueFact f;
        f.width = static_cast<uint16_t>(w);
        f.zeros = ~bitMask(w);
        f.ones = 0;
        f.lo = 0;
        f.hi = bitMask(w);
        return f;
    }

    /** The single value @p v (truncated to @p w bits). */
    static ValueFact
    constant(uint64_t v, unsigned w)
    {
        ValueFact f;
        f.width = static_cast<uint16_t>(w);
        v = truncate(v, w);
        f.ones = v;
        f.zeros = ~v;
        f.lo = v;
        f.hi = v;
        return f;
    }

    uint64_t mask() const { return bitMask(width); }
    /** Bits with a proven value (either polarity). */
    uint64_t knownMask() const { return zeros | ones; }
    /** Greatest value consistent with the known bits alone. */
    uint64_t maxPossible() const { return ones | (mask() & ~zeros); }
    /** Least value consistent with the known bits alone. */
    uint64_t minPossible() const { return ones; }

    bool isConst() const { return lo == hi; }
    uint64_t constVal() const { return lo; }

    /** Is the concrete value @p v (already masked) allowed by this fact? */
    bool
    contains(uint64_t v) const
    {
        return (v & zeros) == 0 && (v & ones) == ones && v >= lo &&
               v <= hi;
    }

    bool
    operator==(const ValueFact &o) const
    {
        return zeros == o.zeros && ones == o.ones && lo == o.lo &&
               hi == o.hi && width == o.width;
    }
    bool operator!=(const ValueFact &o) const { return !(*this == o); }
};

/**
 * Restore ValueFact invariants and exchange information between the
 * bit-level and range views (range bounds clamp to the bits; the common
 * leading bits of [lo, hi] become known bits). Every transfer result
 * passes through here. Exposed for tests.
 */
ValueFact normalizeFact(ValueFact f);

/** Least upper bound: the fact allowing any value either input allows. */
ValueFact joinFacts(const ValueFact &a, const ValueFact &b);

/**
 * Abstract counterpart of rtl::evalOp() with the same signature shape:
 * the result fact contains evalOp(op, ...a, b, c) for every concrete
 * (a, b, c) drawn from the operand facts. Operand facts that the op
 * does not consume are ignored. Op::MemRead yields top (memory contents
 * are not tracked). Exposed for per-op unit tests.
 */
ValueFact transferOp(Op op, unsigned width, unsigned widthA,
                     unsigned widthB, uint64_t imm, const ValueFact &a,
                     const ValueFact &b, const ValueFact &c);

struct DataflowOptions
{
    /** See the file comment: reset-reachable vs arbitrary-state facts. */
    bool assumeReset = true;
    /**
     * Iteration after which register range growth is widened straight
     * to the bits-implied bounds, so counters (whose ranges creep one
     * step per iteration) start converging.
     */
    unsigned widenAfter = 4;
    /**
     * Second widening stage: a register still changing after this many
     * iterations drops straight to top. Without it a w-bit counter
     * erodes one known bit per sweep and needs w iterations; with it
     * convergence is bounded by topAfter plus the register-chain depth.
     */
    unsigned topAfter = 16;
    /**
     * Hard iteration cap. If the solver has not converged by then it
     * drops every register to top and performs one final sweep, so the
     * returned facts are sound regardless (converged reports false).
     */
    unsigned maxIterations = 64;
};

struct DataflowResult
{
    std::vector<ValueFact> facts; //!< per node, indexed by NodeId
    unsigned iterations = 0;      //!< sweeps performed
    bool converged = true;        //!< false: widened to top at the cap
};

/**
 * Can @p design be analyzed without risking undefined behaviour?
 * Checks node references, per-op width legality, state bookkeeping and
 * combinational acyclicity — the same obligations the error-severity
 * lint rules enforce, rechecked cheaply here because the dataflow lint
 * passes must never crash on arbitrarily malformed designs.
 */
bool dataflowAnalyzable(const Design &design);

/**
 * Run the analysis. On a design that fails dataflowAnalyzable() the
 * result is all-top with converged == false (a safe, useless answer —
 * callers that require precision should gate on the error lint rules,
 * as buildEvalPlan's callers already do).
 */
DataflowResult analyzeDataflow(const Design &design,
                               const DataflowOptions &options = {});

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_DATAFLOW_H
