#include "rtl/analysis.h"

#include <algorithm>

#include "util/logging.h"

namespace strober {
namespace rtl {

CombSchedule
analyzeComb(const Design &design)
{
    size_t n = design.numNodes();
    CombSchedule sched;
    sched.level.assign(n, 0);
    sched.fanoutBegin.assign(n + 1, 0);

    // Count combinational dependencies and users.
    std::vector<uint32_t> pending(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        forEachCombDep(design, id, [&](NodeId dep) {
            ++pending[id];
            ++sched.fanoutBegin[dep + 1];
        });
    }
    for (size_t i = 1; i <= n; ++i)
        sched.fanoutBegin[i] += sched.fanoutBegin[i - 1];
    sched.fanout.resize(sched.fanoutBegin[n]);
    {
        std::vector<uint32_t> cursor(sched.fanoutBegin.begin(),
                                     sched.fanoutBegin.end() - 1);
        // Iterating users in ascending id keeps each fanout list sorted.
        for (NodeId id = 0; id < n; ++id) {
            forEachCombDep(design, id, [&](NodeId dep) {
                sched.fanout[cursor[dep]++] = id;
            });
        }
    }

    // Level assignment by Kahn waves: sources are level 0; a node's level
    // is 1 + max of its dependencies' levels.
    std::vector<NodeId> wave;
    for (NodeId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            wave.push_back(id);
    }
    size_t resolved = 0;
    std::vector<NodeId> next;
    while (!wave.empty()) {
        resolved += wave.size();
        next.clear();
        for (NodeId id : wave) {
            uint32_t userLevel = sched.level[id] + 1;
            for (uint32_t u = sched.fanoutBegin[id];
                 u < sched.fanoutBegin[id + 1]; ++u) {
                NodeId user = sched.fanout[u];
                sched.level[user] = std::max(sched.level[user], userLevel);
                if (--pending[user] == 0)
                    next.push_back(user);
            }
        }
        wave.swap(next);
    }
    if (resolved != n) {
        for (NodeId id = 0; id < n; ++id) {
            if (pending[id] != 0)
                fatal("combinational cycle through node %u '%s' (%s)", id,
                      design.node(id).name.c_str(),
                      opName(design.node(id).op));
        }
    }

    for (NodeId id = 0; id < n; ++id)
        sched.numLevels = std::max(sched.numLevels, sched.level[id] + 1);
    if (n == 0)
        sched.numLevels = 0;

    // Level-major order, ascending node id within a level (counting sort
    // by level preserves the id-order of the outer scan).
    std::vector<uint32_t> levelCount(sched.numLevels + 1, 0);
    for (NodeId id = 0; id < n; ++id)
        ++levelCount[sched.level[id] + 1];
    for (size_t l = 1; l <= sched.numLevels; ++l)
        levelCount[l] += levelCount[l - 1];
    sched.order.resize(n);
    for (NodeId id = 0; id < n; ++id)
        sched.order[levelCount[sched.level[id]]++] = id;
    return sched;
}

std::vector<std::vector<NodeId>>
combSccs(const Design &design)
{
    size_t n = design.numNodes();

    // Guarded dependency walk: out-of-range references and malformed
    // MemRead bookkeeping are skipped (reported by the dangling-ref lint
    // rule), so this is safe on arbitrarily broken designs.
    auto deps = [&](NodeId id, auto &&visit) {
        const Node &node = design.node(id);
        if (node.op == Op::MemRead) {
            uint32_t memIdx = node.aux >> 16;
            uint32_t portIdx = node.aux & 0xffff;
            if (memIdx >= design.mems().size())
                return;
            const MemInfo &m = design.mems()[memIdx];
            if (m.syncRead || portIdx >= m.reads.size())
                return;
            NodeId a = m.reads[portIdx].addr;
            if (a != kNoNode && a < n)
                visit(a);
            return;
        }
        unsigned arity = opArity(node.op);
        for (unsigned i = 0; i < arity; ++i) {
            NodeId a = node.args[i];
            if (a != kNoNode && a < n)
                visit(a);
        }
    };

    // Fast path: Kahn pruning. Nodes that drain to zero pending
    // dependencies cannot be on a cycle; only the residue is fed to the
    // (heavier) SCC computation.
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NodeId>> users(n);
    for (NodeId id = 0; id < n; ++id) {
        deps(id, [&](NodeId dep) {
            ++pending[id];
            users[dep].push_back(id);
        });
    }
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            ready.push_back(id);
    }
    size_t drained = ready.size();
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        for (NodeId u : users[id]) {
            if (--pending[u] == 0) {
                ready.push_back(u);
                ++drained;
            }
        }
    }
    if (drained == n)
        return {};

    // Iterative Tarjan over the residual subgraph (pending != 0).
    constexpr uint32_t kUnvisited = UINT32_MAX;
    std::vector<uint32_t> index(n, kUnvisited);
    std::vector<uint32_t> low(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<NodeId> stack;
    uint32_t counter = 0;
    std::vector<std::vector<NodeId>> sccs;

    struct Frame
    {
        NodeId node;
        std::vector<NodeId> succ;
        size_t next = 0;
    };
    std::vector<Frame> dfs;

    auto residualSuccs = [&](NodeId id) {
        std::vector<NodeId> out;
        deps(id, [&](NodeId dep) {
            if (pending[dep] != 0)
                out.push_back(dep);
        });
        return out;
    };

    for (NodeId root = 0; root < n; ++root) {
        if (pending[root] == 0 || index[root] != kUnvisited)
            continue;
        dfs.push_back({root, residualSuccs(root), 0});
        index[root] = low[root] = counter++;
        stack.push_back(root);
        onStack[root] = true;
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            if (f.next < f.succ.size()) {
                NodeId s = f.succ[f.next++];
                if (index[s] == kUnvisited) {
                    index[s] = low[s] = counter++;
                    stack.push_back(s);
                    onStack[s] = true;
                    dfs.push_back({s, residualSuccs(s), 0});
                } else if (onStack[s]) {
                    low[f.node] = std::min(low[f.node], index[s]);
                }
            } else {
                NodeId v = f.node;
                bool selfLoop = false;
                for (NodeId s : f.succ)
                    selfLoop |= (s == v);
                if (low[v] == index[v]) {
                    std::vector<NodeId> comp;
                    NodeId w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        comp.push_back(w);
                    } while (w != v);
                    if (comp.size() > 1 || selfLoop) {
                        std::sort(comp.begin(), comp.end());
                        sccs.push_back(std::move(comp));
                    }
                }
                dfs.pop_back();
                if (!dfs.empty())
                    low[dfs.back().node] =
                        std::min(low[dfs.back().node], low[v]);
            }
        }
    }
    std::sort(sccs.begin(), sccs.end(),
              [](const auto &a, const auto &b) { return a[0] < b[0]; });
    return sccs;
}

} // namespace rtl
} // namespace strober
