#include "rtl/analysis.h"

#include <algorithm>

#include "util/logging.h"

namespace strober {
namespace rtl {

CombSchedule
analyzeComb(const Design &design)
{
    size_t n = design.numNodes();
    CombSchedule sched;
    sched.level.assign(n, 0);
    sched.fanoutBegin.assign(n + 1, 0);

    // Count combinational dependencies and users.
    std::vector<uint32_t> pending(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        forEachCombDep(design, id, [&](NodeId dep) {
            ++pending[id];
            ++sched.fanoutBegin[dep + 1];
        });
    }
    for (size_t i = 1; i <= n; ++i)
        sched.fanoutBegin[i] += sched.fanoutBegin[i - 1];
    sched.fanout.resize(sched.fanoutBegin[n]);
    {
        std::vector<uint32_t> cursor(sched.fanoutBegin.begin(),
                                     sched.fanoutBegin.end() - 1);
        // Iterating users in ascending id keeps each fanout list sorted.
        for (NodeId id = 0; id < n; ++id) {
            forEachCombDep(design, id, [&](NodeId dep) {
                sched.fanout[cursor[dep]++] = id;
            });
        }
    }

    // Level assignment by Kahn waves: sources are level 0; a node's level
    // is 1 + max of its dependencies' levels.
    std::vector<NodeId> wave;
    for (NodeId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            wave.push_back(id);
    }
    size_t resolved = 0;
    std::vector<NodeId> next;
    while (!wave.empty()) {
        resolved += wave.size();
        next.clear();
        for (NodeId id : wave) {
            uint32_t userLevel = sched.level[id] + 1;
            for (uint32_t u = sched.fanoutBegin[id];
                 u < sched.fanoutBegin[id + 1]; ++u) {
                NodeId user = sched.fanout[u];
                sched.level[user] = std::max(sched.level[user], userLevel);
                if (--pending[user] == 0)
                    next.push_back(user);
            }
        }
        wave.swap(next);
    }
    if (resolved != n) {
        for (NodeId id = 0; id < n; ++id) {
            if (pending[id] != 0)
                fatal("combinational cycle through node %u '%s' (%s)", id,
                      design.node(id).name.c_str(),
                      opName(design.node(id).op));
        }
    }

    for (NodeId id = 0; id < n; ++id)
        sched.numLevels = std::max(sched.numLevels, sched.level[id] + 1);
    if (n == 0)
        sched.numLevels = 0;

    // Level-major order, ascending node id within a level (counting sort
    // by level preserves the id-order of the outer scan).
    std::vector<uint32_t> levelCount(sched.numLevels + 1, 0);
    for (NodeId id = 0; id < n; ++id)
        ++levelCount[sched.level[id] + 1];
    for (size_t l = 1; l <= sched.numLevels; ++l)
        levelCount[l] += levelCount[l - 1];
    sched.order.resize(n);
    for (NodeId id = 0; id < n; ++id)
        sched.order[levelCount[sched.level[id]]++] = id;
    return sched;
}

} // namespace rtl
} // namespace strober
