#include "rtl/dataflow.h"

#include <algorithm>

#include "rtl/analysis.h"
#include "rtl/eval.h"

namespace strober {
namespace rtl {

namespace {

/** Build a fact from a bit view plus an extra (sound) range bound. */
ValueFact
fromBitsAndRange(uint64_t zeros, uint64_t ones, uint64_t lo, uint64_t hi,
                 unsigned w)
{
    ValueFact f;
    f.width = static_cast<uint16_t>(w);
    f.zeros = zeros;
    f.ones = ones;
    f.lo = lo;
    f.hi = hi;
    return normalizeFact(f);
}

/** Build a fact from a bit view alone (range = bits-implied bounds). */
ValueFact
fromBits(uint64_t zeros, uint64_t ones, unsigned w)
{
    return fromBitsAndRange(zeros, ones, 0, ~0ull, w);
}

/** Build a fact from a range alone (bits = common [lo, hi] prefix). */
ValueFact
fromRange(uint64_t lo, uint64_t hi, unsigned w)
{
    return fromBitsAndRange(~bitMask(w), 0, lo, hi, w);
}

/**
 * Known bits of truncate(a + b + carryIn, w), where b's bit view is
 * passed directly so Sub can reuse this as a + ~b + 1. Classic per-bit
 * possible-value propagation: track the set of carries that can enter
 * each bit and which sum bits are forced.
 */
ValueFact
addKnownBits(const ValueFact &a, uint64_t bZeros, uint64_t bOnes,
             unsigned carryIn, unsigned w)
{
    uint64_t zeros = 0, ones = 0;
    bool c0 = carryIn == 0, c1 = carryIn == 1;
    for (unsigned i = 0; i < w; ++i) {
        bool aMay0 = !bit(a.ones, i), aMay1 = !bit(a.zeros, i);
        bool bMay0 = !bit(bOnes, i), bMay1 = !bit(bZeros, i);
        bool sum0 = false, sum1 = false, next0 = false, next1 = false;
        for (int av = 0; av <= 1; ++av) {
            if (av != 0 ? !aMay1 : !aMay0)
                continue;
            for (int bv = 0; bv <= 1; ++bv) {
                if (bv != 0 ? !bMay1 : !bMay0)
                    continue;
                for (int cv = 0; cv <= 1; ++cv) {
                    if (cv != 0 ? !c1 : !c0)
                        continue;
                    int s = av + bv + cv;
                    ((s & 1) != 0 ? sum1 : sum0) = true;
                    (s >= 2 ? next1 : next0) = true;
                }
            }
        }
        if (!sum1)
            zeros |= 1ull << i;
        if (!sum0)
            ones |= 1ull << i;
        c0 = next0;
        c1 = next1;
    }
    return fromBits(zeros | ~bitMask(w), ones, w);
}

/** Number of low-order bits of @p f proven zero. */
unsigned
trailingKnownZeros(const ValueFact &f)
{
    uint64_t notZero = ~f.zeros;
    return notZero == 0 ? 64
                        : static_cast<unsigned>(__builtin_ctzll(notZero));
}

/** Shl by the compile-time amount @p v. */
ValueFact
shlConst(const ValueFact &a, uint64_t v, unsigned w)
{
    uint64_t m = bitMask(w);
    if (v >= w)
        return ValueFact::constant(0, w);
    unsigned sh = static_cast<unsigned>(v);
    uint64_t zeros = (a.zeros << sh) | bitMask(sh) | ~m;
    uint64_t ones = (a.ones << sh) & m;
    uint64_t lo = 0, hi = ~0ull;
    if (a.hi <= (m >> sh)) {
        lo = a.lo << sh;
        hi = a.hi << sh;
    }
    return fromBitsAndRange(zeros, ones, lo, hi, w);
}

/** Shru by the compile-time amount @p v. */
ValueFact
shruConst(const ValueFact &a, uint64_t v, unsigned w)
{
    if (v >= w)
        return ValueFact::constant(0, w);
    unsigned sh = static_cast<unsigned>(v);
    uint64_t zeros = (a.zeros >> sh) | ~(bitMask(w) >> sh);
    uint64_t ones = a.ones >> sh;
    return fromBitsAndRange(zeros, ones, a.lo >> sh, a.hi >> sh, w);
}

/**
 * Sra by the compile-time amount @p v: result bit j is operand bit
 * (j + amt) below the operand width and the sign bit at or above it,
 * mirroring evalOp's sign-extend-then-shift.
 */
ValueFact
sraConst(const ValueFact &a, uint64_t v, unsigned w, unsigned widthA)
{
    uint64_t amt = std::min<uint64_t>(v, w);
    if (amt > 63)
        amt = 63;
    unsigned sign = widthA > 0 ? widthA - 1 : 0;
    uint64_t zeros = 0, ones = 0;
    for (unsigned j = 0; j < w; ++j) {
        uint64_t src = j + amt;
        unsigned s = src < sign ? static_cast<unsigned>(src) : sign;
        if (bit(a.zeros, s) != 0)
            zeros |= 1ull << j;
        else if (bit(a.ones, s) != 0)
            ones |= 1ull << j;
    }
    return fromBits(zeros | ~bitMask(w), ones, w);
}

/**
 * Join the const-amount transfer @p perAmount over every shift amount
 * the fact @p b allows. Amounts >= the result width all behave alike
 * (evalOp clamps), so the enumeration is bounded by w + 1 <= 65 cases.
 */
template <typename Fn>
ValueFact
enumerateShift(const ValueFact &b, unsigned w, Fn &&perAmount)
{
    bool any = false;
    ValueFact acc;
    uint64_t start = std::min<uint64_t>(b.lo, w);
    uint64_t cap = std::min<uint64_t>(b.hi, w);
    for (uint64_t v = start; v <= cap; ++v) {
        // v == w stands for the whole "shift out everything" class; a
        // specific amount below w must actually be allowed by b's bits.
        if (v < w && !b.contains(v))
            continue;
        ValueFact one = perAmount(v);
        acc = any ? joinFacts(acc, one) : one;
        any = true;
    }
    // b's fact is non-empty in any sound analysis, but stay defensive.
    return any ? acc : ValueFact::top(w);
}

ValueFact
transferMul(const ValueFact &a, const ValueFact &b, unsigned w)
{
    uint64_t m = bitMask(w);
    // Multiplication by a power of two is a shift; by zero, zero. The
    // symmetric cases are handled by the caller swapping operands.
    for (int swap = 0; swap < 2; ++swap) {
        const ValueFact &k = swap != 0 ? b : a;
        const ValueFact &x = swap != 0 ? a : b;
        if (!k.isConst())
            continue;
        uint64_t c = k.constVal();
        if (c == 0)
            return ValueFact::constant(0, w);
        if (isPow2(c)) {
            unsigned sh = static_cast<unsigned>(__builtin_ctzll(c));
            if (sh >= w)
                return ValueFact::constant(0, w);
            uint64_t zeros = (x.zeros << sh) | bitMask(sh) | ~m;
            uint64_t ones = (x.ones << sh) & m;
            uint64_t lo = 0, hi = ~0ull;
            if (x.hi <= (m >> sh)) {
                lo = x.lo << sh;
                hi = x.hi << sh;
            }
            return fromBitsAndRange(zeros, ones, lo, hi, w);
        }
    }
    // General case: trailing zeros add, and the range is exact when the
    // full product provably fits the result width.
    unsigned tz = trailingKnownZeros(a) + trailingKnownZeros(b);
    uint64_t zeros = bitMask(std::min(64u, tz)) | ~m;
    uint64_t lo = 0, hi = ~0ull;
    uint64_t hiProd = 0;
    if (!__builtin_mul_overflow(a.hi, b.hi, &hiProd) && hiProd <= m) {
        lo = a.lo * b.lo;
        hi = hiProd;
    }
    return fromBitsAndRange(zeros, 0, lo, hi, w);
}

} // namespace

ValueFact
normalizeFact(ValueFact f)
{
    uint64_t m = bitMask(f.width);
    f.ones &= m;
    f.zeros |= ~m;
    f.zeros &= ~f.ones; // defensive: keep the views disjoint
    uint64_t maxP = f.ones | (m & ~f.zeros);
    uint64_t minP = f.ones;
    f.lo = std::max(f.lo, minP);
    f.hi = std::min(f.hi, maxP);
    if (f.lo > f.hi) {
        // Contradictory views cannot arise from sound transfers over
        // non-empty inputs; fall back to the bit view alone.
        f.lo = minP;
        f.hi = maxP;
    }
    if (f.lo == f.hi) {
        f.ones = f.lo;
        f.zeros = ~f.lo;
        return f;
    }
    // The common leading bits of lo and hi are known: every value in
    // between shares them.
    uint64_t diff = f.lo ^ f.hi;
    unsigned top = 63 - static_cast<unsigned>(__builtin_clzll(diff));
    uint64_t prefix = ~bitMask(top + 1);
    uint64_t ones = f.ones | (f.hi & prefix);
    uint64_t zeros = f.zeros | (~f.hi & prefix);
    if ((ones & zeros) == 0) {
        f.ones = ones;
        f.zeros = zeros;
    }
    return f;
}

ValueFact
joinFacts(const ValueFact &a, const ValueFact &b)
{
    ValueFact f;
    f.width = std::max(a.width, b.width);
    f.zeros = a.zeros & b.zeros;
    f.ones = a.ones & b.ones;
    f.lo = std::min(a.lo, b.lo);
    f.hi = std::max(a.hi, b.hi);
    return normalizeFact(f);
}

ValueFact
transferOp(Op op, unsigned width, unsigned widthA, unsigned widthB,
           uint64_t imm, const ValueFact &a, const ValueFact &b,
           const ValueFact &c)
{
    uint64_t m = bitMask(width);
    if (op == Op::MemRead || op == Op::Input || op == Op::Const ||
        op == Op::Reg)
        return ValueFact::top(width);

    // All-constant operands: defer to evalOp itself, the single source
    // of truth, so the abstract and concrete folders can never disagree.
    unsigned arity = opArity(op);
    bool allConst = a.isConst() && (arity < 2 || b.isConst()) &&
                    (arity < 3 || c.isConst());
    if (allConst) {
        return ValueFact::constant(evalOp(op, width, widthA, widthB, imm,
                                          a.constVal(), b.constVal(),
                                          c.constVal()),
                                   width);
    }

    switch (op) {
      case Op::Not:
        return fromBits((a.ones & m) | ~m, a.zeros & m, width);
      case Op::Neg: {
        // Negation preserves trailing zeros; nothing else is cheap.
        unsigned tz = std::min(trailingKnownZeros(a),
                               static_cast<unsigned>(width));
        return fromBits(bitMask(tz) | ~m, 0, width);
      }
      case Op::RedOr:
        if (a.ones != 0 || a.lo > 0)
            return ValueFact::constant(1, 1);
        if (a.maxPossible() == 0)
            return ValueFact::constant(0, 1);
        return ValueFact::top(1);
      case Op::RedAnd: {
        uint64_t ma = bitMask(widthA);
        if ((a.zeros & ma) != 0)
            return ValueFact::constant(0, 1);
        if ((a.ones & ma) == ma)
            return ValueFact::constant(1, 1);
        return ValueFact::top(1);
      }
      case Op::RedXor:
        if ((~a.knownMask() & bitMask(widthA)) == 0) {
            return ValueFact::constant(
                static_cast<uint64_t>(__builtin_popcountll(a.ones)) & 1,
                1);
        }
        return ValueFact::top(1);
      case Op::SExt: {
        if (widthA >= width || widthA == 0) {
            // Truncating (or degenerate) extension: the result is just
            // the operand masked to the result width.
            return fromBits((a.zeros & m) | ~m, a.ones & m, width);
        }
        uint64_t low = bitMask(widthA - 1);
        if (bit(a.zeros, widthA - 1) != 0) {
            ValueFact f = a; // sign known 0: a zero-extension
            f.width = static_cast<uint16_t>(width);
            return normalizeFact(f);
        }
        if (bit(a.ones, widthA - 1) != 0) {
            return fromBits(a.zeros & low,
                            (a.ones & low) | (m & ~low), width);
        }
        return fromBits(a.zeros & low, a.ones & low, width);
      }
      case Op::Pad: {
        // evalOp passes the (already masked) value through untouched.
        ValueFact f = a;
        f.width = static_cast<uint16_t>(width);
        return normalizeFact(f);
      }
      case Op::Bits: {
        unsigned hiBit = static_cast<unsigned>(imm >> 8);
        unsigned loBit = static_cast<unsigned>(imm & 0xff);
        if (hiBit > 63 || loBit > hiBit)
            return ValueFact::top(width);
        uint64_t zeros = (a.zeros >> loBit) | ~m;
        uint64_t ones = (a.ones >> loBit) & m;
        uint64_t lo = 0, hi = ~0ull;
        if (loBit == 0 && a.hi <= m) {
            lo = a.lo; // no high bit can be populated: a passthrough
            hi = a.hi;
        }
        return fromBitsAndRange(zeros, ones, lo, hi, width);
      }
      case Op::Add: {
        ValueFact f = addKnownBits(a, b.zeros, b.ones, 0, width);
        uint64_t sum = 0;
        if (!__builtin_add_overflow(a.hi, b.hi, &sum) && sum <= m) {
            f.lo = a.lo + b.lo;
            f.hi = sum;
            f = normalizeFact(f);
        }
        return f;
      }
      case Op::Sub: {
        // a - b == a + ~b + 1: feed the adder b's flipped bit view.
        ValueFact f = addKnownBits(a, b.ones, b.zeros, 1, width);
        if (a.lo >= b.hi) {
            f.lo = a.lo - b.hi;
            f.hi = a.hi - b.lo;
            f = normalizeFact(f);
        }
        return f;
      }
      case Op::Mul:
        return transferMul(a, b, width);
      case Op::Divu:
        if (b.hi == 0)
            return ValueFact::constant(m, width); // x / 0 == all-ones
        if (b.lo >= 1)
            return fromRange(a.lo / b.hi, a.hi / b.lo, width);
        return fromRange(a.lo / b.hi, m, width);
      case Op::Remu:
        if (b.hi == 0) { // x % 0 == x
            ValueFact f = a;
            f.width = static_cast<uint16_t>(width);
            return normalizeFact(f);
        }
        if (b.lo >= 1)
            return fromRange(0, std::min(a.hi, b.hi - 1), width);
        return fromRange(0, a.hi, width);
      case Op::And:
        return fromBitsAndRange(a.zeros | b.zeros, a.ones & b.ones, 0,
                                std::min(a.hi, b.hi), width);
      case Op::Or:
        return fromBitsAndRange((a.zeros & b.zeros) | ~m,
                                (a.ones | b.ones) & m,
                                std::max(a.lo, b.lo), ~0ull, width);
      case Op::Xor: {
        uint64_t zeros = (a.zeros & b.zeros) | (a.ones & b.ones) | ~m;
        uint64_t ones = ((a.zeros & b.ones) | (a.ones & b.zeros)) & m;
        return fromBits(zeros, ones, width);
      }
      case Op::Shl:
        return enumerateShift(b, width, [&](uint64_t v) {
            return shlConst(a, v, width);
        });
      case Op::Shru:
        return enumerateShift(b, width, [&](uint64_t v) {
            return shruConst(a, v, width);
        });
      case Op::Sra:
        return enumerateShift(b, width, [&](uint64_t v) {
            return sraConst(a, v, width, widthA);
        });
      case Op::Eq:
      case Op::Ne: {
        bool conflict = (a.ones & b.zeros) != 0 ||
                        (b.ones & a.zeros) != 0 || a.hi < b.lo ||
                        b.hi < a.lo;
        if (conflict)
            return ValueFact::constant(op == Op::Eq ? 0 : 1, 1);
        return ValueFact::top(1);
      }
      case Op::Ltu:
        if (a.hi < b.lo)
            return ValueFact::constant(1, 1);
        if (a.lo >= b.hi)
            return ValueFact::constant(0, 1);
        return ValueFact::top(1);
      case Op::Lts: {
        if (widthA == 0 || widthB == 0 || widthA != widthB)
            return ValueFact::top(1);
        unsigned sa = widthA - 1, sb = widthB - 1;
        bool aNeg = bit(a.ones, sa) != 0, aPos = bit(a.zeros, sa) != 0;
        bool bNeg = bit(b.ones, sb) != 0, bPos = bit(b.zeros, sb) != 0;
        if (aPos && bNeg)
            return ValueFact::constant(0, 1); // a >= 0 > b
        if (aNeg && bPos)
            return ValueFact::constant(1, 1); // a < 0 <= b
        if ((aPos && bPos) || (aNeg && bNeg)) {
            // Same known sign and equal widths: two's-complement order
            // coincides with unsigned order.
            if (a.hi < b.lo)
                return ValueFact::constant(1, 1);
            if (a.lo >= b.hi)
                return ValueFact::constant(0, 1);
        }
        return ValueFact::top(1);
      }
      case Op::Cat: {
        if (widthB >= 64)
            return ValueFact::top(width);
        uint64_t mb = bitMask(widthB);
        uint64_t zeros = (a.zeros << widthB) | (b.zeros & mb);
        uint64_t ones = ((a.ones << widthB) | (b.ones & mb)) & m;
        uint64_t lo = 0, hi = ~0ull;
        uint64_t hiShift = 0;
        if (!__builtin_mul_overflow(a.hi, mb + 1, &hiShift) &&
            hiShift <= ~0ull - b.hi) {
            lo = a.lo * (mb + 1) + b.lo;
            hi = hiShift + b.hi;
        }
        return fromBitsAndRange(zeros | ~m, ones, lo, hi, width);
      }
      case Op::Mux:
        if (bit(a.zeros, 0) != 0)
            return normalizeFact(c);
        if (bit(a.ones, 0) != 0)
            return normalizeFact(b);
        return joinFacts(b, c);
      default:
        return ValueFact::top(width);
    }
}

bool
dataflowAnalyzable(const Design &d)
{
    size_t n = d.numNodes();
    auto valid = [&](NodeId id) { return id != kNoNode && id < n; };
    auto widthOk = [&](NodeId id) {
        return d.node(id).width >= 1 && d.node(id).width <= 64;
    };
    for (NodeId id = 0; id < n; ++id) {
        const Node &node = d.node(id);
        if (node.width == 0 || node.width > 64)
            return false;
        if (node.op == Op::MemRead) {
            uint32_t mi = node.aux >> 16, pi = node.aux & 0xffff;
            if (mi >= d.mems().size())
                return false;
            const MemInfo &mem = d.mems()[mi];
            if (pi >= mem.reads.size())
                return false;
            if (!mem.syncRead &&
                (!valid(mem.reads[pi].addr) ||
                 !widthOk(mem.reads[pi].addr)))
                return false;
            continue;
        }
        unsigned arity = opArity(node.op);
        for (unsigned i = 0; i < arity; ++i) {
            if (!valid(node.args[i]) || !widthOk(node.args[i]))
                return false;
        }
        auto argW = [&](unsigned i) {
            return static_cast<unsigned>(d.node(node.args[i]).width);
        };
        switch (node.op) {
          case Op::Const:
            if (truncate(node.imm, node.width) != node.imm)
                return false;
            break;
          case Op::Add: case Op::Sub: case Op::Divu: case Op::Remu:
          case Op::And: case Op::Or: case Op::Xor:
            if (argW(0) != node.width || argW(1) != node.width)
                return false;
            break;
          case Op::Mul:
            if (node.width != std::min(64u, argW(0) + argW(1)))
                return false;
            break;
          case Op::Shl: case Op::Shru: case Op::Sra:
          case Op::Not: case Op::Neg:
            if (argW(0) != node.width)
                return false;
            break;
          case Op::Eq: case Op::Ne: case Op::Ltu: case Op::Lts:
            if (node.width != 1 || argW(0) != argW(1))
                return false;
            break;
          case Op::RedOr: case Op::RedAnd: case Op::RedXor:
            if (node.width != 1)
                return false;
            break;
          case Op::Cat:
            if (node.width != argW(0) + argW(1))
                return false;
            break;
          case Op::Bits:
            if (node.bitsHi() < node.bitsLo() ||
                node.bitsHi() >= argW(0) ||
                node.width != node.bitsHi() - node.bitsLo() + 1)
                return false;
            break;
          case Op::SExt: case Op::Pad:
            if (node.width < argW(0))
                return false;
            break;
          case Op::Mux:
            if (argW(0) != 1 || argW(1) != node.width ||
                argW(2) != node.width)
                return false;
            break;
          default:
            break;
        }
    }
    for (const RegInfo &r : d.regs()) {
        if (!valid(r.node) || d.node(r.node).op != Op::Reg)
            return false;
        if (!valid(r.next) ||
            d.node(r.next).width != d.node(r.node).width)
            return false;
        if (r.en != kNoNode && (!valid(r.en) || d.node(r.en).width != 1))
            return false;
        if (truncate(r.init, d.node(r.node).width) != r.init)
            return false;
    }
    return combSccs(d).empty();
}

DataflowResult
analyzeDataflow(const Design &d, const DataflowOptions &options)
{
    DataflowResult res;
    size_t n = d.numNodes();
    res.facts.resize(n);
    for (NodeId id = 0; id < n; ++id) {
        unsigned w = d.node(id).width;
        res.facts[id] = ValueFact::top(w >= 1 && w <= 64 ? w : 64);
    }
    if (!dataflowAnalyzable(d)) {
        res.converged = false;
        return res;
    }

    for (NodeId id = 0; id < n; ++id) {
        const Node &node = d.node(id);
        if (node.op == Op::Const)
            res.facts[id] = ValueFact::constant(node.imm, node.width);
    }
    if (options.assumeReset) {
        for (const RegInfo &r : d.regs()) {
            res.facts[r.node] =
                ValueFact::constant(r.init, d.node(r.node).width);
        }
    }

    CombSchedule sched = analyzeComb(d);
    auto sweep = [&] {
        for (NodeId id : sched.order) {
            const Node &node = d.node(id);
            switch (node.op) {
              case Op::Input:
              case Op::Const:
              case Op::Reg:
              case Op::MemRead: // memory contents are untracked: top
                continue;
              default:
                break;
            }
            unsigned arity = opArity(node.op);
            static const ValueFact kUnused = ValueFact::top(1);
            const ValueFact &a = res.facts[node.args[0]];
            const ValueFact &b =
                arity >= 2 ? res.facts[node.args[1]] : kUnused;
            const ValueFact &c =
                arity >= 3 ? res.facts[node.args[2]] : kUnused;
            res.facts[id] = transferOp(
                node.op, node.width, d.node(node.args[0]).width,
                arity >= 2 ? d.node(node.args[1]).width : 1, node.imm,
                a, b, c);
        }
    };

    unsigned iter = 0;
    bool changed = true;
    while (changed) {
        sweep();
        ++iter;
        changed = false;
        for (const RegInfo &r : d.regs()) {
            ValueFact &cur = res.facts[r.node];
            if (r.en != kNoNode &&
                bit(res.facts[r.en].zeros, 0) != 0)
                continue; // enable provably stuck at 0: never updates
            ValueFact next = res.facts[r.next];
            ValueFact nf = joinFacts(cur, next);
            if (iter >= options.widenAfter) {
                // Widen the range to the bits-implied bounds so
                // counters (lo/hi creeping one per sweep) terminate;
                // the known-bits half of the lattice is finite.
                nf.lo = nf.minPossible();
                nf.hi = nf.maxPossible();
                nf = normalizeFact(nf);
            }
            if (nf != cur) {
                // Second widening stage: a register still unstable this
                // deep into the solve is not going to settle anywhere
                // interesting (think free-running counters) — drop it
                // to top so convergence tracks chain depth, not width.
                if (iter >= options.topAfter)
                    nf = ValueFact::top(d.node(r.node).width);
                if (nf != cur) {
                    cur = nf;
                    changed = true;
                }
            }
        }
        if (changed && iter >= options.maxIterations) {
            // Give up soundly: drop every register to top and resweep.
            for (const RegInfo &r : d.regs())
                res.facts[r.node] =
                    ValueFact::top(d.node(r.node).width);
            sweep();
            ++iter;
            res.converged = false;
            break;
        }
    }
    res.iterations = iter;
    return res;
}

} // namespace rtl
} // namespace strober
