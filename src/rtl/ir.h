/**
 * @file
 * Word-level netlist intermediate representation.
 *
 * This IR plays the role Chisel/FIRRTL plays for the Strober paper: a
 * structural, synchronous, single-clock representation of arbitrary RTL
 * that downstream transforms consume — the FAME1 transform and scan-chain
 * insertion (src/fame), synthesis to gates (src/gate), and the fast
 * cycle-exact interpreter (src/sim).
 *
 * Design points:
 *  - All values are <= 64 bits wide and carried in uint64_t, masked to
 *    their declared width after every operation.
 *  - The netlist is a flat vector of Nodes (index == NodeId). Hierarchy is
 *    represented by '/'-separated path names ("core/fetch/pc"), which is
 *    what the power-breakdown grouping and the floorplanner key on.
 *  - State is explicit: registers (RegInfo) and memories (MemInfo), each
 *    with an optional enable. The FAME1 transform gates all enables with
 *    a single host-enable input, exactly like the global register mux in
 *    the paper's Figure 3.
 */

#ifndef STROBER_RTL_IR_H
#define STROBER_RTL_IR_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/bits.h"

namespace strober {
namespace rtl {

/** Index of a node within Design::nodes. */
using NodeId = uint32_t;

/** Sentinel for "no node". */
constexpr NodeId kNoNode = UINT32_MAX;

/** Operation performed by a Node. */
enum class Op : uint8_t {
    // Leaves (no combinational inputs).
    Input,      //!< top-level input port; aux = input index
    Const,      //!< literal; imm = value
    Reg,        //!< register output; aux = index into Design::regs
    MemRead,    //!< memory read-port data; aux = (mem << 16) | port

    // Unary; args[0] = operand.
    Not,        //!< bitwise complement
    Neg,        //!< two's-complement negate
    RedOr,      //!< OR-reduce to 1 bit
    RedAnd,     //!< AND-reduce to 1 bit
    RedXor,     //!< XOR-reduce (parity) to 1 bit
    SExt,       //!< sign-extend operand to this node's width
    Pad,        //!< zero-extend operand to this node's width
    Bits,       //!< bit extract [hi:lo]; imm = (hi << 8) | lo

    // Binary; args[0], args[1] = operands.
    Add, Sub,   //!< truncating arithmetic, equal operand widths
    Mul,        //!< full product, width = wa + wb (capped at 64)
    Divu, Remu, //!< unsigned divide/remainder; x/0 = all-ones, x%0 = x
    And, Or, Xor,
    Shl, Shru, Sra, //!< shifts; result width = operand width
    Eq, Ne, Ltu, Lts, //!< comparisons; 1-bit result
    Cat,        //!< concatenation {a, b}; width = wa + wb

    // Ternary; args[0] = sel (1 bit), args[1] = then, args[2] = else.
    Mux,
};

/** @return a short lowercase mnemonic for @p op (for dumps and errors). */
const char *opName(Op op);

/** @return the number of node arguments @p op consumes (0-3). */
unsigned opArity(Op op);

/** One netlist node. */
struct Node
{
    Op op = Op::Const;
    uint16_t width = 0;           //!< result width in bits (1..64)
    NodeId args[3] = {kNoNode, kNoNode, kNoNode};
    uint64_t imm = 0;             //!< Const value, or Bits (hi << 8) | lo
    uint32_t aux = 0;             //!< per-op auxiliary index (see Op)
    std::string name;             //!< hierarchical name; may be empty
    std::string scope;            //!< hierarchical scope path ("core/fetch")

    unsigned bitsHi() const { return static_cast<unsigned>(imm >> 8); }
    unsigned bitsLo() const { return static_cast<unsigned>(imm & 0xff); }
};

/** Register metadata. The register's value is Node{Op::Reg}. */
struct RegInfo
{
    NodeId node = kNoNode;   //!< the Op::Reg node carrying the value
    NodeId next = kNoNode;   //!< next-state driver (must be set)
    NodeId en = kNoNode;     //!< optional enable; kNoNode = always enabled
    uint64_t init = 0;       //!< reset value
};

/** One memory read port. */
struct MemReadPort
{
    NodeId addr = kNoNode;   //!< read address
    NodeId en = kNoNode;     //!< optional enable (sync ports only)
    NodeId data = kNoNode;   //!< the Op::MemRead node carrying the data
};

/** One memory write port. */
struct MemWritePort
{
    NodeId addr = kNoNode;
    NodeId data = kNoNode;
    NodeId en = kNoNode;     //!< optional enable; kNoNode = always write
};

/**
 * Memory metadata. syncRead memories model FPGA block RAM / ASIC SRAM
 * (read data registered, available the cycle after the address is
 * presented, read-before-write); async memories model LUT RAM / flop
 * arrays (combinational read).
 */
struct MemInfo
{
    std::string name;
    uint16_t width = 0;
    uint64_t depth = 0;
    bool syncRead = false;
    std::vector<MemReadPort> reads;
    std::vector<MemWritePort> writes;
    /** Optional reset contents (zero-filled to depth when shorter). */
    std::vector<uint64_t> init;
};

/** A named top-level output port. */
struct OutputPort
{
    std::string name;
    NodeId node = kNoNode;
};

/**
 * An n-cycle feed-forward pipeline the designer has annotated for register
 * retiming (paper Section IV-C3). Synthesis is free to move the registers
 * listed in @ref regs; replay recovers their state by forcing the region's
 * I/O for @ref latency cycles from captured shift registers.
 */
struct RetimeRegion
{
    std::string name;
    unsigned latency = 0;
    std::vector<NodeId> inputs;  //!< region input signals (captured)
    NodeId output = kNoNode;     //!< region output signal
    std::vector<NodeId> regs;    //!< Op::Reg nodes inside the region
};

/**
 * A complete single-clock design: nodes, state elements, ports and
 * annotations. Construct through rtl::Builder; validate with check().
 */
class Design
{
  public:
    explicit Design(std::string name = "top") : designName(std::move(name)) {}

    const std::string &name() const { return designName; }

    /** Append a node; @return its id. */
    NodeId addNode(Node n);

    const Node &node(NodeId id) const { return nodes[id]; }
    Node &node(NodeId id) { return nodes[id]; }
    size_t numNodes() const { return nodes.size(); }

    std::vector<RegInfo> &regs() { return registers; }
    const std::vector<RegInfo> &regs() const { return registers; }

    std::vector<MemInfo> &mems() { return memories; }
    const std::vector<MemInfo> &mems() const { return memories; }

    std::vector<NodeId> &inputs() { return inputPorts; }
    const std::vector<NodeId> &inputs() const { return inputPorts; }

    std::vector<OutputPort> &outputs() { return outputPorts; }
    const std::vector<OutputPort> &outputs() const { return outputPorts; }

    std::vector<RetimeRegion> &retimeRegions() { return retimed; }
    const std::vector<RetimeRegion> &retimeRegions() const { return retimed; }

    /** Find an input node by name; kNoNode if absent. */
    NodeId findInput(const std::string &name) const;

    /** Find an output port index by name; -1 if absent. */
    int findOutput(const std::string &name) const;

    /** Find a register index by the name of its Op::Reg node; -1 if absent. */
    int findReg(const std::string &name) const;

    /** Find a memory index by name; -1 if absent. */
    int findMem(const std::string &name) const;

    /**
     * Validate the design: every register has a next-state driver, all
     * widths are consistent, all node references are in range, and the
     * combinational graph is acyclic. Calls fatal() with a diagnostic on
     * the first violation.
     */
    void check() const;

    /** Total state bits (registers + sync read ports + memory contents). */
    uint64_t stateBits() const;

    /** Human-readable netlist listing (tests and debugging). */
    std::string dump() const;

  private:
    std::string designName;
    std::vector<Node> nodes;
    std::vector<RegInfo> registers;
    std::vector<MemInfo> memories;
    std::vector<NodeId> inputPorts;
    std::vector<OutputPort> outputPorts;
    std::vector<RetimeRegion> retimed;
};

/**
 * Compute a topological order of the combinational nodes of @p design.
 * Registers, sync-read data and inputs are sources (depth 0); async memory
 * reads depend on their address. Calls fatal() naming a node on a
 * combinational cycle.
 *
 * @return node ids in evaluation order (every node appears exactly once).
 */
std::vector<NodeId> levelize(const Design &design);

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_IR_H
