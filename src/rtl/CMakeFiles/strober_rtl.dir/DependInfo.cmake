
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/analysis.cc" "src/rtl/CMakeFiles/strober_rtl.dir/analysis.cc.o" "gcc" "src/rtl/CMakeFiles/strober_rtl.dir/analysis.cc.o.d"
  "/root/repo/src/rtl/builder.cc" "src/rtl/CMakeFiles/strober_rtl.dir/builder.cc.o" "gcc" "src/rtl/CMakeFiles/strober_rtl.dir/builder.cc.o.d"
  "/root/repo/src/rtl/ir.cc" "src/rtl/CMakeFiles/strober_rtl.dir/ir.cc.o" "gcc" "src/rtl/CMakeFiles/strober_rtl.dir/ir.cc.o.d"
  "/root/repo/src/rtl/opt.cc" "src/rtl/CMakeFiles/strober_rtl.dir/opt.cc.o" "gcc" "src/rtl/CMakeFiles/strober_rtl.dir/opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
