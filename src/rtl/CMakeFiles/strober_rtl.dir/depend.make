# Empty dependencies file for strober_rtl.
# This may be replaced when dependencies are built.
