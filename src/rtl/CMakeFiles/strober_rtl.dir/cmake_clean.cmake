file(REMOVE_RECURSE
  "CMakeFiles/strober_rtl.dir/analysis.cc.o"
  "CMakeFiles/strober_rtl.dir/analysis.cc.o.d"
  "CMakeFiles/strober_rtl.dir/builder.cc.o"
  "CMakeFiles/strober_rtl.dir/builder.cc.o.d"
  "CMakeFiles/strober_rtl.dir/ir.cc.o"
  "CMakeFiles/strober_rtl.dir/ir.cc.o.d"
  "CMakeFiles/strober_rtl.dir/opt.cc.o"
  "CMakeFiles/strober_rtl.dir/opt.cc.o.d"
  "libstrober_rtl.a"
  "libstrober_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
