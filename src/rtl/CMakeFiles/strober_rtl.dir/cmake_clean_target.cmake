file(REMOVE_RECURSE
  "libstrober_rtl.a"
)
