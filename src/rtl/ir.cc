#include "rtl/ir.h"

#include <algorithm>
#include <sstream>

#include "lint/lint.h"
#include "rtl/analysis.h"
#include "util/logging.h"

namespace strober {
namespace rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Input: return "input";
      case Op::Const: return "const";
      case Op::Reg: return "reg";
      case Op::MemRead: return "memread";
      case Op::Not: return "not";
      case Op::Neg: return "neg";
      case Op::RedOr: return "redor";
      case Op::RedAnd: return "redand";
      case Op::RedXor: return "redxor";
      case Op::SExt: return "sext";
      case Op::Pad: return "pad";
      case Op::Bits: return "bits";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::Remu: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shru: return "shru";
      case Op::Sra: return "sra";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Ltu: return "ltu";
      case Op::Lts: return "lts";
      case Op::Cat: return "cat";
      case Op::Mux: return "mux";
    }
    return "?";
}

unsigned
opArity(Op op)
{
    switch (op) {
      case Op::Input:
      case Op::Const:
      case Op::Reg:
      case Op::MemRead:
        return 0;
      case Op::Not:
      case Op::Neg:
      case Op::RedOr:
      case Op::RedAnd:
      case Op::RedXor:
      case Op::SExt:
      case Op::Pad:
      case Op::Bits:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

NodeId
Design::addNode(Node n)
{
    if (n.width == 0 || n.width > 64)
        panic("node '%s' (%s) has illegal width %u", n.name.c_str(),
              opName(n.op), n.width);
    nodes.push_back(std::move(n));
    return static_cast<NodeId>(nodes.size() - 1);
}

NodeId
Design::findInput(const std::string &name) const
{
    for (NodeId id : inputPorts) {
        if (nodes[id].name == name)
            return id;
    }
    return kNoNode;
}

int
Design::findOutput(const std::string &name) const
{
    for (size_t i = 0; i < outputPorts.size(); ++i) {
        if (outputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Design::findReg(const std::string &name) const
{
    for (size_t i = 0; i < registers.size(); ++i) {
        if (nodes[registers[i].node].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Design::findMem(const std::string &name) const
{
    for (size_t i = 0; i < memories.size(); ++i) {
        if (memories[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

void
Design::check() const
{
    // Thin wrapper over the lint framework's error-severity subset
    // (src/lint): same invariants as before, but every violation is
    // collected and reported in one shot instead of dying on the first.
    lint::Options opts;
    opts.minSeverity = lint::Severity::Error;
    lint::Diagnostics diags = lint::run(*this, opts);
    if (diags.hasErrors()) {
        fatal("design '%s' failed validation with %zu error(s):\n%s",
              designName.c_str(), diags.errorCount(), diags.str().c_str());
    }
}

uint64_t
Design::stateBits() const
{
    uint64_t total = 0;
    for (const RegInfo &r : registers)
        total += nodes[r.node].width;
    for (const MemInfo &m : memories) {
        total += m.width * m.depth;
        if (m.syncRead)
            total += m.width * m.reads.size();
    }
    return total;
}

std::string
Design::dump() const
{
    std::ostringstream os;
    os << "design " << designName << " (" << nodes.size() << " nodes, "
       << registers.size() << " regs, " << memories.size() << " mems)\n";
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node &n = nodes[id];
        os << "  %" << id << " = " << opName(n.op) << "<" << n.width << ">";
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i)
            os << (i ? ", %" : " %") << n.args[i];
        if (n.op == Op::Const)
            os << " " << n.imm;
        if (n.op == Op::Bits)
            os << " [" << n.bitsHi() << ":" << n.bitsLo() << "]";
        if (!n.name.empty())
            os << "  ; " << n.name;
        os << "\n";
    }
    for (const OutputPort &o : outputPorts)
        os << "  output " << o.name << " = %" << o.node << "\n";
    return os.str();
}

std::vector<NodeId>
levelize(const Design &design)
{
    size_t n = design.numNodes();
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NodeId>> users(n);

    auto combDeps = [&](NodeId id, auto &&visit) {
        const Node &node = design.node(id);
        if (node.op == Op::MemRead) {
            uint32_t memIdx = node.aux >> 16;
            uint32_t portIdx = node.aux & 0xffff;
            const MemInfo &m = design.mems()[memIdx];
            // Sync read data is state; async read depends on its address.
            if (!m.syncRead)
                visit(m.reads[portIdx].addr);
            return;
        }
        unsigned arity = opArity(node.op);
        for (unsigned i = 0; i < arity; ++i)
            visit(node.args[i]);
    };

    for (NodeId id = 0; id < n; ++id) {
        combDeps(id, [&](NodeId dep) {
            ++pending[id];
            users[dep].push_back(id);
        });
    }

    std::vector<NodeId> order;
    order.reserve(n);
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            ready.push_back(id);
    }
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NodeId u : users[id]) {
            if (--pending[u] == 0)
                ready.push_back(u);
        }
    }

    if (order.size() != n) {
        // Report *every* cycle (one line per SCC), not just the first
        // stuck node — combSccs() never exits, so we can enumerate.
        std::string msg;
        for (const std::vector<NodeId> &scc : combSccs(design)) {
            msg += strfmt("  cycle through %zu node(s):", scc.size());
            size_t shown = std::min<size_t>(scc.size(), 8);
            for (size_t i = 0; i < shown; ++i) {
                const Node &cn = design.node(scc[i]);
                msg += strfmt("%s %%%u", i ? " ->" : "", scc[i]);
                if (!cn.name.empty())
                    msg += strfmt(" '%s'", cn.name.c_str());
                msg += strfmt(" (%s)", opName(cn.op));
            }
            if (shown < scc.size())
                msg += strfmt(" -> ... (%zu more)", scc.size() - shown);
            msg += '\n';
        }
        fatal("design '%s': combinational cycle detected\n%s",
              design.name().c_str(), msg.c_str());
    }
    return order;
}

} // namespace rtl
} // namespace strober
