#include "rtl/ir.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace strober {
namespace rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Input: return "input";
      case Op::Const: return "const";
      case Op::Reg: return "reg";
      case Op::MemRead: return "memread";
      case Op::Not: return "not";
      case Op::Neg: return "neg";
      case Op::RedOr: return "redor";
      case Op::RedAnd: return "redand";
      case Op::RedXor: return "redxor";
      case Op::SExt: return "sext";
      case Op::Pad: return "pad";
      case Op::Bits: return "bits";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::Remu: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shru: return "shru";
      case Op::Sra: return "sra";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Ltu: return "ltu";
      case Op::Lts: return "lts";
      case Op::Cat: return "cat";
      case Op::Mux: return "mux";
    }
    return "?";
}

unsigned
opArity(Op op)
{
    switch (op) {
      case Op::Input:
      case Op::Const:
      case Op::Reg:
      case Op::MemRead:
        return 0;
      case Op::Not:
      case Op::Neg:
      case Op::RedOr:
      case Op::RedAnd:
      case Op::RedXor:
      case Op::SExt:
      case Op::Pad:
      case Op::Bits:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

NodeId
Design::addNode(Node n)
{
    if (n.width == 0 || n.width > 64)
        panic("node '%s' (%s) has illegal width %u", n.name.c_str(),
              opName(n.op), n.width);
    nodes.push_back(std::move(n));
    return static_cast<NodeId>(nodes.size() - 1);
}

NodeId
Design::findInput(const std::string &name) const
{
    for (NodeId id : inputPorts) {
        if (nodes[id].name == name)
            return id;
    }
    return kNoNode;
}

int
Design::findOutput(const std::string &name) const
{
    for (size_t i = 0; i < outputPorts.size(); ++i) {
        if (outputPorts[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Design::findReg(const std::string &name) const
{
    for (size_t i = 0; i < registers.size(); ++i) {
        if (nodes[registers[i].node].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Design::findMem(const std::string &name) const
{
    for (size_t i = 0; i < memories.size(); ++i) {
        if (memories[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

namespace {

void
checkRef(const Design &d, NodeId user, NodeId ref, const char *what)
{
    if (ref == kNoNode || ref >= d.numNodes())
        fatal("node %u '%s' (%s): dangling %s reference", user,
              d.node(user).name.c_str(), opName(d.node(user).op), what);
}

} // namespace

void
Design::check() const
{
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node &n = nodes[id];
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i)
            checkRef(*this, id, n.args[i], "argument");

        auto argW = [&](unsigned i) {
            return static_cast<unsigned>(nodes[n.args[i]].width);
        };
        switch (n.op) {
          case Op::Add: case Op::Sub: case Op::Divu: case Op::Remu:
          case Op::And: case Op::Or: case Op::Xor:
            if (argW(0) != n.width || argW(1) != n.width)
                fatal("node %u '%s' (%s): operand widths %u,%u != %u", id,
                      n.name.c_str(), opName(n.op), argW(0), argW(1),
                      n.width);
            break;
          case Op::Mul:
            if (n.width != std::min(64u, argW(0) + argW(1)))
                fatal("node %u '%s' (mul): width %u != %u", id,
                      n.name.c_str(), n.width,
                      std::min(64u, argW(0) + argW(1)));
            break;
          case Op::Shl: case Op::Shru: case Op::Sra:
            if (argW(0) != n.width)
                fatal("node %u '%s' (%s): operand width %u != %u", id,
                      n.name.c_str(), opName(n.op), argW(0), n.width);
            break;
          case Op::Eq: case Op::Ne: case Op::Ltu: case Op::Lts:
            if (n.width != 1)
                fatal("node %u '%s' (%s): comparison width must be 1", id,
                      n.name.c_str(), opName(n.op));
            if (argW(0) != argW(1))
                fatal("node %u '%s' (%s): operand widths %u != %u", id,
                      n.name.c_str(), opName(n.op), argW(0), argW(1));
            break;
          case Op::Cat:
            if (n.width != argW(0) + argW(1))
                fatal("node %u '%s' (cat): width %u != %u + %u", id,
                      n.name.c_str(), n.width, argW(0), argW(1));
            break;
          case Op::Bits:
            if (n.bitsHi() < n.bitsLo() || n.bitsHi() >= argW(0))
                fatal("node %u '%s' (bits): [%u:%u] out of range for "
                      "width-%u operand", id, n.name.c_str(), n.bitsHi(),
                      n.bitsLo(), argW(0));
            if (n.width != n.bitsHi() - n.bitsLo() + 1)
                fatal("node %u '%s' (bits): width mismatch", id,
                      n.name.c_str());
            break;
          case Op::SExt: case Op::Pad:
            if (n.width < argW(0))
                fatal("node %u '%s' (%s): cannot extend width %u to %u", id,
                      n.name.c_str(), opName(n.op), argW(0), n.width);
            break;
          case Op::Not: case Op::Neg:
            if (argW(0) != n.width)
                fatal("node %u '%s' (%s): operand width %u != %u", id,
                      n.name.c_str(), opName(n.op), argW(0), n.width);
            break;
          case Op::RedOr: case Op::RedAnd: case Op::RedXor:
            if (n.width != 1)
                fatal("node %u '%s' (%s): reduce width must be 1", id,
                      n.name.c_str(), opName(n.op));
            break;
          case Op::Mux:
            if (nodes[n.args[0]].width != 1)
                fatal("node %u '%s' (mux): selector must be 1 bit", id,
                      n.name.c_str());
            if (argW(1) != n.width || argW(2) != n.width)
                fatal("node %u '%s' (mux): arm widths %u,%u != %u", id,
                      n.name.c_str(), argW(1), argW(2), n.width);
            break;
          default:
            break;
        }
    }

    for (size_t i = 0; i < registers.size(); ++i) {
        const RegInfo &r = registers[i];
        checkRef(*this, r.node, r.node, "self");
        if (r.next == kNoNode)
            fatal("register '%s' has no next-state driver",
                  nodes[r.node].name.c_str());
        checkRef(*this, r.node, r.next, "next");
        if (nodes[r.next].width != nodes[r.node].width)
            fatal("register '%s': next width %u != %u",
                  nodes[r.node].name.c_str(), nodes[r.next].width,
                  nodes[r.node].width);
        if (r.en != kNoNode && nodes[r.en].width != 1)
            fatal("register '%s': enable must be 1 bit",
                  nodes[r.node].name.c_str());
    }

    for (const MemInfo &m : memories) {
        if (m.depth == 0)
            fatal("memory '%s' has zero depth", m.name.c_str());
        unsigned addrW = std::max(1u, clog2(m.depth));
        for (const MemReadPort &p : m.reads) {
            checkRef(*this, p.data, p.addr, "read address");
            if (nodes[p.addr].width != addrW)
                fatal("memory '%s': read address width %u != %u",
                      m.name.c_str(), nodes[p.addr].width, addrW);
            if (nodes[p.data].width != m.width)
                fatal("memory '%s': read data width mismatch",
                      m.name.c_str());
        }
        for (const MemWritePort &p : m.writes) {
            checkRef(*this, p.data, p.addr, "write address");
            checkRef(*this, p.data, p.data, "write data");
            if (nodes[p.addr].width != addrW)
                fatal("memory '%s': write address width %u != %u",
                      m.name.c_str(), nodes[p.addr].width, addrW);
            if (nodes[p.data].width != m.width)
                fatal("memory '%s': write data width mismatch",
                      m.name.c_str());
            if (p.en != kNoNode && nodes[p.en].width != 1)
                fatal("memory '%s': write enable must be 1 bit",
                      m.name.c_str());
        }
    }

    for (const OutputPort &o : outputPorts)
        checkRef(*this, o.node, o.node, "output");

    // Acyclicity: levelize() fatals on a combinational cycle.
    levelize(*this);
}

uint64_t
Design::stateBits() const
{
    uint64_t total = 0;
    for (const RegInfo &r : registers)
        total += nodes[r.node].width;
    for (const MemInfo &m : memories) {
        total += m.width * m.depth;
        if (m.syncRead)
            total += m.width * m.reads.size();
    }
    return total;
}

std::string
Design::dump() const
{
    std::ostringstream os;
    os << "design " << designName << " (" << nodes.size() << " nodes, "
       << registers.size() << " regs, " << memories.size() << " mems)\n";
    for (NodeId id = 0; id < nodes.size(); ++id) {
        const Node &n = nodes[id];
        os << "  %" << id << " = " << opName(n.op) << "<" << n.width << ">";
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i)
            os << (i ? ", %" : " %") << n.args[i];
        if (n.op == Op::Const)
            os << " " << n.imm;
        if (n.op == Op::Bits)
            os << " [" << n.bitsHi() << ":" << n.bitsLo() << "]";
        if (!n.name.empty())
            os << "  ; " << n.name;
        os << "\n";
    }
    for (const OutputPort &o : outputPorts)
        os << "  output " << o.name << " = %" << o.node << "\n";
    return os.str();
}

std::vector<NodeId>
levelize(const Design &design)
{
    size_t n = design.numNodes();
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NodeId>> users(n);

    auto combDeps = [&](NodeId id, auto &&visit) {
        const Node &node = design.node(id);
        if (node.op == Op::MemRead) {
            uint32_t memIdx = node.aux >> 16;
            uint32_t portIdx = node.aux & 0xffff;
            const MemInfo &m = design.mems()[memIdx];
            // Sync read data is state; async read depends on its address.
            if (!m.syncRead)
                visit(m.reads[portIdx].addr);
            return;
        }
        unsigned arity = opArity(node.op);
        for (unsigned i = 0; i < arity; ++i)
            visit(node.args[i]);
    };

    for (NodeId id = 0; id < n; ++id) {
        combDeps(id, [&](NodeId dep) {
            ++pending[id];
            users[dep].push_back(id);
        });
    }

    std::vector<NodeId> order;
    order.reserve(n);
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            ready.push_back(id);
    }
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NodeId u : users[id]) {
            if (--pending[u] == 0)
                ready.push_back(u);
        }
    }

    if (order.size() != n) {
        for (NodeId id = 0; id < n; ++id) {
            if (pending[id] != 0)
                fatal("combinational cycle through node %u '%s' (%s)", id,
                      design.node(id).name.c_str(),
                      opName(design.node(id).op));
        }
    }
    return order;
}

} // namespace rtl
} // namespace strober
