/**
 * @file
 * Combinational-graph analysis over a Design: per-node logic levels, a
 * level-ordered evaluation schedule, and per-node fanout (user) lists in
 * CSR form. This is the static information the activity-driven simulator
 * backend (sim::Backend::InterpretedActivity) needs to propagate value
 * changes through the netlist instead of re-evaluating every node each
 * cycle: when a node's value changes, exactly its fanout set at strictly
 * greater levels can be affected.
 */

#ifndef STROBER_RTL_ANALYSIS_H
#define STROBER_RTL_ANALYSIS_H

#include <cstdint>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace rtl {

/**
 * Static schedule of the combinational graph.
 *
 * Invariants:
 *  - @ref order is a topological order of all nodes grouped by ascending
 *    @ref level; within one level, node ids ascend. Evaluating the
 *    combinational subset of @ref order front-to-back is equivalent to
 *    any other topological sweep.
 *  - level[src] == 0 for sources (inputs, constants, registers, sync
 *    read data); every combinational node's level is strictly greater
 *    than each of its combinational dependencies' levels.
 *  - fanout lists the *combinational* users of each node (the nodes that
 *    must be re-evaluated when it changes). State-element consumers
 *    (register next/enable, memory port address/data/enable) are not
 *    fanout: they are read at the clock edge, which always runs.
 */
struct CombSchedule
{
    std::vector<NodeId> order;        //!< all nodes, level-major order
    std::vector<uint32_t> level;      //!< per node: combinational depth
    uint32_t numLevels = 0;           //!< max level + 1 (0 if no nodes)

    // CSR fanout: users of node n are fanout[fanoutBegin[n] ..
    // fanoutBegin[n + 1]).
    std::vector<uint32_t> fanoutBegin;
    std::vector<NodeId> fanout;
};

/**
 * Invoke @p visit with every *combinational* dependency of @p id: its
 * argument nodes, or the read address for an async memory read. Sync
 * memory read data and other leaves have no combinational dependencies.
 */
template <typename Fn>
void
forEachCombDep(const Design &design, NodeId id, Fn &&visit)
{
    const Node &node = design.node(id);
    if (node.op == Op::MemRead) {
        uint32_t memIdx = node.aux >> 16;
        uint32_t portIdx = node.aux & 0xffff;
        const MemInfo &m = design.mems()[memIdx];
        if (!m.syncRead)
            visit(m.reads[portIdx].addr);
        return;
    }
    unsigned arity = opArity(node.op);
    for (unsigned i = 0; i < arity; ++i)
        visit(node.args[i]);
}

/**
 * Analyze @p design's combinational graph. Calls fatal() naming a node
 * on a combinational cycle (same contract as levelize()).
 */
CombSchedule analyzeComb(const Design &design);

/**
 * Every combinational cycle of @p design, as the strongly connected
 * components of the combinational dependency graph with more than one
 * node (or a self-loop). Unlike levelize()/analyzeComb() this never
 * exits: it is the machinery behind the lint "comb-cycle" rule, which
 * reports *all* cycles, and it tolerates dangling node references
 * (skipping them — the "dangling-ref" rule owns those).
 *
 * @return one vector of node ids per cycle, empty when acyclic. Each
 * component lists its members in ascending id; components are ordered by
 * their smallest member.
 */
std::vector<std::vector<NodeId>> combSccs(const Design &design);

} // namespace rtl
} // namespace strober

#endif // STROBER_RTL_ANALYSIS_H
