#include "rtl/builder.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace strober {
namespace rtl {

unsigned
Signal::width() const
{
    if (!valid())
        panic("width() on an invalid signal");
    return b->designUnderConstruction().node(nid).width;
}

Signal
Signal::bit(unsigned pos) const
{
    return b->extract(*this, pos, pos);
}

Signal
Signal::bits(unsigned hi, unsigned lo) const
{
    return b->extract(*this, hi, lo);
}

Scope::Scope(Builder &b, const std::string &name) : builder(b)
{
    builder.pushScope(name);
}

Scope::~Scope()
{
    builder.popScope();
}

Builder::Builder(std::string designName) : d(std::move(designName)) {}

NodeId
Builder::addNodeStamped(Node n)
{
    std::string path = scopedName("");
    if (!path.empty())
        path.pop_back(); // drop trailing '/'
    n.scope = std::move(path);
    NodeId id = d.addNode(std::move(n));
    wireAssigned.resize(d.numNodes(), true);
    return id;
}

void
Builder::pushScope(const std::string &name)
{
    scopes.push_back(name);
}

void
Builder::popScope()
{
    if (scopes.empty())
        panic("popScope with empty scope stack");
    scopes.pop_back();
}

std::string
Builder::scopedName(const std::string &name) const
{
    std::string full;
    for (const std::string &s : scopes) {
        full += s;
        full += '/';
    }
    full += name;
    return full;
}

Signal
Builder::input(const std::string &name, unsigned width)
{
    Node n;
    n.op = Op::Input;
    n.width = static_cast<uint16_t>(width);
    n.name = scopedName(name);
    n.aux = static_cast<uint32_t>(d.inputs().size());
    NodeId id = addNodeStamped(std::move(n));
    d.inputs().push_back(id);
    return Signal(this, id);
}

void
Builder::output(const std::string &name, Signal value)
{
    if (!value.valid())
        fatal("output '%s' bound to an invalid signal", name.c_str());
    d.outputs().push_back({scopedName(name), value.id()});
}

Signal
Builder::lit(uint64_t value, unsigned width)
{
    if (width == 0 || width > 64)
        fatal("literal width %u out of range", width);
    if (truncate(value, width) != value)
        fatal("literal %llu does not fit in %u bits",
              (unsigned long long)value, width);
    Node n;
    n.op = Op::Const;
    n.width = static_cast<uint16_t>(width);
    n.imm = value;
    NodeId id = addNodeStamped(std::move(n));
    return Signal(this, id);
}

Signal
Builder::reg(const std::string &name, unsigned width, uint64_t init)
{
    Node n;
    n.op = Op::Reg;
    n.width = static_cast<uint16_t>(width);
    n.name = scopedName(name);
    n.aux = static_cast<uint32_t>(d.regs().size());
    NodeId id = addNodeStamped(std::move(n));
    RegInfo info;
    info.node = id;
    info.init = truncate(init, width);
    d.regs().push_back(info);
    return Signal(this, id);
}

void
Builder::next(Signal regSig, Signal value, Signal enable)
{
    const Node &n = d.node(regSig.id());
    if (n.op != Op::Reg)
        fatal("next() target '%s' is not a register", n.name.c_str());
    RegInfo &info = d.regs()[n.aux];
    if (info.next != kNoNode)
        fatal("register '%s' driven twice", n.name.c_str());
    info.next = value.id();
    info.en = enable.valid() ? enable.id() : kNoNode;
}

MemHandle
Builder::mem(const std::string &name, unsigned width, uint64_t depth,
             bool syncRead)
{
    MemInfo m;
    m.name = scopedName(name);
    m.width = static_cast<uint16_t>(width);
    m.depth = depth;
    m.syncRead = syncRead;
    d.mems().push_back(std::move(m));
    return MemHandle{static_cast<int>(d.mems().size() - 1)};
}

Signal
Builder::memRead(MemHandle m, Signal addr)
{
    MemInfo &info = d.mems()[m.index];
    if (info.syncRead)
        fatal("memRead on sync memory '%s'; use memReadSync",
              info.name.c_str());
    Node n;
    n.op = Op::MemRead;
    n.width = info.width;
    n.aux = (static_cast<uint32_t>(m.index) << 16) |
            static_cast<uint32_t>(info.reads.size());
    n.name = info.name + "/r" + std::to_string(info.reads.size());
    NodeId id = addNodeStamped(std::move(n));
    info.reads.push_back({addr.id(), kNoNode, id});
    return Signal(this, id);
}

Signal
Builder::memReadSync(MemHandle m, Signal addr, Signal enable)
{
    MemInfo &info = d.mems()[m.index];
    if (!info.syncRead)
        fatal("memReadSync on async memory '%s'; use memRead",
              info.name.c_str());
    Node n;
    n.op = Op::MemRead;
    n.width = info.width;
    n.aux = (static_cast<uint32_t>(m.index) << 16) |
            static_cast<uint32_t>(info.reads.size());
    n.name = info.name + "/r" + std::to_string(info.reads.size());
    NodeId id = addNodeStamped(std::move(n));
    info.reads.push_back(
        {addr.id(), enable.valid() ? enable.id() : kNoNode, id});
    return Signal(this, id);
}

void
Builder::memInit(MemHandle m, std::vector<uint64_t> contents)
{
    MemInfo &info = d.mems()[m.index];
    if (contents.size() > info.depth)
        fatal("memInit contents exceed depth of '%s'", info.name.c_str());
    for (uint64_t &v : contents)
        v = truncate(v, info.width);
    info.init = std::move(contents);
}

void
Builder::memWrite(MemHandle m, Signal addr, Signal data, Signal enable)
{
    MemInfo &info = d.mems()[m.index];
    info.writes.push_back({addr.id(), data.id(),
                           enable.valid() ? enable.id() : kNoNode});
}

Signal
Builder::wire(const std::string &name, unsigned width)
{
    // A wire is a Pad node whose operand is patched in by assign().
    Node n;
    n.op = Op::Pad;
    n.width = static_cast<uint16_t>(width);
    n.name = scopedName(name);
    NodeId id = addNodeStamped(std::move(n));
    wireAssigned[id] = false;
    return Signal(this, id);
}

void
Builder::assign(Signal wireSig, Signal value)
{
    NodeId id = wireSig.id();
    if (id >= wireAssigned.size() || wireAssigned[id])
        fatal("assign() target '%s' is not an unassigned wire",
              d.node(id).name.c_str());
    if (value.width() != d.node(id).width)
        fatal("assign to wire '%s': width %u != %u",
              d.node(id).name.c_str(), value.width(), d.node(id).width);
    d.node(id).args[0] = value.id();
    wireAssigned[id] = true;
}

Signal
Builder::unary(Op op, Signal a, unsigned width)
{
    Node n;
    n.op = op;
    n.width = static_cast<uint16_t>(width ? width : a.width());
    n.args[0] = a.id();
    NodeId id = addNodeStamped(std::move(n));
    return Signal(this, id);
}

Signal
Builder::binary(Op op, Signal a, Signal b)
{
    unsigned width;
    switch (op) {
      case Op::Mul:
        width = std::min(64u, a.width() + b.width());
        break;
      case Op::Cat:
        width = a.width() + b.width();
        break;
      case Op::Eq: case Op::Ne: case Op::Ltu: case Op::Lts:
        width = 1;
        break;
      default:
        width = a.width();
        break;
    }
    Node n;
    n.op = op;
    n.width = static_cast<uint16_t>(width);
    n.args[0] = a.id();
    n.args[1] = b.id();
    NodeId id = addNodeStamped(std::move(n));
    return Signal(this, id);
}

Signal
Builder::mux(Signal sel, Signal t, Signal f)
{
    Node n;
    n.op = Op::Mux;
    n.width = static_cast<uint16_t>(t.width());
    n.args[0] = sel.id();
    n.args[1] = t.id();
    n.args[2] = f.id();
    NodeId id = addNodeStamped(std::move(n));
    return Signal(this, id);
}

Signal
Builder::cat(Signal hi, Signal lo)
{
    return binary(Op::Cat, hi, lo);
}

Signal
Builder::extract(Signal a, unsigned hi, unsigned lo)
{
    Node n;
    n.op = Op::Bits;
    n.width = static_cast<uint16_t>(hi - lo + 1);
    n.args[0] = a.id();
    n.imm = (static_cast<uint64_t>(hi) << 8) | lo;
    NodeId id = addNodeStamped(std::move(n));
    return Signal(this, id);
}

Signal
Builder::pad(Signal a, unsigned width)
{
    if (width == a.width())
        return a;
    return unary(Op::Pad, a, width);
}

Signal
Builder::sext(Signal a, unsigned width)
{
    if (width == a.width())
        return a;
    return unary(Op::SExt, a, width);
}

Signal
Builder::resize(Signal a, unsigned width)
{
    if (width == a.width())
        return a;
    if (width < a.width())
        return extract(a, width - 1, 0);
    return pad(a, width);
}

Signal
Builder::catAll(const std::vector<Signal> &parts)
{
    if (parts.empty())
        fatal("catAll of zero signals");
    Signal acc = parts[0];
    for (size_t i = 1; i < parts.size(); ++i)
        acc = cat(acc, parts[i]);
    return acc;
}

Signal
Builder::select(Signal sel, const std::vector<Signal> &values)
{
    if (values.empty())
        fatal("select over zero values");
    Signal acc = values.back();
    for (size_t i = values.size() - 1; i-- > 0;) {
        Signal hit = eq(sel, lit(i, sel.width()));
        acc = mux(hit, values[i], acc);
    }
    return acc;
}

void
Builder::annotateRetimed(const std::string &name, unsigned latency,
                         const std::vector<Signal> &inputs, Signal output,
                         const std::vector<Signal> &regs)
{
    RetimeRegion region;
    region.name = scopedName(name);
    region.latency = latency;
    for (Signal s : inputs)
        region.inputs.push_back(s.id());
    region.output = output.id();
    for (Signal s : regs) {
        if (d.node(s.id()).op != Op::Reg)
            fatal("retime region '%s': node '%s' is not a register",
                  name.c_str(), d.node(s.id()).name.c_str());
        region.regs.push_back(s.id());
    }
    d.retimeRegions().push_back(std::move(region));
}

Design
Builder::finish()
{
    if (finished)
        panic("Builder::finish called twice");
    for (size_t i = 0; i < wireAssigned.size(); ++i) {
        if (!wireAssigned[i])
            fatal("wire '%s' was never assigned", d.node(i).name.c_str());
    }
    finished = true;
    d.check();
    return std::move(d);
}

namespace {

Builder &
builderOf(Signal a, Signal b = Signal())
{
    if (!a.valid())
        panic("operation on an invalid signal");
    if (b.valid() && b.builder() != a.builder())
        panic("operands from different builders");
    return *a.builder();
}

} // namespace

Signal operator+(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Add, a, b); }
Signal operator-(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Sub, a, b); }
Signal operator*(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Mul, a, b); }
Signal operator&(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::And, a, b); }
Signal operator|(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Or, a, b); }
Signal operator^(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Xor, a, b); }
Signal operator~(Signal a)
{ return builderOf(a).unary(Op::Not, a); }

Signal
operator!(Signal a)
{
    Builder &b = builderOf(a);
    Signal any = a.width() == 1 ? a : b.redOr(a);
    return b.unary(Op::Not, any);
}

Signal eq(Signal a, Signal b) { return builderOf(a, b).binary(Op::Eq, a, b); }
Signal ne(Signal a, Signal b) { return builderOf(a, b).binary(Op::Ne, a, b); }
Signal ltu(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Ltu, a, b); }
Signal lts(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Lts, a, b); }
Signal geu(Signal a, Signal b) { return !ltu(a, b); }
Signal ges(Signal a, Signal b) { return !lts(a, b); }
Signal shl(Signal a, Signal amount)
{ return builderOf(a, amount).binary(Op::Shl, a, amount); }
Signal shru(Signal a, Signal amount)
{ return builderOf(a, amount).binary(Op::Shru, a, amount); }
Signal sra(Signal a, Signal amount)
{ return builderOf(a, amount).binary(Op::Sra, a, amount); }
Signal divu(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Divu, a, b); }
Signal remu(Signal a, Signal b)
{ return builderOf(a, b).binary(Op::Remu, a, b); }

Signal
eqImm(Signal a, uint64_t value)
{
    Builder &b = builderOf(a);
    return eq(a, b.lit(value, a.width()));
}

} // namespace rtl
} // namespace strober
