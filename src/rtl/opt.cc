#include "rtl/opt.h"

#include <algorithm>
#include <array>
#include <map>

#include "rtl/analysis.h"
#include "rtl/dataflow.h"
#include "rtl/eval.h"
#include "util/logging.h"

namespace strober {
namespace rtl {

namespace {

/** How one argument enters the optimized graph. */
struct ArgRef
{
    bool isConst = false;
    uint64_t value = 0;    //!< constant value when isConst
    NodeId rep = kNoNode;  //!< representative node when !isConst
    uint8_t width = 0;     //!< the consumer's view: original arg width
};

/**
 * Structural identity of a comb op for CSE. Two nodes with equal keys
 * compute equal values in every reachable state, because operands are
 * compared by representative (equal by induction) or by constant
 * value, and the op/width/imm fields pin down the function applied.
 */
using CseKey = std::array<uint64_t, 8>;

CseKey
makeKey(Op op, unsigned width, const ArgRef *args, unsigned arity,
        uint64_t imm)
{
    CseKey k{};
    k[0] = (static_cast<uint64_t>(op) << 32) |
           (static_cast<uint64_t>(width) << 16);
    k[1] = imm;
    for (unsigned i = 0; i < arity; ++i) {
        k[2 + 2 * i] = (args[i].isConst ? (1ULL << 32) : 0) |
                       (static_cast<uint64_t>(args[i].width) << 40) |
                       (args[i].isConst ? 0 : args[i].rep);
        k[3 + 2 * i] = args[i].isConst ? args[i].value : 0;
    }
    return k;
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Eq:
      case Op::Ne:
        return true;
      default:
        return false;
    }
}

bool
argLess(const ArgRef &x, const ArgRef &y)
{
    if (x.isConst != y.isConst)
        return x.isConst < y.isConst;
    if (x.isConst)
        return x.value < y.value;
    return x.rep < y.rep;
}

} // namespace

EvalPlan
buildEvalPlan(const Design &d, const EvalPlanOptions &options)
{
    CombSchedule sched = rtl::analyzeComb(d);
    const size_t numNodes = d.numNodes();

    // Arbitrary-state-sound facts (registers/inputs/memory reads are
    // top): every proof below survives setRegValue, scan-chain restore
    // and fault injection, which is what keeps peek() bit-identical to
    // the unoptimized sweep in *any* state, not just reachable ones.
    DataflowResult df;
    if (options.dataflow) {
        DataflowOptions dfOpt;
        dfOpt.assumeReset = false;
        df = analyzeDataflow(d, dfOpt);
    }
    const bool useDf = options.dataflow && df.facts.size() == numNodes;

    // --- Pass 1: classify every node in topological order -------------
    // rep[n] == n      : n carries its own value (leaf or scheduled op)
    // rep[n] == m != n : n is an alias of m (CSE hit or passthrough)
    // folded[n]        : n is a compile-time constant constVal[n]
    std::vector<NodeId> rep(numNodes, kNoNode);
    std::vector<uint8_t> folded(numNodes, 0);
    std::vector<uint8_t> dfConst(numNodes, 0);
    std::vector<uint8_t> scheduled(numNodes, 0);
    std::vector<uint64_t> constVal(numNodes, 0);
    std::map<CseKey, NodeId> cse;
    EvalPlanStats stats;

    auto resolveArg = [&](NodeId arg) {
        ArgRef r;
        r.width = static_cast<uint8_t>(d.node(arg).width);
        if (folded[arg]) {
            r.isConst = true;
            r.value = constVal[arg];
        } else {
            r.rep = rep[arg];
        }
        return r;
    };
    auto aliasTo = [&](NodeId id, const ArgRef &src) {
        if (src.isConst) {
            folded[id] = 1;
            constVal[id] = src.value;
            rep[id] = id;
            ++stats.folded;
        } else {
            rep[id] = src.rep;
            ++stats.aliased;
        }
    };

    for (NodeId id : sched.order) {
        const Node &n = d.node(id);
        switch (n.op) {
          case Op::Input:
          case Op::Reg:
            rep[id] = id;
            continue;
          case Op::Const:
            folded[id] = 1;
            constVal[id] = truncate(n.imm, n.width);
            rep[id] = id;
            continue;
          case Op::MemRead: {
            // Sync read data is state (a leaf); async reads are
            // scheduled as-is — memory contents are not constants.
            rep[id] = id;
            uint32_t memIdx = n.aux >> 16;
            if (!d.mems()[memIdx].syncRead)
                scheduled[id] = 1;
            continue;
          }
          default:
            break;
        }

        unsigned arity = opArity(n.op);
        ArgRef args[3];
        bool allConst = true;
        for (unsigned i = 0; i < arity; ++i) {
            args[i] = resolveArg(n.args[i]);
            allConst = allConst && args[i].isConst;
        }

        // Constant folding (evalOp == interpreter semantics, always).
        if (allConst) {
            folded[id] = 1;
            constVal[id] =
                evalOp(n.op, n.width, args[0].width, args[1].width, n.imm,
                       args[0].value, args[1].value, args[2].value);
            rep[id] = id;
            ++stats.folded;
            continue;
        }

        // Dataflow-provable constants: the facts pin a single value
        // even though not every operand folded structurally (e.g. a
        // comparison whose operands' known bits conflict).
        if (useDf && df.facts[id].isConst()) {
            folded[id] = 1;
            dfConst[id] = 1;
            constVal[id] = df.facts[id].constVal();
            rep[id] = id;
            ++stats.folded;
            ++stats.dfFolded;
            continue;
        }

        // Value-passthrough identities: the node's value equals one
        // operand's value bit-for-bit, so it needs no slot of its own.
        // (Pad zero-extends an already-masked value: a no-op. SExt and
        // Bits are no-ops only at matching widths. A Mux whose
        // selector folded is exactly one of its arms.)
        if (n.op == Op::Pad ||
            (n.op == Op::SExt && n.width == args[0].width) ||
            (n.op == Op::Bits && n.bitsLo() == 0 &&
             n.bitsHi() + 1 == args[0].width)) {
            aliasTo(id, args[0]);
            continue;
        }
        if (n.op == Op::Mux && args[0].isConst) {
            // Mux selectors are contractually 1 bit, so a dataflow
            // fact that decides sel's low bit is always a *constant*
            // fact — the selector node folds above and the arm is
            // pruned here. Attribute the prune to dataflow when the
            // selector's constness was a dataflow proof rather than a
            // structural one.
            if (useDf && dfConst[n.args[0]])
                ++stats.dfMuxPruned;
            aliasTo(id, args[0].value & 1 ? args[1] : args[2]);
            continue;
        }

        // Dataflow-proven identity/absorption aliases: the node's
        // value equals one operand's bit-for-bit in every masked state
        // (the facts are arbitrary-state-sound), so sharing the
        // operand's slot keeps peek() exact. Aliasing across widths is
        // safe: consumers record the *original* operand width
        // (EvalStep::widthA), and the facts prove the values equal.
        if (useDf) {
            const ValueFact &fa = df.facts[n.args[0]];
            int same = -1;
            uint64_t m = bitMask(n.width);
            switch (n.op) {
              case Op::SExt:
                // Sign bit provably 0: behaves as Pad, i.e. the value.
                if (n.width > args[0].width && args[0].width >= 1 &&
                    bit(fa.zeros, args[0].width - 1) != 0)
                    same = 0;
                break;
              case Op::Bits:
                // Only provably-zero high bits dropped, none below.
                if (n.bitsLo() == 0 &&
                    (fa.maxPossible() & ~bitMask(n.bitsHi() + 1)) == 0)
                    same = 0;
                break;
              case Op::And: {
                const ValueFact &fb = df.facts[n.args[1]];
                if ((fa.maxPossible() & ~fb.ones & m) == 0)
                    same = 0; // b known 1 wherever a can be 1
                else if ((fb.maxPossible() & ~fa.ones & m) == 0)
                    same = 1;
                break;
              }
              case Op::Or: {
                const ValueFact &fb = df.facts[n.args[1]];
                if ((fb.maxPossible() & ~fa.ones & m) == 0)
                    same = 0; // b can only set bits a already has
                else if ((fa.maxPossible() & ~fb.ones & m) == 0)
                    same = 1;
                break;
              }
              case Op::Xor:
              case Op::Add: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 0)
                    same = 0;
                else if (fa.isConst() && fa.constVal() == 0)
                    same = 1;
                break;
              }
              case Op::Sub:
              case Op::Shl:
              case Op::Shru: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 0)
                    same = 0;
                break;
              }
              case Op::Sra: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 0 &&
                    args[0].width == n.width)
                    same = 0;
                break;
              }
              case Op::Divu: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 1)
                    same = 0;
                break;
              }
              case Op::Remu: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 0)
                    same = 0; // x % 0 == x by evalOp's convention
                break;
              }
              case Op::Mul: {
                const ValueFact &fb = df.facts[n.args[1]];
                if (fb.isConst() && fb.constVal() == 1)
                    same = 0; // full product of x and 1 is x, widened
                else if (fa.isConst() && fa.constVal() == 1)
                    same = 1;
                break;
              }
              default:
                break;
            }
            if (same >= 0) {
                ++stats.dfAliased;
                aliasTo(id, args[same]);
                continue;
            }
        }

        // CSE with canonical operand order for commutative ops.
        ArgRef keyArgs[3] = {args[0], args[1], args[2]};
        if (arity == 2 && isCommutative(n.op) &&
            argLess(keyArgs[1], keyArgs[0]))
            std::swap(keyArgs[0], keyArgs[1]);
        CseKey key = makeKey(n.op, n.width, keyArgs, arity, n.imm);
        auto [it, inserted] = cse.emplace(key, id);
        if (inserted) {
            rep[id] = id;
            scheduled[id] = 1;
        } else {
            rep[id] = it->second;
            ++stats.aliased;
        }
    }

    // --- Pass 2: liveness over the representative graph ---------------
    // Roots are everything the per-cycle machinery reads: output ports,
    // register next/enable, memory-port operands consumed at the clock
    // edge, and retime-region signals (captured every sampled cycle).
    std::vector<uint8_t> live(numNodes, 0);
    std::vector<NodeId> work;
    auto markLive = [&](NodeId id) {
        if (id == kNoNode || folded[id])
            return;
        NodeId r = rep[id];
        if (live[r])
            return;
        live[r] = 1;
        work.push_back(r);
    };
    for (const OutputPort &o : d.outputs())
        markLive(o.node);
    for (const RegInfo &r : d.regs()) {
        markLive(r.next);
        markLive(r.en);
    }
    for (const MemInfo &m : d.mems()) {
        for (const MemWritePort &p : m.writes) {
            markLive(p.addr);
            markLive(p.data);
            markLive(p.en);
        }
        if (m.syncRead) {
            for (const MemReadPort &p : m.reads) {
                markLive(p.addr);
                markLive(p.en);
            }
        }
    }
    for (const RetimeRegion &r : d.retimeRegions()) {
        for (NodeId in : r.inputs)
            markLive(in);
        markLive(r.output);
    }
    while (!work.empty()) {
        NodeId r = work.back();
        work.pop_back();
        if (scheduled[r])
            forEachCombDep(d, r, markLive);
    }

    // --- Pass 3: dense slot assignment ---------------------------------
    // Leaves, then the hot schedule in evaluation order, then constants,
    // then cold nodes: the per-cycle working set is one contiguous
    // prefix of the array.
    EvalPlan plan;
    plan.slotOf.assign(numNodes, kNoSlot);
    plan.coldNode.assign(numNodes, 0);
    std::vector<SlotId> slotOfRep(numNodes, kNoSlot);
    SlotId next = 0;
    for (NodeId id : sched.order) {
        if (rep[id] == id && !folded[id] && !scheduled[id])
            slotOfRep[id] = next++; // leaf
    }
    for (NodeId id : sched.order) {
        if (rep[id] == id && scheduled[id] && live[id])
            slotOfRep[id] = next++; // hot
    }
    std::map<uint64_t, SlotId> constSlot;
    for (NodeId id : sched.order) {
        if (!folded[id])
            continue;
        auto [it, inserted] = constSlot.emplace(constVal[id], next);
        if (inserted) {
            plan.slotInit.emplace_back(next, constVal[id]);
            ++next;
        }
        plan.slotOf[id] = it->second;
    }
    stats.constSlots = static_cast<uint32_t>(constSlot.size());
    for (NodeId id : sched.order) {
        if (rep[id] == id && scheduled[id] && !live[id]) {
            slotOfRep[id] = next++; // cold
            ++stats.cold;
        }
    }
    plan.numSlots = next;
    for (NodeId id = 0; id < numNodes; ++id) {
        if (folded[id])
            continue; // const slot already assigned
        plan.slotOf[id] = slotOfRep[rep[id]];
        plan.coldNode[id] = scheduled[rep[id]] && !live[rep[id]];
    }

    // --- Pass 4: emit the hot and cold programs ------------------------
    auto slotOfArg = [&](NodeId arg) { return plan.slotOf[arg]; };
    for (NodeId id : sched.order) {
        if (rep[id] != id || !scheduled[id])
            continue;
        const Node &n = d.node(id);
        EvalStep s;
        s.op = n.op;
        s.width = n.width;
        s.imm = n.imm;
        s.dst = slotOfRep[id];
        if (n.op == Op::MemRead) {
            uint32_t memIdx = n.aux >> 16;
            uint32_t portIdx = n.aux & 0xffff;
            s.a = memIdx;
            s.b = slotOfArg(d.mems()[memIdx].reads[portIdx].addr);
        } else {
            unsigned arity = opArity(n.op);
            if (arity >= 1) {
                s.a = slotOfArg(n.args[0]);
                s.widthA = static_cast<uint8_t>(d.node(n.args[0]).width);
            }
            if (arity >= 2) {
                s.b = slotOfArg(n.args[1]);
                s.widthB = static_cast<uint8_t>(d.node(n.args[1]).width);
            }
            if (arity >= 3)
                s.c = slotOfArg(n.args[2]);
        }
        (live[id] ? plan.hotProgram : plan.coldProgram).push_back(s);
    }
    stats.hot = static_cast<uint32_t>(plan.hotProgram.size());
    plan.stats = stats;
    return plan;
}

namespace {

/** Visit the operand slots of one hot step (MemRead reads only the
 *  address slot; its memory dependence is tracked via memChunks). */
template <typename Fn>
void
forEachStepOperand(const EvalStep &s, Fn &&fn)
{
    if (s.op == Op::MemRead) {
        fn(s.b);
        return;
    }
    unsigned arity = opArity(s.op);
    if (arity >= 1)
        fn(s.a);
    if (arity >= 2)
        fn(s.b);
    if (arity >= 3)
        fn(s.c);
}

constexpr uint32_t kNoStep = UINT32_MAX;

/** Union-find root with path halving. */
uint32_t
findRoot(std::vector<uint32_t> &parent, uint32_t x)
{
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

} // namespace

EvalPartition
partitionEvalPlan(const EvalPlan &plan, size_t numMems, uint32_t clusters,
                  uint32_t minLevelSteps)
{
    if (clusters == 0)
        clusters = 1;
    if (minLevelSteps == 0)
        minLevelSteps = 1;
    const auto &hot = plan.hotProgram;
    const uint32_t numSteps = static_cast<uint32_t>(hot.size());

    EvalPartition part;
    part.clusters = clusters;
    part.stepChunk.assign(numSteps, 0);
    part.memChunks.assign(numMems, {});
    if (numSteps == 0) {
        part.levelBegin = {0};
        part.slotChunksBegin.assign(plan.numSlots + 1, 0);
        return part;
    }

    // Producing hot step of every slot (kNoStep: leaf/constant slot).
    std::vector<uint32_t> producer(plan.numSlots, kNoStep);
    for (uint32_t i = 0; i < numSteps; ++i)
        producer[hot[i].dst] = i;

    // Topological rank of every step: 1 + max over hot producers. The
    // hot program is topologically ordered, so producers of step i sit
    // at indices < i and their ranks are already final.
    std::vector<uint32_t> rank(numSteps, 0);
    uint32_t maxRank = 0;
    for (uint32_t i = 0; i < numSteps; ++i) {
        uint32_t r = 0;
        forEachStepOperand(hot[i], [&](SlotId slot) {
            uint32_t p = producer[slot];
            if (p != kNoStep && rank[p] + 1 > r)
                r = rank[p] + 1;
        });
        rank[i] = r;
        maxRank = std::max(maxRank, r);
    }

    // Merge consecutive ranks into levels of at least minLevelSteps
    // steps, bounding the barriers per evaluation.
    std::vector<uint32_t> rankCount(maxRank + 1, 0);
    for (uint32_t i = 0; i < numSteps; ++i)
        ++rankCount[rank[i]];
    std::vector<uint32_t> rankLevel(maxRank + 1, 0);
    uint32_t numLevels = 0;
    uint32_t acc = 0;
    for (uint32_t r = 0; r <= maxRank; ++r) {
        rankLevel[r] = numLevels;
        acc += rankCount[r];
        if (acc >= minLevelSteps) {
            ++numLevels;
            acc = 0;
        }
    }
    if (acc > 0 || numLevels == 0)
        ++numLevels; // trailing partial level
    std::vector<uint32_t> stepLevel(numSteps);
    for (uint32_t i = 0; i < numSteps; ++i)
        stepLevel[i] = rankLevel[rank[i]];

    // Within one level, steps connected by a dependency must share a
    // cluster (chunks of a level run concurrently with no ordering).
    // Union-find over intra-level edges yields the components.
    std::vector<uint32_t> parent(numSteps);
    for (uint32_t i = 0; i < numSteps; ++i)
        parent[i] = i;
    for (uint32_t i = 0; i < numSteps; ++i) {
        forEachStepOperand(hot[i], [&](SlotId slot) {
            uint32_t p = producer[slot];
            if (p != kNoStep && stepLevel[p] == stepLevel[i]) {
                uint32_t ra = findRoot(parent, i);
                uint32_t rb = findRoot(parent, p);
                if (ra != rb)
                    parent[std::max(ra, rb)] = std::min(ra, rb);
            }
        });
    }

    // Per level: gather components, then bin-pack them into at most
    // `clusters` balanced chunks (largest component first into the
    // lightest bin; ties break on lowest bin id — fully deterministic).
    std::vector<std::vector<uint32_t>> levelSteps(numLevels);
    for (uint32_t i = 0; i < numSteps; ++i)
        levelSteps[stepLevel[i]].push_back(i); // ascending per level
    part.levelBegin.assign(numLevels + 1, 0);
    for (uint32_t lvl = 0; lvl < numLevels; ++lvl) {
        part.levelBegin[lvl] = static_cast<uint32_t>(part.chunks.size());
        if (levelSteps[lvl].empty())
            continue;
        // Components of this level, keyed by union-find root.
        std::map<uint32_t, std::vector<uint32_t>> byRoot;
        for (uint32_t i : levelSteps[lvl])
            byRoot[findRoot(parent, i)].push_back(i);
        struct Comp
        {
            uint32_t size;
            uint32_t minStep;
            const std::vector<uint32_t> *steps;
        };
        std::vector<Comp> comps;
        comps.reserve(byRoot.size());
        for (const auto &[root, steps] : byRoot)
            comps.push_back({static_cast<uint32_t>(steps.size()),
                             steps.front(), &steps});
        std::sort(comps.begin(), comps.end(),
                  [](const Comp &a, const Comp &b) {
                      if (a.size != b.size)
                          return a.size > b.size;
                      return a.minStep < b.minStep;
                  });
        uint32_t bins =
            std::min<uint32_t>(clusters,
                               static_cast<uint32_t>(comps.size()));
        std::vector<std::vector<uint32_t>> binSteps(bins);
        std::vector<uint64_t> binLoad(bins, 0);
        for (const Comp &c : comps) {
            uint32_t lightest = 0;
            for (uint32_t b = 1; b < bins; ++b)
                if (binLoad[b] < binLoad[lightest])
                    lightest = b;
            binLoad[lightest] += c.size;
            binSteps[lightest].insert(binSteps[lightest].end(),
                                      c.steps->begin(), c.steps->end());
        }
        for (uint32_t b = 0; b < bins; ++b) {
            if (binSteps[b].empty())
                continue;
            std::sort(binSteps[b].begin(), binSteps[b].end());
            uint32_t id = static_cast<uint32_t>(part.chunks.size());
            EvalChunk chunk;
            chunk.level = lvl;
            chunk.steps = std::move(binSteps[b]);
            for (uint32_t i : chunk.steps)
                part.stepChunk[i] = id;
            part.chunks.push_back(std::move(chunk));
        }
    }
    part.levelBegin[numLevels] = static_cast<uint32_t>(part.chunks.size());

    // Slot -> consumer chunks (deduplicated, ascending), excluding the
    // producing chunk: in-chunk edges are handled by the chunk's own
    // ascending execution order, and marking the producer would only
    // schedule a no-op re-evaluation next sweep.
    std::vector<std::vector<uint32_t>> consumers(plan.numSlots);
    for (uint32_t i = 0; i < numSteps; ++i) {
        uint32_t chunk = part.stepChunk[i];
        forEachStepOperand(hot[i], [&](SlotId slot) {
            uint32_t p = producer[slot];
            if (p != kNoStep && part.stepChunk[p] == chunk)
                return; // in-chunk edge
            consumers[slot].push_back(chunk);
        });
        if (hot[i].op == Op::MemRead)
            part.memChunks[hot[i].a].push_back(chunk);
    }
    auto sortUnique = [](std::vector<uint32_t> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (auto &list : consumers)
        sortUnique(list);
    for (auto &list : part.memChunks)
        sortUnique(list);
    part.slotChunksBegin.assign(plan.numSlots + 1, 0);
    for (SlotId s = 0; s < plan.numSlots; ++s)
        part.slotChunksBegin[s + 1] =
            part.slotChunksBegin[s] +
            static_cast<uint32_t>(consumers[s].size());
    part.slotChunks.reserve(part.slotChunksBegin.back());
    for (SlotId s = 0; s < plan.numSlots; ++s)
        part.slotChunks.insert(part.slotChunks.end(), consumers[s].begin(),
                               consumers[s].end());
    return part;
}

lint::Diagnostics
verifyPartition(const EvalPlan &plan, const EvalPartition &part,
                size_t numMems)
{
    lint::Diagnostics out;
    const auto &hot = plan.hotProgram;
    const uint32_t numSteps = static_cast<uint32_t>(hot.size());
    const uint32_t numChunks = static_cast<uint32_t>(part.chunks.size());

    auto geometry = [&](const std::string &msg) {
        out.error("partition-geometry", kNoNode, "partition", msg);
    };

    // --- Geometry: everything below indexes through these tables, so
    // any inconsistency here aborts the remaining checks.
    bool shapeOk = true;
    if (part.stepChunk.size() != numSteps) {
        geometry(strfmt("stepChunk has %zu entries for %u hot steps",
                        part.stepChunk.size(), numSteps));
        shapeOk = false;
    }
    if (part.slotChunksBegin.size() !=
        static_cast<size_t>(plan.numSlots) + 1) {
        geometry(strfmt("slotChunksBegin has %zu entries for %u slots",
                        part.slotChunksBegin.size(), plan.numSlots));
        shapeOk = false;
    } else {
        for (size_t s = 0; s + 1 < part.slotChunksBegin.size(); ++s) {
            if (part.slotChunksBegin[s] > part.slotChunksBegin[s + 1]) {
                geometry(strfmt("slotChunksBegin decreases at slot %zu",
                                s));
                shapeOk = false;
                break;
            }
        }
        if (shapeOk &&
            part.slotChunksBegin.back() != part.slotChunks.size()) {
            geometry("slotChunksBegin does not span slotChunks");
            shapeOk = false;
        }
    }
    if (part.memChunks.size() != numMems) {
        geometry(strfmt("memChunks has %zu entries for %zu memories",
                        part.memChunks.size(), numMems));
        shapeOk = false;
    }
    if (part.levelBegin.empty() || part.levelBegin.front() != 0 ||
        part.levelBegin.back() != numChunks) {
        geometry("levelBegin does not tile the chunk list");
        shapeOk = false;
    } else {
        for (size_t l = 0; l + 1 < part.levelBegin.size(); ++l) {
            if (part.levelBegin[l] > part.levelBegin[l + 1]) {
                geometry(strfmt("levelBegin decreases at level %zu", l));
                shapeOk = false;
            }
        }
    }
    auto chunkIdsOk = [&](const std::vector<uint32_t> &v) {
        return std::all_of(v.begin(), v.end(),
                           [&](uint32_t c) { return c < numChunks; });
    };
    if (!chunkIdsOk(part.stepChunk) || !chunkIdsOk(part.slotChunks) ||
        !std::all_of(part.memChunks.begin(), part.memChunks.end(),
                     chunkIdsOk)) {
        geometry("chunk id out of range");
        shapeOk = false;
    }
    if (!shapeOk)
        return out;
    for (uint32_t l = 0; l < part.numLevels(); ++l) {
        for (uint32_t c = part.levelBegin[l]; c < part.levelBegin[l + 1];
             ++c) {
            if (part.chunks[c].level != l) {
                geometry(strfmt("chunk %u has level %u but sits in "
                                "levelBegin range %u",
                                c, part.chunks[c].level, l));
            }
        }
    }

    // --- Coverage: every hot step in exactly one chunk, chunk lists
    // ascending and consistent with stepChunk, no empty chunk.
    std::vector<uint32_t> seen(numSteps, 0);
    for (uint32_t c = 0; c < numChunks; ++c) {
        const EvalChunk &chunk = part.chunks[c];
        if (chunk.steps.empty()) {
            out.error("partition-coverage", kNoNode, "partition",
                      strfmt("chunk %u is empty", c));
            continue;
        }
        uint32_t prev = 0;
        bool first = true;
        for (uint32_t i : chunk.steps) {
            if (i >= numSteps) {
                out.error("partition-coverage", kNoNode, "partition",
                          strfmt("chunk %u lists step %u of %u", c, i,
                                 numSteps));
                continue;
            }
            if (!first && i <= prev) {
                out.error("partition-coverage", kNoNode, "partition",
                          strfmt("chunk %u steps not ascending at %u", c,
                                 i));
            }
            first = false;
            prev = i;
            ++seen[i];
            if (part.stepChunk[i] != c) {
                out.error("partition-coverage", kNoNode, "partition",
                          strfmt("step %u listed in chunk %u but "
                                 "stepChunk says %u",
                                 i, c, part.stepChunk[i]));
            }
        }
    }
    for (uint32_t i = 0; i < numSteps; ++i) {
        if (seen[i] != 1) {
            out.error("partition-coverage", kNoNode, "partition",
                      strfmt("hot step %u appears in %u chunks", i,
                             seen[i]));
        }
    }

    // Producing hot step of each slot, and the CSR membership test the
    // closure check needs (lists are sorted by construction; a mutated
    // unsorted list still answers correctly via linear fallback).
    std::vector<uint32_t> producer(plan.numSlots, kNoStep);
    for (uint32_t i = 0; i < numSteps; ++i) {
        if (hot[i].dst < plan.numSlots)
            producer[hot[i].dst] = i;
        else
            geometry(strfmt("step %u writes slot %u of %u", i,
                            hot[i].dst, plan.numSlots));
    }
    auto csrHas = [&](SlotId slot, uint32_t chunk) {
        auto begin = part.slotChunks.begin() + part.slotChunksBegin[slot];
        auto end =
            part.slotChunks.begin() + part.slotChunksBegin[slot + 1];
        return std::find(begin, end, chunk) != end;
    };

    // --- Same-level races, dirty closure --------------------------------
    for (uint32_t i = 0; i < numSteps; ++i) {
        uint32_t myChunk = part.stepChunk[i];
        forEachStepOperand(hot[i], [&](SlotId slot) {
            if (slot >= plan.numSlots) {
                geometry(strfmt("step %u reads slot %u of %u", i, slot,
                                plan.numSlots));
                return;
            }
            uint32_t p = producer[slot];
            if (p != kNoStep) {
                uint32_t pChunk = part.stepChunk[p];
                if (pChunk != myChunk &&
                    part.chunks[pChunk].level ==
                        part.chunks[myChunk].level) {
                    out.error(
                        "partition-level-race", kNoNode, "partition",
                        strfmt("step %u (chunk %u) reads slot %u "
                               "produced by step %u (chunk %u) in the "
                               "same level %u",
                               i, myChunk, slot, p, pChunk,
                               part.chunks[myChunk].level));
                }
                if (pChunk == myChunk)
                    return; // in-chunk edge: no dirty propagation needed
            }
            if (!csrHas(slot, myChunk)) {
                out.error("partition-dirty-closure", kNoNode, "partition",
                          strfmt("chunk %u consumes slot %u but is "
                                 "missing from its consumer list",
                                 myChunk, slot));
            }
        });
        if (hot[i].op == Op::MemRead) {
            uint32_t mem = hot[i].a;
            if (mem >= numMems) {
                geometry(strfmt("step %u reads memory %u of %zu", i, mem,
                                numMems));
            } else if (std::find(part.memChunks[mem].begin(),
                                 part.memChunks[mem].end(),
                                 myChunk) == part.memChunks[mem].end()) {
                out.error("partition-dirty-closure", kNoNode, "partition",
                          strfmt("chunk %u has an async read of memory "
                                 "%u but is missing from memChunks",
                                 myChunk, mem));
            }
        }
    }

    // --- Double writers: two chunks of one level storing to one slot.
    {
        std::vector<uint32_t> writer(plan.numSlots, kNoStep);
        for (uint32_t i = 0; i < numSteps; ++i) {
            uint32_t slot = hot[i].dst;
            if (slot >= plan.numSlots)
                continue; // reported above
            uint32_t prev = writer[slot];
            if (prev != kNoStep) {
                uint32_t pc = part.stepChunk[prev];
                uint32_t mc = part.stepChunk[i];
                if (pc != mc &&
                    part.chunks[pc].level == part.chunks[mc].level) {
                    out.error(
                        "partition-double-writer", kNoNode, "partition",
                        strfmt("steps %u (chunk %u) and %u (chunk %u) "
                               "both write slot %u in level %u",
                               prev, pc, i, mc, slot,
                               part.chunks[mc].level));
                }
            }
            writer[slot] = i;
        }
    }
    return out;
}

} // namespace rtl
} // namespace strober
