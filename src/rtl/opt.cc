#include "rtl/opt.h"

#include <array>
#include <map>

#include "rtl/analysis.h"
#include "rtl/eval.h"
#include "util/logging.h"

namespace strober {
namespace rtl {

namespace {

/** How one argument enters the optimized graph. */
struct ArgRef
{
    bool isConst = false;
    uint64_t value = 0;    //!< constant value when isConst
    NodeId rep = kNoNode;  //!< representative node when !isConst
    uint8_t width = 0;     //!< the consumer's view: original arg width
};

/**
 * Structural identity of a comb op for CSE. Two nodes with equal keys
 * compute equal values in every reachable state, because operands are
 * compared by representative (equal by induction) or by constant
 * value, and the op/width/imm fields pin down the function applied.
 */
using CseKey = std::array<uint64_t, 8>;

CseKey
makeKey(Op op, unsigned width, const ArgRef *args, unsigned arity,
        uint64_t imm)
{
    CseKey k{};
    k[0] = (static_cast<uint64_t>(op) << 32) |
           (static_cast<uint64_t>(width) << 16);
    k[1] = imm;
    for (unsigned i = 0; i < arity; ++i) {
        k[2 + 2 * i] = (args[i].isConst ? (1ULL << 32) : 0) |
                       (static_cast<uint64_t>(args[i].width) << 40) |
                       (args[i].isConst ? 0 : args[i].rep);
        k[3 + 2 * i] = args[i].isConst ? args[i].value : 0;
    }
    return k;
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Eq:
      case Op::Ne:
        return true;
      default:
        return false;
    }
}

bool
argLess(const ArgRef &x, const ArgRef &y)
{
    if (x.isConst != y.isConst)
        return x.isConst < y.isConst;
    if (x.isConst)
        return x.value < y.value;
    return x.rep < y.rep;
}

} // namespace

EvalPlan
buildEvalPlan(const Design &d)
{
    CombSchedule sched = rtl::analyzeComb(d);
    const size_t numNodes = d.numNodes();

    // --- Pass 1: classify every node in topological order -------------
    // rep[n] == n      : n carries its own value (leaf or scheduled op)
    // rep[n] == m != n : n is an alias of m (CSE hit or passthrough)
    // folded[n]        : n is a compile-time constant constVal[n]
    std::vector<NodeId> rep(numNodes, kNoNode);
    std::vector<uint8_t> folded(numNodes, 0);
    std::vector<uint8_t> scheduled(numNodes, 0);
    std::vector<uint64_t> constVal(numNodes, 0);
    std::map<CseKey, NodeId> cse;
    EvalPlanStats stats;

    auto resolveArg = [&](NodeId arg) {
        ArgRef r;
        r.width = static_cast<uint8_t>(d.node(arg).width);
        if (folded[arg]) {
            r.isConst = true;
            r.value = constVal[arg];
        } else {
            r.rep = rep[arg];
        }
        return r;
    };
    auto aliasTo = [&](NodeId id, const ArgRef &src) {
        if (src.isConst) {
            folded[id] = 1;
            constVal[id] = src.value;
            rep[id] = id;
            ++stats.folded;
        } else {
            rep[id] = src.rep;
            ++stats.aliased;
        }
    };

    for (NodeId id : sched.order) {
        const Node &n = d.node(id);
        switch (n.op) {
          case Op::Input:
          case Op::Reg:
            rep[id] = id;
            continue;
          case Op::Const:
            folded[id] = 1;
            constVal[id] = truncate(n.imm, n.width);
            rep[id] = id;
            continue;
          case Op::MemRead: {
            // Sync read data is state (a leaf); async reads are
            // scheduled as-is — memory contents are not constants.
            rep[id] = id;
            uint32_t memIdx = n.aux >> 16;
            if (!d.mems()[memIdx].syncRead)
                scheduled[id] = 1;
            continue;
          }
          default:
            break;
        }

        unsigned arity = opArity(n.op);
        ArgRef args[3];
        bool allConst = true;
        for (unsigned i = 0; i < arity; ++i) {
            args[i] = resolveArg(n.args[i]);
            allConst = allConst && args[i].isConst;
        }

        // Constant folding (evalOp == interpreter semantics, always).
        if (allConst) {
            folded[id] = 1;
            constVal[id] =
                evalOp(n.op, n.width, args[0].width, args[1].width, n.imm,
                       args[0].value, args[1].value, args[2].value);
            rep[id] = id;
            ++stats.folded;
            continue;
        }

        // Value-passthrough identities: the node's value equals one
        // operand's value bit-for-bit, so it needs no slot of its own.
        // (Pad zero-extends an already-masked value: a no-op. SExt and
        // Bits are no-ops only at matching widths. A Mux whose
        // selector folded is exactly one of its arms.)
        if (n.op == Op::Pad ||
            (n.op == Op::SExt && n.width == args[0].width) ||
            (n.op == Op::Bits && n.bitsLo() == 0 &&
             n.bitsHi() + 1 == args[0].width)) {
            aliasTo(id, args[0]);
            continue;
        }
        if (n.op == Op::Mux && args[0].isConst) {
            aliasTo(id, args[0].value & 1 ? args[1] : args[2]);
            continue;
        }

        // CSE with canonical operand order for commutative ops.
        ArgRef keyArgs[3] = {args[0], args[1], args[2]};
        if (arity == 2 && isCommutative(n.op) &&
            argLess(keyArgs[1], keyArgs[0]))
            std::swap(keyArgs[0], keyArgs[1]);
        CseKey key = makeKey(n.op, n.width, keyArgs, arity, n.imm);
        auto [it, inserted] = cse.emplace(key, id);
        if (inserted) {
            rep[id] = id;
            scheduled[id] = 1;
        } else {
            rep[id] = it->second;
            ++stats.aliased;
        }
    }

    // --- Pass 2: liveness over the representative graph ---------------
    // Roots are everything the per-cycle machinery reads: output ports,
    // register next/enable, memory-port operands consumed at the clock
    // edge, and retime-region signals (captured every sampled cycle).
    std::vector<uint8_t> live(numNodes, 0);
    std::vector<NodeId> work;
    auto markLive = [&](NodeId id) {
        if (id == kNoNode || folded[id])
            return;
        NodeId r = rep[id];
        if (live[r])
            return;
        live[r] = 1;
        work.push_back(r);
    };
    for (const OutputPort &o : d.outputs())
        markLive(o.node);
    for (const RegInfo &r : d.regs()) {
        markLive(r.next);
        markLive(r.en);
    }
    for (const MemInfo &m : d.mems()) {
        for (const MemWritePort &p : m.writes) {
            markLive(p.addr);
            markLive(p.data);
            markLive(p.en);
        }
        if (m.syncRead) {
            for (const MemReadPort &p : m.reads) {
                markLive(p.addr);
                markLive(p.en);
            }
        }
    }
    for (const RetimeRegion &r : d.retimeRegions()) {
        for (NodeId in : r.inputs)
            markLive(in);
        markLive(r.output);
    }
    while (!work.empty()) {
        NodeId r = work.back();
        work.pop_back();
        if (scheduled[r])
            forEachCombDep(d, r, markLive);
    }

    // --- Pass 3: dense slot assignment ---------------------------------
    // Leaves, then the hot schedule in evaluation order, then constants,
    // then cold nodes: the per-cycle working set is one contiguous
    // prefix of the array.
    EvalPlan plan;
    plan.slotOf.assign(numNodes, kNoSlot);
    plan.coldNode.assign(numNodes, 0);
    std::vector<SlotId> slotOfRep(numNodes, kNoSlot);
    SlotId next = 0;
    for (NodeId id : sched.order) {
        if (rep[id] == id && !folded[id] && !scheduled[id])
            slotOfRep[id] = next++; // leaf
    }
    for (NodeId id : sched.order) {
        if (rep[id] == id && scheduled[id] && live[id])
            slotOfRep[id] = next++; // hot
    }
    std::map<uint64_t, SlotId> constSlot;
    for (NodeId id : sched.order) {
        if (!folded[id])
            continue;
        auto [it, inserted] = constSlot.emplace(constVal[id], next);
        if (inserted) {
            plan.slotInit.emplace_back(next, constVal[id]);
            ++next;
        }
        plan.slotOf[id] = it->second;
    }
    stats.constSlots = static_cast<uint32_t>(constSlot.size());
    for (NodeId id : sched.order) {
        if (rep[id] == id && scheduled[id] && !live[id]) {
            slotOfRep[id] = next++; // cold
            ++stats.cold;
        }
    }
    plan.numSlots = next;
    for (NodeId id = 0; id < numNodes; ++id) {
        if (folded[id])
            continue; // const slot already assigned
        plan.slotOf[id] = slotOfRep[rep[id]];
        plan.coldNode[id] = scheduled[rep[id]] && !live[rep[id]];
    }

    // --- Pass 4: emit the hot and cold programs ------------------------
    auto slotOfArg = [&](NodeId arg) { return plan.slotOf[arg]; };
    for (NodeId id : sched.order) {
        if (rep[id] != id || !scheduled[id])
            continue;
        const Node &n = d.node(id);
        EvalStep s;
        s.op = n.op;
        s.width = n.width;
        s.imm = n.imm;
        s.dst = slotOfRep[id];
        if (n.op == Op::MemRead) {
            uint32_t memIdx = n.aux >> 16;
            uint32_t portIdx = n.aux & 0xffff;
            s.a = memIdx;
            s.b = slotOfArg(d.mems()[memIdx].reads[portIdx].addr);
        } else {
            unsigned arity = opArity(n.op);
            if (arity >= 1) {
                s.a = slotOfArg(n.args[0]);
                s.widthA = static_cast<uint8_t>(d.node(n.args[0]).width);
            }
            if (arity >= 2) {
                s.b = slotOfArg(n.args[1]);
                s.widthB = static_cast<uint8_t>(d.node(n.args[1]).width);
            }
            if (arity >= 3)
                s.c = slotOfArg(n.args[2]);
        }
        (live[id] ? plan.hotProgram : plan.coldProgram).push_back(s);
    }
    stats.hot = static_cast<uint32_t>(plan.hotProgram.size());
    plan.stats = stats;
    return plan;
}

} // namespace rtl
} // namespace strober
