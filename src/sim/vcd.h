/**
 * @file
 * VCD (Value Change Dump) waveform emission from the fast RTL
 * simulator. Not part of the paper's flow, but the debugging facility
 * any RTL framework ships with: dump every named signal of a design
 * while a simulation runs, viewable in GTKWave or any VCD consumer.
 */

#ifndef STROBER_SIM_VCD_H
#define STROBER_SIM_VCD_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace strober {
namespace sim {

/** Streams value changes of named nodes to a VCD document. */
class VcdWriter
{
  public:
    /**
     * @param out     destination stream (kept by reference).
     * @param sim     the simulator to observe.
     * @param prefix  only nodes whose name starts with this are dumped
     *                (empty = every named node).
     */
    VcdWriter(std::ostream &out, Simulator &sim,
              const std::string &prefix = "");

    /** Record the current cycle's values (call once per cycle). */
    void sample();

    /** Number of signals being traced. */
    size_t signalCount() const { return nodes.size(); }

  private:
    std::ostream &os;
    Simulator &simulator;
    std::vector<rtl::NodeId> nodes;
    std::vector<std::string> codes;
    std::vector<uint64_t> last;
    bool first = true;

    void writeHeader();
    void writeValue(size_t idx, uint64_t value);
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_VCD_H
