/**
 * @file
 * VCD (Value Change Dump) waveform emission from the fast RTL
 * simulator. Not part of the paper's flow, but the debugging facility
 * any RTL framework ships with: dump every named signal of a design
 * while a simulation runs, viewable in GTKWave or any VCD consumer.
 * Also the export half of the trace interchange loop: a ports-only
 * dump of a generator-driven run is a valid `--stimulus` input for a
 * later trace-driven run (see src/trace).
 */

#ifndef STROBER_SIM_VCD_H
#define STROBER_SIM_VCD_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace strober {
namespace sim {

/** Streams value changes of named nodes to a VCD document. */
class VcdWriter
{
  public:
    /** Signal-selection knobs for the dump. */
    struct Options
    {
        /** Only nodes whose name starts with this (empty = all). */
        std::string prefix;

        /**
         * Dump only top-level ports (inputs + named outputs). This is
         * the stimulus-interchange mode: the resulting file binds
         * cleanly back onto the design's input ports via
         * `trace::Stimulus`.
         */
        bool portsOnly = false;
    };

    /**
     * @param out     destination stream (kept by reference).
     * @param sim     the simulator to observe.
     * @param prefix  only nodes whose name starts with this are dumped
     *                (empty = every named node).
     */
    VcdWriter(std::ostream &out, Simulator &sim,
              const std::string &prefix = "");

    VcdWriter(std::ostream &out, Simulator &sim, const Options &opts);

    /** Record the current cycle's values (call once per cycle). */
    void sample();

    /** Number of signals being traced. */
    size_t signalCount() const { return nodes.size(); }

    /**
     * Nodes excluded from the dump because their declared width does
     * not fit the writer's one-uint64_t-per-node value cache (width 0
     * or > 64). Each skip is counted once and announced in the VCD
     * header as a `$comment`; emitting a truncated value silently
     * would corrupt any downstream activity analysis.
     */
    size_t wideSignalsSkipped() const { return wideSkipped; }

  private:
    std::ostream &os;
    Simulator &simulator;
    std::vector<rtl::NodeId> nodes;
    std::vector<std::string> codes;
    std::vector<uint64_t> last;
    size_t wideSkipped = 0;
    bool first = true;

    void writeHeader();
    void writeValue(size_t idx, uint64_t value);
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_VCD_H
