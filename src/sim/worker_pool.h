/**
 * @file
 * Persistent worker pool for the compiled-parallel backend: a fixed
 * set of threads executing one batch of independent tasks per run()
 * call, with the caller participating in the drain.
 *
 * The unit of work is an index: run(count, fn) has every participant
 * repeatedly claim the next unclaimed index via a CAS on a packed
 * {generation, index} ticket and call fn(index). Claims from a stale
 * generation always fail: the generation half mismatches, and run()
 * additionally saturates the index half to UINT32_MAX before it
 * returns, so a ticket value loaded during a finished batch can never
 * be CASed once the next batch publishes its (possibly larger) task
 * count. run() returns only once every task of the current generation
 * finished, so batches never overlap and fn may touch caller-owned
 * state without synchronization beyond the run() boundary.
 *
 * Because the caller drains tasks itself, a pool on a single-core host
 * degenerates to a plain loop plus one predictable-branch check — the
 * backend stays cheap when there is nothing to parallelize.
 *
 * Workers spin briefly between batches, then park on a condition
 * variable; destruction wakes and joins them. The pool is fork-safe in
 * the strober-farm sense: children _exit() without running
 * destructors, and the pool touches no fd/lock state a forked child
 * would inherit mid-operation (the farm forks from the coordinator,
 * which never simulates).
 */

#ifndef STROBER_SIM_WORKER_POOL_H
#define STROBER_SIM_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strober {
namespace sim {

/**
 * Threads the simulator should use, resolved in precedence order:
 * setSimThreads() override (the CLI's --sim-threads), else the
 * $STROBER_SIM_THREADS environment variable (re-read on every call so
 * a test matrix can vary it between Simulator constructions), else
 * min(hardware_concurrency, 8). Always at least 1.
 */
unsigned simThreads();

/** Process-wide thread-count override; 0 clears it. */
void setSimThreads(unsigned n);

/**
 * Minimum total hot steps across a level's dirty chunks before the
 * evaluation is dispatched to the pool instead of run inline;
 * overridable via $STROBER_SIM_PARALLEL_GRAIN (tests set it to 0 to
 * force every level through the pool). When @p poolThreads
 * oversubscribes the host cores there is no parallel capacity for a
 * dispatch to exploit, so absent the env override the grain saturates
 * and levels run inline — chunk-granular activity gating still applies.
 */
uint32_t parallelDispatchGrain(unsigned poolThreads = 1);

/** A persistent pool of `threads - 1` workers plus the caller. */
class WorkerPool
{
  public:
    /** @p threads is the total parallelism including the caller; a
     *  value <= 1 creates no worker threads at all. */
    explicit WorkerPool(unsigned threads);
    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;
    ~WorkerPool();

    /** Total parallelism (workers + caller). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Execute fn(0..count-1), each exactly once, across the caller and
     * all workers; returns after every call finished. @p fn must not
     * reenter the pool. Not thread-safe: one run() at a time.
     */
    void run(uint32_t count, const std::function<void(uint32_t)> &fn);

  private:
    void workerBody();
    /** Claim-and-execute loop shared by caller and workers. */
    void drain(uint32_t gen);

    // Iterations a worker spins for the next batch before parking.
    // Zero when the pool oversubscribes the host (more threads than
    // cores): a spinning worker would then steal the very quantum the
    // dispatching caller needs, so parking immediately is faster.
    unsigned spinLimit = 0;

    // Ticket packs {generation:32 | next-index:32}; a CAS that loses
    // the race or sees a foreign generation simply retries/leaves.
    // Generations wrap mod 2^32 (all comparisons are on the 32-bit
    // value), and run() parks the index at UINT32_MAX between batches
    // so stale claims from a finished generation always fail.
    std::atomic<uint64_t> ticket{0};
    std::atomic<uint32_t> taskCount{0};
    std::atomic<uint32_t> completed{0};
    const std::function<void(uint32_t)> *taskFn = nullptr;

    std::mutex wakeMutex;
    std::condition_variable wakeCv;
    uint32_t wakeGen = 0; // generation workers should work on (guarded)
    bool stopping = false;

    std::vector<std::thread> workers;
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_WORKER_POOL_H
