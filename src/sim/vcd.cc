#include "sim/vcd.h"

#include <algorithm>

#include "util/bits.h"

namespace strober {
namespace sim {

namespace {

/** Short printable identifier codes: !, ", #, ... (VCD convention). */
std::string
idCode(size_t index)
{
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return code;
}

/** VCD identifiers use '.' hierarchy; sanitize our '/' paths. */
std::string
vcdName(const std::string &name)
{
    std::string out;
    for (char c : name)
        out += c == '/' ? '.' : c;
    return out;
}

/** A value this writer can represent faithfully in its uint64_t cache. */
bool
representable(const rtl::Node &n)
{
    return n.width >= 1 && n.width <= 64;
}

} // namespace

VcdWriter::VcdWriter(std::ostream &out, Simulator &sim,
                     const std::string &prefix)
    : VcdWriter(out, sim, Options{prefix, false})
{
}

VcdWriter::VcdWriter(std::ostream &out, Simulator &sim, const Options &opts)
    : os(out), simulator(sim)
{
    const rtl::Design &d = sim.design();
    std::vector<rtl::NodeId> candidates;
    if (opts.portsOnly) {
        candidates = d.inputs();
        for (const rtl::OutputPort &p : d.outputs())
            if (p.node != rtl::kNoNode)
                candidates.push_back(p.node);
        // Ports can alias (an input fed straight to an output);
        // keep the first occurrence only so id codes stay unique.
        std::vector<rtl::NodeId> uniq;
        for (rtl::NodeId id : candidates)
            if (std::find(uniq.begin(), uniq.end(), id) == uniq.end())
                uniq.push_back(id);
        candidates = uniq;
    } else {
        for (rtl::NodeId id = 0; id < d.numNodes(); ++id)
            candidates.push_back(id);
    }
    for (rtl::NodeId id : candidates) {
        const rtl::Node &n = d.node(id);
        if (n.name.empty())
            continue;
        if (!opts.prefix.empty() && n.name.rfind(opts.prefix, 0) != 0)
            continue;
        if (!representable(n)) {
            ++wideSkipped;
            continue;
        }
        nodes.push_back(id);
        codes.push_back(idCode(nodes.size() - 1));
    }
    last.assign(nodes.size(), 0);
    writeHeader();
}

void
VcdWriter::writeHeader()
{
    const rtl::Design &d = simulator.design();
    os << "$date strober $end\n$version strober-vcd $end\n"
          "$timescale 1ns $end\n";
    if (wideSkipped > 0)
        os << "$comment strober: skipped " << wideSkipped
           << " signal(s) wider than 64 bits $end\n";
    os << "$scope module " << d.name() << " $end\n";
    for (size_t i = 0; i < nodes.size(); ++i) {
        const rtl::Node &n = d.node(nodes[i]);
        os << "$var wire " << n.width << " " << codes[i] << " "
           << vcdName(n.name) << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::writeValue(size_t idx, uint64_t value)
{
    const rtl::Node &n = simulator.design().node(nodes[idx]);
    if (n.width == 1) {
        os << (value & 1) << codes[idx] << "\n";
        return;
    }
    os << "b";
    bool leading = true;
    for (int bitPos = n.width - 1; bitPos >= 0; --bitPos) {
        unsigned v = static_cast<unsigned>(bit(value, bitPos));
        if (v == 0 && leading && bitPos != 0)
            continue;
        leading = false;
        os << v;
    }
    os << " " << codes[idx] << "\n";
}

void
VcdWriter::sample()
{
    os << "#" << simulator.cycle() << "\n";
    for (size_t i = 0; i < nodes.size(); ++i) {
        uint64_t v = simulator.peek(nodes[i]);
        if (first || v != last[i]) {
            writeValue(i, v);
            last[i] = v;
        }
    }
    first = false;
}

} // namespace sim
} // namespace strober
