#include "sim/simulator.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "codegen/codegen.h"
#include "lint/lint.h"
#include "rtl/eval.h"
#include "util/bits.h"
#include "util/env.h"
#include "util/logging.h"

namespace strober {
namespace sim {

using rtl::EvalStep;
using rtl::NodeId;
using rtl::Op;
using rtl::SlotId;
using rtl::kNoNode;
using rtl::kNoSlot;

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::InterpretedFull:
        return "full";
      case Backend::InterpretedActivity:
        return "activity";
      case Backend::Compiled:
        return "compiled";
      case Backend::CompiledParallel:
        return "compiled-parallel";
    }
    return "?";
}

bool
parseBackend(const std::string &text, Backend *out)
{
    if (text == "full" || text == "interpreted-full")
        *out = Backend::InterpretedFull;
    else if (text == "activity" || text == "interpreted-activity")
        *out = Backend::InterpretedActivity;
    else if (text == "compiled")
        *out = Backend::Compiled;
    else if (text == "compiled-parallel" || text == "parallel")
        *out = Backend::CompiledParallel;
    else
        return false;
    return true;
}

Simulator::Simulator(const rtl::Design &design, Backend backend)
    : dsn(design), requested(backend), effective(backend)
{
    lint::Options opts;
    opts.minSeverity = lint::Severity::Error;
    lint::Diagnostics diags = lint::run(dsn, opts);
    if (diags.hasErrors()) {
        fatal("cannot simulate design '%s': %zu lint error(s):\n%s",
              dsn.name().c_str(), diags.errorCount(), diags.str().c_str());
    }
    rtl::EvalPlanOptions planOpts;
    // Debugging escape hatch (also used by the differential suite to
    // pit an unstrengthened reference against the dataflow-optimized
    // plan): a truthy value disables the known-bits pass.
    if (util::envFlag("STROBER_SIM_NO_DATAFLOW"))
        planOpts.dataflow = false;
    evalPlan = rtl::buildEvalPlan(dsn, planOpts);
    buildTables();
    if (requested == Backend::Compiled ||
        requested == Backend::CompiledParallel)
        attachCompiledModule();
    reset();
}

void
Simulator::buildTables()
{
    const auto &slotOf = evalPlan.slotOf;

    regCommits.clear();
    regCommits.reserve(dsn.regs().size());
    for (const rtl::RegInfo &r : dsn.regs()) {
        RegCommit c;
        c.dst = slotOf[r.node];
        c.next = slotOf[r.next];
        c.en = r.en == kNoNode ? kNoSlot : slotOf[r.en];
        regCommits.push_back(c);
    }

    syncReadCommits.clear();
    memWriteCommits.clear();
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (m.syncRead) {
            for (const rtl::MemReadPort &p : m.reads) {
                SyncReadCommit c;
                c.data = slotOf[p.data];
                c.addr = slotOf[p.addr];
                c.en = p.en == kNoNode ? kNoSlot : slotOf[p.en];
                c.mem = static_cast<uint32_t>(mi);
                c.depth = m.depth;
                syncReadCommits.push_back(c);
            }
        }
        for (const rtl::MemWritePort &p : m.writes) {
            MemWriteCommit c;
            c.addr = slotOf[p.addr];
            c.data = slotOf[p.data];
            c.en = p.en == kNoNode ? kNoSlot : slotOf[p.en];
            c.mem = static_cast<uint32_t>(mi);
            c.depth = m.depth;
            memWriteCommits.push_back(c);
        }
    }

    // Per-slot fanout over the hot program, in CSR form: the steps that
    // must re-run when a slot's value changes. Async memory reads are
    // additionally grouped per memory (marked on memory writes).
    const auto &hot = evalPlan.hotProgram;
    memReadSteps.assign(dsn.mems().size(), {});
    std::vector<uint32_t> counts(evalPlan.numSlots + 1, 0);
    auto forEachOperand = [&](const EvalStep &s, auto &&fn) {
        if (s.op == Op::MemRead) {
            fn(s.b);
            return;
        }
        unsigned arity = rtl::opArity(s.op);
        if (arity >= 1)
            fn(s.a);
        if (arity >= 2)
            fn(s.b);
        if (arity >= 3)
            fn(s.c);
    };
    for (const EvalStep &s : hot)
        forEachOperand(s, [&](SlotId slot) { ++counts[slot + 1]; });
    for (size_t i = 1; i < counts.size(); ++i)
        counts[i] += counts[i - 1];
    fanoutBegin = counts;
    fanoutSteps.assign(counts.back(), 0);
    std::vector<uint32_t> fill(fanoutBegin.begin(), fanoutBegin.end());
    for (uint32_t i = 0; i < hot.size(); ++i) {
        forEachOperand(hot[i],
                       [&](SlotId slot) { fanoutSteps[fill[slot]++] = i; });
        if (hot[i].op == Op::MemRead)
            memReadSteps[hot[i].a].push_back(i);
    }
}

void
Simulator::attachCompiledModule()
{
    const bool parallel = requested == Backend::CompiledParallel;
    std::string tag = "sim_" + dsn.name();
    for (char &c : tag) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'))
            c = '_';
    }
    std::string source;
    if (parallel) {
        partition = rtl::partitionEvalPlan(evalPlan, dsn.mems().size());
        // Mandatory static race gate: the partition must be *proven*
        // data-race-free before any code is generated from it. This
        // turns the properties TSan and the differential fuzz only
        // sample into a checked invariant of every construction.
        lint::Diagnostics proof =
            rtl::verifyPartition(evalPlan, partition, dsn.mems().size());
        if (proof.errorCount() != 0)
            panic("partition of '%s' failed static race validation:\n%s",
                  dsn.name().c_str(), proof.str().c_str());
        source = codegen::emitPartitionedSource(dsn, evalPlan, partition);
    } else {
        source = codegen::emitSimulatorSource(dsn, evalPlan);
    }
    auto result = codegen::compileSimulator(source, tag);
    if (!result.isOk()) {
        // Degradation mirrors what the compiled code would have done:
        // the plain module re-evaluates everything (-> full), the
        // partitioned one gates on activity (-> activity interpreter).
        warn("compiled backend unavailable for '%s' (%s); falling back "
             "to the %s interpreter",
             dsn.name().c_str(), result.status().toString().c_str(),
             parallel ? "activity" : "full");
        effective = parallel ? Backend::InterpretedActivity
                             : Backend::InterpretedFull;
        return;
    }
    module = std::move(result.value());
    if (module->numSlots() != evalPlan.numSlots ||
        module->numMems() != dsn.mems().size())
        panic("compiled module geometry mismatch for '%s' "
              "(slots %llu != %u or mems %llu != %zu)",
              dsn.name().c_str(), (unsigned long long)module->numSlots(),
              evalPlan.numSlots, (unsigned long long)module->numMems(),
              dsn.mems().size());
    if (parallel) {
        if (module->chunks().size() != partition.chunks.size())
            panic("partitioned module chunk mismatch for '%s' "
                  "(%zu != %zu)",
                  dsn.name().c_str(), module->chunks().size(),
                  partition.chunks.size());
        chunkDirty.assign(partition.dirtyWords(), 0);
        unsigned threads = simThreads();
        dispatchGrain = parallelDispatchGrain(threads);
        if (threads > 1 && !partition.chunks.empty())
            pool.reset(new WorkerPool(threads));
    }
}

void
Simulator::reset()
{
    slots.assign(evalPlan.numSlots, 0);
    for (const auto &[slot, value] : evalPlan.slotInit)
        slots[slot] = value;
    for (const rtl::RegInfo &r : dsn.regs())
        slots[evalPlan.slotOf[r.node]] = r.init;

    mems.clear();
    mems.reserve(dsn.mems().size());
    for (const rtl::MemInfo &m : dsn.mems()) {
        mems.emplace_back(m.depth, 0);
        for (size_t i = 0; i < m.init.size(); ++i)
            mems.back()[i] = m.init[i];
    }
    memPtrs.clear();
    for (auto &contents : mems)
        memPtrs.push_back(contents.data());

    regPending.assign(regCommits.size(), 0);
    readPending.assign(syncReadCommits.size(), 0);

    dirtyBits.assign((evalPlan.hotProgram.size() + 63) / 64, 0);
    minDirtyWord = static_cast<uint32_t>(dirtyBits.size());
    maxDirtyWord = 0;
    fullSweepPending = true;
    std::fill(chunkDirty.begin(), chunkDirty.end(), 0);

    cycleCount = 0;
    combStale = true;
    coldStale = true;
}

void
Simulator::markStepDirty(uint32_t stepIdx)
{
    uint32_t word = stepIdx >> 6;
    dirtyBits[word] |= 1ULL << (stepIdx & 63);
    minDirtyWord = std::min(minDirtyWord, word);
    maxDirtyWord = std::max(maxDirtyWord, word);
}

void
Simulator::markSlotChanged(SlotId slot)
{
    for (uint32_t i = fanoutBegin[slot]; i < fanoutBegin[slot + 1]; ++i)
        markStepDirty(fanoutSteps[i]);
}

void
Simulator::markMemChanged(size_t memIdx)
{
    for (uint32_t stepIdx : memReadSteps[memIdx])
        markStepDirty(stepIdx);
}

void
Simulator::markSlotChunks(SlotId slot)
{
    for (uint32_t i = partition.slotChunksBegin[slot];
         i < partition.slotChunksBegin[slot + 1]; ++i) {
        uint32_t c = partition.slotChunks[i];
        chunkDirty[c >> 6] |= 1ULL << (c & 63);
    }
}

void
Simulator::markMemChunks(size_t memIdx)
{
    for (uint32_t c : partition.memChunks[memIdx])
        chunkDirty[c >> 6] |= 1ULL << (c & 63);
}

void
Simulator::updateSlot(SlotId slot, uint64_t value)
{
    if (effective == Backend::InterpretedActivity) {
        if (slots[slot] != value) {
            slots[slot] = value;
            markSlotChanged(slot);
        }
    } else if (effective == Backend::CompiledParallel) {
        if (slots[slot] != value) {
            slots[slot] = value;
            markSlotChunks(slot);
        }
    } else {
        slots[slot] = value;
    }
    combStale = true;
    coldStale = true;
}

void
Simulator::poke(NodeId input, uint64_t value)
{
    const rtl::Node &n = dsn.node(input);
    if (n.op != Op::Input)
        panic("poke target '%s' is not an input", n.name.c_str());
    updateSlot(evalPlan.slotOf[input], truncate(value, n.width));
}

void
Simulator::poke(const std::string &name, uint64_t value)
{
    NodeId id = dsn.findInput(name);
    if (id == kNoNode)
        fatal("no input named '%s'", name.c_str());
    poke(id, value);
}

uint64_t
Simulator::peek(NodeId node)
{
    if (combStale)
        evalComb();
    if (evalPlan.coldNode[node] != 0 && coldStale)
        evalCold();
    return slots[evalPlan.slotOf[node]];
}

uint64_t
Simulator::peek(const std::string &name)
{
    int idx = dsn.findOutput(name);
    if (idx < 0)
        fatal("no output named '%s'", name.c_str());
    return peek(dsn.outputs()[idx].node);
}

uint64_t
Simulator::evalStep(const EvalStep &s) const
{
    const uint64_t *v = slots.data();
    if (s.op == Op::MemRead) {
        uint64_t addr = v[s.b];
        const auto &contents = mems[s.a];
        return addr < contents.size() ? contents[addr] : 0;
    }
    return rtl::evalOp(s.op, s.width, s.widthA, s.widthB, s.imm, v[s.a],
                       v[s.b], v[s.c]);
}

void
Simulator::evalCombFull()
{
    for (const EvalStep &s : evalPlan.hotProgram)
        slots[s.dst] = evalStep(s);
    evalCount += evalPlan.hotProgram.size();
    combStale = false;
}

void
Simulator::evalCombActivity()
{
    if (fullSweepPending) {
        // First sweep after reset: everything is potentially stale.
        evalCombFull();
        std::fill(dirtyBits.begin(), dirtyBits.end(), 0);
        minDirtyWord = static_cast<uint32_t>(dirtyBits.size());
        maxDirtyWord = 0;
        fullSweepPending = false;
        return;
    }

    // Drain the dirty bitmap in one ascending scan. The hot program is
    // topologically ordered, so a step marked while draining always
    // sits at a strictly higher index than the step that marked it —
    // either a higher bit of the current word (picked up because the
    // word is re-read every iteration) or a later word (maxDirtyWord
    // is re-read by the loop condition). Ascending index order also
    // keeps the evaluation sequence a sub-sequence of the full sweep.
    uint64_t evaluated = 0;
    const size_t numWords = dirtyBits.size();
    for (uint32_t w = minDirtyWord; w < numWords && w <= maxDirtyWord;
         ++w) {
        while (dirtyBits[w] != 0) {
            uint32_t bit =
                static_cast<uint32_t>(__builtin_ctzll(dirtyBits[w]));
            dirtyBits[w] &= dirtyBits[w] - 1;
            const EvalStep &s = evalPlan.hotProgram[(w << 6) | bit];
            uint64_t r = evalStep(s);
            ++evaluated;
            if (slots[s.dst] != r) {
                slots[s.dst] = r;
                markSlotChanged(s.dst);
            }
        }
    }
    minDirtyWord = static_cast<uint32_t>(numWords);
    maxDirtyWord = 0;
    evalCount += evaluated;
    skipCount += evalPlan.hotProgram.size() - evaluated;
    combStale = false;
}

void
Simulator::evalCombParallel()
{
    if (fullSweepPending) {
        // First sweep after reset: everything is potentially stale.
        // The module's strober_eval runs all chunks sequentially in
        // topological (level-major) order; afterwards nothing is stale,
        // so pending chunk marks are dropped, exactly like the
        // activity interpreter's post-reset sweep.
        module->eval()(slots.data(), memPtrs.data());
        std::fill(chunkDirty.begin(), chunkDirty.end(), 0);
        fullSweepPending = false;
        evalCount += evalPlan.hotProgram.size();
        combStale = false;
        return;
    }

    // Drain dirty chunks level by level. All cross-chunk data edges
    // point to a *later* level (intra-level dependencies are kept
    // in-chunk by the partitioner), so the dirty chunks of one level
    // are independent: they can run on any number of threads in any
    // order, and a chunk's dirty marks always target levels not yet
    // drained. That makes the executed set — and hence every value and
    // counter — independent of thread scheduling.
    const auto &chunkFns = module->chunks();
    uint64_t *slotData = slots.data();
    uint64_t *const *memData = memPtrs.data();
    uint64_t *dirty = chunkDirty.data();
    uint64_t executed = 0;
    for (uint32_t lvl = 0; lvl < partition.numLevels(); ++lvl) {
        liveChunks.clear();
        uint32_t steps = 0;
        for (uint32_t c = partition.levelBegin[lvl];
             c < partition.levelBegin[lvl + 1]; ++c) {
            if ((chunkDirty[c >> 6] & (1ULL << (c & 63))) != 0) {
                liveChunks.push_back(c);
                steps += static_cast<uint32_t>(
                    partition.chunks[c].steps.size());
            }
        }
        if (liveChunks.empty())
            continue;
        for (uint32_t c : liveChunks)
            chunkDirty[c >> 6] &= ~(1ULL << (c & 63));
        executed += steps;
        if (pool != nullptr && liveChunks.size() >= 2 &&
            steps >= dispatchGrain) {
            const std::vector<uint32_t> &live = liveChunks;
            pool->run(static_cast<uint32_t>(live.size()),
                      [&](uint32_t i) {
                          chunkFns[live[i]](slotData, memData, dirty);
                      });
        } else {
            for (uint32_t c : liveChunks)
                chunkFns[c](slotData, memData, dirty);
        }
    }
    evalCount += executed;
    skipCount += evalPlan.hotProgram.size() - executed;
    combStale = false;
}

void
Simulator::evalComb()
{
    switch (effective) {
      case Backend::InterpretedFull:
        evalCombFull();
        break;
      case Backend::InterpretedActivity:
        evalCombActivity();
        break;
      case Backend::Compiled:
        module->eval()(slots.data(), memPtrs.data());
        evalCount += evalPlan.hotProgram.size();
        combStale = false;
        break;
      case Backend::CompiledParallel:
        evalCombParallel();
        break;
    }
}

void
Simulator::evalCold()
{
    // Dead (optimized-away) nodes, refreshed only when observed. Not
    // counted in nodeEvals(): observation cost, not simulation cost.
    for (const EvalStep &s : evalPlan.coldProgram)
        slots[s.dst] = evalStep(s);
    coldStale = false;
}

void
Simulator::commitEdge()
{
    // CompiledParallel commits through the interpreter path below: the
    // per-slot updateSlot change detection is what seeds the chunk
    // dirty bitmap for the next sweep, which the module's monolithic
    // strober_commit cannot do.
    if (effective == Backend::Compiled) {
        module->commit()(slots.data(), memPtrs.data());
        ++cycleCount;
        combStale = true;
        coldStale = true;
        return;
    }

    for (size_t i = 0; i < regCommits.size(); ++i) {
        const RegCommit &c = regCommits[i];
        bool en = c.en == kNoSlot || (slots[c.en] & 1) != 0;
        regPending[i] = en ? slots[c.next] : slots[c.dst];
    }

    // Sync read ports latch old contents (read-before-write).
    for (size_t i = 0; i < syncReadCommits.size(); ++i) {
        const SyncReadCommit &c = syncReadCommits[i];
        bool en = c.en == kNoSlot || (slots[c.en] & 1) != 0;
        if (en) {
            uint64_t addr = slots[c.addr];
            readPending[i] = addr < c.depth ? mems[c.mem][addr] : 0;
        } else {
            readPending[i] = slots[c.data];
        }
    }

    // Memory writes (last port wins on a collision).
    bool activity = effective == Backend::InterpretedActivity;
    bool chunked = effective == Backend::CompiledParallel;
    for (const MemWriteCommit &c : memWriteCommits) {
        bool en = c.en == kNoSlot || (slots[c.en] & 1) != 0;
        if (!en)
            continue;
        uint64_t addr = slots[c.addr];
        if (addr < c.depth && mems[c.mem][addr] != slots[c.data]) {
            mems[c.mem][addr] = slots[c.data];
            if (activity)
                markMemChanged(c.mem);
            else if (chunked)
                markMemChunks(c.mem);
        }
    }

    for (size_t i = 0; i < regCommits.size(); ++i)
        updateSlot(regCommits[i].dst, regPending[i]);
    for (size_t i = 0; i < syncReadCommits.size(); ++i)
        updateSlot(syncReadCommits[i].data, readPending[i]);

    ++cycleCount;
    combStale = true;
    coldStale = true;
}

void
Simulator::step(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i) {
        if (combStale)
            evalComb();
        commitEdge();
    }
}

uint64_t
Simulator::regValue(size_t regIdx) const
{
    if (regIdx >= dsn.regs().size())
        panic("regValue index %zu out of range (design has %zu registers)",
              regIdx, dsn.regs().size());
    return slots[evalPlan.slotOf[dsn.regs()[regIdx].node]];
}

void
Simulator::setRegValue(size_t regIdx, uint64_t value)
{
    if (regIdx >= dsn.regs().size())
        panic("setRegValue index %zu out of range (design has %zu "
              "registers)", regIdx, dsn.regs().size());
    const rtl::RegInfo &r = dsn.regs()[regIdx];
    updateSlot(evalPlan.slotOf[r.node],
               truncate(value, dsn.node(r.node).width));
}

uint64_t
Simulator::memWord(size_t memIdx, uint64_t addr) const
{
    if (memIdx >= mems.size())
        panic("memWord memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    const auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("memWord address %llu out of range", (unsigned long long)addr);
    return contents[addr];
}

void
Simulator::setMemWord(size_t memIdx, uint64_t addr, uint64_t value)
{
    if (memIdx >= mems.size())
        panic("setMemWord memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("setMemWord address %llu out of range",
              (unsigned long long)addr);
    uint64_t nv = truncate(value, dsn.mems()[memIdx].width);
    if (contents[addr] != nv) {
        contents[addr] = nv;
        if (effective == Backend::InterpretedActivity)
            markMemChanged(memIdx);
        else if (effective == Backend::CompiledParallel)
            markMemChunks(memIdx);
    }
    combStale = true;
    coldStale = true;
}

uint64_t
Simulator::syncReadData(size_t memIdx, size_t port) const
{
    if (memIdx >= dsn.mems().size() ||
        port >= dsn.mems()[memIdx].reads.size())
        panic("syncReadData mem %zu port %zu out of range", memIdx, port);
    return slots[evalPlan.slotOf[dsn.mems()[memIdx].reads[port].data]];
}

void
Simulator::setSyncReadData(size_t memIdx, size_t port, uint64_t value)
{
    if (memIdx >= dsn.mems().size() ||
        port >= dsn.mems()[memIdx].reads.size())
        panic("setSyncReadData mem %zu port %zu out of range", memIdx,
              port);
    const rtl::MemInfo &m = dsn.mems()[memIdx];
    updateSlot(evalPlan.slotOf[m.reads[port].data], truncate(value, m.width));
}

void
Simulator::loadMem(size_t memIdx, uint64_t base,
                   const std::vector<uint64_t> &words)
{
    if (memIdx >= mems.size())
        panic("loadMem memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    // Guard the addition against wrap-around before the range check.
    if (base > mems[memIdx].size() ||
        words.size() > mems[memIdx].size() - base)
        fatal("loadMem overflows memory '%s'",
              dsn.mems()[memIdx].name.c_str());
    bool changed = false;
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t nv = truncate(words[i], dsn.mems()[memIdx].width);
        if (mems[memIdx][base + i] != nv) {
            mems[memIdx][base + i] = nv;
            changed = true;
        }
    }
    if (changed && effective == Backend::InterpretedActivity)
        markMemChanged(memIdx);
    else if (changed && effective == Backend::CompiledParallel)
        markMemChunks(memIdx);
    combStale = true;
    coldStale = true;
}

} // namespace sim
} // namespace strober
