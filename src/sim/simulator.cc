#include "sim/simulator.h"

#include <algorithm>

#include "lint/lint.h"
#include "rtl/analysis.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace sim {

using rtl::Op;
using rtl::NodeId;
using rtl::kNoNode;

const char *
simulatorModeName(SimulatorMode mode)
{
    return mode == SimulatorMode::Full ? "full" : "activity";
}

Simulator::Simulator(const rtl::Design &design, SimulatorMode mode)
    : dsn(design), simMode(mode)
{
    lint::Options opts;
    opts.minSeverity = lint::Severity::Error;
    lint::Diagnostics diags = lint::run(dsn, opts);
    if (diags.hasErrors()) {
        fatal("cannot simulate design '%s': %zu lint error(s):\n%s",
              dsn.name().c_str(), diags.errorCount(), diags.str().c_str());
    }
    compile();
    reset();
}

void
Simulator::compile()
{
    rtl::CombSchedule sched = rtl::analyzeComb(dsn);
    numLevels = sched.numLevels;

    program.clear();
    program.reserve(sched.order.size());
    stepLevel.clear();
    memReadSteps.assign(dsn.mems().size(), {});
    std::vector<uint32_t> stepOfNode(dsn.numNodes(), kNoStep);

    for (NodeId id : sched.order) {
        const rtl::Node &n = dsn.node(id);
        switch (n.op) {
          case Op::Input:
          case Op::Const:
          case Op::Reg:
            continue; // leaves: poked, preset, or state
          case Op::MemRead: {
            uint32_t memIdx = n.aux >> 16;
            uint32_t portIdx = n.aux & 0xffff;
            const rtl::MemInfo &m = dsn.mems()[memIdx];
            if (m.syncRead)
                continue; // registered read data is state
            Step s{};
            s.op = Op::MemRead;
            s.width = n.width;
            s.dst = id;
            s.a = memIdx;
            s.b = m.reads[portIdx].addr;
            stepOfNode[id] = static_cast<uint32_t>(program.size());
            memReadSteps[memIdx].push_back(
                static_cast<uint32_t>(program.size()));
            program.push_back(s);
            stepLevel.push_back(sched.level[id]);
            continue;
          }
          default:
            break;
        }
        Step s{};
        s.op = n.op;
        s.width = n.width;
        s.dst = id;
        s.imm = n.imm;
        unsigned arity = rtl::opArity(n.op);
        if (arity >= 1) {
            s.a = n.args[0];
            s.widthA = static_cast<uint8_t>(dsn.node(n.args[0]).width);
        }
        if (arity >= 2) {
            s.b = n.args[1];
            s.widthB = static_cast<uint8_t>(dsn.node(n.args[1]).width);
        }
        if (arity >= 3)
            s.c = n.args[2];
        stepOfNode[id] = static_cast<uint32_t>(program.size());
        program.push_back(s);
        stepLevel.push_back(sched.level[id]);
    }

    // Per-node fanout as *step* indices: every combinational user of a
    // node has a step, so the CSR shape carries over unchanged.
    fanoutBegin.assign(sched.fanoutBegin.begin(), sched.fanoutBegin.end());
    fanoutSteps.resize(sched.fanout.size());
    for (size_t i = 0; i < sched.fanout.size(); ++i)
        fanoutSteps[i] = stepOfNode[sched.fanout[i]];

    levelBuckets.assign(numLevels, {});
}

void
Simulator::reset()
{
    values.assign(dsn.numNodes(), 0);
    for (NodeId id = 0; id < dsn.numNodes(); ++id) {
        const rtl::Node &n = dsn.node(id);
        if (n.op == Op::Const)
            values[id] = truncate(n.imm, n.width);
    }
    for (const rtl::RegInfo &r : dsn.regs())
        values[r.node] = r.init;

    mems.clear();
    mems.reserve(dsn.mems().size());
    for (const rtl::MemInfo &m : dsn.mems()) {
        mems.emplace_back(m.depth, 0);
        for (size_t i = 0; i < m.init.size(); ++i)
            mems.back()[i] = m.init[i];
    }

    regPending.assign(dsn.regs().size(), 0);
    size_t syncPorts = 0;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (m.syncRead)
            syncPorts += m.reads.size();
    }
    readPending.assign(syncPorts, 0);

    stepDirty.assign(program.size(), 0);
    for (auto &bucket : levelBuckets)
        bucket.clear();
    minDirtyLevel = numLevels;
    maxDirtyLevel = 0;
    fullSweepPending = true;

    cycleCount = 0;
    combStale = true;
}

void
Simulator::markStepDirty(uint32_t stepIdx)
{
    if (stepDirty[stepIdx])
        return;
    stepDirty[stepIdx] = 1;
    uint32_t lvl = stepLevel[stepIdx];
    levelBuckets[lvl].push_back(stepIdx);
    minDirtyLevel = std::min(minDirtyLevel, lvl);
    maxDirtyLevel = std::max(maxDirtyLevel, lvl);
}

void
Simulator::markNodeChanged(NodeId node)
{
    for (uint32_t i = fanoutBegin[node]; i < fanoutBegin[node + 1]; ++i)
        markStepDirty(fanoutSteps[i]);
}

void
Simulator::markMemChanged(size_t memIdx)
{
    for (uint32_t stepIdx : memReadSteps[memIdx])
        markStepDirty(stepIdx);
}

void
Simulator::updateNode(NodeId node, uint64_t value)
{
    if (simMode == SimulatorMode::ActivityDriven) {
        if (values[node] == value)
            return;
        values[node] = value;
        markNodeChanged(node);
    } else {
        values[node] = value;
    }
    combStale = true;
}

void
Simulator::poke(NodeId input, uint64_t value)
{
    const rtl::Node &n = dsn.node(input);
    if (n.op != Op::Input)
        panic("poke target '%s' is not an input", n.name.c_str());
    updateNode(input, truncate(value, n.width));
}

void
Simulator::poke(const std::string &name, uint64_t value)
{
    NodeId id = dsn.findInput(name);
    if (id == kNoNode)
        fatal("no input named '%s'", name.c_str());
    poke(id, value);
}

uint64_t
Simulator::peek(NodeId node)
{
    if (combStale)
        evalComb();
    return values[node];
}

uint64_t
Simulator::peek(const std::string &name)
{
    int idx = dsn.findOutput(name);
    if (idx < 0)
        fatal("no output named '%s'", name.c_str());
    return peek(dsn.outputs()[idx].node);
}

uint64_t
Simulator::evalStep(const Step &s) const
{
    const uint64_t *v = values.data();
    switch (s.op) {
      case Op::Not:
        return truncate(~v[s.a], s.width);
      case Op::Neg:
        return truncate(0 - v[s.a], s.width);
      case Op::RedOr:
        return v[s.a] != 0;
      case Op::RedAnd:
        return v[s.a] == bitMask(s.widthA);
      case Op::RedXor:
        return static_cast<uint64_t>(__builtin_popcountll(v[s.a])) & 1;
      case Op::SExt:
        return truncate(signExtend(v[s.a], s.widthA), s.width);
      case Op::Pad:
        return v[s.a];
      case Op::Bits:
        return bits(v[s.a], static_cast<unsigned>(s.imm >> 8),
                    static_cast<unsigned>(s.imm & 0xff));
      case Op::Add:
        return truncate(v[s.a] + v[s.b], s.width);
      case Op::Sub:
        return truncate(v[s.a] - v[s.b], s.width);
      case Op::Mul:
        return truncate(v[s.a] * v[s.b], s.width);
      case Op::Divu:
        return v[s.b] == 0 ? bitMask(s.width) : v[s.a] / v[s.b];
      case Op::Remu:
        return v[s.b] == 0 ? v[s.a] : v[s.a] % v[s.b];
      case Op::And:
        return v[s.a] & v[s.b];
      case Op::Or:
        return v[s.a] | v[s.b];
      case Op::Xor:
        return v[s.a] ^ v[s.b];
      case Op::Shl: {
        // Dynamic amounts are unbounded 64-bit values: clamp before the
        // C++ shift (<< by >= 64 is undefined behaviour).
        uint64_t amt = v[s.b];
        if (amt >= s.width)
            return 0;
        return truncate(v[s.a] << amt, s.width);
      }
      case Op::Shru: {
        uint64_t amt = v[s.b];
        if (amt >= s.width)
            return 0;
        return v[s.a] >> amt;
      }
      case Op::Sra: {
        // Shifting by >= width fills with the sign bit; cap the actual
        // C++ shift at 63 (bit 63 of the sign-extended operand IS the
        // sign, so >> 63 realizes the full fill without UB).
        uint64_t amt = std::min<uint64_t>(v[s.b], s.width);
        if (amt > 63)
            amt = 63;
        int64_t x = static_cast<int64_t>(signExtend(v[s.a], s.widthA));
        return truncate(static_cast<uint64_t>(x >> amt), s.width);
      }
      case Op::Eq:
        return v[s.a] == v[s.b];
      case Op::Ne:
        return v[s.a] != v[s.b];
      case Op::Ltu:
        return v[s.a] < v[s.b];
      case Op::Lts:
        return static_cast<int64_t>(signExtend(v[s.a], s.widthA)) <
               static_cast<int64_t>(signExtend(v[s.b], s.widthB));
      case Op::Cat:
        return truncate((v[s.a] << s.widthB) | v[s.b], s.width);
      case Op::Mux:
        return v[s.a] & 1 ? v[s.b] : v[s.c];
      case Op::MemRead: {
        uint64_t addr = v[s.b];
        const auto &contents = mems[s.a];
        return addr < contents.size() ? contents[addr] : 0;
      }
      default:
        panic("unexpected op %s in comb schedule", rtl::opName(s.op));
    }
    return 0;
}

void
Simulator::evalCombFull()
{
    for (const Step &s : program)
        values[s.dst] = evalStep(s);
    evalCount += program.size();
    combStale = false;
}

void
Simulator::evalCombActivity()
{
    if (fullSweepPending) {
        // First sweep after reset: everything is potentially stale.
        evalCombFull();
        for (auto &bucket : levelBuckets)
            bucket.clear();
        std::fill(stepDirty.begin(), stepDirty.end(), 0);
        minDirtyLevel = numLevels;
        maxDirtyLevel = 0;
        fullSweepPending = false;
        return;
    }

    uint64_t evaluated = 0;
    // Drain dirty steps level by level. Marks made while draining always
    // target strictly higher levels (a combinational user is deeper than
    // its producer), so a single ascending pass settles the graph.
    for (uint32_t lvl = minDirtyLevel;
         lvl < numLevels && lvl <= maxDirtyLevel; ++lvl) {
        std::vector<uint32_t> &bucket = levelBuckets[lvl];
        if (bucket.empty())
            continue;
        // Schedule order within the level == ascending step index; this
        // keeps the evaluation sequence a sub-sequence of the Full sweep.
        std::sort(bucket.begin(), bucket.end());
        for (uint32_t stepIdx : bucket) {
            stepDirty[stepIdx] = 0;
            const Step &s = program[stepIdx];
            uint64_t r = evalStep(s);
            ++evaluated;
            if (values[s.dst] != r) {
                values[s.dst] = r;
                markNodeChanged(s.dst);
            }
        }
        bucket.clear();
    }
    minDirtyLevel = numLevels;
    maxDirtyLevel = 0;
    evalCount += evaluated;
    skipCount += program.size() - evaluated;
    combStale = false;
}

void
Simulator::evalComb()
{
    if (simMode == SimulatorMode::ActivityDriven)
        evalCombActivity();
    else
        evalCombFull();
}

void
Simulator::commitEdge()
{
    const auto &regs = dsn.regs();
    for (size_t i = 0; i < regs.size(); ++i) {
        const rtl::RegInfo &r = regs[i];
        bool en = r.en == kNoNode || (values[r.en] & 1);
        regPending[i] = en ? values[r.next] : values[r.node];
    }

    // Sync read ports latch old contents (read-before-write).
    size_t flat = 0;
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads) {
            bool en = p.en == kNoNode || (values[p.en] & 1);
            if (en) {
                uint64_t addr = values[p.addr];
                readPending[flat] =
                    addr < m.depth ? mems[mi][addr] : 0;
            } else {
                readPending[flat] = values[p.data];
            }
            ++flat;
        }
    }

    // Memory writes (last port wins on a collision).
    bool activity = simMode == SimulatorMode::ActivityDriven;
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (const rtl::MemWritePort &p : m.writes) {
            bool en = p.en == kNoNode || (values[p.en] & 1);
            if (!en)
                continue;
            uint64_t addr = values[p.addr];
            if (addr < m.depth && mems[mi][addr] != values[p.data]) {
                mems[mi][addr] = values[p.data];
                if (activity)
                    markMemChanged(mi);
            }
        }
    }

    for (size_t i = 0; i < regs.size(); ++i)
        updateNode(regs[i].node, regPending[i]);
    flat = 0;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads)
            updateNode(p.data, readPending[flat++]);
    }

    ++cycleCount;
    combStale = true;
}

void
Simulator::step(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i) {
        if (combStale)
            evalComb();
        commitEdge();
    }
}

uint64_t
Simulator::regValue(size_t regIdx) const
{
    if (regIdx >= dsn.regs().size())
        panic("regValue index %zu out of range (design has %zu registers)",
              regIdx, dsn.regs().size());
    return values[dsn.regs()[regIdx].node];
}

void
Simulator::setRegValue(size_t regIdx, uint64_t value)
{
    if (regIdx >= dsn.regs().size())
        panic("setRegValue index %zu out of range (design has %zu "
              "registers)", regIdx, dsn.regs().size());
    const rtl::RegInfo &r = dsn.regs()[regIdx];
    updateNode(r.node, truncate(value, dsn.node(r.node).width));
}

uint64_t
Simulator::memWord(size_t memIdx, uint64_t addr) const
{
    if (memIdx >= mems.size())
        panic("memWord memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    const auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("memWord address %llu out of range", (unsigned long long)addr);
    return contents[addr];
}

void
Simulator::setMemWord(size_t memIdx, uint64_t addr, uint64_t value)
{
    if (memIdx >= mems.size())
        panic("setMemWord memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("setMemWord address %llu out of range",
              (unsigned long long)addr);
    uint64_t nv = truncate(value, dsn.mems()[memIdx].width);
    if (contents[addr] != nv) {
        contents[addr] = nv;
        if (simMode == SimulatorMode::ActivityDriven)
            markMemChanged(memIdx);
    }
    combStale = true;
}

uint64_t
Simulator::syncReadData(size_t memIdx, size_t port) const
{
    if (memIdx >= dsn.mems().size() ||
        port >= dsn.mems()[memIdx].reads.size())
        panic("syncReadData mem %zu port %zu out of range", memIdx, port);
    return values[dsn.mems()[memIdx].reads[port].data];
}

void
Simulator::setSyncReadData(size_t memIdx, size_t port, uint64_t value)
{
    if (memIdx >= dsn.mems().size() ||
        port >= dsn.mems()[memIdx].reads.size())
        panic("setSyncReadData mem %zu port %zu out of range", memIdx,
              port);
    const rtl::MemInfo &m = dsn.mems()[memIdx];
    updateNode(m.reads[port].data, truncate(value, m.width));
}

void
Simulator::loadMem(size_t memIdx, uint64_t base,
                   const std::vector<uint64_t> &words)
{
    if (memIdx >= mems.size())
        panic("loadMem memory index %zu out of range (design has %zu "
              "memories)", memIdx, mems.size());
    // Guard the addition against wrap-around before the range check.
    if (base > mems[memIdx].size() ||
        words.size() > mems[memIdx].size() - base)
        fatal("loadMem overflows memory '%s'",
              dsn.mems()[memIdx].name.c_str());
    bool changed = false;
    for (size_t i = 0; i < words.size(); ++i) {
        uint64_t nv = truncate(words[i], dsn.mems()[memIdx].width);
        if (mems[memIdx][base + i] != nv) {
            mems[memIdx][base + i] = nv;
            changed = true;
        }
    }
    if (changed && simMode == SimulatorMode::ActivityDriven)
        markMemChanged(memIdx);
    combStale = true;
}

} // namespace sim
} // namespace strober
