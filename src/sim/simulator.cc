#include "sim/simulator.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace sim {

using rtl::Op;
using rtl::NodeId;
using rtl::kNoNode;

Simulator::Simulator(const rtl::Design &design) : dsn(design)
{
    compile();
    reset();
}

void
Simulator::compile()
{
    std::vector<NodeId> order = rtl::levelize(dsn);
    program.clear();
    program.reserve(order.size());

    for (NodeId id : order) {
        const rtl::Node &n = dsn.node(id);
        switch (n.op) {
          case Op::Input:
          case Op::Const:
          case Op::Reg:
            continue; // leaves: poked, preset, or state
          case Op::MemRead: {
            uint32_t memIdx = n.aux >> 16;
            uint32_t portIdx = n.aux & 0xffff;
            const rtl::MemInfo &m = dsn.mems()[memIdx];
            if (m.syncRead)
                continue; // registered read data is state
            Step s{};
            s.op = Op::MemRead;
            s.width = n.width;
            s.dst = id;
            s.a = memIdx;
            s.b = m.reads[portIdx].addr;
            program.push_back(s);
            continue;
          }
          default:
            break;
        }
        Step s{};
        s.op = n.op;
        s.width = n.width;
        s.dst = id;
        s.imm = n.imm;
        unsigned arity = rtl::opArity(n.op);
        if (arity >= 1) {
            s.a = n.args[0];
            s.widthA = static_cast<uint8_t>(dsn.node(n.args[0]).width);
        }
        if (arity >= 2) {
            s.b = n.args[1];
            s.widthB = static_cast<uint8_t>(dsn.node(n.args[1]).width);
        }
        if (arity >= 3)
            s.c = n.args[2];
        program.push_back(s);
    }
}

void
Simulator::reset()
{
    values.assign(dsn.numNodes(), 0);
    for (NodeId id = 0; id < dsn.numNodes(); ++id) {
        const rtl::Node &n = dsn.node(id);
        if (n.op == Op::Const)
            values[id] = truncate(n.imm, n.width);
    }
    for (const rtl::RegInfo &r : dsn.regs())
        values[r.node] = r.init;

    mems.clear();
    mems.reserve(dsn.mems().size());
    for (const rtl::MemInfo &m : dsn.mems()) {
        mems.emplace_back(m.depth, 0);
        for (size_t i = 0; i < m.init.size(); ++i)
            mems.back()[i] = m.init[i];
    }

    regPending.assign(dsn.regs().size(), 0);
    size_t syncPorts = 0;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (m.syncRead)
            syncPorts += m.reads.size();
    }
    readPending.assign(syncPorts, 0);

    cycleCount = 0;
    combStale = true;
}

void
Simulator::poke(NodeId input, uint64_t value)
{
    const rtl::Node &n = dsn.node(input);
    if (n.op != Op::Input)
        panic("poke target '%s' is not an input", n.name.c_str());
    values[input] = truncate(value, n.width);
    combStale = true;
}

void
Simulator::poke(const std::string &name, uint64_t value)
{
    NodeId id = dsn.findInput(name);
    if (id == kNoNode)
        fatal("no input named '%s'", name.c_str());
    poke(id, value);
}

uint64_t
Simulator::peek(NodeId node)
{
    if (combStale)
        evalComb();
    return values[node];
}

uint64_t
Simulator::peek(const std::string &name)
{
    int idx = dsn.findOutput(name);
    if (idx < 0)
        fatal("no output named '%s'", name.c_str());
    return peek(dsn.outputs()[idx].node);
}

void
Simulator::evalComb()
{
    uint64_t *v = values.data();
    for (const Step &s : program) {
        uint64_t r = 0;
        switch (s.op) {
          case Op::Not:
            r = truncate(~v[s.a], s.width);
            break;
          case Op::Neg:
            r = truncate(0 - v[s.a], s.width);
            break;
          case Op::RedOr:
            r = v[s.a] != 0;
            break;
          case Op::RedAnd:
            r = v[s.a] == bitMask(s.widthA);
            break;
          case Op::RedXor:
            r = static_cast<uint64_t>(__builtin_popcountll(v[s.a])) & 1;
            break;
          case Op::SExt:
            r = truncate(signExtend(v[s.a], s.widthA), s.width);
            break;
          case Op::Pad:
            r = v[s.a];
            break;
          case Op::Bits:
            r = bits(v[s.a], static_cast<unsigned>(s.imm >> 8),
                     static_cast<unsigned>(s.imm & 0xff));
            break;
          case Op::Add:
            r = truncate(v[s.a] + v[s.b], s.width);
            break;
          case Op::Sub:
            r = truncate(v[s.a] - v[s.b], s.width);
            break;
          case Op::Mul:
            r = truncate(v[s.a] * v[s.b], s.width);
            break;
          case Op::Divu:
            r = v[s.b] == 0 ? bitMask(s.width) : v[s.a] / v[s.b];
            break;
          case Op::Remu:
            r = v[s.b] == 0 ? v[s.a] : v[s.a] % v[s.b];
            break;
          case Op::And:
            r = v[s.a] & v[s.b];
            break;
          case Op::Or:
            r = v[s.a] | v[s.b];
            break;
          case Op::Xor:
            r = v[s.a] ^ v[s.b];
            break;
          case Op::Shl:
            r = v[s.b] >= s.width ? 0 : truncate(v[s.a] << v[s.b], s.width);
            break;
          case Op::Shru:
            r = v[s.b] >= s.width ? 0 : v[s.a] >> v[s.b];
            break;
          case Op::Sra: {
            uint64_t amt = std::min<uint64_t>(v[s.b], s.width);
            int64_t x = static_cast<int64_t>(signExtend(v[s.a], s.widthA));
            if (amt >= 64)
                amt = 63;
            r = truncate(static_cast<uint64_t>(x >> amt), s.width);
            break;
          }
          case Op::Eq:
            r = v[s.a] == v[s.b];
            break;
          case Op::Ne:
            r = v[s.a] != v[s.b];
            break;
          case Op::Ltu:
            r = v[s.a] < v[s.b];
            break;
          case Op::Lts:
            r = static_cast<int64_t>(signExtend(v[s.a], s.widthA)) <
                static_cast<int64_t>(signExtend(v[s.b], s.widthB));
            break;
          case Op::Cat:
            r = truncate((v[s.a] << s.widthB) | v[s.b], s.width);
            break;
          case Op::Mux:
            r = v[s.a] & 1 ? v[s.b] : v[s.c];
            break;
          case Op::MemRead: {
            uint64_t addr = v[s.b];
            const auto &contents = mems[s.a];
            r = addr < contents.size() ? contents[addr] : 0;
            break;
          }
          default:
            panic("unexpected op %s in comb schedule", rtl::opName(s.op));
        }
        v[s.dst] = r;
    }
    evalCount += program.size();
    combStale = false;
}

void
Simulator::commitEdge()
{
    const auto &regs = dsn.regs();
    for (size_t i = 0; i < regs.size(); ++i) {
        const rtl::RegInfo &r = regs[i];
        bool en = r.en == kNoNode || (values[r.en] & 1);
        regPending[i] = en ? values[r.next] : values[r.node];
    }

    // Sync read ports latch old contents (read-before-write).
    size_t flat = 0;
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads) {
            bool en = p.en == kNoNode || (values[p.en] & 1);
            if (en) {
                uint64_t addr = values[p.addr];
                readPending[flat] =
                    addr < m.depth ? mems[mi][addr] : 0;
            } else {
                readPending[flat] = values[p.data];
            }
            ++flat;
        }
    }

    // Memory writes (last port wins on a collision).
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (const rtl::MemWritePort &p : m.writes) {
            bool en = p.en == kNoNode || (values[p.en] & 1);
            if (!en)
                continue;
            uint64_t addr = values[p.addr];
            if (addr < m.depth)
                mems[mi][addr] = values[p.data];
        }
    }

    for (size_t i = 0; i < regs.size(); ++i)
        values[regs[i].node] = regPending[i];
    flat = 0;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (!m.syncRead)
            continue;
        for (const rtl::MemReadPort &p : m.reads)
            values[p.data] = readPending[flat++];
    }

    ++cycleCount;
    combStale = true;
}

void
Simulator::step(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i) {
        if (combStale)
            evalComb();
        commitEdge();
    }
}

uint64_t
Simulator::regValue(size_t regIdx) const
{
    return values[dsn.regs()[regIdx].node];
}

void
Simulator::setRegValue(size_t regIdx, uint64_t value)
{
    const rtl::RegInfo &r = dsn.regs()[regIdx];
    values[r.node] = truncate(value, dsn.node(r.node).width);
    combStale = true;
}

uint64_t
Simulator::memWord(size_t memIdx, uint64_t addr) const
{
    const auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("memWord address %llu out of range", (unsigned long long)addr);
    return contents[addr];
}

void
Simulator::setMemWord(size_t memIdx, uint64_t addr, uint64_t value)
{
    auto &contents = mems[memIdx];
    if (addr >= contents.size())
        panic("setMemWord address %llu out of range",
              (unsigned long long)addr);
    contents[addr] = truncate(value, dsn.mems()[memIdx].width);
    combStale = true;
}

uint64_t
Simulator::syncReadData(size_t memIdx, size_t port) const
{
    return values[dsn.mems()[memIdx].reads[port].data];
}

void
Simulator::setSyncReadData(size_t memIdx, size_t port, uint64_t value)
{
    const rtl::MemInfo &m = dsn.mems()[memIdx];
    values[m.reads[port].data] = truncate(value, m.width);
    combStale = true;
}

void
Simulator::loadMem(size_t memIdx, uint64_t base,
                   const std::vector<uint64_t> &words)
{
    if (base + words.size() > mems[memIdx].size())
        fatal("loadMem overflows memory '%s'",
              dsn.mems()[memIdx].name.c_str());
    for (size_t i = 0; i < words.size(); ++i)
        mems[memIdx][base + i] =
            truncate(words[i], dsn.mems()[memIdx].width);
    combStale = true;
}

} // namespace sim
} // namespace strober
