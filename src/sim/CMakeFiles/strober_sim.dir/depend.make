# Empty dependencies file for strober_sim.
# This may be replaced when dependencies are built.
