file(REMOVE_RECURSE
  "CMakeFiles/strober_sim.dir/simulator.cc.o"
  "CMakeFiles/strober_sim.dir/simulator.cc.o.d"
  "CMakeFiles/strober_sim.dir/vcd.cc.o"
  "CMakeFiles/strober_sim.dir/vcd.cc.o.d"
  "libstrober_sim.a"
  "libstrober_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
