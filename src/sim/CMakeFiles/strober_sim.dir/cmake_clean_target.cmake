file(REMOVE_RECURSE
  "libstrober_sim.a"
)
