#include "sim/worker_pool.h"

#include <algorithm>

#include "util/env.h"

namespace strober {
namespace sim {

namespace {

std::atomic<unsigned> g_simThreadsOverride{0};

} // namespace

unsigned
simThreads()
{
    unsigned o = g_simThreadsOverride.load(std::memory_order_relaxed);
    if (o != 0)
        return o;
    unsigned long env = util::envULong("STROBER_SIM_THREADS");
    if (env >= 1)
        return static_cast<unsigned>(std::min(env, 256ul));
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    return std::min(hw, 8u);
}

void
setSimThreads(unsigned n)
{
    g_simThreadsOverride.store(std::min(n, 256u),
                               std::memory_order_relaxed);
}

uint32_t
parallelDispatchGrain(unsigned poolThreads)
{
    bool present = false;
    unsigned long env =
        util::envULong("STROBER_SIM_PARALLEL_GRAIN", 0, &present);
    if (present)
        return static_cast<uint32_t>(std::min(env, 0xfffffffful));
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (poolThreads > hw)
        return 0xffffffffu; // oversubscribed: inline unless forced
    return 512;
}

WorkerPool::WorkerPool(unsigned threads)
{
    unsigned extra = threads > 1 ? threads - 1 : 0;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    spinLimit = threads <= hw ? 1u << 14 : 0;
    workers.reserve(extra);
    for (unsigned i = 0; i < extra; ++i)
        workers.emplace_back([this] { workerBody(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(wakeMutex);
        stopping = true;
    }
    wakeCv.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
WorkerPool::drain(uint32_t gen)
{
    for (;;) {
        uint64_t t = ticket.load(std::memory_order_acquire);
        if (static_cast<uint32_t>(t >> 32) != gen)
            return; // another batch started (or none yet): not ours
        uint32_t idx = static_cast<uint32_t>(t);
        if (idx >= taskCount.load(std::memory_order_relaxed))
            return; // batch fully claimed (or index saturated post-run)
        if (!ticket.compare_exchange_weak(t, t + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed))
            continue; // lost the race; retry on the fresh value
        (*taskFn)(idx);
        completed.fetch_add(1, std::memory_order_release);
    }
}

void
WorkerPool::workerBody()
{
    uint32_t lastGen = 0;
    for (;;) {
        // Spin briefly for the next batch before parking: per-level
        // dispatch arrives in bursts many times per simulated cycle.
        uint32_t gen = lastGen;
        for (unsigned spin = 0; spin < spinLimit; ++spin) {
            uint64_t t = ticket.load(std::memory_order_acquire);
            if (static_cast<uint32_t>(t >> 32) != lastGen) {
                gen = static_cast<uint32_t>(t >> 32);
                break;
            }
        }
        if (gen == lastGen) {
            std::unique_lock<std::mutex> lk(wakeMutex);
            wakeCv.wait(lk,
                        [&] { return stopping || wakeGen != lastGen; });
            if (stopping)
                return;
            gen = wakeGen;
        }
        lastGen = gen;
        drain(gen);
    }
}

void
WorkerPool::run(uint32_t count, const std::function<void(uint32_t)> &fn)
{
    if (count == 0)
        return;
    if (workers.empty()) {
        for (uint32_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Publish the batch, then the ticket (release): a worker's acquire
    // load of the new generation makes taskFn/taskCount visible.
    taskFn = &fn;
    taskCount.store(count, std::memory_order_relaxed);
    completed.store(0, std::memory_order_relaxed);
    // Only run() ever advances wakeGen, and one run() executes at a
    // time, so reading it unguarded here is race-free. The ticket must
    // carry the new generation *before* wakeGen announces it: a worker
    // waking on wakeGen would otherwise find a stale ticket, drain
    // nothing, and park again with lastGen already advanced.
    uint32_t gen = wakeGen + 1; // wraps mod 2^32 with the packed ticket
    ticket.store(static_cast<uint64_t>(gen) << 32,
                 std::memory_order_release);
    {
        std::lock_guard<std::mutex> lk(wakeMutex);
        wakeGen = gen;
    }
    wakeCv.notify_all();

    drain(gen);

    // All tasks are claimed; wait for in-flight ones to finish. The
    // caller drained alongside the workers, so this wait is short.
    while (completed.load(std::memory_order_acquire) != count)
        std::this_thread::yield();

    // Saturate the index half before the next run() touches
    // taskFn/taskCount: a worker still holding a ticket value loaded
    // during this batch must not be able to CAS it once the next
    // batch's (possibly larger) taskCount is published, or it would
    // claim an index the new generation also runs and bump `completed`
    // past the next batch's count. With the index at UINT32_MAX every
    // stale CAS fails and the reload exits on idx >= taskCount.
    ticket.store((static_cast<uint64_t>(gen) << 32) | 0xffffffffu,
                 std::memory_order_release);
    taskFn = nullptr;
}

} // namespace sim
} // namespace strober
