/**
 * @file
 * Levelized cycle-exact interpreter for rtl::Design — the repository's
 * "fast simulator". In the paper this role is played by the FPGA-hosted
 * FAME1 simulator; here it is a compiled evaluation schedule over the
 * word-level IR. What matters for the methodology is that it is
 * cycle-exact and orders of magnitude faster than the gate-level
 * simulator (src/gate), which it is: one word-level node evaluation here
 * replaces tens-to-hundreds of gate evaluations there.
 *
 * Evaluation model per cycle:
 *   1. poke() input values;
 *   2. evalComb() propagates through all combinational nodes in a
 *      precomputed topological order;
 *   3. step() commits the clock edge: registers latch their next values,
 *      sync-read ports latch old memory contents, write ports update
 *      memories (read-before-write; the last write port wins on address
 *      collisions).
 */

#ifndef STROBER_SIM_SIMULATOR_H
#define STROBER_SIM_SIMULATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace sim {

/** Cycle-exact interpreter over one rtl::Design. */
class Simulator
{
  public:
    explicit Simulator(const rtl::Design &design);

    const rtl::Design &design() const { return dsn; }

    /** Reset state: registers to init values, memories to zero. */
    void reset();

    /** Drive a top-level input for the current cycle. */
    void poke(rtl::NodeId input, uint64_t value);
    /** Drive a top-level input by name (fatal if absent). */
    void poke(const std::string &name, uint64_t value);

    /** Observe any node's current value (evaluates comb logic if stale). */
    uint64_t peek(rtl::NodeId node);
    /** Observe a top-level output by name (fatal if absent). */
    uint64_t peek(const std::string &name);

    /** Propagate combinational logic for the current input values. */
    void evalComb();

    /** Advance @p n clock edges (each: evalComb if stale, then commit). */
    void step(uint64_t n = 1);

    /** Cycles executed since construction/reset. */
    uint64_t cycle() const { return cycleCount; }

    /** Node evaluations executed (for simulation-rate reporting). */
    uint64_t nodeEvals() const { return evalCount; }

    // --- Direct state access (scan chains, snapshot load, testing) -----
    uint64_t regValue(size_t regIdx) const;
    void setRegValue(size_t regIdx, uint64_t value);
    uint64_t memWord(size_t memIdx, uint64_t addr) const;
    void setMemWord(size_t memIdx, uint64_t addr, uint64_t value);
    /** Registered read data of sync memory port (state). */
    uint64_t syncReadData(size_t memIdx, size_t port) const;
    void setSyncReadData(size_t memIdx, size_t port, uint64_t value);

    /** Bulk-load a memory starting at @p base (fatal on overflow). */
    void loadMem(size_t memIdx, uint64_t base,
                 const std::vector<uint64_t> &words);

  private:
    /** One compiled combinational operation. */
    struct Step
    {
        rtl::Op op;
        uint16_t width;
        uint8_t widthA;      //!< operand widths (for Sra/Lts/Cat/reduce)
        uint8_t widthB;
        uint32_t dst;
        uint32_t a, b, c;
        uint64_t imm;
    };

    const rtl::Design &dsn;
    std::vector<uint64_t> values;             //!< per-node current value
    std::vector<std::vector<uint64_t>> mems;  //!< memory contents
    std::vector<Step> program;                //!< comb schedule
    std::vector<uint64_t> regPending;
    std::vector<uint64_t> readPending;        //!< sync read data pending
    uint64_t cycleCount = 0;
    uint64_t evalCount = 0;
    bool combStale = true;

    void compile();
    void commitEdge();
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_SIMULATOR_H
