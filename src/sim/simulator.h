/**
 * @file
 * Levelized cycle-exact interpreter for rtl::Design — the repository's
 * "fast simulator". In the paper this role is played by the FPGA-hosted
 * FAME1 simulator; here it is a compiled evaluation schedule over the
 * word-level IR. What matters for the methodology is that it is
 * cycle-exact and orders of magnitude faster than the gate-level
 * simulator (src/gate), which it is: one word-level node evaluation here
 * replaces tens-to-hundreds of gate evaluations there.
 *
 * Evaluation model per cycle:
 *   1. poke() input values;
 *   2. evalComb() propagates through the combinational nodes in a
 *      precomputed level-ordered topological schedule;
 *   3. step() commits the clock edge: registers latch their next values,
 *      sync-read ports latch old memory contents, write ports update
 *      memories (read-before-write; the last write port wins on address
 *      collisions).
 *
 * Two evaluation modes (SimulatorMode) are available:
 *   - Full: the naive reference sweep — every combinational node is
 *     re-evaluated on every evalComb().
 *   - ActivityDriven: change-propagation evaluation. A dirty set (seeded
 *     by poke(), register commits, sync-memory latches and memory
 *     writes) is propagated level by level through the topological
 *     schedule; only nodes whose inputs actually changed value are
 *     re-evaluated. The per-level dirty buckets are drained in schedule
 *     order, so the evaluation order is a sub-sequence of the Full
 *     sweep and the mode is observationally equivalent to Full (see
 *     tests/test_differential.cc, which locks this invariant down).
 */

#ifndef STROBER_SIM_SIMULATOR_H
#define STROBER_SIM_SIMULATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace sim {

/** Combinational evaluation strategy of a Simulator. */
enum class SimulatorMode : uint8_t {
    Full,           //!< re-evaluate every node every sweep (reference)
    ActivityDriven, //!< re-evaluate only nodes whose inputs changed
};

/** @return "full" or "activity" (for reports and benches). */
const char *simulatorModeName(SimulatorMode mode);

/** Cycle-exact interpreter over one rtl::Design. */
class Simulator
{
  public:
    explicit Simulator(const rtl::Design &design,
                       SimulatorMode mode = SimulatorMode::Full);

    const rtl::Design &design() const { return dsn; }
    SimulatorMode mode() const { return simMode; }

    /** Reset state: registers to init values, memories to zero. */
    void reset();

    /** Drive a top-level input for the current cycle. */
    void poke(rtl::NodeId input, uint64_t value);
    /** Drive a top-level input by name (fatal if absent). */
    void poke(const std::string &name, uint64_t value);

    /** Observe any node's current value (evaluates comb logic if stale). */
    uint64_t peek(rtl::NodeId node);
    /** Observe a top-level output by name (fatal if absent). */
    uint64_t peek(const std::string &name);

    /** Propagate combinational logic for the current input values. */
    void evalComb();

    /** Advance @p n clock edges (each: evalComb if stale, then commit). */
    void step(uint64_t n = 1);

    /** Cycles executed since construction/reset. */
    uint64_t cycle() const { return cycleCount; }

    /** Node evaluations executed (for simulation-rate reporting). */
    uint64_t nodeEvals() const { return evalCount; }

    /**
     * Node evaluations skipped by ActivityDriven sweeps (a Full-mode
     * sweep would have executed them). Always 0 in Full mode.
     */
    uint64_t nodeEvalsSkipped() const { return skipCount; }

    /**
     * Fraction of scheduled node evaluations actually executed, averaged
     * over all sweeps so far: evals / (evals + skipped). 1.0 in Full
     * mode (and before any sweep has run).
     */
    double activityFactor() const
    {
        uint64_t total = evalCount + skipCount;
        return total ? static_cast<double>(evalCount) /
                           static_cast<double>(total)
                     : 1.0;
    }

    // --- Direct state access (scan chains, snapshot load, testing) -----
    // Index arguments are checked; out-of-range indices are fatal.
    uint64_t regValue(size_t regIdx) const;
    void setRegValue(size_t regIdx, uint64_t value);
    uint64_t memWord(size_t memIdx, uint64_t addr) const;
    void setMemWord(size_t memIdx, uint64_t addr, uint64_t value);
    /** Registered read data of sync memory port (state). */
    uint64_t syncReadData(size_t memIdx, size_t port) const;
    void setSyncReadData(size_t memIdx, size_t port, uint64_t value);

    /** Bulk-load a memory starting at @p base (fatal on overflow). */
    void loadMem(size_t memIdx, uint64_t base,
                 const std::vector<uint64_t> &words);

  private:
    /** One compiled combinational operation. */
    struct Step
    {
        rtl::Op op;
        uint16_t width;
        uint8_t widthA;      //!< operand widths (for Sra/Lts/Cat/reduce)
        uint8_t widthB;
        uint32_t dst;
        uint32_t a, b, c;
        uint64_t imm;
    };

    static constexpr uint32_t kNoStep = UINT32_MAX;

    const rtl::Design &dsn;
    SimulatorMode simMode;
    std::vector<uint64_t> values;             //!< per-node current value
    std::vector<std::vector<uint64_t>> mems;  //!< memory contents
    std::vector<Step> program;                //!< comb schedule (level order)
    std::vector<uint64_t> regPending;
    std::vector<uint64_t> readPending;        //!< sync read data pending
    uint64_t cycleCount = 0;
    uint64_t evalCount = 0;
    uint64_t skipCount = 0;
    bool combStale = true;

    // --- ActivityDriven machinery (unused in Full mode) ----------------
    std::vector<uint32_t> stepLevel;          //!< per step: comb level
    std::vector<uint32_t> fanoutBegin;        //!< per node: CSR into ...
    std::vector<uint32_t> fanoutSteps;        //!< ... consumer step indices
    std::vector<std::vector<uint32_t>> memReadSteps; //!< async reads per mem
    std::vector<uint8_t> stepDirty;
    std::vector<std::vector<uint32_t>> levelBuckets;
    uint32_t numLevels = 0;
    uint32_t minDirtyLevel = 0;               //!< == numLevels when clean
    uint32_t maxDirtyLevel = 0;
    bool fullSweepPending = true;             //!< first sweep after reset

    void compile();
    void commitEdge();
    uint64_t evalStep(const Step &s) const;
    void evalCombFull();
    void evalCombActivity();
    void markStepDirty(uint32_t stepIdx);
    void markNodeChanged(rtl::NodeId node);
    void markMemChanged(size_t memIdx);
    /** Store @p value into @p node, tracking dirtiness per mode. */
    void updateNode(rtl::NodeId node, uint64_t value);
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_SIMULATOR_H
