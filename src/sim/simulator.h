/**
 * @file
 * Cycle-exact fast simulator for rtl::Design. In the paper this role
 * is played by the FPGA-hosted FAME1 simulator; here it is an
 * optimized evaluation schedule (rtl::buildEvalPlan: constant
 * folding, CSE, dead-node sweep, dense slot renumbering) executed by
 * one of three backends. What matters for the methodology is that it
 * is cycle-exact and orders of magnitude faster than the gate-level
 * simulator (src/gate), which it is: one word-level step here
 * replaces tens-to-hundreds of gate evaluations there.
 *
 * Evaluation model per cycle:
 *   1. poke() input values;
 *   2. evalComb() propagates through the hot schedule;
 *   3. step() commits the clock edge: registers latch their next
 *      values, sync-read ports latch old memory contents, write ports
 *      update memories (read-before-write; the last write port wins
 *      on address collisions).
 *
 * Backends (sim::Backend), observationally equivalent by construction
 * and locked down by tests/test_differential.cc's three-way lockstep:
 *   - InterpretedFull: the reference interpreter — every hot step is
 *     re-evaluated on every evalComb().
 *   - InterpretedActivity: change-propagation interpretation. A dirty
 *     bitmap over hot-step indices (seeded by poke(), register
 *     commits, sync-memory latches and memory writes) is drained in
 *     one ascending scan; marks made while draining always target
 *     strictly higher step indices (the program is topologically
 *     ordered), so a single pass settles the graph and the evaluation
 *     sequence stays a sub-sequence of the full sweep.
 *   - Compiled: the hot schedule and commit logic lowered to
 *     specialized C++ (src/codegen), built with the host toolchain
 *     and dlopen()ed. When no compiler is available construction
 *     degrades to InterpretedFull with a warning — never an error.
 *   - CompiledParallel: the hot schedule partitioned into balanced,
 *     level-ordered chunks (rtl::partitionEvalPlan), each lowered to a
 *     JIT'd function that evaluates only when one of its input slots
 *     changed — the chunk-granular generalization of the activity
 *     bitmap. Dirty chunks of one level are independent and execute
 *     across a persistent worker pool (sim/worker_pool.h) with a
 *     barrier per level; cross-chunk dirty bits are published with
 *     atomic ORs, so results (and every counter) are bit-identical
 *     whatever the thread count or schedule. Degrades to
 *     InterpretedActivity when no compiler is available.
 *
 * All state access (peek of *any* node, scan-chain capture, snapshot
 * load, VCD) behaves identically across backends: optimized-away
 * nodes resolve through the plan's slot aliases, and dead nodes are
 * refreshed on demand from the cold program.
 */

#ifndef STROBER_SIM_SIMULATOR_H
#define STROBER_SIM_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "rtl/ir.h"
#include "rtl/opt.h"
#include "sim/worker_pool.h"

namespace strober {
namespace sim {

/** Evaluation backend of a Simulator. */
enum class Backend : uint8_t {
    InterpretedFull,     //!< reference interpreter, full sweep
    InterpretedActivity, //!< interpreter, change propagation
    Compiled,            //!< JIT-compiled native code (dlopen)
    CompiledParallel,    //!< JIT'd chunks, activity-gated, worker pool
};

/** @return "full", "activity", "compiled" or "compiled-parallel"
 *  (reports and benches). */
const char *backendName(Backend backend);

/**
 * Parse a --backend= value ("full", "activity", "compiled",
 * "compiled-parallel"; the spelled-out
 * "interpreted-full"/"interpreted-activity" and the short "parallel"
 * also work). @return false when @p text names no backend (@p out
 * untouched).
 */
bool parseBackend(const std::string &text, Backend *out);

/** Cycle-exact fast simulator over one rtl::Design. */
class Simulator
{
  public:
    explicit Simulator(const rtl::Design &design,
                       Backend backend = Backend::InterpretedFull);

    const rtl::Design &design() const { return dsn; }

    /**
     * The backend actually executing (== requestedBackend() except
     * when Compiled degraded to InterpretedFull for lack of a host
     * compiler).
     */
    Backend backend() const { return effective; }
    Backend requestedBackend() const { return requested; }

    /** The optimized evaluation plan this simulator executes. */
    const rtl::EvalPlan &plan() const { return evalPlan; }

    /** Reset state: registers to init values, memories to zero. */
    void reset();

    /** Drive a top-level input for the current cycle. */
    void poke(rtl::NodeId input, uint64_t value);
    /** Drive a top-level input by name (fatal if absent). */
    void poke(const std::string &name, uint64_t value);

    /** Observe any node's current value (evaluates comb logic if stale). */
    uint64_t peek(rtl::NodeId node);
    /** Observe a top-level output by name (fatal if absent). */
    uint64_t peek(const std::string &name);

    /** Propagate combinational logic for the current input values. */
    void evalComb();

    /** Advance @p n clock edges (each: evalComb if stale, then commit). */
    void step(uint64_t n = 1);

    /** Cycles executed since construction/reset. */
    uint64_t cycle() const { return cycleCount; }

    /**
     * Hot-schedule step evaluations executed (simulation-rate
     * reporting). On-demand cold evaluations triggered by peeks of
     * optimized-away nodes are not counted: they are an observation
     * cost, not a per-cycle simulation cost.
     */
    uint64_t nodeEvals() const { return evalCount; }

    /**
     * Step evaluations skipped by InterpretedActivity sweeps (a full
     * sweep would have executed them). Always 0 in the other backends.
     */
    uint64_t nodeEvalsSkipped() const { return skipCount; }

    /**
     * Fraction of scheduled step evaluations actually executed,
     * averaged over all sweeps so far: evals / (evals + skipped). 1.0
     * outside InterpretedActivity (and before any sweep has run).
     */
    double activityFactor() const
    {
        uint64_t total = evalCount + skipCount;
        return total ? static_cast<double>(evalCount) /
                           static_cast<double>(total)
                     : 1.0;
    }

    // --- Direct state access (scan chains, snapshot load, testing) -----
    // Index arguments are checked; out-of-range indices are fatal.
    uint64_t regValue(size_t regIdx) const;
    void setRegValue(size_t regIdx, uint64_t value);
    uint64_t memWord(size_t memIdx, uint64_t addr) const;
    void setMemWord(size_t memIdx, uint64_t addr, uint64_t value);
    /** Registered read data of sync memory port (state). */
    uint64_t syncReadData(size_t memIdx, size_t port) const;
    void setSyncReadData(size_t memIdx, size_t port, uint64_t value);

    /** Bulk-load a memory starting at @p base (fatal on overflow). */
    void loadMem(size_t memIdx, uint64_t base,
                 const std::vector<uint64_t> &words);

  private:
    // Commit-edge operand tables, flattened to slots at construction so
    // the per-cycle loop never chases RegInfo/MemInfo indirections.
    struct RegCommit
    {
        rtl::SlotId dst, next, en; //!< en == kNoSlot: always enabled
    };
    struct SyncReadCommit
    {
        rtl::SlotId data, addr, en;
        uint32_t mem;
        uint64_t depth;
    };
    struct MemWriteCommit
    {
        rtl::SlotId addr, data, en;
        uint32_t mem;
        uint64_t depth;
    };

    const rtl::Design &dsn;
    Backend requested;
    Backend effective;
    rtl::EvalPlan evalPlan;
    std::vector<uint64_t> slots;             //!< flat renumbered values
    std::vector<std::vector<uint64_t>> mems; //!< memory contents
    std::vector<uint64_t *> memPtrs;         //!< per-mem data() (compiled)
    std::vector<RegCommit> regCommits;
    std::vector<SyncReadCommit> syncReadCommits;
    std::vector<MemWriteCommit> memWriteCommits;
    std::vector<uint64_t> regPending;
    std::vector<uint64_t> readPending;
    uint64_t cycleCount = 0;
    uint64_t evalCount = 0;
    uint64_t skipCount = 0;
    bool combStale = true;
    bool coldStale = true;

    // --- InterpretedActivity machinery ---------------------------------
    std::vector<uint64_t> dirtyBits;   //!< bitmap over hot-step indices
    uint32_t minDirtyWord = 0;         //!< == dirtyBits.size() when clean
    uint32_t maxDirtyWord = 0;
    bool fullSweepPending = true;      //!< first sweep after reset
    std::vector<uint32_t> fanoutBegin; //!< per slot: CSR into ...
    std::vector<uint32_t> fanoutSteps; //!< ... consumer hot-step indices
    std::vector<std::vector<uint32_t>> memReadSteps; //!< hot async reads

    // --- Compiled backend ----------------------------------------------
    std::unique_ptr<codegen::CompiledSim> module;

    // --- CompiledParallel machinery ------------------------------------
    rtl::EvalPartition partition;   //!< chunking of the hot program
    std::vector<uint64_t> chunkDirty; //!< bitmap over chunk ids
    std::vector<uint32_t> liveChunks; //!< per-level scratch (no alloc)
    std::unique_ptr<WorkerPool> pool;
    uint32_t dispatchGrain = 0;     //!< min dirty steps to use the pool

    void buildTables();
    void attachCompiledModule();
    void commitEdge();
    uint64_t evalStep(const rtl::EvalStep &s) const;
    void evalCombFull();
    void evalCombActivity();
    void evalCombParallel();
    void evalCold();
    void markStepDirty(uint32_t stepIdx);
    void markSlotChanged(rtl::SlotId slot);
    void markMemChanged(size_t memIdx);
    /** Mark the chunks consuming @p slot dirty (CompiledParallel). */
    void markSlotChunks(rtl::SlotId slot);
    /** Mark the chunks async-reading memory @p memIdx dirty. */
    void markMemChunks(size_t memIdx);
    /** Store @p value into @p slot, tracking dirtiness per backend. */
    void updateSlot(rtl::SlotId slot, uint64_t value);
};

} // namespace sim
} // namespace strober

#endif // STROBER_SIM_SIMULATOR_H
