/**
 * @file
 * The built-in structural lint rules (see the table in lint.h). Every
 * rule is defensive: it must produce sensible diagnostics — never crash —
 * on arbitrarily malformed designs, because accumulating *all* findings
 * on a broken netlist is the whole point of the framework.
 */

#include <algorithm>
#include <sstream>

#include "lint/lint.h"
#include "rtl/analysis.h"
#include "rtl/dataflow.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace lint {

using rtl::Design;
using rtl::kNoNode;
using rtl::MemInfo;
using rtl::MemReadPort;
using rtl::MemWritePort;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;
using rtl::opArity;
using rtl::opName;
using rtl::RegInfo;
using rtl::RetimeRegion;

namespace {

bool
validRef(const Design &d, NodeId id)
{
    return id != kNoNode && id < d.numNodes();
}

/** The node's display path: name, or scope-qualified op as fallback. */
std::string
nodePath(const Design &d, NodeId id)
{
    if (!validRef(d, id))
        return "<dangling>";
    const Node &n = d.node(id);
    if (!n.name.empty())
        return n.name;
    if (!n.scope.empty())
        return n.scope + "/<" + opName(n.op) + ">";
    return std::string("<") + opName(n.op) + ">";
}

unsigned
widthOf(const Design &d, NodeId id)
{
    return validRef(d, id) ? d.node(id).width : 0;
}

/** True when every argument the op consumes is a valid reference. */
bool
argsValid(const Design &d, const Node &n)
{
    unsigned arity = opArity(n.op);
    for (unsigned i = 0; i < arity; ++i) {
        if (!validRef(d, n.args[i]))
            return false;
    }
    return true;
}

// --- dangling-ref ---------------------------------------------------------

class DanglingRefPass : public Pass
{
  public:
    const char *rule() const override { return "dangling-ref"; }
    const char *description() const override
    {
        return "node/state/port references in range, aux bookkeeping "
               "consistent";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            unsigned arity = opArity(n.op);
            for (unsigned i = 0; i < arity; ++i) {
                if (!validRef(d, n.args[i])) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): dangling argument %u reference",
                                     opName(n.op), i));
                }
            }
            switch (n.op) {
              case Op::Input:
                if (n.aux >= d.inputs().size() ||
                    d.inputs()[n.aux] != id) {
                    out.error(rule(), id, nodePath(d, id),
                              "(input): aux does not index this node in "
                              "the input-port list");
                }
                break;
              case Op::Reg:
                if (n.aux >= d.regs().size() ||
                    d.regs()[n.aux].node != id) {
                    out.error(rule(), id, nodePath(d, id),
                              "(reg): aux does not index this node in the "
                              "register table");
                }
                break;
              case Op::MemRead: {
                uint32_t memIdx = n.aux >> 16;
                uint32_t portIdx = n.aux & 0xffff;
                if (memIdx >= d.mems().size() ||
                    portIdx >= d.mems()[memIdx].reads.size() ||
                    d.mems()[memIdx].reads[portIdx].data != id) {
                    out.error(rule(), id, nodePath(d, id),
                              "(memread): aux does not index this node as "
                              "a memory read port");
                }
                break;
              }
              default:
                break;
            }
        }

        for (size_t i = 0; i < d.regs().size(); ++i) {
            const RegInfo &r = d.regs()[i];
            if (!validRef(d, r.node) || d.node(r.node).op != Op::Reg) {
                out.error(rule(), r.node, strfmt("reg[%zu]", i),
                          "register entry does not reference an Op::Reg "
                          "node");
                continue;
            }
            // A missing next is reg-contract's finding; a *bogus* next is
            // a dangling reference.
            if (r.next != kNoNode && !validRef(d, r.next)) {
                out.error(rule(), r.node, nodePath(d, r.node),
                          "dangling next-state reference");
            }
            if (r.en != kNoNode && !validRef(d, r.en)) {
                out.error(rule(), r.node, nodePath(d, r.node),
                          "dangling enable reference");
            }
        }

        for (size_t mi = 0; mi < d.mems().size(); ++mi) {
            const MemInfo &m = d.mems()[mi];
            for (size_t p = 0; p < m.reads.size(); ++p) {
                const MemReadPort &rp = m.reads[p];
                if (!validRef(d, rp.addr)) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("read port %zu: dangling address "
                                     "reference", p));
                }
                if (rp.en != kNoNode && !validRef(d, rp.en)) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("read port %zu: dangling enable "
                                     "reference", p));
                }
                if (!validRef(d, rp.data) ||
                    d.node(rp.data).op != Op::MemRead) {
                    out.error(rule(), rp.data, m.name,
                              strfmt("read port %zu: data is not an "
                                     "Op::MemRead node", p));
                }
            }
            for (size_t p = 0; p < m.writes.size(); ++p) {
                const MemWritePort &wp = m.writes[p];
                if (!validRef(d, wp.addr)) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("write port %zu: dangling address "
                                     "reference", p));
                }
                if (!validRef(d, wp.data)) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("write port %zu: dangling data "
                                     "reference", p));
                }
                if (wp.en != kNoNode && !validRef(d, wp.en)) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("write port %zu: dangling enable "
                                     "reference", p));
                }
            }
        }

        for (size_t i = 0; i < d.outputs().size(); ++i) {
            if (!validRef(d, d.outputs()[i].node)) {
                out.error(rule(), kNoNode, d.outputs()[i].name,
                          "output port: dangling node reference");
            }
        }

        for (const RetimeRegion &region : d.retimeRegions()) {
            for (NodeId in : region.inputs) {
                if (!validRef(d, in)) {
                    out.error(rule(), kNoNode, region.name,
                              "retime region: dangling input reference");
                }
            }
            if (!validRef(d, region.output)) {
                out.error(rule(), kNoNode, region.name,
                          "retime region: dangling output reference");
            }
            for (NodeId r : region.regs) {
                if (!validRef(d, r)) {
                    out.error(rule(), kNoNode, region.name,
                              "retime region: dangling register "
                              "reference");
                }
            }
        }
    }
};

// --- op-width -------------------------------------------------------------

class OpWidthPass : public Pass
{
  public:
    const char *rule() const override { return "op-width"; }
    const char *description() const override
    {
        return "per-op width and arity legality over the word-level IR";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            if (n.width == 0 || n.width > 64) {
                out.error(rule(), id, nodePath(d, id),
                          strfmt("(%s): illegal width %u (must be 1..64)",
                                 opName(n.op), n.width));
                continue;
            }
            // Width checks need resolvable operands; dangling-ref owns
            // the rest.
            if (!argsValid(d, n))
                continue;
            auto argW = [&](unsigned i) { return widthOf(d, n.args[i]); };
            switch (n.op) {
              case Op::Const:
                if (truncate(n.imm, n.width) != n.imm) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(const): literal %llu does not fit "
                                     "in %u bits",
                                     (unsigned long long)n.imm, n.width));
                }
                break;
              case Op::Add: case Op::Sub: case Op::Divu: case Op::Remu:
              case Op::And: case Op::Or: case Op::Xor:
                if (argW(0) != n.width || argW(1) != n.width) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): operand widths %u,%u != %u",
                                     opName(n.op), argW(0), argW(1),
                                     n.width));
                }
                break;
              case Op::Mul:
                if (n.width != std::min(64u, argW(0) + argW(1))) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(mul): width %u != %u", n.width,
                                     std::min(64u, argW(0) + argW(1))));
                }
                break;
              case Op::Shl: case Op::Shru: case Op::Sra:
                if (argW(0) != n.width) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): operand width %u != %u",
                                     opName(n.op), argW(0), n.width));
                }
                break;
              case Op::Eq: case Op::Ne: case Op::Ltu: case Op::Lts:
                if (n.width != 1) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): comparison width must be 1",
                                     opName(n.op)));
                }
                if (argW(0) != argW(1)) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): operand widths %u != %u",
                                     opName(n.op), argW(0), argW(1)));
                }
                break;
              case Op::Cat:
                if (n.width != argW(0) + argW(1)) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(cat): width %u != %u + %u", n.width,
                                     argW(0), argW(1)));
                }
                break;
              case Op::Bits:
                if (n.bitsHi() < n.bitsLo() || n.bitsHi() >= argW(0)) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(bits): [%u:%u] out of range for "
                                     "width-%u operand", n.bitsHi(),
                                     n.bitsLo(), argW(0)));
                } else if (n.width != n.bitsHi() - n.bitsLo() + 1) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(bits): width %u != extracted range "
                                     "[%u:%u]", n.width, n.bitsHi(),
                                     n.bitsLo()));
                }
                break;
              case Op::SExt: case Op::Pad:
                if (n.width < argW(0)) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): cannot extend width %u to %u",
                                     opName(n.op), argW(0), n.width));
                }
                break;
              case Op::Not: case Op::Neg:
                if (argW(0) != n.width) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): operand width %u != %u",
                                     opName(n.op), argW(0), n.width));
                }
                break;
              case Op::RedOr: case Op::RedAnd: case Op::RedXor:
                if (n.width != 1) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(%s): reduce width must be 1",
                                     opName(n.op)));
                }
                break;
              case Op::Mux:
                if (widthOf(d, n.args[0]) != 1) {
                    out.error(rule(), id, nodePath(d, id),
                              "(mux): selector must be 1 bit");
                }
                if (argW(1) != n.width || argW(2) != n.width) {
                    out.error(rule(), id, nodePath(d, id),
                              strfmt("(mux): arm widths %u,%u != %u",
                                     argW(1), argW(2), n.width));
                }
                break;
              default:
                break;
            }
        }
    }
};

// --- reg-contract ---------------------------------------------------------

class RegContractPass : public Pass
{
  public:
    const char *rule() const override { return "reg-contract"; }
    const char *description() const override
    {
        return "every register has a width-matched next-state driver and "
               "a 1-bit enable";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (size_t i = 0; i < d.regs().size(); ++i) {
            const RegInfo &r = d.regs()[i];
            if (!validRef(d, r.node))
                continue; // dangling-ref owns it
            const std::string path = nodePath(d, r.node);
            const char *name = d.node(r.node).name.c_str();
            unsigned width = d.node(r.node).width;
            if (r.next == kNoNode) {
                out.error(rule(), r.node, path,
                          strfmt("register '%s' has no next-state driver",
                                 name));
            } else if (validRef(d, r.next) &&
                       d.node(r.next).width != width) {
                out.error(rule(), r.node, path,
                          strfmt("register '%s': next width %u != %u",
                                 name, d.node(r.next).width, width));
            }
            if (r.en != kNoNode && validRef(d, r.en) &&
                d.node(r.en).width != 1) {
                out.error(rule(), r.node, path,
                          strfmt("register '%s': enable must be 1 bit",
                                 name));
            }
            if (truncate(r.init, width) != r.init) {
                out.error(rule(), r.node, path,
                          strfmt("register '%s': init value %llu does not "
                                 "fit in %u bits", name,
                                 (unsigned long long)r.init, width));
            }
        }
    }
};

// --- mem-contract ---------------------------------------------------------

class MemContractPass : public Pass
{
  public:
    const char *rule() const override { return "mem-contract"; }
    const char *description() const override
    {
        return "memory geometry, port widths and init contents are "
               "consistent";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (const MemInfo &m : d.mems()) {
            if (m.depth == 0) {
                out.error(rule(), kNoNode, m.name,
                          strfmt("memory '%s' has zero depth",
                                 m.name.c_str()));
                continue;
            }
            if (m.width == 0 || m.width > 64) {
                out.error(rule(), kNoNode, m.name,
                          strfmt("memory '%s' has illegal width %u",
                                 m.name.c_str(), m.width));
                continue;
            }
            unsigned addrW = std::max(1u, clog2(m.depth));
            for (size_t p = 0; p < m.reads.size(); ++p) {
                const MemReadPort &rp = m.reads[p];
                if (validRef(d, rp.addr) &&
                    d.node(rp.addr).width != addrW) {
                    out.error(rule(), rp.data, m.name,
                              strfmt("memory '%s': read address width %u "
                                     "!= %u", m.name.c_str(),
                                     d.node(rp.addr).width, addrW));
                }
                if (validRef(d, rp.data) &&
                    d.node(rp.data).width != m.width) {
                    out.error(rule(), rp.data, m.name,
                              strfmt("memory '%s': read data width "
                                     "mismatch", m.name.c_str()));
                }
                if (rp.en != kNoNode && validRef(d, rp.en) &&
                    d.node(rp.en).width != 1) {
                    out.error(rule(), rp.data, m.name,
                              strfmt("memory '%s': read enable must be 1 "
                                     "bit", m.name.c_str()));
                }
            }
            for (size_t p = 0; p < m.writes.size(); ++p) {
                const MemWritePort &wp = m.writes[p];
                if (validRef(d, wp.addr) &&
                    d.node(wp.addr).width != addrW) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("memory '%s': write address width %u "
                                     "!= %u", m.name.c_str(),
                                     d.node(wp.addr).width, addrW));
                }
                if (validRef(d, wp.data) &&
                    d.node(wp.data).width != m.width) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("memory '%s': write data width "
                                     "mismatch", m.name.c_str()));
                }
                if (wp.en != kNoNode && validRef(d, wp.en) &&
                    d.node(wp.en).width != 1) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("memory '%s': write enable must be 1 "
                                     "bit", m.name.c_str()));
                }
            }
            if (m.init.size() > m.depth) {
                out.error(rule(), kNoNode, m.name,
                          strfmt("memory '%s': init contents (%zu words) "
                                 "exceed depth %llu", m.name.c_str(),
                                 m.init.size(),
                                 (unsigned long long)m.depth));
            }
            for (uint64_t v : m.init) {
                if (truncate(v, m.width) != v) {
                    out.error(rule(), kNoNode, m.name,
                              strfmt("memory '%s': init word does not fit "
                                     "in %u bits", m.name.c_str(),
                                     m.width));
                    break;
                }
            }
        }
    }
};

// --- comb-cycle -----------------------------------------------------------

class CombCyclePass : public Pass
{
  public:
    const char *rule() const override { return "comb-cycle"; }
    const char *description() const override
    {
        return "all combinational cycles, one diagnostic per strongly "
               "connected component";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        std::vector<std::vector<NodeId>> sccs = rtl::combSccs(d);
        for (const std::vector<NodeId> &scc : sccs) {
            std::ostringstream os;
            os << "combinational cycle through " << scc.size()
               << (scc.size() == 1 ? " node: " : " nodes: ");
            size_t shown = std::min<size_t>(scc.size(), 8);
            for (size_t i = 0; i < shown; ++i) {
                if (i)
                    os << " -> ";
                os << "%" << scc[i];
                const std::string &name = d.node(scc[i]).name;
                if (!name.empty())
                    os << " '" << name << "'";
            }
            if (shown < scc.size())
                os << " -> ... (" << scc.size() - shown << " more)";
            out.error(rule(), scc[0], nodePath(d, scc[0]), os.str());
        }
    }
};

// --- multi-driver ---------------------------------------------------------

class MultiDriverPass : public Pass
{
  public:
    const char *rule() const override { return "multi-driver"; }
    const char *description() const override
    {
        return "no node is claimed by two state elements or port entries";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        // Owner string per node; a second claim is a multiple-driver
        // violation (e.g. one Op::Reg node listed in two register
        // entries would make scan-chain restore ambiguous).
        std::vector<std::string> owner(d.numNodes());
        auto claim = [&](NodeId id, std::string who) {
            if (!validRef(d, id))
                return; // dangling-ref owns it
            if (!owner[id].empty()) {
                out.error(rule(), id, nodePath(d, id),
                          strfmt("driven by both %s and %s",
                                 owner[id].c_str(), who.c_str()));
                return;
            }
            owner[id] = std::move(who);
        };

        for (size_t i = 0; i < d.inputs().size(); ++i)
            claim(d.inputs()[i], strfmt("input-port entry %zu", i));
        for (size_t i = 0; i < d.regs().size(); ++i)
            claim(d.regs()[i].node, strfmt("register entry %zu", i));
        for (size_t mi = 0; mi < d.mems().size(); ++mi) {
            const MemInfo &m = d.mems()[mi];
            for (size_t p = 0; p < m.reads.size(); ++p) {
                claim(m.reads[p].data,
                      strfmt("read port %zu of memory '%s'", p,
                             m.name.c_str()));
            }
        }
    }
};

// --- retime legality ------------------------------------------------------

/**
 * The backward cone of a retime region: every node reachable from the
 * region output by walking combinational dependencies, and — for
 * registers *listed* in the region — their next-state drivers. Traversal
 * stops at the region's declared inputs. The legality rules read off
 * this cone:
 *  - feed-forward: the cone must be acyclic (a cycle means the output
 *    feeds back into the region, so no finite input history can warm
 *    the retimed registers);
 *  - reg scope: every source the cone touches must be a region input or
 *    a constant — outside state (unlisted registers, top-level inputs,
 *    memory reads) cannot be recovered by forcing region I/O.
 */
struct RegionCone
{
    bool cycle = false;
    NodeId cycleNode = kNoNode;
    std::vector<NodeId> externalState; //!< non-input sources reached
    std::vector<bool> visited;         //!< per design node
};

RegionCone
analyzeRegionCone(const Design &d, const RetimeRegion &region)
{
    RegionCone cone;
    cone.visited.assign(d.numNodes(), false);
    if (!validRef(d, region.output))
        return cone; // dangling-ref owns it

    std::vector<bool> isInput(d.numNodes(), false);
    for (NodeId in : region.inputs) {
        if (validRef(d, in))
            isInput[in] = true;
    }
    std::vector<bool> isListed(d.numNodes(), false);
    for (NodeId r : region.regs) {
        if (validRef(d, r))
            isListed[r] = true;
    }

    // Iterative DFS with white/grey/black coloring for cycle detection.
    enum : uint8_t { White, Grey, Black };
    std::vector<uint8_t> color(d.numNodes(), White);

    auto coneDeps = [&](NodeId id, auto &&visit) {
        const Node &n = d.node(id);
        if (n.op == Op::Reg) {
            if (!isListed[id])
                return; // unlisted register: a cone source
            if (n.aux < d.regs().size() && d.regs()[n.aux].node == id) {
                NodeId next = d.regs()[n.aux].next;
                if (validRef(d, next))
                    visit(next);
            }
            return;
        }
        if (n.op == Op::MemRead)
            return; // memory state: a cone source
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i) {
            if (validRef(d, n.args[i]))
                visit(n.args[i]);
        }
    };

    auto isSource = [&](NodeId id) {
        const Node &n = d.node(id);
        return n.op == Op::Input || n.op == Op::MemRead ||
               (n.op == Op::Reg && !isListed[id]);
    };

    struct Frame
    {
        NodeId node;
        std::vector<NodeId> succ;
        size_t next = 0;
    };
    std::vector<Frame> dfs;
    auto expand = [&](NodeId id) {
        Frame f;
        f.node = id;
        coneDeps(id, [&](NodeId dep) { f.succ.push_back(dep); });
        return f;
    };

    color[region.output] = Grey;
    cone.visited[region.output] = true;
    dfs.push_back(expand(region.output));
    while (!dfs.empty()) {
        Frame &f = dfs.back();
        if (f.next < f.succ.size()) {
            NodeId s = f.succ[f.next++];
            if (isInput[s]) {
                cone.visited[s] = true;
                continue; // traversal stops at region inputs
            }
            if (color[s] == Grey) {
                if (!cone.cycle) {
                    cone.cycle = true;
                    cone.cycleNode = s;
                }
                continue;
            }
            if (color[s] == Black)
                continue;
            color[s] = Grey;
            cone.visited[s] = true;
            if (isSource(s)) {
                cone.externalState.push_back(s);
                color[s] = Black;
                continue;
            }
            dfs.push_back(expand(s));
        } else {
            color[f.node] = Black;
            dfs.pop_back();
        }
    }
    std::sort(cone.externalState.begin(), cone.externalState.end());
    return cone;
}

class RetimeFeedforwardPass : public Pass
{
  public:
    const char *rule() const override { return "retime-feedforward"; }
    const char *description() const override
    {
        return "annotated retime regions contain no feedback path";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (const RetimeRegion &region : d.retimeRegions()) {
            if (region.latency == 0) {
                out.error(rule(), region.output, region.name,
                          strfmt("retime region '%s' has zero latency",
                                 region.name.c_str()));
            }
            RegionCone cone = analyzeRegionCone(d, region);
            if (cone.cycle) {
                out.error(rule(), cone.cycleNode, region.name,
                          strfmt("retime region '%s' is not feed-forward: "
                                 "feedback path through node %%%u '%s'",
                                 region.name.c_str(), cone.cycleNode,
                                 nodePath(d, cone.cycleNode).c_str()));
            }
        }
    }
};

class RetimeRegScopePass : public Pass
{
  public:
    const char *rule() const override { return "retime-reg-scope"; }
    const char *description() const override
    {
        return "retime-region registers are fed only from the region's "
               "declared inputs";
    }
    Severity severity() const override { return Severity::Error; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (const RetimeRegion &region : d.retimeRegions()) {
            for (NodeId r : region.regs) {
                if (validRef(d, r) && d.node(r).op != Op::Reg) {
                    out.error(rule(), r, region.name,
                              strfmt("retime region '%s': listed node "
                                     "'%s' is not a register",
                                     region.name.c_str(),
                                     nodePath(d, r).c_str()));
                }
            }
            RegionCone cone = analyzeRegionCone(d, region);
            if (cone.cycle)
                continue; // feed-forward rule owns the cycle finding
            for (NodeId s : cone.externalState) {
                out.error(rule(), s, region.name,
                          strfmt("retime region '%s': cone reads state "
                                 "'%s' that is not a region input "
                                 "(replay cannot recover it)",
                                 region.name.c_str(),
                                 nodePath(d, s).c_str()));
            }
            for (NodeId r : region.regs) {
                if (validRef(d, r) && d.node(r).op == Op::Reg &&
                    !cone.visited[r]) {
                    out.error(rule(), r, region.name,
                              strfmt("retime region '%s': listed register "
                                     "'%s' is not inside the region cone",
                                     region.name.c_str(),
                                     nodePath(d, r).c_str()));
                }
            }
        }
    }
};

// --- liveness / observability --------------------------------------------

/** True per node when something structurally references it. */
std::vector<bool>
structuralUses(const Design &d)
{
    std::vector<bool> used(d.numNodes(), false);
    auto use = [&](NodeId id) {
        if (validRef(d, id))
            used[id] = true;
    };
    for (NodeId id = 0; id < d.numNodes(); ++id) {
        const Node &n = d.node(id);
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i)
            use(n.args[i]);
    }
    for (const RegInfo &r : d.regs()) {
        use(r.next);
        use(r.en);
    }
    for (const MemInfo &m : d.mems()) {
        for (const MemReadPort &p : m.reads) {
            use(p.addr);
            use(p.en);
        }
        for (const MemWritePort &p : m.writes) {
            use(p.addr);
            use(p.data);
            use(p.en);
        }
    }
    for (const rtl::OutputPort &o : d.outputs())
        use(o.node);
    for (const RetimeRegion &region : d.retimeRegions()) {
        for (NodeId in : region.inputs)
            use(in);
        use(region.output);
    }
    return used;
}

/**
 * The observable cone: nodes that can influence an output port. Walks
 * backward from outputs; registers pull in their next/enable, memory
 * reads pull in their address, enable and the memory's write ports.
 */
std::vector<bool>
observableCone(const Design &d)
{
    std::vector<bool> seen(d.numNodes(), false);
    std::vector<NodeId> work;
    auto push = [&](NodeId id) {
        if (validRef(d, id) && !seen[id]) {
            seen[id] = true;
            work.push_back(id);
        }
    };
    for (const rtl::OutputPort &o : d.outputs())
        push(o.node);
    for (const RetimeRegion &region : d.retimeRegions())
        push(region.output);
    while (!work.empty()) {
        NodeId id = work.back();
        work.pop_back();
        const Node &n = d.node(id);
        if (n.op == Op::Reg) {
            if (n.aux < d.regs().size() && d.regs()[n.aux].node == id) {
                push(d.regs()[n.aux].next);
                push(d.regs()[n.aux].en);
            }
            continue;
        }
        if (n.op == Op::MemRead) {
            uint32_t memIdx = n.aux >> 16;
            uint32_t portIdx = n.aux & 0xffff;
            if (memIdx >= d.mems().size())
                continue;
            const MemInfo &m = d.mems()[memIdx];
            if (portIdx < m.reads.size()) {
                push(m.reads[portIdx].addr);
                push(m.reads[portIdx].en);
            }
            for (const MemWritePort &wp : m.writes) {
                push(wp.addr);
                push(wp.data);
                push(wp.en);
            }
            continue;
        }
        unsigned arity = opArity(n.op);
        for (unsigned i = 0; i < arity; ++i)
            push(n.args[i]);
    }
    return seen;
}

class DeadNodePass : public Pass
{
  public:
    const char *rule() const override { return "dead-node"; }
    const char *description() const override
    {
        return "combinational nodes that nothing references";
    }
    Severity severity() const override { return Severity::Warning; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        std::vector<bool> used = structuralUses(d);
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            // Leaves have their own rules (unreadable-reg,
            // write-only-mem); dead constants are harmless.
            if (opArity(n.op) == 0)
                continue;
            if (!used[id]) {
                out.warning(rule(), id, nodePath(d, id),
                            strfmt("(%s): node has no users (dead logic)",
                                   opName(n.op)));
            }
        }
    }
};

class UnreadableRegPass : public Pass
{
  public:
    const char *rule() const override { return "unreadable-reg"; }
    const char *description() const override
    {
        return "registers no output can observe (wasted snapshot bits)";
    }
    Severity severity() const override { return Severity::Warning; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        std::vector<bool> observable = observableCone(d);
        for (const RegInfo &r : d.regs()) {
            if (!validRef(d, r.node))
                continue;
            if (!observable[r.node]) {
                out.warning(rule(), r.node, nodePath(d, r.node),
                            strfmt("register is never observed by any "
                                   "output (%u wasted snapshot bits)",
                                   d.node(r.node).width));
            }
        }
    }
};

class WriteOnlyMemPass : public Pass
{
  public:
    const char *rule() const override { return "write-only-mem"; }
    const char *description() const override
    {
        return "memories whose read data is never observed (wasted "
               "snapshot bits)";
    }
    Severity severity() const override { return Severity::Warning; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        std::vector<bool> observable = observableCone(d);
        for (const MemInfo &m : d.mems()) {
            uint64_t wasted = m.width * m.depth;
            if (m.reads.empty()) {
                out.warning(rule(), kNoNode, m.name,
                            strfmt("memory '%s' has no read ports (%llu "
                                   "wasted snapshot bits)", m.name.c_str(),
                                   (unsigned long long)wasted));
                continue;
            }
            bool anyObserved = false;
            for (const MemReadPort &p : m.reads) {
                if (validRef(d, p.data) && observable[p.data])
                    anyObserved = true;
            }
            if (!anyObserved) {
                out.warning(rule(), kNoNode, m.name,
                            strfmt("memory '%s': no read port is observed "
                                   "by any output (%llu wasted snapshot "
                                   "bits)", m.name.c_str(),
                                   (unsigned long long)wasted));
            }
        }
    }
};

class UninitSyncReadPass : public Pass
{
  public:
    const char *rule() const override { return "uninit-sync-read"; }
    const char *description() const override
    {
        return "sync-read memories read before any possible write";
    }
    Severity severity() const override { return Severity::Warning; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        for (const MemInfo &m : d.mems()) {
            if (!m.syncRead || m.reads.empty())
                continue;
            if (m.writes.empty() && m.init.empty()) {
                out.warning(rule(), kNoNode, m.name,
                            strfmt("sync-read memory '%s' is read but has "
                                   "no write ports and no init contents "
                                   "(read-before-write returns zeros)",
                                   m.name.c_str()));
            }
        }
    }
};

} // namespace

// --- dataflow-powered semantic rules --------------------------------------
//
// All six rules below consume rtl::analyzeDataflow() reset-reachable
// facts (known-bits + ranges iterated to a fixed point across register
// feedback). On a malformed design dataflowAnalyzable() fails inside
// the analysis and every fact degrades to top, which proves nothing —
// so the rules are automatically silent (and crash-free) there; the
// error-severity structural rules own those findings.

namespace {

/** Shared shape of the dataflow rules: one analysis, one sweep. */
class DataflowPass : public Pass
{
  public:
    Severity severity() const override { return Severity::Warning; }

    void
    run(const Design &d, Diagnostics &out) const override
    {
        rtl::DataflowResult df = rtl::analyzeDataflow(d);
        if (df.facts.size() != d.numNodes())
            return;
        check(d, df, out);
    }

  protected:
    virtual void check(const Design &d, const rtl::DataflowResult &df,
                       Diagnostics &out) const = 0;

    /** Apply @p fn to every state-element enable of the design. */
    template <typename Fn>
    static void
    forEachEnable(const Design &d, Fn &&fn)
    {
        for (const RegInfo &r : d.regs()) {
            if (validRef(d, r.en) && validRef(d, r.node))
                fn(r.en, r.node, std::string("register"), nodePath(d, r.node));
        }
        for (const MemInfo &m : d.mems()) {
            for (size_t p = 0; p < m.writes.size(); ++p) {
                if (validRef(d, m.writes[p].en)) {
                    fn(m.writes[p].en, kNoNode,
                       strfmt("write port %zu of memory", p), m.name);
                }
            }
            if (!m.syncRead)
                continue;
            for (size_t p = 0; p < m.reads.size(); ++p) {
                if (validRef(d, m.reads[p].en)) {
                    fn(m.reads[p].en, m.reads[p].data,
                       strfmt("sync read port %zu of memory", p), m.name);
                }
            }
        }
    }
};

class ConstConditionPass : public DataflowPass
{
  public:
    const char *rule() const override { return "const-condition"; }
    const char *description() const override
    {
        return "state-element enables that are provably always asserted "
               "(the enable is vacuous)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        forEachEnable(d, [&](NodeId en, NodeId subject,
                             const std::string &what,
                             const std::string &path) {
            if ((df.facts[en].ones & 1) != 0) {
                out.warning(rule(), subject != kNoNode ? subject : en,
                            path,
                            strfmt("%s enable '%s' is provably always "
                                   "1: the condition is vacuous",
                                   what.c_str(),
                                   nodePath(d, en).c_str()));
            }
        });
    }
};

class NeverEnabledPass : public DataflowPass
{
  public:
    const char *rule() const override { return "never-enabled"; }
    const char *description() const override
    {
        return "state-element enables that provably never assert (the "
               "register or port is dead)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        forEachEnable(d, [&](NodeId en, NodeId subject,
                             const std::string &what,
                             const std::string &path) {
            if ((df.facts[en].zeros & 1) != 0) {
                out.warning(rule(), subject != kNoNode ? subject : en,
                            path,
                            strfmt("%s enable '%s' is provably never "
                                   "asserted: the state never changes "
                                   "after reset",
                                   what.c_str(),
                                   nodePath(d, en).c_str()));
            }
        });
    }
};

class UnreachableMuxArmPass : public DataflowPass
{
  public:
    const char *rule() const override { return "unreachable-mux-arm"; }
    const char *description() const override
    {
        return "mux arms that can never be selected (selector provably "
               "constant)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            if (n.op != Op::Mux || !argsValid(d, n))
                continue;
            const rtl::ValueFact &sel = df.facts[n.args[0]];
            if ((sel.zeros & 1) != 0) {
                out.warning(rule(), id, nodePath(d, id),
                            "selector is provably 0: the then-arm is "
                            "unreachable");
            } else if ((sel.ones & 1) != 0) {
                out.warning(rule(), id, nodePath(d, id),
                            "selector is provably 1: the else-arm is "
                            "unreachable");
            }
        }
    }
};

class ConstComparePass : public DataflowPass
{
  public:
    const char *rule() const override { return "const-compare"; }
    const char *description() const override
    {
        return "comparisons whose outcome is provably constant (operand "
               "facts can never overlap, or always coincide)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            if (n.op != Op::Eq && n.op != Op::Ne && n.op != Op::Ltu &&
                n.op != Op::Lts)
                continue;
            if (!argsValid(d, n) || !df.facts[id].isConst())
                continue;
            // Two literal operands are plain dead code, not a semantic
            // surprise; leave that to dead-node/fold reporting.
            if (d.node(n.args[0]).op == Op::Const &&
                d.node(n.args[1]).op == Op::Const)
                continue;
            out.warning(rule(), id, nodePath(d, id),
                        strfmt("(%s): comparison is provably always %u",
                               opName(n.op),
                               static_cast<unsigned>(
                                   df.facts[id].constVal())));
        }
    }
};

class TruncationDropsBitsPass : public DataflowPass
{
  public:
    const char *rule() const override { return "truncation-drops-bits"; }
    const char *description() const override
    {
        return "bit extracts that discard provably-set bits (the "
               "truncation loses live information in every state)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            if (n.op != Op::Bits || !argsValid(d, n))
                continue;
            unsigned argW = widthOf(d, n.args[0]);
            if (n.bitsHi() < n.bitsLo() || n.bitsHi() >= argW)
                continue; // op-width owns malformed extracts
            uint64_t kept =
                bitMask(n.bitsHi() + 1) & ~bitMask(n.bitsLo());
            uint64_t dropped =
                bitMask(argW) & ~kept & df.facts[n.args[0]].ones;
            if (dropped != 0) {
                out.warning(
                    rule(), id, nodePath(d, id),
                    strfmt("extract [%u:%u] of '%s' discards bits that "
                           "are provably 1 (mask 0x%llx)",
                           n.bitsHi(), n.bitsLo(),
                           nodePath(d, n.args[0]).c_str(),
                           static_cast<unsigned long long>(dropped)));
            }
        }
    }
};

class SextNonnegPass : public DataflowPass
{
  public:
    const char *rule() const override { return "sext-nonneg"; }
    const char *description() const override
    {
        return "sign-extensions of provably non-negative values (behaves "
               "as a plain zero-extend; suspect signedness)";
    }

  protected:
    void
    check(const Design &d, const rtl::DataflowResult &df,
          Diagnostics &out) const override
    {
        for (NodeId id = 0; id < d.numNodes(); ++id) {
            const Node &n = d.node(id);
            if (n.op != Op::SExt || !argsValid(d, n))
                continue;
            unsigned argW = widthOf(d, n.args[0]);
            if (argW == 0 || n.width <= argW)
                continue; // width-preserving sext is a plain alias
            if (bit(df.facts[n.args[0]].zeros, argW - 1) != 0) {
                out.warning(rule(), id, nodePath(d, id),
                            strfmt("operand '%s' is provably "
                                   "non-negative (bit %u known 0): this "
                                   "sign-extension is a zero-extension",
                                   nodePath(d, n.args[0]).c_str(),
                                   argW - 1));
            }
        }
    }
};

} // namespace

Registry
Registry::makeDefault()
{
    Registry r;
    r.add(std::make_unique<DanglingRefPass>());
    r.add(std::make_unique<OpWidthPass>());
    r.add(std::make_unique<RegContractPass>());
    r.add(std::make_unique<MemContractPass>());
    r.add(std::make_unique<CombCyclePass>());
    r.add(std::make_unique<MultiDriverPass>());
    r.add(std::make_unique<RetimeFeedforwardPass>());
    r.add(std::make_unique<RetimeRegScopePass>());
    r.add(std::make_unique<DeadNodePass>());
    r.add(std::make_unique<UnreadableRegPass>());
    r.add(std::make_unique<WriteOnlyMemPass>());
    r.add(std::make_unique<UninitSyncReadPass>());
    r.add(std::make_unique<ConstConditionPass>());
    r.add(std::make_unique<NeverEnabledPass>());
    r.add(std::make_unique<UnreachableMuxArmPass>());
    r.add(std::make_unique<ConstComparePass>());
    r.add(std::make_unique<TruncationDropsBitsPass>());
    r.add(std::make_unique<SextNonnegPass>());
    return r;
}

} // namespace lint
} // namespace strober
