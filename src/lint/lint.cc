#include "lint/lint.h"

#include <algorithm>

#include "util/logging.h"

namespace strober {
namespace lint {

using rtl::Design;
using rtl::kNoNode;
using rtl::MemInfo;
using rtl::NodeId;
using rtl::Op;

Registry &
Registry::add(std::unique_ptr<Pass> pass)
{
    list.push_back(std::move(pass));
    return *this;
}

const Pass *
Registry::find(std::string_view rule) const
{
    for (const std::unique_ptr<Pass> &p : list) {
        if (rule == p->rule())
            return p.get();
    }
    return nullptr;
}

const Registry &
Registry::global()
{
    static const Registry instance = makeDefault();
    return instance;
}

Diagnostics
run(const Design &design, const Registry &registry, const Options &options)
{
    Diagnostics out;
    for (const std::unique_ptr<Pass> &pass : registry.passes()) {
        // A whole pass below the severity floor is skipped, not filtered
        // after the fact — this is what keeps Design::check() (errors
        // only) cheap on large cores.
        Severity sev = pass->severity();
        if (options.werror && sev == Severity::Warning)
            sev = Severity::Error;
        if (sev < options.minSeverity)
            continue;
        if (std::find(options.disabled.begin(), options.disabled.end(),
                      pass->rule()) != options.disabled.end())
            continue;
        Diagnostics found;
        pass->run(design, found);
        if (options.werror) {
            for (Diagnostic &d : found.mutableAll()) {
                if (d.severity == Severity::Warning)
                    d.severity = Severity::Error;
            }
        }
        out.merge(std::move(found));
    }
    return out;
}

Diagnostics
run(const Design &design, const Options &options)
{
    return run(design, Registry::global(), options);
}

namespace {

/**
 * Memoized structural domination: is @p id forced to 0 whenever
 * @p hostEn is 0? True for host_en itself, a constant 0, an And with a
 * dominated operand, and a Mux whose both arms are dominated. This is
 * exactly the shape fame1Transform() emits (And(old_en, host_en)), plus
 * enough slack to accept hand-gated designs.
 */
class Dominator
{
  public:
    Dominator(const Design &d, NodeId hostEn)
        : design(d), host(hostEn), memo(d.numNodes(), Unknown)
    {
    }

    bool
    dominated(NodeId id)
    {
        if (id == kNoNode || id >= design.numNodes())
            return false;
        if (id == host)
            return true;
        if (memo[id] != Unknown)
            return memo[id] == Yes;
        // In-progress marker breaks cycles conservatively (a cyclic
        // enable is comb-cycle's finding, not ours).
        memo[id] = No;
        const rtl::Node &n = design.node(id);
        bool result = false;
        switch (n.op) {
          case Op::Const:
            result = n.imm == 0;
            break;
          case Op::And:
            result = dominated(n.args[0]) || dominated(n.args[1]);
            break;
          case Op::Mux:
            result = dominated(n.args[1]) && dominated(n.args[2]);
            break;
          default:
            break;
        }
        memo[id] = result ? Yes : No;
        return result;
    }

  private:
    enum State : uint8_t { Unknown, No, Yes };
    const Design &design;
    NodeId host;
    std::vector<uint8_t> memo;
};

} // namespace

Diagnostics
verifyFame1Gating(const Design &design, NodeId hostEnable)
{
    Diagnostics out;
    if (hostEnable == kNoNode || hostEnable >= design.numNodes() ||
        design.node(hostEnable).op != Op::Input) {
        out.error("fame-gating", hostEnable, "host_en",
                  "host-enable is not a valid input node");
        return out;
    }

    Dominator dom(design, hostEnable);
    for (size_t i = 0; i < design.regs().size(); ++i) {
        const rtl::RegInfo &r = design.regs()[i];
        if (r.node == kNoNode || r.node >= design.numNodes())
            continue; // dangling-ref owns it
        if (r.en == kNoNode) {
            out.error("fame-gating", r.node, design.node(r.node).name,
                      "register has no enable: it advances even when "
                      "host_en is 0");
        } else if (!dom.dominated(r.en)) {
            out.error("fame-gating", r.node, design.node(r.node).name,
                      "register enable is not dominated by host_en");
        }
    }
    for (const MemInfo &m : design.mems()) {
        for (size_t p = 0; p < m.writes.size(); ++p) {
            const rtl::MemWritePort &wp = m.writes[p];
            if (wp.en == kNoNode) {
                out.error("fame-gating", kNoNode, m.name,
                          strfmt("write port %zu has no enable: it "
                                 "writes even when host_en is 0", p));
            } else if (!dom.dominated(wp.en)) {
                out.error("fame-gating", kNoNode, m.name,
                          strfmt("write port %zu enable is not dominated "
                                 "by host_en", p));
            }
        }
        if (!m.syncRead)
            continue;
        // Sync read data is target state too: an unguarded read port
        // would clobber it while the target clock is meant to be frozen.
        for (size_t p = 0; p < m.reads.size(); ++p) {
            const rtl::MemReadPort &rp = m.reads[p];
            if (rp.en == kNoNode) {
                out.error("fame-gating", rp.data, m.name,
                          strfmt("sync read port %zu has no enable: its "
                                 "data register advances even when "
                                 "host_en is 0", p));
            } else if (!dom.dominated(rp.en)) {
                out.error("fame-gating", rp.data, m.name,
                          strfmt("sync read port %zu enable is not "
                                 "dominated by host_en", p));
            }
        }
    }
    return out;
}

} // namespace lint
} // namespace strober
