/**
 * @file
 * Structured lint diagnostics. Unlike fatal(), which reports the first
 * violation and exits, a Diagnostics accumulates every finding with a
 * machine-readable rule id, a severity and the offending node/scope path,
 * so callers (tests, the strober-lint CLI, transform verifiers) can
 * assert on specific rules, count findings, or render a full report.
 */

#ifndef STROBER_LINT_DIAGNOSTICS_H
#define STROBER_LINT_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace lint {

/** How bad a finding is. */
enum class Severity : uint8_t {
    Info,    //!< observation; never affects exit status
    Warning, //!< suspicious (wasted snapshot bits, dead logic)
    Error,   //!< the design violates an IR invariant
};

/** @return "info" / "warning" / "error". */
const char *severityName(Severity s);

/** One lint finding. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string rule;            //!< stable machine id, e.g. "op-width"
    rtl::NodeId node = rtl::kNoNode; //!< offending node, if node-scoped
    std::string path;            //!< hierarchical subject path, may be empty
    std::string message;

    /** Render as "error[op-width] %12 'core/alu/x': message". */
    std::string str() const;
};

/** An accumulating collection of findings. */
class Diagnostics
{
  public:
    /** Append a finding; @return it for optional further decoration. */
    Diagnostic &add(Severity severity, std::string rule, rtl::NodeId node,
                    std::string path, std::string message);

    Diagnostic &error(std::string rule, rtl::NodeId node, std::string path,
                      std::string message);
    Diagnostic &warning(std::string rule, rtl::NodeId node, std::string path,
                        std::string message);
    Diagnostic &info(std::string rule, rtl::NodeId node, std::string path,
                     std::string message);

    /** Move all of @p other's findings into this. */
    void merge(Diagnostics other);

    const std::vector<Diagnostic> &all() const { return findings; }
    std::vector<Diagnostic> &mutableAll() { return findings; }
    bool empty() const { return findings.empty(); }
    size_t size() const { return findings.size(); }

    size_t count(Severity severity) const;
    size_t errorCount() const { return count(Severity::Error); }
    size_t warningCount() const { return count(Severity::Warning); }
    bool hasErrors() const { return errorCount() != 0; }

    /** Findings carrying @p rule (any severity). */
    size_t countRule(std::string_view rule) const;
    bool hasRule(std::string_view rule) const
    {
        return countRule(rule) != 0;
    }

    /** First error-severity finding; nullptr when clean. */
    const Diagnostic *firstError() const;

    /** Full report, one finding per line (trailing newline included). */
    std::string str() const;

  private:
    std::vector<Diagnostic> findings;
};

} // namespace lint
} // namespace strober

#endif // STROBER_LINT_DIAGNOSTICS_H
