file(REMOVE_RECURSE
  "libstrober_lint.a"
)
