file(REMOVE_RECURSE
  "CMakeFiles/strober_lint.dir/diagnostics.cc.o"
  "CMakeFiles/strober_lint.dir/diagnostics.cc.o.d"
  "CMakeFiles/strober_lint.dir/lint.cc.o"
  "CMakeFiles/strober_lint.dir/lint.cc.o.d"
  "CMakeFiles/strober_lint.dir/rules.cc.o"
  "CMakeFiles/strober_lint.dir/rules.cc.o.d"
  "libstrober_lint.a"
  "libstrober_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
