# Empty dependencies file for strober_lint.
# This may be replaced when dependencies are built.
