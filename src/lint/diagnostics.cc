#include "lint/diagnostics.h"

#include <sstream>

namespace strober {
namespace lint {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << rule << "]";
    if (node != rtl::kNoNode)
        os << " %" << node;
    if (!path.empty())
        os << " '" << path << "'";
    os << ": " << message;
    return os.str();
}

Diagnostic &
Diagnostics::add(Severity severity, std::string rule, rtl::NodeId node,
                 std::string path, std::string message)
{
    Diagnostic d;
    d.severity = severity;
    d.rule = std::move(rule);
    d.node = node;
    d.path = std::move(path);
    d.message = std::move(message);
    findings.push_back(std::move(d));
    return findings.back();
}

Diagnostic &
Diagnostics::error(std::string rule, rtl::NodeId node, std::string path,
                   std::string message)
{
    return add(Severity::Error, std::move(rule), node, std::move(path),
               std::move(message));
}

Diagnostic &
Diagnostics::warning(std::string rule, rtl::NodeId node, std::string path,
                     std::string message)
{
    return add(Severity::Warning, std::move(rule), node, std::move(path),
               std::move(message));
}

Diagnostic &
Diagnostics::info(std::string rule, rtl::NodeId node, std::string path,
                  std::string message)
{
    return add(Severity::Info, std::move(rule), node, std::move(path),
               std::move(message));
}

void
Diagnostics::merge(Diagnostics other)
{
    for (Diagnostic &d : other.findings)
        findings.push_back(std::move(d));
}

size_t
Diagnostics::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic &d : findings) {
        if (d.severity == severity)
            ++n;
    }
    return n;
}

size_t
Diagnostics::countRule(std::string_view rule) const
{
    size_t n = 0;
    for (const Diagnostic &d : findings) {
        if (d.rule == rule)
            ++n;
    }
    return n;
}

const Diagnostic *
Diagnostics::firstError() const
{
    for (const Diagnostic &d : findings) {
        if (d.severity == Severity::Error)
            return &d;
    }
    return nullptr;
}

std::string
Diagnostics::str() const
{
    std::string out;
    for (const Diagnostic &d : findings) {
        out += d.str();
        out += '\n';
    }
    return out;
}

} // namespace lint
} // namespace strober
