/**
 * @file
 * Pass-based static verification over the word-level netlist IR — the
 * layer that plays the role of FIRRTL's checker passes in the Strober
 * paper. Every transform in the pipeline (FAME1 gating, scan-chain
 * insertion, synthesis, retiming-aware replay) assumes the IR invariants
 * below; this framework makes them machine-checkable and *accumulates*
 * findings instead of dying on the first one.
 *
 * Structural rules (registered in the default Registry):
 *
 *   rule id             sev  checks
 *   ------------------- ---- ------------------------------------------
 *   dangling-ref        E    arg/state/port node references in range;
 *                            Input/Reg/MemRead aux bookkeeping consistent
 *   op-width            E    per-op width legality: Mux sel 1-bit, equal
 *                            Add/Sub/compare operand widths, Bits hi/lo
 *                            in range, Cat/Mul widths exact and <= 64,
 *                            Const fits declared width
 *   reg-contract        E    next-state driver present + width match,
 *                            1-bit enable, init fits width
 *   mem-contract        E    depth > 0, address/data widths, 1-bit write
 *                            enables, init contents fit
 *   comb-cycle          E    ALL combinational cycles, one diagnostic per
 *                            SCC (replaces levelize()'s first-hit fatal)
 *   multi-driver        E    a state/port node claimed by two owners
 *   retime-feedforward  E    annotated retime region is genuinely
 *                            feed-forward (no internal feedback path from
 *                            output back into the region cone)
 *   retime-reg-scope    E    listed regs fed only from region inputs
 *   dead-node           W    combinational node with no user at all
 *   unreadable-reg      W    register that nothing observes (wasted
 *                            snapshot bits)
 *   write-only-mem      W    memory whose read data is never observed
 *   uninit-sync-read    W    sync-read memory read before any possible
 *                            write (no write ports, no init contents)
 *
 * Cross-layer verification passes (run *after* transforms) live in
 * verifyFame1Gating() here and fame::verifyScanCoverage()
 * (src/fame/scan_chain.h), which needs the chain geometry.
 */

#ifndef STROBER_LINT_LINT_H
#define STROBER_LINT_LINT_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"
#include "rtl/ir.h"

namespace strober {
namespace lint {

/** One lint rule: inspects a Design, appends findings. */
class Pass
{
  public:
    virtual ~Pass() = default;
    /** Stable machine rule id ("op-width"); used in Diagnostic::rule. */
    virtual const char *rule() const = 0;
    /** One-line human description (CLI listings). */
    virtual const char *description() const = 0;
    /** Severity this rule reports at. */
    virtual Severity severity() const = 0;
    virtual void run(const rtl::Design &design, Diagnostics &out) const = 0;
};

/** An ordered collection of passes. */
class Registry
{
  public:
    Registry() = default;
    Registry(Registry &&) = default;
    Registry &operator=(Registry &&) = default;

    Registry &add(std::unique_ptr<Pass> pass);
    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return list;
    }
    const Pass *find(std::string_view rule) const;

    /** A fresh registry holding every built-in structural rule. */
    static Registry makeDefault();

    /** Shared immutable default-registry instance. */
    static const Registry &global();

  private:
    std::vector<std::unique_ptr<Pass>> list;
};

/** Filtering and promotion knobs for a lint run. */
struct Options
{
    /** Drop findings below this severity. */
    Severity minSeverity = Severity::Info;
    /** Promote warnings to errors. */
    bool werror = false;
    /** Rule ids to skip entirely. */
    std::vector<std::string> disabled;
};

/** Run @p registry's passes over @p design; never exits. */
Diagnostics run(const rtl::Design &design, const Registry &registry,
                const Options &options = {});

/** Run the default registry over @p design. */
Diagnostics run(const rtl::Design &design, const Options &options = {});

/**
 * Cross-layer verification of the FAME1 transform (paper Figure 3): with
 * host_en = 0 no target state may advance, so every register enable,
 * memory write enable and sync-read enable must be *dominated* by
 * @p hostEnable — structurally forced to 0 whenever host_en is 0.
 * Reports rule "fame-gating" (error) per unguarded state element.
 */
Diagnostics verifyFame1Gating(const rtl::Design &design,
                              rtl::NodeId hostEnable);

} // namespace lint
} // namespace strober

#endif // STROBER_LINT_LINT_H
