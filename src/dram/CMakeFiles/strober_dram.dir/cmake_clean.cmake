file(REMOVE_RECURSE
  "CMakeFiles/strober_dram.dir/dram_model.cc.o"
  "CMakeFiles/strober_dram.dir/dram_model.cc.o.d"
  "libstrober_dram.a"
  "libstrober_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
