file(REMOVE_RECURSE
  "libstrober_dram.a"
)
