# Empty dependencies file for strober_dram.
# This may be replaced when dependencies are built.
