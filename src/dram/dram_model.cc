#include "dram/dram_model.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace dram {

DramModel::DramModel(DramConfig config) : cfg(config)
{
    if (!isPow2(cfg.banks) || !isPow2(cfg.burstBytes) ||
        !isPow2(cfg.rowBytes) || cfg.rowBytes < cfg.burstBytes) {
        fatal("DRAM banks, burst and row sizes must be powers of two");
    }
    openRows.assign(cfg.banks, -1);
}

unsigned
DramModel::bankOf(uint64_t byteAddr) const
{
    // Bank-interleaved: adjacent bursts land in different banks.
    return static_cast<unsigned>((byteAddr / cfg.burstBytes) %
                                 cfg.banks);
}

uint64_t
DramModel::rowOf(uint64_t byteAddr) const
{
    uint64_t burstsPerRow = cfg.rowBytes / cfg.burstBytes;
    return (byteAddr / cfg.burstBytes / cfg.banks / burstsPerRow) %
           cfg.rowsPerBank;
}

unsigned
DramModel::access(uint64_t byteAddr, bool isWrite)
{
    unsigned bank = bankOf(byteAddr);
    int64_t row = static_cast<int64_t>(rowOf(byteAddr));

    unsigned latency = cfg.baseLatencyCycles;
    if (openRows[bank] != row) {
        // Open-page policy: a different row forces precharge + activate.
        ++counts.activations;
        openRows[bank] = row;
        latency += cfg.rowMissExtraCycles;
    } else {
        ++counts.rowHits;
    }
    if (isWrite)
        ++counts.writes;
    else
        ++counts.reads;
    return latency;
}

DramPowerBreakdown
dramPower(const DramCounters &counters, uint64_t elapsedCpuCycles,
          double cpuClockHz, DramPowerParams p)
{
    if (elapsedCpuCycles == 0)
        fatal("DRAM power over an empty window");
    double seconds = static_cast<double>(elapsedCpuCycles) / cpuClockHz;

    DramPowerBreakdown out;
    // Background: active standby on both rails (open-page keeps banks
    // active), plus a refresh overhead fraction.
    out.background = p.vdd1 * p.idd3n1 + p.vdd2 * p.idd3n2;
    out.refresh = out.background * p.refreshFraction;

    // Activate/precharge: (IDD0 - IDD3N) for tRC per activation.
    double actSeconds =
        static_cast<double>(counters.activations) * p.trcCycles /
        p.dramClockHz;
    double actFraction = std::min(1.0, actSeconds / seconds);
    out.activate = (p.vdd1 * (p.idd01 - p.idd3n1) +
                    p.vdd2 * (p.idd02 - p.idd3n2)) *
                   actFraction;

    // Read/write burst power scaled by bus occupancy.
    double readSeconds = static_cast<double>(counters.reads) *
                         p.burstCycles / p.dramClockHz;
    double writeSeconds = static_cast<double>(counters.writes) *
                          p.burstCycles / p.dramClockHz;
    out.read = p.vdd2 * (p.idd4r2 - p.idd3n2) *
               std::min(1.0, readSeconds / seconds);
    out.write = p.vdd2 * (p.idd4w2 - p.idd3n2) *
                std::min(1.0, writeSeconds / seconds);
    return out;
}

} // namespace dram
} // namespace strober
