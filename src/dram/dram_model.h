/**
 * @file
 * LPDDR2-S4 DRAM model (paper Section IV-D).
 *
 * Strober estimates DRAM power from counters attached to the memory
 * request port: with a known physical address mapping (bank-interleaved),
 * a known controller policy (open page) and the request stream, the
 * DRAM's internal operations — row activations, reads, writes — are
 * fully determined, and a Micron-spreadsheet-style calculator turns the
 * operation counts into average power. This module implements the
 * address mapping, the per-bank open-row state machine, the counters,
 * the (configurable-latency) timing model the FAME1 memory channel uses,
 * and the power calculator.
 *
 * Electrical constants are representative of the Micron LPDDR2 SDRAM S4
 * datasheet (8 banks, 16K rows/bank); only consistency matters for the
 * experiments.
 */

#ifndef STROBER_DRAM_DRAM_MODEL_H
#define STROBER_DRAM_DRAM_MODEL_H

#include <cstdint>
#include <vector>

namespace strober {
namespace dram {

/** Geometry, mapping and timing knobs. */
struct DramConfig
{
    unsigned banks = 8;
    uint64_t rowsPerBank = 16 * 1024; //!< 16K rows (paper Section IV-D)
    unsigned burstBytes = 32;         //!< bytes moved per access
    unsigned rowBytes = 2048;         //!< row (page) size per bank
    /** Base access latency in CPU cycles (paper Table II uses 100). */
    unsigned baseLatencyCycles = 100;
    /** Extra cycles when the access needs a row activation (page miss). */
    unsigned rowMissExtraCycles = 40;
    /** CPU clock the latency numbers are expressed in. */
    double cpuClockHz = 1e9;
};

/** Operation counters (the paper's port-attached counters). */
struct DramCounters
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t activations = 0;
    uint64_t rowHits = 0;
};

/**
 * Bank/row state machine with open-page policy and bank-interleaved
 * mapping: bank = addr[burst+2 : burst], row = top bits.
 */
class DramModel
{
  public:
    explicit DramModel(DramConfig config = DramConfig());

    const DramConfig &config() const { return cfg; }

    /**
     * Issue one access. Updates the open-row state and counters.
     * @return the access latency in CPU cycles.
     */
    unsigned access(uint64_t byteAddr, bool isWrite);

    const DramCounters &counters() const { return counts; }
    void clearCounters() { counts = DramCounters{}; }

    /** Bank index for @p byteAddr under the interleaved mapping. */
    unsigned bankOf(uint64_t byteAddr) const;
    /** Row index within its bank. */
    uint64_t rowOf(uint64_t byteAddr) const;
    /** Currently open row in @p bank (-1 if none). */
    int64_t openRow(unsigned bank) const { return openRows[bank]; }

  private:
    DramConfig cfg;
    DramCounters counts;
    std::vector<int64_t> openRows;
};

/** Representative LPDDR2-S4 electrical parameters (two-rail). */
struct DramPowerParams
{
    double vdd1 = 1.8;   //!< core supply
    double vdd2 = 1.2;   //!< logic/IO supply
    // Current draws in amperes (datasheet-style IDD values).
    double idd3n1 = 1.2e-3;  //!< active standby, VDD1 rail
    double idd3n2 = 8.0e-3;  //!< active standby, VDD2 rail
    double idd01 = 4.0e-3;   //!< activate-precharge average, VDD1
    double idd02 = 20.0e-3;  //!< activate-precharge average, VDD2
    double idd4r2 = 120.0e-3; //!< burst read, VDD2
    double idd4w2 = 130.0e-3; //!< burst write, VDD2
    /** DRAM core clock used to convert per-access occupancy to time. */
    double dramClockHz = 400e6;
    /** Cycles a burst occupies the array (BL/2 for LPDDR2 BL8 at DDR). */
    double burstCycles = 4.0;
    /** Activate-to-activate window (tRC) in DRAM cycles. */
    double trcCycles = 24.0;
    /** Refresh overhead as a fraction of background power. */
    double refreshFraction = 0.05;
};

/** Average-power breakdown from counters over an elapsed window. */
struct DramPowerBreakdown
{
    double background = 0;
    double activate = 0;
    double read = 0;
    double write = 0;
    double refresh = 0;
    double total() const
    {
        return background + activate + read + write + refresh;
    }
};

/**
 * The Micron-spreadsheet-style power calculation: operation counts plus
 * elapsed wall-target time in, average watts out.
 */
DramPowerBreakdown dramPower(const DramCounters &counters,
                             uint64_t elapsedCpuCycles, double cpuClockHz,
                             DramPowerParams params = DramPowerParams());

} // namespace dram
} // namespace strober

#endif // STROBER_DRAM_DRAM_MODEL_H
