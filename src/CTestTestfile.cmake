# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("rtl")
subdirs("lint")
subdirs("codegen")
subdirs("sim")
subdirs("isa")
subdirs("fame")
subdirs("inject")
subdirs("gate")
subdirs("power")
subdirs("dram")
subdirs("core")
subdirs("farm")
subdirs("cores")
subdirs("workloads")
