/**
 * @file
 * Binary serialization of replayable RTL snapshots. The paper replays
 * snapshots "on multiple instances of gate-level simulation in
 * parallel" — in practice on other machines, which requires snapshots
 * to exist as files. The format is versioned and self-describing enough
 * to detect design mismatches at load time (state-bit count, port
 * counts).
 */

#ifndef STROBER_FAME_SNAPSHOT_IO_H
#define STROBER_FAME_SNAPSHOT_IO_H

#include <iosfwd>

#include "fame/scan_chain.h"
#include "fame/token_sim.h"

namespace strober {
namespace fame {

/**
 * Write @p snap to @p out. @p chains supplies the state geometry so the
 * state part is stored as the scan-chain bit stream.
 */
void writeSnapshot(std::ostream &out, const ScanChains &chains,
                   const ReplayableSnapshot &snap);

/**
 * Read a snapshot written by writeSnapshot. Calls fatal() on a magic,
 * version or geometry mismatch.
 */
ReplayableSnapshot readSnapshot(std::istream &in, const ScanChains &chains);

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_SNAPSHOT_IO_H
