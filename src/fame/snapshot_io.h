/**
 * @file
 * Binary serialization of replayable RTL snapshots. The paper replays
 * snapshots "on multiple instances of gate-level simulation in
 * parallel" — in practice on other machines, which requires snapshots
 * to exist as files. The format is versioned and self-describing enough
 * to detect design mismatches at load time (state-bit count, port
 * counts).
 *
 * Format version 2 ("STRBSNP2"): the payload is split into five
 * sections (header, scan-chain state, input trace, output trace, retime
 * history), each followed by a CRC-32 of its bytes, so any bit flip,
 * truncation or torn write is detected at the section where it
 * happened — a corrupted snapshot costs one sample out of n, never a
 * silently wrong estimate. Version-1 files (no integrity sections) are
 * rejected with ErrorCode::Unsupported; re-capture them.
 *
 * All failures (I/O errors, corruption, geometry mismatches) are
 * reported as util::Status values, never fatal(): the farm pipeline
 * quarantines the bad file and keeps going.
 */

#ifndef STROBER_FAME_SNAPSHOT_IO_H
#define STROBER_FAME_SNAPSHOT_IO_H

#include <iosfwd>
#include <string>

#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "util/status.h"

namespace strober {
namespace fame {

/** Current snapshot file format version (see the file comment). */
constexpr uint32_t kSnapshotFormatVersion = 2;

/**
 * Write @p snap to @p out. @p chains supplies the state geometry so the
 * state part is stored as the scan-chain bit stream. Fails with
 * InvalidArgument for an incomplete snapshot and IoError when the
 * stream goes bad (e.g. disk full).
 */
util::Status writeSnapshot(std::ostream &out, const ScanChains &chains,
                           const ReplayableSnapshot &snap);

/**
 * Read a snapshot written by writeSnapshot. Fails with Corrupt (bad
 * magic, bad section CRC, truncation, absurd dimensions), Unsupported
 * (old format version) or GeometryMismatch (captured from a different
 * design).
 */
util::Result<ReplayableSnapshot> readSnapshot(std::istream &in,
                                              const ScanChains &chains);

/**
 * Atomically write @p snap to @p path: the bytes go to "<path>.tmp"
 * first and are renamed over @p path only after a verified flush, so a
 * killed capture phase never leaves a torn .strb file — the final path
 * either holds a complete snapshot or does not exist.
 */
util::Status writeSnapshotFile(const std::string &path,
                               const ScanChains &chains,
                               const ReplayableSnapshot &snap);

/** Open @p path and read one snapshot (IoError when unreadable). */
util::Result<ReplayableSnapshot> readSnapshotFile(const std::string &path,
                                                  const ScanChains &chains);

/**
 * The five per-section CRC-32s of a snapshot's serialized form (header,
 * state, input trace, output trace, retime history) — a content
 * fingerprint of everything a gate-level replay consumes. The farm's
 * result cache keys on this digest: two snapshots with equal digests
 * replay identically, so one cached result serves both.
 */
struct SnapshotDigest
{
    static constexpr size_t kSections = 5;
    uint32_t section[kSections] = {0, 0, 0, 0, 0};
};

/**
 * Serialize @p snap (without touching the filesystem) and return its
 * section digest. Fails like writeSnapshot (InvalidArgument for an
 * incomplete snapshot).
 */
util::Result<SnapshotDigest> snapshotDigest(const ScanChains &chains,
                                            const ReplayableSnapshot &snap);

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_SNAPSHOT_IO_H
