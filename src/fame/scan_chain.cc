#include "fame/scan_chain.h"

#include "util/bitstream.h"
#include "util/logging.h"

namespace strober {
namespace fame {

ScanChains::ScanChains(const rtl::Design &design) : dsn(design)
{
    for (const rtl::RegInfo &r : dsn.regs())
        regBits += dsn.node(r.node).width;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (m.syncRead)
            regBits += static_cast<uint64_t>(m.width) * m.reads.size();
        ramBits += static_cast<uint64_t>(m.width) * m.depth;
    }
}

uint64_t
ScanChains::captureHostCycles(unsigned daisyWidth) const
{
    if (daisyWidth == 0)
        fatal("daisy width must be positive");
    // Register chain: one shift beat per bit, read out daisyWidth bits per
    // host word. RAM chains: one beat per word for address generation plus
    // the shift-out of that word.
    uint64_t beats = (regBits + daisyWidth - 1) / daisyWidth;
    for (const rtl::MemInfo &m : dsn.mems()) {
        uint64_t wordBeats = (m.width + daisyWidth - 1) / daisyWidth;
        beats += m.depth * (1 + wordBeats);
    }
    return beats;
}

std::vector<uint64_t>
ScanChains::scanOut(const sim::Simulator &simulator) const
{
    BitWriter w;
    for (size_t i = 0; i < dsn.regs().size(); ++i) {
        w.put(simulator.regValue(i),
              dsn.node(dsn.regs()[i].node).width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            w.put(simulator.syncReadData(mi, p), m.width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (uint64_t a = 0; a < m.depth; ++a)
            w.put(simulator.memWord(mi, a), m.width);
    }
    return w.take();
}

StateSnapshot
ScanChains::decode(const std::vector<uint64_t> &bits) const
{
    BitReader r(bits);
    StateSnapshot s;
    s.regValues.reserve(dsn.regs().size());
    for (const rtl::RegInfo &reg : dsn.regs())
        s.regValues.push_back(r.get(dsn.node(reg.node).width));

    s.syncReadData.resize(dsn.mems().size());
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            s.syncReadData[mi].push_back(r.get(m.width));
    }

    s.memContents.resize(dsn.mems().size());
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        s.memContents[mi].reserve(m.depth);
        for (uint64_t a = 0; a < m.depth; ++a)
            s.memContents[mi].push_back(r.get(m.width));
    }
    if (r.bitsRead() != totalBits())
        panic("scan chain decode consumed %llu of %llu bits",
              (unsigned long long)r.bitsRead(),
              (unsigned long long)totalBits());
    return s;
}

std::vector<uint64_t>
ScanChains::encode(const StateSnapshot &state) const
{
    BitWriter w;
    for (size_t i = 0; i < dsn.regs().size(); ++i)
        w.put(state.regValues.at(i), dsn.node(dsn.regs()[i].node).width);
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            w.put(state.syncReadData.at(mi).at(p), m.width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (uint64_t a = 0; a < m.depth; ++a)
            w.put(state.memContents.at(mi).at(a), m.width);
    }
    return w.take();
}

void
ScanChains::restore(sim::Simulator &simulator,
                    const StateSnapshot &state) const
{
    for (size_t i = 0; i < dsn.regs().size(); ++i)
        simulator.setRegValue(i, state.regValues.at(i));
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (m.syncRead) {
            for (size_t p = 0; p < m.reads.size(); ++p)
                simulator.setSyncReadData(mi, p,
                                          state.syncReadData.at(mi).at(p));
        }
        for (uint64_t a = 0; a < m.depth; ++a)
            simulator.setMemWord(mi, a, state.memContents.at(mi).at(a));
    }
}

StateSnapshot
ScanChains::capture(const sim::Simulator &simulator, uint64_t cycle) const
{
    StateSnapshot s = decode(scanOut(simulator));
    s.cycle = cycle;
    return s;
}

} // namespace fame
} // namespace strober
