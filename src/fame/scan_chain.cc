#include "fame/scan_chain.h"

#include "util/bitstream.h"
#include "util/logging.h"

namespace strober {
namespace fame {

ScanChains::ScanChains(const rtl::Design &design) : dsn(design)
{
    for (const rtl::RegInfo &r : dsn.regs())
        regBits += dsn.node(r.node).width;
    for (const rtl::MemInfo &m : dsn.mems()) {
        if (m.syncRead)
            regBits += static_cast<uint64_t>(m.width) * m.reads.size();
        ramBits += static_cast<uint64_t>(m.width) * m.depth;
    }
}

uint64_t
ScanChains::captureHostCycles(unsigned daisyWidth) const
{
    if (daisyWidth == 0)
        fatal("daisy width must be positive");
    // Register chain: one shift beat per bit, read out daisyWidth bits per
    // host word. RAM chains: one beat per word for address generation plus
    // the shift-out of that word.
    uint64_t beats = (regBits + daisyWidth - 1) / daisyWidth;
    for (const rtl::MemInfo &m : dsn.mems()) {
        uint64_t wordBeats = (m.width + daisyWidth - 1) / daisyWidth;
        beats += m.depth * (1 + wordBeats);
    }
    return beats;
}

std::vector<uint64_t>
ScanChains::scanOut(const sim::Simulator &simulator) const
{
    BitWriter w;
    for (size_t i = 0; i < dsn.regs().size(); ++i) {
        w.put(simulator.regValue(i),
              dsn.node(dsn.regs()[i].node).width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            w.put(simulator.syncReadData(mi, p), m.width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (uint64_t a = 0; a < m.depth; ++a)
            w.put(simulator.memWord(mi, a), m.width);
    }
    return w.take();
}

StateSnapshot
ScanChains::decode(const std::vector<uint64_t> &bits) const
{
    // A wrong-length stream means a truncated capture or a capture from a
    // different design; mis-slicing it would silently scramble all state.
    uint64_t expectWords = (totalBits() + 63) / 64;
    if (bits.size() != expectWords) {
        fatal("scan chain bitstream has %zu words, expected %llu "
              "(%llu state bits): truncated capture or wrong design",
              bits.size(), (unsigned long long)expectWords,
              (unsigned long long)totalBits());
    }
    BitReader r(bits);
    StateSnapshot s;
    s.regValues.reserve(dsn.regs().size());
    for (const rtl::RegInfo &reg : dsn.regs())
        s.regValues.push_back(r.get(dsn.node(reg.node).width));

    s.syncReadData.resize(dsn.mems().size());
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            s.syncReadData[mi].push_back(r.get(m.width));
    }

    s.memContents.resize(dsn.mems().size());
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        s.memContents[mi].reserve(m.depth);
        for (uint64_t a = 0; a < m.depth; ++a)
            s.memContents[mi].push_back(r.get(m.width));
    }
    if (r.bitsRead() != totalBits())
        panic("scan chain decode consumed %llu of %llu bits",
              (unsigned long long)r.bitsRead(),
              (unsigned long long)totalBits());
    return s;
}

std::vector<uint64_t>
ScanChains::encode(const StateSnapshot &state) const
{
    BitWriter w;
    for (size_t i = 0; i < dsn.regs().size(); ++i)
        w.put(state.regValues.at(i), dsn.node(dsn.regs()[i].node).width);
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (!m.syncRead)
            continue;
        for (size_t p = 0; p < m.reads.size(); ++p)
            w.put(state.syncReadData.at(mi).at(p), m.width);
    }
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        for (uint64_t a = 0; a < m.depth; ++a)
            w.put(state.memContents.at(mi).at(a), m.width);
    }
    return w.take();
}

void
ScanChains::restore(sim::Simulator &simulator,
                    const StateSnapshot &state) const
{
    for (size_t i = 0; i < dsn.regs().size(); ++i)
        simulator.setRegValue(i, state.regValues.at(i));
    for (size_t mi = 0; mi < dsn.mems().size(); ++mi) {
        const rtl::MemInfo &m = dsn.mems()[mi];
        if (m.syncRead) {
            for (size_t p = 0; p < m.reads.size(); ++p)
                simulator.setSyncReadData(mi, p,
                                          state.syncReadData.at(mi).at(p));
        }
        for (uint64_t a = 0; a < m.depth; ++a)
            simulator.setMemWord(mi, a, state.memContents.at(mi).at(a));
    }
}

StateSnapshot
ScanChains::capture(const sim::Simulator &simulator, uint64_t cycle) const
{
    StateSnapshot s = decode(scanOut(simulator));
    s.cycle = cycle;
    return s;
}

lint::Diagnostics
verifyScanCoverage(const rtl::Design &design)
{
    lint::Diagnostics out;

    // The chain geometry reads node widths; a dangling register entry
    // (structural lint's finding) would crash it, so bail out first.
    for (size_t i = 0; i < design.regs().size(); ++i) {
        if (design.regs()[i].node >= design.numNodes()) {
            out.error("scan-coverage", design.regs()[i].node,
                      strfmt("reg[%zu]", i),
                      "register entry references a dangling node; "
                      "structural lint must pass first");
            return out;
        }
    }

    ScanChains chains(design);

    // Totals: the chains must account for every state bit, no more.
    if (chains.totalBits() != design.stateBits()) {
        out.error("scan-coverage", rtl::kNoNode, design.name(),
                  strfmt("chains cover %llu bits but the design has %llu "
                         "state bits",
                         (unsigned long long)chains.totalBits(),
                         (unsigned long long)design.stateBits()));
        return out;
    }

    // Exactly-once packing: fill a snapshot with a distinct pattern per
    // field, round-trip it through the packed bit stream, and require
    // every field back intact. Combined with the exact totals above,
    // a bit claimed twice (or dropped) cannot survive this.
    uint64_t seq = 0x243f6a8885a308d3ull;
    auto nextVal = [&](unsigned width) {
        seq = seq * 6364136223846793005ull + 1442695040888963407ull;
        return truncate(seq >> 16, width);
    };
    StateSnapshot pat;
    for (const rtl::RegInfo &r : design.regs())
        pat.regValues.push_back(nextVal(design.node(r.node).width));
    pat.syncReadData.resize(design.mems().size());
    pat.memContents.resize(design.mems().size());
    for (size_t mi = 0; mi < design.mems().size(); ++mi) {
        const rtl::MemInfo &m = design.mems()[mi];
        if (m.syncRead) {
            for (size_t p = 0; p < m.reads.size(); ++p)
                pat.syncReadData[mi].push_back(nextVal(m.width));
        }
        for (uint64_t a = 0; a < m.depth; ++a)
            pat.memContents[mi].push_back(nextVal(m.width));
    }

    std::vector<uint64_t> stream = chains.encode(pat);
    if (stream.size() != (chains.totalBits() + 63) / 64) {
        out.error("scan-coverage", rtl::kNoNode, design.name(),
                  strfmt("encoded stream is %zu words, expected %llu",
                         stream.size(),
                         (unsigned long long)((chains.totalBits() + 63) /
                                              64)));
        return out;
    }
    StateSnapshot back = chains.decode(stream);

    for (size_t i = 0; i < design.regs().size(); ++i) {
        if (back.regValues.at(i) != pat.regValues[i]) {
            out.error("scan-coverage", design.regs()[i].node,
                      design.node(design.regs()[i].node).name,
                      strfmt("register %zu not preserved by chain "
                             "round-trip", i));
        }
    }
    for (size_t mi = 0; mi < design.mems().size(); ++mi) {
        const rtl::MemInfo &m = design.mems()[mi];
        if (back.syncReadData.at(mi) != pat.syncReadData[mi]) {
            out.error("scan-coverage", rtl::kNoNode, m.name,
                      strfmt("memory '%s': sync read data not preserved "
                             "by chain round-trip", m.name.c_str()));
        }
        if (back.memContents.at(mi) != pat.memContents[mi]) {
            out.error("scan-coverage", rtl::kNoNode, m.name,
                      strfmt("memory '%s': contents not preserved by "
                             "chain round-trip", m.name.c_str()));
        }
    }
    return out;
}

} // namespace fame
} // namespace strober
