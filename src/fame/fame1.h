/**
 * @file
 * The FAME1 transform (paper Section IV-B1, Figure 3).
 *
 * Given an arbitrary target design, produce a token-based simulator
 * design: a single host-enable input gates every state element (the
 * "globally enabled mux before each register" of Figure 3 — gating the
 * write enable is logically identical to muxing the register's own output
 * back in, and is how the FIRRTL/MIDAS implementation does it too). The
 * host fires the simulator for one target cycle only when every input
 * channel has a token and every output channel has space; stalled host
 * cycles leave all target state frozen.
 */

#ifndef STROBER_FAME_FAME1_H
#define STROBER_FAME_FAME1_H

#include <string>
#include <vector>

#include "rtl/ir.h"

namespace strober {
namespace fame {

/** A target I/O port as seen by the token channels. */
struct PortInfo
{
    std::string name;
    unsigned width = 0;
    rtl::NodeId node = rtl::kNoNode; //!< node in the *transformed* design
};

/** Result of the FAME1 transform. */
struct Fame1Design
{
    rtl::Design design;              //!< transformed design
    rtl::NodeId hostEnable = rtl::kNoNode; //!< the added host_en input
    std::vector<PortInfo> targetInputs;    //!< original inputs (channelized)
    std::vector<PortInfo> targetOutputs;   //!< original outputs
};

/**
 * Apply the FAME1 transform to @p target. The returned design contains
 * the same registers and memories at the same indices (a property the
 * scan chains rely on), one extra input named "host_en", and AND gates
 * folding host_en into every state-element enable.
 */
Fame1Design fame1Transform(const rtl::Design &target);

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_FAME1_H
