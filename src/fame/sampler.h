/**
 * @file
 * Reservoir-sampled snapshot capture over a running token simulation
 * (paper Section III-B).
 *
 * The population is the stream of disjoint L-cycle intervals of the
 * target's execution; its length is unknown a priori, so the sampler
 * keeps a uniform n-subset via reservoir sampling. Each recorded interval
 * costs one scan-chain read-out plus L cycles of I/O tracing; element k
 * is recorded with probability n/k, so the overhead fades as the run
 * grows (Table III).
 *
 * Streaming: an optional SampleObserver receives every snapshot the
 * moment its L-cycle trace completes, plus an eviction notice whenever
 * reservoir replacement supersedes a previously published capture. This
 * is the seam the streaming replay pipeline (src/core/streaming.h) and
 * the farm stream feed (src/farm/stream.h) hang off so replay can
 * overlap the ongoing fast simulation. Slots hold shared_ptrs so an
 * in-flight replay of an evicted snapshot stays valid after the slot is
 * recaptured; with no observer installed the slot object is reused in
 * place, exactly the historical behavior.
 */

#ifndef STROBER_FAME_SAMPLER_H
#define STROBER_FAME_SAMPLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "stats/sampling.h"

namespace strober {
namespace fame {

/**
 * Receives streamed reservoir events. Generations count captures into a
 * slot (first capture = 1): a (slot, generation) pair names one capture
 * uniquely for the whole run, so consumers can match eviction notices
 * against work they queued. Callbacks run on the fast-sim thread inside
 * SnapshotSampler::poll(); keep them cheap.
 */
class SampleObserver
{
  public:
    virtual ~SampleObserver() = default;

    /** @p snap finished recording its L-cycle trace (complete == true).
     *  Published exactly once per capture, in capture order. The
     *  observer shares ownership; the pointer outlives any later
     *  eviction of the slot. */
    virtual void onSnapshotReady(size_t slot, uint64_t generation,
                                 std::shared_ptr<const ReplayableSnapshot>
                                     snap) = 0;

    /** The slot was recaptured: generation @p generation is superseded
     *  and must not contribute to the final report. Fired before the
     *  replacement capture begins. */
    virtual void onSlotEvicted(size_t slot, uint64_t generation) = 0;
};

/** Captures a reservoir of replayable snapshots from a TokenSimulator. */
class SnapshotSampler
{
  public:
    struct Config
    {
        size_t sampleSize = 30;       //!< n
        unsigned replayLength = 128;  //!< L
        uint64_t seed = 0x5eed5eedULL;
        bool enabled = true;          //!< false = measure-only runs
    };

    SnapshotSampler(const Fame1Design &fame, Config config)
        : cfg(config), chainMeta(fame.design),
          reservoir(config.sampleSize, config.seed)
    {
    }

    /**
     * Install (or clear, with nullptr) the streaming observer. Must not
     * change mid-recording; install before the run, clear after
     * flushPending(). The reservoir's record/replace decisions are
     * observer-independent, so a streamed run samples the identical
     * reservoir a phased run would.
     */
    void setObserver(SampleObserver *obs) { observer = obs; }

    /**
     * Call once per host cycle, *before* TokenSimulator::tryStep(). At
     * each L-cycle interval boundary this offers the interval to the
     * reservoir and, when recorded, captures a snapshot into its slot.
     */
    void
    poll(TokenSimulator &tsim)
    {
        if (!cfg.enabled)
            return;
        uint64_t cycle = tsim.targetCycles();
        uint64_t interval = cycle / cfg.replayLength;
        if (cycle % cfg.replayLength != 0 || interval < nextInterval)
            return;
        // A capture started at the previous boundary has recorded
        // exactly L fired cycles by now — publish it before this
        // boundary's offer can evict anything.
        flushPending();
        nextInterval = interval + 1;
        long slot = reservoir.offer();
        if (slot < 0)
            return;
        size_t s = static_cast<size_t>(slot);
        if (slotGen.size() <= s)
            slotGen.resize(s + 1, 0);
        auto &slotPtr = reservoir.sample()[s];
        if (slotPtr && observer) {
            // Streaming: the old capture may be queued or replaying
            // downstream. Hand consumers the eviction notice and give
            // the slot a fresh object so their shared_ptr stays valid.
            observer->onSlotEvicted(s, slotGen[s]);
            slotPtr.reset();
        }
        if (!slotPtr)
            slotPtr = std::make_shared<ReplayableSnapshot>();
        ++slotGen[s];
        if (observer) {
            pendingSlot = s;
            pendingGen = slotGen[s];
            pendingValid = true;
        }
        tsim.captureSnapshot(chainMeta, slotPtr.get(), cfg.replayLength);
    }

    /**
     * Publish the pending capture if its trace has completed. poll()
     * calls this at every boundary; call it once more after the run so
     * a capture that completed exactly at the final cycle is streamed.
     * Idempotent; a trailing *incomplete* capture is simply dropped
     * (snapshots() never returned it either).
     */
    void
    flushPending()
    {
        if (!pendingValid)
            return;
        const auto &ptr = reservoir.sample()[pendingSlot];
        if (observer && ptr && ptr->complete &&
            pendingGen == slotGen[pendingSlot]) {
            observer->onSnapshotReady(
                pendingSlot, pendingGen,
                std::shared_ptr<const ReplayableSnapshot>(ptr));
            pendingValid = false;
        } else if (ptr && ptr->complete) {
            pendingValid = false;
        }
    }

    const ScanChains &chains() const { return chainMeta; }
    const Config &config() const { return cfg; }

    /** Complete snapshots collected (incomplete trailing trace dropped). */
    std::vector<const ReplayableSnapshot *>
    snapshots() const
    {
        std::vector<const ReplayableSnapshot *> out;
        for (const auto &p : reservoir.sample()) {
            if (p && p->complete)
                out.push_back(p.get());
        }
        return out;
    }

    /**
     * Reservoir slot index of each snapshots() element, same order.
     * Streaming consumers join this against their (slot, generation)
     * keyed results to map final compacted sample indices back to the
     * work they replayed.
     */
    std::vector<size_t>
    completeSlots() const
    {
        std::vector<size_t> out;
        const auto &sample = reservoir.sample();
        for (size_t s = 0; s < sample.size(); ++s) {
            if (sample[s] && sample[s]->complete)
                out.push_back(s);
        }
        return out;
    }

    /** Capture generation currently occupying @p slot (0 = never). */
    uint64_t
    generationOf(size_t slot) const
    {
        return slot < slotGen.size() ? slotGen[slot] : 0;
    }

    /**
     * Mutable view of the complete snapshots, in the same order as
     * snapshots(). Exists for the fault-injection harness (src/inject),
     * which corrupts captured snapshots in place to prove the replay
     * pipeline quarantines them; production code has no business
     * mutating the reservoir.
     */
    std::vector<ReplayableSnapshot *>
    mutableSnapshots()
    {
        std::vector<ReplayableSnapshot *> out;
        for (auto &p : reservoir.sample()) {
            if (p && p->complete)
                out.push_back(p.get());
        }
        return out;
    }

    /** Number of record events (Table III "Record Counts"). */
    uint64_t recordCount() const { return reservoir.recordCount(); }
    /** Number of interval boundaries offered so far. */
    uint64_t intervalsSeen() const { return reservoir.elementsSeen(); }

  private:
    Config cfg;
    ScanChains chainMeta;
    stats::ReservoirSampler<std::shared_ptr<ReplayableSnapshot>> reservoir;
    uint64_t nextInterval = 0;

    SampleObserver *observer = nullptr;
    std::vector<uint64_t> slotGen; //!< captures into each slot so far
    size_t pendingSlot = 0;        //!< capture awaiting completion
    uint64_t pendingGen = 0;
    bool pendingValid = false;
};

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_SAMPLER_H
