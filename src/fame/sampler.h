/**
 * @file
 * Reservoir-sampled snapshot capture over a running token simulation
 * (paper Section III-B).
 *
 * The population is the stream of disjoint L-cycle intervals of the
 * target's execution; its length is unknown a priori, so the sampler
 * keeps a uniform n-subset via reservoir sampling. Each recorded interval
 * costs one scan-chain read-out plus L cycles of I/O tracing; element k
 * is recorded with probability n/k, so the overhead fades as the run
 * grows (Table III).
 */

#ifndef STROBER_FAME_SAMPLER_H
#define STROBER_FAME_SAMPLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "fame/scan_chain.h"
#include "fame/token_sim.h"
#include "stats/sampling.h"

namespace strober {
namespace fame {

/** Captures a reservoir of replayable snapshots from a TokenSimulator. */
class SnapshotSampler
{
  public:
    struct Config
    {
        size_t sampleSize = 30;       //!< n
        unsigned replayLength = 128;  //!< L
        uint64_t seed = 0x5eed5eedULL;
        bool enabled = true;          //!< false = measure-only runs
    };

    SnapshotSampler(const Fame1Design &fame, Config config)
        : cfg(config), chainMeta(fame.design),
          reservoir(config.sampleSize, config.seed)
    {
    }

    /**
     * Call once per host cycle, *before* TokenSimulator::tryStep(). At
     * each L-cycle interval boundary this offers the interval to the
     * reservoir and, when recorded, captures a snapshot into its slot.
     */
    void
    poll(TokenSimulator &tsim)
    {
        if (!cfg.enabled)
            return;
        uint64_t cycle = tsim.targetCycles();
        uint64_t interval = cycle / cfg.replayLength;
        if (cycle % cfg.replayLength != 0 || interval < nextInterval)
            return;
        nextInterval = interval + 1;
        long slot = reservoir.offer();
        if (slot < 0)
            return;
        auto &slotPtr = reservoir.sample()[static_cast<size_t>(slot)];
        if (!slotPtr)
            slotPtr = std::make_unique<ReplayableSnapshot>();
        tsim.captureSnapshot(chainMeta, slotPtr.get(), cfg.replayLength);
    }

    const ScanChains &chains() const { return chainMeta; }
    const Config &config() const { return cfg; }

    /** Complete snapshots collected (incomplete trailing trace dropped). */
    std::vector<const ReplayableSnapshot *>
    snapshots() const
    {
        std::vector<const ReplayableSnapshot *> out;
        for (const auto &p : reservoir.sample()) {
            if (p && p->complete)
                out.push_back(p.get());
        }
        return out;
    }

    /**
     * Mutable view of the complete snapshots, in the same order as
     * snapshots(). Exists for the fault-injection harness (src/inject),
     * which corrupts captured snapshots in place to prove the replay
     * pipeline quarantines them; production code has no business
     * mutating the reservoir.
     */
    std::vector<ReplayableSnapshot *>
    mutableSnapshots()
    {
        std::vector<ReplayableSnapshot *> out;
        for (auto &p : reservoir.sample()) {
            if (p && p->complete)
                out.push_back(p.get());
        }
        return out;
    }

    /** Number of record events (Table III "Record Counts"). */
    uint64_t recordCount() const { return reservoir.recordCount(); }
    /** Number of interval boundaries offered so far. */
    uint64_t intervalsSeen() const { return reservoir.elementsSeen(); }

  private:
    Config cfg;
    ScanChains chainMeta;
    stats::ReservoirSampler<std::unique_ptr<ReplayableSnapshot>> reservoir;
    uint64_t nextInterval = 0;
};

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_SAMPLER_H
