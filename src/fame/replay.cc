#include "fame/replay.h"

#include "sim/simulator.h"
#include "util/logging.h"

namespace strober {
namespace fame {

util::Result<ReplayResult>
replayOnRtl(const rtl::Design &target, const ScanChains &chains,
            const ReplayableSnapshot &snap)
{
    using util::ErrorCode;

    if (!snap.complete) {
        return util::errorf(ErrorCode::InvalidArgument,
                            "replaying an incomplete snapshot "
                            "(trace not finished)");
    }
    if (snap.outputTrace.size() != snap.inputTrace.size()) {
        return util::errorf(ErrorCode::GeometryMismatch,
                            "snapshot trace has %zu input cycles but %zu "
                            "output cycles",
                            snap.inputTrace.size(), snap.outputTrace.size());
    }

    sim::Simulator sim(target);
    chains.restore(sim, snap.state);

    ReplayResult result;
    for (size_t t = 0; t < snap.inputTrace.size(); ++t) {
        const auto &inputs = snap.inputTrace[t];
        if (inputs.size() != target.inputs().size()) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot trace has %zu inputs, design "
                                "has %zu",
                                inputs.size(), target.inputs().size());
        }
        for (size_t i = 0; i < inputs.size(); ++i)
            sim.poke(target.inputs()[i], inputs[i]);

        const auto &expected = snap.outputTrace[t];
        if (expected.size() != target.outputs().size()) {
            return util::errorf(ErrorCode::GeometryMismatch,
                                "snapshot trace has %zu outputs, design "
                                "has %zu",
                                expected.size(), target.outputs().size());
        }
        for (size_t o = 0; o < target.outputs().size(); ++o) {
            uint64_t got = sim.peek(target.outputs()[o].node);
            if (got != expected[o]) {
                ++result.outputMismatches;
                if (result.firstMismatch.empty()) {
                    result.firstMismatch = strfmt(
                        "cycle +%zu output '%s': got 0x%llx expected 0x%llx",
                        t, target.outputs()[o].name.c_str(),
                        (unsigned long long)got,
                        (unsigned long long)expected[o]);
                }
            }
        }
        sim.step();
        ++result.cyclesReplayed;
    }
    return result;
}

} // namespace fame
} // namespace strober
