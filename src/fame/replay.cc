#include "fame/replay.h"

#include "sim/simulator.h"
#include "util/logging.h"

namespace strober {
namespace fame {

ReplayResult
replayOnRtl(const rtl::Design &target, const ScanChains &chains,
            const ReplayableSnapshot &snap)
{
    if (!snap.complete)
        fatal("replaying an incomplete snapshot (trace not finished)");

    sim::Simulator sim(target);
    chains.restore(sim, snap.state);

    ReplayResult result;
    for (size_t t = 0; t < snap.inputTrace.size(); ++t) {
        const auto &inputs = snap.inputTrace[t];
        if (inputs.size() != target.inputs().size())
            fatal("snapshot trace has %zu inputs, design has %zu",
                  inputs.size(), target.inputs().size());
        for (size_t i = 0; i < inputs.size(); ++i)
            sim.poke(target.inputs()[i], inputs[i]);

        const auto &expected = snap.outputTrace[t];
        for (size_t o = 0; o < target.outputs().size(); ++o) {
            uint64_t got = sim.peek(target.outputs()[o].node);
            if (got != expected[o]) {
                ++result.outputMismatches;
                if (result.firstMismatch.empty()) {
                    result.firstMismatch = strfmt(
                        "cycle +%zu output '%s': got 0x%llx expected 0x%llx",
                        t, target.outputs()[o].name.c_str(),
                        (unsigned long long)got,
                        (unsigned long long)expected[o]);
                }
            }
        }
        sim.step();
        ++result.cyclesReplayed;
    }
    return result;
}

} // namespace fame
} // namespace strober
