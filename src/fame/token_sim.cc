#include "fame/token_sim.h"

#include "util/logging.h"

namespace strober {
namespace fame {

TokenSimulator::TokenSimulator(const Fame1Design &fame)
    : TokenSimulator(fame, Config())
{
}

TokenSimulator::TokenSimulator(const Fame1Design &fame, Config config)
    : fd(fame), cfg(config), sim(fame.design, config.backend)
{
    inputChannels.resize(fd.targetInputs.size());
    outputChannels.resize(fd.targetOutputs.size());
    inScratch.resize(fd.targetInputs.size());
    outScratch.resize(fd.targetOutputs.size());
    retimeRings.resize(fd.design.retimeRegions().size());
}

bool
TokenSimulator::canEnqueue(size_t port) const
{
    return inputChannels[port].size() < cfg.channelCapacity;
}

void
TokenSimulator::enqueueInput(size_t port, uint64_t token)
{
    if (!canEnqueue(port))
        fatal("input channel '%s' overflow",
              fd.targetInputs[port].name.c_str());
    inputChannels[port].push_back(token);
}

size_t
TokenSimulator::outputAvailable(size_t port) const
{
    return outputChannels[port].size();
}

uint64_t
TokenSimulator::dequeueOutput(size_t port)
{
    if (outputChannels[port].empty())
        fatal("output channel '%s' underflow",
              fd.targetOutputs[port].name.c_str());
    uint64_t token = outputChannels[port].front();
    outputChannels[port].pop_front();
    return token;
}

void
TokenSimulator::recordRetimeInputs()
{
    const auto &regions = fd.design.retimeRegions();
    for (size_t ri = 0; ri < regions.size(); ++ri) {
        const rtl::RetimeRegion &region = regions[ri];
        auto &ring = retimeRings[ri];
        // Recycle the entry about to age out of the ring so the
        // steady-state loop reuses its capacity instead of allocating.
        std::vector<uint64_t> inputs;
        if (ring.size() >= region.latency && !ring.empty()) {
            inputs = std::move(ring.front());
            ring.pop_front();
        }
        inputs.clear();
        inputs.reserve(region.inputs.size());
        for (rtl::NodeId id : region.inputs)
            inputs.push_back(sim.peek(id));
        ring.push_back(std::move(inputs));
        while (ring.size() > region.latency)
            ring.pop_front();
    }
}

bool
TokenSimulator::tryStep()
{
    ++hostCycleCount;

    bool ready = true;
    for (const auto &ch : inputChannels)
        ready = ready && !ch.empty();
    for (const auto &ch : outputChannels)
        ready = ready && ch.size() < cfg.channelCapacity;
    if (!ready) {
        // Stall: target state frozen (host_en = 0); nothing to evaluate.
        return false;
    }

    for (size_t i = 0; i < inputChannels.size(); ++i) {
        inScratch[i] = inputChannels[i].front();
        inputChannels[i].pop_front();
        sim.poke(fd.targetInputs[i].node, inScratch[i]);
    }
    sim.poke(fd.hostEnable, 1);

    // Record the retiming-region inputs *entering* this cycle.
    recordRetimeInputs();

    // Observe outputs for this cycle, then commit the edge.
    for (size_t i = 0; i < outputChannels.size(); ++i) {
        outScratch[i] = sim.peek(fd.targetOutputs[i].node);
        outputChannels[i].push_back(outScratch[i]);
    }
    sim.step();
    ++firedCycles;

    if (activeSnap) {
        activeSnap->inputTrace.push_back(inScratch);
        activeSnap->outputTrace.push_back(outScratch);
        if (--remainingTrace == 0) {
            activeSnap->complete = true;
            activeSnap = nullptr;
        }
    }
    return true;
}

void
TokenSimulator::captureSnapshot(const ScanChains &chains,
                                ReplayableSnapshot *snap,
                                unsigned replayLength)
{
    if (activeSnap)
        fatal("snapshot capture while a trace is still recording");
    if (replayLength == 0)
        fatal("replay length must be positive");

    *snap = ReplayableSnapshot{};
    snap->state = chains.capture(sim, firedCycles);

    // The paper stalls the target while chains shift out (Section V-B).
    hostCycleCount += chains.captureHostCycles();

    const auto &regions = fd.design.retimeRegions();
    snap->retimeHistory.resize(regions.size());
    for (size_t ri = 0; ri < regions.size(); ++ri) {
        snap->retimeHistory[ri].assign(retimeRings[ri].begin(),
                                       retimeRings[ri].end());
    }

    snap->inputTrace.reserve(replayLength);
    snap->outputTrace.reserve(replayLength);
    activeSnap = snap;
    remainingTrace = replayLength;
}

} // namespace fame
} // namespace strober
