/**
 * @file
 * RTL-level snapshot replay: load a replayable snapshot into a fresh
 * simulator of the *original* target design, drive the recorded input
 * tokens, and verify the outputs against the recorded output tokens
 * (paper Section III-B: "outputs are verified against the output values
 * of the design"). The gate-level variant lives in src/gate/replay.
 */

#ifndef STROBER_FAME_REPLAY_H
#define STROBER_FAME_REPLAY_H

#include <string>

#include "fame/token_sim.h"
#include "rtl/ir.h"
#include "util/status.h"

namespace strober {
namespace fame {

/** Outcome of replaying one snapshot. */
struct ReplayResult
{
    uint64_t cyclesReplayed = 0;
    uint64_t outputMismatches = 0;
    std::string firstMismatch; //!< human-readable diagnostic, if any

    bool ok() const { return outputMismatches == 0; }
};

/**
 * Replay @p snap on an RTL simulation of @p target. @p chains must have
 * been built over a design with identical state layout (the FAME1
 * transform preserves it). Fails with InvalidArgument for an incomplete
 * snapshot and GeometryMismatch when the trace shape does not fit the
 * design; output mismatches are data (ReplayResult), not errors — the
 * caller decides whether to quarantine.
 */
util::Result<ReplayResult> replayOnRtl(const rtl::Design &target,
                                       const ScanChains &chains,
                                       const ReplayableSnapshot &snap);

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_REPLAY_H
