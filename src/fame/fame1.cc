#include "fame/fame1.h"

#include "lint/lint.h"
#include "util/logging.h"

namespace strober {
namespace fame {

using rtl::Design;
using rtl::kNoNode;
using rtl::Node;
using rtl::NodeId;
using rtl::Op;

Fame1Design
fame1Transform(const rtl::Design &target)
{
    Fame1Design out;
    out.design = target; // deep copy; state indices preserved
    Design &d = out.design;

    if (d.findInput("host_en") != kNoNode)
        fatal("design already has a host_en input; is it FAME1-transformed "
              "twice?");

    // Lint the target before touching it: a malformed netlist produces a
    // full structured report here rather than a confusing failure deep in
    // the transformed design.
    {
        lint::Options opts;
        opts.minSeverity = lint::Severity::Error;
        lint::Diagnostics diags = lint::run(target, opts);
        if (diags.hasErrors()) {
            fatal("FAME1 target '%s' failed lint with %zu error(s):\n%s",
                  target.name().c_str(), diags.errorCount(),
                  diags.str().c_str());
        }
    }

    Node en;
    en.op = Op::Input;
    en.width = 1;
    en.name = "host_en";
    en.aux = static_cast<uint32_t>(d.inputs().size());
    out.hostEnable = d.addNode(std::move(en));
    d.inputs().push_back(out.hostEnable);

    auto gate = [&](NodeId oldEn) -> NodeId {
        if (oldEn == kNoNode)
            return out.hostEnable;
        Node andNode;
        andNode.op = Op::And;
        andNode.width = 1;
        andNode.args[0] = oldEn;
        andNode.args[1] = out.hostEnable;
        return d.addNode(std::move(andNode));
    };

    for (rtl::RegInfo &r : d.regs())
        r.en = gate(r.en);
    for (rtl::MemInfo &m : d.mems()) {
        for (rtl::MemWritePort &w : m.writes)
            w.en = gate(w.en);
        if (m.syncRead) {
            for (rtl::MemReadPort &p : m.reads)
                p.en = gate(p.en);
        }
    }

    // Record the channelized target ports (everything except host_en).
    for (NodeId id : target.inputs()) {
        const Node &n = target.node(id);
        out.targetInputs.push_back({n.name, n.width, id});
    }
    for (const rtl::OutputPort &o : target.outputs())
        out.targetOutputs.push_back({o.name, target.node(o.node).width,
                                     o.node});

    d.check();

    // Cross-layer self-verification: every state element of the result
    // must be gated by host_en. Failure here is a bug in this transform,
    // not in the caller's design.
    lint::Diagnostics gating = lint::verifyFame1Gating(d, out.hostEnable);
    if (gating.hasErrors()) {
        panic("FAME1 transform produced unguarded state:\n%s",
              gating.str().c_str());
    }
    return out;
}

} // namespace fame
} // namespace strober
