#include "fame/snapshot_io.h"

#include <istream>
#include <ostream>

#include "util/logging.h"

namespace strober {
namespace fame {

namespace {

constexpr uint64_t kMagic = 0x53545242534e5031ull; // "STRBSNP1"
constexpr uint32_t kVersion = 1;

void
putU64(std::ostream &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.put(static_cast<char>(v >> (8 * i)));
}

uint64_t
getU64(std::istream &in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        int c = in.get();
        if (c < 0)
            fatal("snapshot stream truncated");
        v |= static_cast<uint64_t>(c & 0xff) << (8 * i);
    }
    return v;
}

void
putVec(std::ostream &out, const std::vector<uint64_t> &v)
{
    putU64(out, v.size());
    for (uint64_t x : v)
        putU64(out, x);
}

std::vector<uint64_t>
getVec(std::istream &in)
{
    uint64_t n = getU64(in);
    if (n > (1ull << 32))
        fatal("snapshot stream corrupt (vector length %llu)",
              (unsigned long long)n);
    std::vector<uint64_t> v(n);
    for (uint64_t &x : v)
        x = getU64(in);
    return v;
}

} // namespace

void
writeSnapshot(std::ostream &out, const ScanChains &chains,
              const ReplayableSnapshot &snap)
{
    if (!snap.complete)
        fatal("refusing to serialize an incomplete snapshot");
    putU64(out, kMagic);
    putU64(out, kVersion);
    putU64(out, chains.totalBits());
    putU64(out, snap.state.cycle);

    // State as the scan-chain bit stream.
    putVec(out, chains.encode(snap.state));

    // I/O traces.
    putU64(out, snap.inputTrace.size());
    putU64(out, snap.inputTrace.empty() ? 0 : snap.inputTrace[0].size());
    for (const auto &cycleTokens : snap.inputTrace)
        for (uint64_t t : cycleTokens)
            putU64(out, t);
    putU64(out, snap.outputTrace.empty() ? 0 : snap.outputTrace[0].size());
    for (const auto &cycleTokens : snap.outputTrace)
        for (uint64_t t : cycleTokens)
            putU64(out, t);

    // Retiming histories.
    putU64(out, snap.retimeHistory.size());
    for (const auto &region : snap.retimeHistory) {
        putU64(out, region.size());
        putU64(out, region.empty() ? 0 : region[0].size());
        for (const auto &cycleVals : region)
            for (uint64_t v : cycleVals)
                putU64(out, v);
    }
}

ReplayableSnapshot
readSnapshot(std::istream &in, const ScanChains &chains)
{
    if (getU64(in) != kMagic)
        fatal("not a strober snapshot (bad magic)");
    if (getU64(in) != kVersion)
        fatal("unsupported snapshot version");
    uint64_t bits = getU64(in);
    if (bits != chains.totalBits())
        fatal("snapshot was captured from a different design "
              "(%llu state bits, design has %llu)",
              (unsigned long long)bits,
              (unsigned long long)chains.totalBits());

    ReplayableSnapshot snap;
    uint64_t cycle = getU64(in);

    // The chain bit stream must be exactly the word count the design's
    // geometry implies; a shorter or longer vector means a corrupt or
    // hand-edited file (decode() would mis-slice every field after the
    // first missing word).
    std::vector<uint64_t> stateWords = getVec(in);
    uint64_t expectWords = (bits + 63) / 64;
    if (stateWords.size() != expectWords) {
        fatal("snapshot stream corrupt: state is %zu words, design needs "
              "%llu", stateWords.size(), (unsigned long long)expectWords);
    }
    snap.state = chains.decode(stateWords);
    snap.state.cycle = cycle;

    // Dimension sanity bounds: a corrupted count would otherwise drive a
    // multi-gigabyte allocation before the stream underruns.
    constexpr uint64_t kMaxDim = 1ull << 32;
    uint64_t length = getU64(in);
    uint64_t numInputs = getU64(in);
    if (length > kMaxDim || numInputs > kMaxDim)
        fatal("snapshot stream corrupt: input trace %llu x %llu",
              (unsigned long long)length, (unsigned long long)numInputs);
    snap.inputTrace.resize(length);
    for (auto &cycleTokens : snap.inputTrace) {
        cycleTokens.resize(numInputs);
        for (uint64_t &t : cycleTokens)
            t = getU64(in);
    }
    uint64_t numOutputs = getU64(in);
    if (numOutputs > kMaxDim)
        fatal("snapshot stream corrupt: %llu outputs per cycle",
              (unsigned long long)numOutputs);
    snap.outputTrace.resize(length);
    for (auto &cycleTokens : snap.outputTrace) {
        cycleTokens.resize(numOutputs);
        for (uint64_t &t : cycleTokens)
            t = getU64(in);
    }

    uint64_t regions = getU64(in);
    if (regions > kMaxDim)
        fatal("snapshot stream corrupt: %llu retime regions",
              (unsigned long long)regions);
    snap.retimeHistory.resize(regions);
    for (auto &region : snap.retimeHistory) {
        uint64_t depth = getU64(in);
        uint64_t width = getU64(in);
        if (depth > kMaxDim || width > kMaxDim)
            fatal("snapshot stream corrupt: retime history %llu x %llu",
                  (unsigned long long)depth, (unsigned long long)width);
        region.resize(depth);
        for (auto &cycleVals : region) {
            cycleVals.resize(width);
            for (uint64_t &v : cycleVals)
                v = getU64(in);
        }
    }
    snap.complete = true;
    return snap;
}

} // namespace fame
} // namespace strober
