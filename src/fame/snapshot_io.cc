#include "fame/snapshot_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/crc32.h"

namespace strober {
namespace fame {

namespace {

using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

constexpr uint64_t kMagicV1 = 0x53545242534e5031ull; // "STRBSNP1"
constexpr uint64_t kMagicV2 = 0x53545242534e5032ull; // "STRBSNP2"

// Dimension sanity bound: a corrupted count would otherwise drive a
// multi-gigabyte allocation before the stream underruns.
constexpr uint64_t kMaxDim = 1ull << 32;

/** Streams integers out while folding their bytes into a section CRC. */
class SectionWriter
{
  public:
    explicit SectionWriter(std::ostream &out,
                           std::vector<uint32_t> *crcLog = nullptr)
        : out(out), crcLog(crcLog)
    {
    }

    void
    u64(uint64_t v)
    {
        char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<char>(v >> (8 * i));
        out.write(bytes, 8);
        crc = util::crc32Update(crc, bytes, 8);
    }

    void
    vec(const std::vector<uint64_t> &v)
    {
        u64(v.size());
        for (uint64_t x : v)
            u64(x);
    }

    /** Close the current section: write its CRC and start the next. */
    void
    endSection()
    {
        uint32_t c = crc;
        char bytes[4];
        for (int i = 0; i < 4; ++i)
            bytes[i] = static_cast<char>(c >> (8 * i));
        out.write(bytes, 4);
        if (crcLog)
            crcLog->push_back(c);
        crc = 0;
    }

  private:
    std::ostream &out;
    std::vector<uint32_t> *crcLog;
    uint32_t crc = 0;
};

/**
 * Streams integers in while folding their bytes into a section CRC.
 * Truncation sets a sticky failed flag (checked at section ends) so the
 * decode logic stays linear instead of branching on every read.
 */
class SectionReader
{
  public:
    explicit SectionReader(std::istream &in) : in(in) {}

    uint64_t
    u64()
    {
        char bytes[8];
        if (!in.read(bytes, 8)) {
            failed = true;
            return 0;
        }
        crc = util::crc32Update(crc, bytes, 8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i]))
                 << (8 * i);
        return v;
    }

    /** Verify the section CRC written by SectionWriter::endSection. */
    Status
    endSection(const char *what)
    {
        char bytes[4];
        if (failed || !in.read(bytes, 4))
            return errorf(ErrorCode::Corrupt,
                          "snapshot stream truncated in %s section", what);
        uint32_t stored = 0;
        for (int i = 0; i < 4; ++i)
            stored |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
                      << (8 * i);
        if (stored != crc) {
            return errorf(ErrorCode::Corrupt,
                          "snapshot %s section CRC mismatch "
                          "(stored 0x%08x, computed 0x%08x)",
                          what, stored, crc);
        }
        crc = 0;
        return Status::ok();
    }

    bool truncated() const { return failed; }

  private:
    std::istream &in;
    uint32_t crc = 0;
    bool failed = false;
};

} // namespace

namespace {

Status
writeSnapshotLogged(std::ostream &out, const ScanChains &chains,
                    const ReplayableSnapshot &snap,
                    std::vector<uint32_t> *crcLog)
{
    if (!snap.complete) {
        return errorf(ErrorCode::InvalidArgument,
                      "refusing to serialize an incomplete snapshot "
                      "(trace not finished)");
    }

    SectionWriter w(out, crcLog);

    // Header section.
    w.u64(kMagicV2);
    w.u64(kSnapshotFormatVersion);
    w.u64(chains.totalBits());
    w.u64(snap.state.cycle);
    w.endSection();

    // State as the scan-chain bit stream.
    w.vec(chains.encode(snap.state));
    w.endSection();

    // Input trace.
    w.u64(snap.inputTrace.size());
    w.u64(snap.inputTrace.empty() ? 0 : snap.inputTrace[0].size());
    for (const auto &cycleTokens : snap.inputTrace)
        for (uint64_t t : cycleTokens)
            w.u64(t);
    w.endSection();

    // Output trace.
    w.u64(snap.outputTrace.empty() ? 0 : snap.outputTrace[0].size());
    for (const auto &cycleTokens : snap.outputTrace)
        for (uint64_t t : cycleTokens)
            w.u64(t);
    w.endSection();

    // Retiming histories.
    w.u64(snap.retimeHistory.size());
    for (const auto &region : snap.retimeHistory) {
        w.u64(region.size());
        w.u64(region.empty() ? 0 : region[0].size());
        for (const auto &cycleVals : region)
            for (uint64_t v : cycleVals)
                w.u64(v);
    }
    w.endSection();

    out.flush();
    if (!out) {
        return errorf(ErrorCode::IoError,
                      "snapshot write failed (stream error; disk full?)");
    }
    return Status::ok();
}

} // namespace

Status
writeSnapshot(std::ostream &out, const ScanChains &chains,
              const ReplayableSnapshot &snap)
{
    return writeSnapshotLogged(out, chains, snap, nullptr);
}

Result<SnapshotDigest>
snapshotDigest(const ScanChains &chains, const ReplayableSnapshot &snap)
{
    std::ostringstream buf(std::ios::binary);
    std::vector<uint32_t> crcs;
    Status st = writeSnapshotLogged(buf, chains, snap, &crcs);
    if (!st.isOk())
        return st;
    if (crcs.size() != SnapshotDigest::kSections) {
        return errorf(ErrorCode::InvalidArgument,
                      "snapshot serialized to %zu sections, format has %zu",
                      crcs.size(), SnapshotDigest::kSections);
    }
    SnapshotDigest digest;
    for (size_t i = 0; i < SnapshotDigest::kSections; ++i)
        digest.section[i] = crcs[i];
    return digest;
}

Result<ReplayableSnapshot>
readSnapshot(std::istream &in, const ScanChains &chains)
{
    SectionReader r(in);

    // Header section.
    uint64_t magic = r.u64();
    if (r.truncated())
        return errorf(ErrorCode::Corrupt, "snapshot stream truncated "
                                          "before the magic number");
    if (magic == kMagicV1) {
        return errorf(ErrorCode::Unsupported,
                      "version-1 snapshot (no integrity sections); "
                      "re-capture with this version");
    }
    if (magic != kMagicV2)
        return errorf(ErrorCode::Corrupt, "not a strober snapshot "
                                          "(bad magic)");
    uint64_t version = r.u64();
    if (version != kSnapshotFormatVersion) {
        return errorf(ErrorCode::Unsupported,
                      "unsupported snapshot version %llu (expected %u)",
                      (unsigned long long)version, kSnapshotFormatVersion);
    }
    uint64_t bits = r.u64();
    uint64_t cycle = r.u64();
    if (Status st = r.endSection("header"); !st.isOk())
        return st;
    if (bits != chains.totalBits()) {
        return errorf(ErrorCode::GeometryMismatch,
                      "snapshot was captured from a different design "
                      "(%llu state bits, design has %llu)",
                      (unsigned long long)bits,
                      (unsigned long long)chains.totalBits());
    }

    ReplayableSnapshot snap;

    // State section. The chain bit stream must be exactly the word count
    // the design's geometry implies; a shorter or longer vector means a
    // corrupt or hand-edited file (decode() would mis-slice every field
    // after the first missing word).
    uint64_t stateCount = r.u64();
    uint64_t expectWords = (bits + 63) / 64;
    if (stateCount != expectWords) {
        return errorf(ErrorCode::Corrupt,
                      "snapshot stream corrupt: state is %llu words, "
                      "design needs %llu",
                      (unsigned long long)stateCount,
                      (unsigned long long)expectWords);
    }
    std::vector<uint64_t> stateWords(stateCount);
    for (uint64_t &x : stateWords)
        x = r.u64();
    if (Status st = r.endSection("state"); !st.isOk())
        return st;
    snap.state = chains.decode(stateWords);
    snap.state.cycle = cycle;

    // Input trace section.
    uint64_t length = r.u64();
    uint64_t numInputs = r.u64();
    if (length > kMaxDim || numInputs > kMaxDim) {
        return errorf(ErrorCode::Corrupt,
                      "snapshot stream corrupt: input trace %llu x %llu",
                      (unsigned long long)length,
                      (unsigned long long)numInputs);
    }
    snap.inputTrace.resize(length);
    for (auto &cycleTokens : snap.inputTrace) {
        cycleTokens.resize(numInputs);
        for (uint64_t &t : cycleTokens)
            t = r.u64();
    }
    if (Status st = r.endSection("input-trace"); !st.isOk())
        return st;

    // Output trace section.
    uint64_t numOutputs = r.u64();
    if (numOutputs > kMaxDim) {
        return errorf(ErrorCode::Corrupt,
                      "snapshot stream corrupt: %llu outputs per cycle",
                      (unsigned long long)numOutputs);
    }
    snap.outputTrace.resize(length);
    for (auto &cycleTokens : snap.outputTrace) {
        cycleTokens.resize(numOutputs);
        for (uint64_t &t : cycleTokens)
            t = r.u64();
    }
    if (Status st = r.endSection("output-trace"); !st.isOk())
        return st;

    // Retiming history section.
    uint64_t regions = r.u64();
    if (regions > kMaxDim) {
        return errorf(ErrorCode::Corrupt,
                      "snapshot stream corrupt: %llu retime regions",
                      (unsigned long long)regions);
    }
    snap.retimeHistory.resize(regions);
    for (auto &region : snap.retimeHistory) {
        uint64_t depth = r.u64();
        uint64_t width = r.u64();
        if (depth > kMaxDim || width > kMaxDim) {
            return errorf(ErrorCode::Corrupt,
                          "snapshot stream corrupt: retime history "
                          "%llu x %llu",
                          (unsigned long long)depth,
                          (unsigned long long)width);
        }
        region.resize(depth);
        for (auto &cycleVals : region) {
            cycleVals.resize(width);
            for (uint64_t &v : cycleVals)
                v = r.u64();
        }
    }
    if (Status st = r.endSection("retime-history"); !st.isOk())
        return st;

    snap.complete = true;
    return snap;
}

Status
writeSnapshotFile(const std::string &path, const ScanChains &chains,
                  const ReplayableSnapshot &snap)
{
    namespace fs = std::filesystem;
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return errorf(ErrorCode::IoError, "cannot create '%s'",
                          tmp.c_str());
        }
        Status st = writeSnapshot(out, chains, snap);
        if (!st.isOk()) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return st;
        }
        out.close();
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return errorf(ErrorCode::IoError,
                          "closing '%s' failed (disk full?)", tmp.c_str());
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return errorf(ErrorCode::IoError, "renaming '%s' -> '%s': %s",
                      tmp.c_str(), path.c_str(), ec.message().c_str());
    }
    return Status::ok();
}

Result<ReplayableSnapshot>
readSnapshotFile(const std::string &path, const ScanChains &chains)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorf(ErrorCode::IoError, "cannot open '%s'", path.c_str());
    Result<ReplayableSnapshot> result = readSnapshot(in, chains);
    if (!result.isOk()) {
        return Status(result.status().code(),
                      path + ": " + result.status().message());
    }
    return result;
}

} // namespace fame
} // namespace strober
