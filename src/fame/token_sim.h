/**
 * @file
 * Token-based (synchronous-dataflow) simulation of a FAME1-transformed
 * design, plus replayable-snapshot capture (paper Sections III-B, IV-B).
 *
 * Every target I/O port is wrapped in a bounded token channel. The
 * simulated target advances one cycle only when every input channel has a
 * token and every output channel has space; otherwise the host cycle is a
 * stall with all target state frozen (host_en = 0). This is the decoupling
 * that lets the paper host the memory system and I/O devices outside the
 * FPGA fabric.
 *
 * A replayable RTL snapshot is (a) the scan-chain state at some cycle c,
 * (b) the I/O token trace for cycles [c, c+L), and (c) for each annotated
 * retiming region, the region-input history for cycles [c-n, c) needed to
 * warm the retimed registers before replay (Section IV-C3).
 */

#ifndef STROBER_FAME_TOKEN_SIM_H
#define STROBER_FAME_TOKEN_SIM_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fame/fame1.h"
#include "fame/scan_chain.h"
#include "sim/simulator.h"

namespace strober {
namespace fame {

/** A complete replayable RTL snapshot. */
struct ReplayableSnapshot
{
    StateSnapshot state;
    /** Input tokens per replay cycle: inputTrace[t][port]. */
    std::vector<std::vector<uint64_t>> inputTrace;
    /** Expected output tokens per replay cycle: outputTrace[t][port]. */
    std::vector<std::vector<uint64_t>> outputTrace;
    /** Region-input history: retimeHistory[region][t][input], t over the
     *  n cycles immediately before the capture cycle (oldest first). */
    std::vector<std::vector<std::vector<uint64_t>>> retimeHistory;
    bool complete = false; //!< trace fully collected

    uint64_t cycle() const { return state.cycle; }
    uint64_t replayLength() const { return inputTrace.size(); }
};

/** Executes a Fame1Design under token-channel flow control. */
class TokenSimulator
{
  public:
    struct Config
    {
        size_t channelCapacity = 8;
        /** Evaluation backend of the underlying fast simulator. */
        sim::Backend backend = sim::Backend::InterpretedFull;
    };

    explicit TokenSimulator(const Fame1Design &fame);
    TokenSimulator(const Fame1Design &fame, Config config);

    const Fame1Design &fame() const { return fd; }
    sim::Simulator &simulator() { return sim; }

    size_t numInputs() const { return fd.targetInputs.size(); }
    size_t numOutputs() const { return fd.targetOutputs.size(); }

    /** @return true if input channel @p port can accept a token. */
    bool canEnqueue(size_t port) const;
    /** Push one token into input channel @p port (fatal when full). */
    void enqueueInput(size_t port, uint64_t token);
    /** Tokens waiting in output channel @p port. */
    size_t outputAvailable(size_t port) const;
    /** Pop one token from output channel @p port (fatal when empty). */
    uint64_t dequeueOutput(size_t port);

    /**
     * Advance one host cycle. Fires the target for one cycle if all input
     * tokens are present and all output channels have space; otherwise
     * stalls with state frozen. @return true if the target advanced.
     */
    bool tryStep();

    uint64_t targetCycles() const { return firedCycles; }
    uint64_t hostCycles() const { return hostCycleCount; }
    /** Account extra stalled host cycles (host-side device service). */
    void addHostStallCycles(uint64_t cycles) { hostCycleCount += cycles; }

    // --- Snapshot capture --------------------------------------------------
    /**
     * Capture the scan-chain state and retime history into @p snap and
     * start recording the next @p replayLength fired cycles of I/O into
     * its trace. Accounts the scan read-out as stalled host cycles.
     * Only one recording may be active at a time.
     */
    void captureSnapshot(const ScanChains &chains, ReplayableSnapshot *snap,
                         unsigned replayLength);

    /** @return true while a snapshot trace is still being recorded. */
    bool recording() const { return activeSnap != nullptr; }

  private:
    const Fame1Design &fd;
    Config cfg;
    sim::Simulator sim;
    std::vector<std::deque<uint64_t>> inputChannels;
    std::vector<std::deque<uint64_t>> outputChannels;
    // Per-cycle token scratch, sized once at construction: the fired-
    // cycle hot loop must not allocate (tokens are copied out only
    // while a snapshot trace is recording).
    std::vector<uint64_t> inScratch;
    std::vector<uint64_t> outScratch;
    uint64_t firedCycles = 0;
    uint64_t hostCycleCount = 0;

    // Retiming support: per-region ring of recent input values.
    std::vector<std::deque<std::vector<uint64_t>>> retimeRings;

    ReplayableSnapshot *activeSnap = nullptr;
    unsigned remainingTrace = 0;

    void recordRetimeInputs();
};

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_TOKEN_SIM_H
