file(REMOVE_RECURSE
  "libstrober_fame.a"
)
