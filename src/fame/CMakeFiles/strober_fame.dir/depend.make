# Empty dependencies file for strober_fame.
# This may be replaced when dependencies are built.
