file(REMOVE_RECURSE
  "CMakeFiles/strober_fame.dir/fame1.cc.o"
  "CMakeFiles/strober_fame.dir/fame1.cc.o.d"
  "CMakeFiles/strober_fame.dir/replay.cc.o"
  "CMakeFiles/strober_fame.dir/replay.cc.o.d"
  "CMakeFiles/strober_fame.dir/scan_chain.cc.o"
  "CMakeFiles/strober_fame.dir/scan_chain.cc.o.d"
  "CMakeFiles/strober_fame.dir/snapshot_io.cc.o"
  "CMakeFiles/strober_fame.dir/snapshot_io.cc.o.d"
  "CMakeFiles/strober_fame.dir/token_sim.cc.o"
  "CMakeFiles/strober_fame.dir/token_sim.cc.o.d"
  "libstrober_fame.a"
  "libstrober_fame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_fame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
