
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fame/fame1.cc" "src/fame/CMakeFiles/strober_fame.dir/fame1.cc.o" "gcc" "src/fame/CMakeFiles/strober_fame.dir/fame1.cc.o.d"
  "/root/repo/src/fame/replay.cc" "src/fame/CMakeFiles/strober_fame.dir/replay.cc.o" "gcc" "src/fame/CMakeFiles/strober_fame.dir/replay.cc.o.d"
  "/root/repo/src/fame/scan_chain.cc" "src/fame/CMakeFiles/strober_fame.dir/scan_chain.cc.o" "gcc" "src/fame/CMakeFiles/strober_fame.dir/scan_chain.cc.o.d"
  "/root/repo/src/fame/snapshot_io.cc" "src/fame/CMakeFiles/strober_fame.dir/snapshot_io.cc.o" "gcc" "src/fame/CMakeFiles/strober_fame.dir/snapshot_io.cc.o.d"
  "/root/repo/src/fame/token_sim.cc" "src/fame/CMakeFiles/strober_fame.dir/token_sim.cc.o" "gcc" "src/fame/CMakeFiles/strober_fame.dir/token_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/rtl/CMakeFiles/strober_rtl.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/strober_sim.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/strober_stats.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  "/root/repo/src/codegen/CMakeFiles/strober_codegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
