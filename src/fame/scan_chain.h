/**
 * @file
 * Scan-chain state snapshotting (paper Section IV-B2, Figure 3).
 *
 * Strober reads a design's full state off the FPGA through inserted scan
 * chains: a register chain that latches every flip-flop, and per-RAM
 * chains that sweep an address generator across each memory, copying one
 * word per readout beat. We reproduce the same data path: a snapshot is
 * serialized to (and restored from) the exact packed bit string the
 * chains would shift out, in chain order, and the chain geometry gives
 * the host-cycle cost of a capture (which feeds Table III's sampling
 * overhead and the Section IV-E performance model).
 */

#ifndef STROBER_FAME_SCAN_CHAIN_H
#define STROBER_FAME_SCAN_CHAIN_H

#include <cstdint>
#include <vector>

#include "lint/diagnostics.h"
#include "rtl/ir.h"
#include "sim/simulator.h"

namespace strober {
namespace fame {

/**
 * The decoded content of one replayable RTL snapshot's *state* part
 * (the I/O trace part lives in ReplayableSnapshot; see token_sim.h).
 */
struct StateSnapshot
{
    uint64_t cycle = 0;                             //!< capture cycle
    std::vector<uint64_t> regValues;                //!< by register index
    std::vector<std::vector<uint64_t>> memContents; //!< by memory index
    std::vector<std::vector<uint64_t>> syncReadData; //!< [mem][port]
};

/**
 * Chain geometry for one design plus serialize/deserialize/restore.
 * Chain order: registers (design order), then each memory's sync
 * read-data registers, then each memory's contents in address order.
 */
class ScanChains
{
  public:
    explicit ScanChains(const rtl::Design &design);

    /** Flip-flop chain length in bits (registers + sync read data). */
    uint64_t regChainBits() const { return regBits; }
    /** Total RAM chain bits across all memories. */
    uint64_t ramChainBits() const { return ramBits; }
    uint64_t totalBits() const { return regBits + ramBits; }

    /**
     * Host cycles needed to shift one snapshot out through @p daisyWidth
     * parallel chains (the paper reads chains out through the host
     * interface word by word).
     */
    uint64_t captureHostCycles(unsigned daisyWidth = 32) const;

    /** Shift the simulator's state out as a packed chain bit stream. */
    std::vector<uint64_t> scanOut(const sim::Simulator &simulator) const;

    /**
     * Decode a chain bit stream into structured state. The stream must be
     * exactly ceil(totalBits() / 64) words: a wrong-length stream (a
     * truncated capture, or a capture from a different design) is a user
     * error reported via fatal(), not silently mis-sliced state.
     */
    StateSnapshot decode(const std::vector<uint64_t> &bits) const;

    /** Encode structured state back into a chain bit stream. */
    std::vector<uint64_t> encode(const StateSnapshot &state) const;

    /** Load structured state into a simulator (RTL-level replay). */
    void restore(sim::Simulator &simulator, const StateSnapshot &state) const;

    /** Capture convenience: scanOut + decode + stamp cycle. */
    StateSnapshot capture(const sim::Simulator &simulator,
                          uint64_t cycle) const;

  private:
    const rtl::Design &dsn;
    uint64_t regBits = 0;
    uint64_t ramBits = 0;
};

/**
 * Cross-layer verification pass (rule "scan-coverage", lint framework
 * severity Error): every register bit, sync read-data bit and memory
 * content bit of @p design appears exactly once across the scan chains.
 * Checks the chain totals against Design::stateBits() and proves the
 * exactly-once packing by round-tripping a distinct-pattern StateSnapshot
 * through encode() + decode(). Lives here rather than in src/lint because
 * it needs the chain geometry.
 */
lint::Diagnostics verifyScanCoverage(const rtl::Design &design);

} // namespace fame
} // namespace strober

#endif // STROBER_FAME_SCAN_CHAIN_H
