#include "service/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace strober {
namespace service {

using farm::wire::Reader;
using farm::wire::Writer;
using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

Result<int>
ServiceClient::connect()
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return errorf(ErrorCode::IoError, "socket failed: %s",
                      std::strerror(errno));
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return errorf(ErrorCode::InvalidArgument,
                      "socket path '%s' is too long", path.c_str());
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int err = errno;
        ::close(fd);
        return errorf(ErrorCode::IoError,
                      "cannot reach daemon at '%s': %s", path.c_str(),
                      std::strerror(err));
    }
    return fd;
}

Result<Reader>
ServiceClient::roundTrip(const Writer &w, uint64_t readTimeoutMs)
{
    Result<int> fd = connect();
    if (!fd.isOk())
        return fd.status();
    Status st = writeFrame(*fd, w);
    if (!st.isOk()) {
        ::close(*fd);
        return st;
    }
    Result<Reader> reply = readFrame(*fd, readTimeoutMs);
    ::close(*fd);
    return reply;
}

Result<SubmitResult>
ServiceClient::submit(const SubmitRequest &req)
{
    Writer w;
    req.encode(w);
    Result<Reader> reply = roundTrip(w);
    if (!reply.isOk())
        return reply.status();
    uint64_t type = reply->u64();
    SubmitResult result;
    if (type == static_cast<uint64_t>(MsgType::Accepted)) {
        result.accepted = true;
        result.jobId = reply->u64();
        if (!reply->atEnd())
            return errorf(ErrorCode::Corrupt, "malformed accept reply");
        return result;
    }
    if (type == static_cast<uint64_t>(MsgType::Overloaded) ||
        type == static_cast<uint64_t>(MsgType::Error)) {
        result.accepted = false;
        result.refusal = reply->str();
        return result;
    }
    return errorf(ErrorCode::Corrupt, "unexpected submit reply type %llu",
                  (unsigned long long)type);
}

Result<JobStatusReply>
ServiceClient::status(uint64_t jobId)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Status));
    w.u64(jobId);
    Result<Reader> reply = roundTrip(w);
    if (!reply.isOk())
        return reply.status();
    uint64_t type = reply->u64();
    if (type == static_cast<uint64_t>(MsgType::Error))
        return errorf(ErrorCode::InvalidArgument, "%s",
                      reply->str().c_str());
    if (type != static_cast<uint64_t>(MsgType::JobStatus))
        return errorf(ErrorCode::Corrupt, "unexpected status reply");
    return JobStatusReply::decode(*reply);
}

Result<JobStatusReply>
ServiceClient::wait(uint64_t jobId, uint64_t timeoutMs)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Wait));
    w.u64(jobId);
    w.u64(timeoutMs);
    // Give the socket read a margin past the daemon-side wait budget.
    uint64_t readBudget = timeoutMs == 0 ? 0 : timeoutMs + 10'000;
    Result<Reader> reply = roundTrip(w, readBudget);
    if (!reply.isOk())
        return reply.status();
    uint64_t type = reply->u64();
    if (type == static_cast<uint64_t>(MsgType::Error))
        return errorf(ErrorCode::InvalidArgument, "%s",
                      reply->str().c_str());
    if (type != static_cast<uint64_t>(MsgType::JobStatus))
        return errorf(ErrorCode::Corrupt, "unexpected wait reply");
    Result<JobStatusReply> rep = JobStatusReply::decode(*reply);
    if (rep.isOk() && timeoutMs != 0 && !jobStateFinal(rep->state)) {
        return errorf(ErrorCode::Timeout,
                      "job %llu still %s after %llu ms",
                      (unsigned long long)jobId, jobStateName(rep->state),
                      (unsigned long long)timeoutMs);
    }
    return rep;
}

Result<StatsVector>
ServiceClient::stats()
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Stats));
    Result<Reader> reply = roundTrip(w);
    if (!reply.isOk())
        return reply.status();
    uint64_t type = reply->u64();
    if (type != static_cast<uint64_t>(MsgType::StatsReply))
        return errorf(ErrorCode::Corrupt, "unexpected stats reply");
    return decodeStats(*reply);
}

Status
ServiceClient::cancel(uint64_t jobId)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Cancel));
    w.u64(jobId);
    Result<Reader> reply = roundTrip(w);
    if (!reply.isOk())
        return reply.status();
    uint64_t type = reply->u64();
    if (type == static_cast<uint64_t>(MsgType::Ack))
        return Status::ok();
    if (type == static_cast<uint64_t>(MsgType::Error))
        return errorf(ErrorCode::InvalidArgument, "%s",
                      reply->str().c_str());
    return errorf(ErrorCode::Corrupt, "unexpected cancel reply");
}

Status
ServiceClient::shutdownDaemon()
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Shutdown));
    Result<Reader> reply = roundTrip(w);
    if (!reply.isOk())
        return reply.status();
    if (reply->u64() != static_cast<uint64_t>(MsgType::Ack))
        return errorf(ErrorCode::Corrupt, "unexpected shutdown reply");
    return Status::ok();
}

} // namespace service
} // namespace strober
