/**
 * @file
 * The `strober-serve` daemon: a persistent estimate service owning the
 * shared content-addressed result cache and the durable farm queues.
 *
 * Many clients submit estimate jobs over an AF_UNIX socket (see
 * service/proto.h); the daemon admits them into a *bounded* queue —
 * a full queue is an explicit Overloaded rejection, never an unbounded
 * buffer — and a fixed pool of runner threads executes them, each
 * under a per-job wall-clock deadline enforced through
 * core::JobControl. Worker processes a job spawns are supervised
 * (service/supervisor.h): wall/RSS caps, SIGKILL, lease reclaim,
 * bounded backoff retry. Because the farm layer is crash-only, none
 * of this can corrupt results — a killed worker costs wall time, not
 * correctness.
 *
 * Graceful drain (SIGTERM / Shutdown request): admission stops
 * (Overloaded with "draining"), queued jobs become Canceled, running
 * jobs get their JobControl cancel flag (workers checkpoint leases
 * back to Pending and exit 0), everything is flushed, and stop()
 * returns so main() can exit 0. A drained job's work is resumable:
 * re-submitting it replays only what was not finished.
 *
 * The actual estimation is delegated to a JobExecutor callback so the
 * daemon layer stays free of design construction (the tool installs a
 * cores::buildSoc-based executor; tests install synthetic ones and
 * daemon-level tests run with zero forked processes — TSan-clean).
 */

#ifndef STROBER_SERVICE_DAEMON_H
#define STROBER_SERVICE_DAEMON_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_control.h"
#include "farm/result_cache.h"
#include "service/proto.h"
#include "util/status.h"

namespace strober {
namespace service {

/** What a JobExecutor hands back for one job. */
struct JobOutcome
{
    JobState state = JobState::Failed;
    int exitCode = 3;
    std::string detail;
    std::string reportText; //!< deterministic rendering, if a report exists
    // Observability (folded into the daemon's STATS counters).
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t workerRetries = 0;
    uint64_t workerKills = 0; //!< wall + RSS SIGKILLs
    bool streamed = false;    //!< job ran with the streaming feed
    bool earlyStopped = false; //!< adaptive termination fired (CI bound)
    uint64_t supersededReplays = 0; //!< streamed work canceled by eviction
};

/** One admitted job as the runner sees it. */
struct JobRequest
{
    uint64_t id = 0;
    SubmitRequest submit;
    std::string jobDir; //!< per-job run directory (manifests, snapshots)
};

/**
 * Executes one job under @p control: honor control.canceled() by
 * checkpointing (state Canceled), and expect the replay layer to turn
 * an expired deadline into TimedOut/degraded outcomes. Must not throw.
 */
using JobExecutor =
    std::function<JobOutcome(const JobRequest &, core::JobControl &)>;

struct DaemonConfig
{
    std::string socketPath;
    std::string rootDir;  //!< per-job dirs live under here
    std::string cacheDir; //!< shared result cache; empty = rootDir+"/cache"
    size_t maxQueue = 16;    //!< admission bound (beyond = Overloaded)
    unsigned runners = 2;    //!< concurrent jobs
    uint64_t defaultDeadlineMs = 0; //!< for submits with deadlineMs == 0
    /** Cache GC applied after every job (0/defaults = no trimming). */
    farm::ResultCache::TrimPolicy trim;
    JobExecutor executor;
    /** Live gauge of streamed replays in flight (published to workers,
     *  result not yet observed). The executor updates it through
     *  farm::StreamFeed::inFlightHook; the Stats endpoint reads it.
     *  Shared so the executor lambda can be built before the daemon.
     *  Optional — null reads as 0. */
    std::shared_ptr<std::atomic<int64_t>> streamInFlight;

    std::string effectiveCacheDir() const
    {
        return cacheDir.empty() ? rootDir + "/cache" : cacheDir;
    }
};

/** Aggregate daemon counters (the STATS endpoint renders these). */
struct DaemonStats
{
    uint64_t submitted = 0;
    uint64_t overloaded = 0;  //!< admission rejections (full queue)
    uint64_t drainRejected = 0; //!< admission rejections while draining
    uint64_t completed = 0;   //!< jobs that reached any final state
    uint64_t degradedReports = 0;
    uint64_t timedOut = 0;
    uint64_t failed = 0;
    uint64_t canceled = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t workerRetries = 0;
    uint64_t workerKills = 0;
    uint64_t cacheEvictions = 0;
    uint64_t badFrames = 0;   //!< connections dropped on protocol errors
    uint64_t streamJobs = 0;       //!< jobs run with the streaming feed
    uint64_t streamEarlyStops = 0; //!< jobs stopped early on a CI bound
    uint64_t streamSuperseded = 0; //!< streamed replays superseded
};

/**
 * The daemon. start() spawns the accept + runner threads and returns;
 * stop() drains and joins (idempotent). A SIGTERM handler should call
 * requestDrain() (async-signal-safe) and let the main thread observe
 * drained() — see tools/strober_serve.cc.
 */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(DaemonConfig config);
    ~ServiceDaemon();

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind the socket and start serving. */
    util::Status start();

    /**
     * Async-signal-safe drain trigger: stop admitting, cancel queued
     * jobs, cancel running jobs' JobControls. Returns immediately;
     * the drain completes in the background (waitDrained()).
     */
    void requestDrain();

    /** Block until every admitted job reached a final state after a
     *  requestDrain(). */
    void waitDrained();

    /** Drain (if not already draining) and join every thread. */
    void stop();

    /** Snapshot of the counters (also served by the Stats request). */
    DaemonStats statsSnapshot() const;

    /** Rendered name/value stats, exactly what StatsReply carries. */
    StatsVector statsVector() const;

    const DaemonConfig &config() const { return cfg; }

  private:
    struct Job
    {
        JobRequest request;
        JobState state = JobState::Queued;
        int exitCode = -1;
        std::string detail;
        std::string reportText;
        std::unique_ptr<core::JobControl> control;
    };

    DaemonConfig cfg;
    farm::ResultCache store; //!< owned shared cache (trim + stats)

    mutable std::mutex mtx;
    std::mutex trimMutex; //!< serializes post-job cache GC sweeps
    std::condition_variable jobCv;    //!< runners wait for work
    std::condition_variable waiterCv; //!< Wait requests + waitDrained
    std::map<uint64_t, Job> jobs;
    std::deque<uint64_t> queue;
    uint64_t nextJobId = 1;
    DaemonStats counters;
    bool started = false;
    bool stopping = false; //!< threads must exit

    std::atomic<bool> draining{false};
    int listenFd = -1;
    int wakePipe[2] = {-1, -1}; //!< self-pipe: requestDrain → accept loop

    std::thread acceptThread;
    std::vector<std::thread> runnerThreads;
    std::vector<std::thread> connThreads;
    std::vector<int> connFds; //!< open connection fds (for shutdown)

    void acceptLoop();
    void runnerLoop();
    void serveConnection(int fd);
    void handleSubmit(int fd, farm::wire::Reader &r);
    void handleStatusOrWait(int fd, farm::wire::Reader &r, bool wait);
    void handleStats(int fd);
    void handleCancel(int fd, farm::wire::Reader &r);
    void cancelQueuedLocked();
    JobStatusReply replyFor(uint64_t id, const Job &job) const;
};

} // namespace service
} // namespace strober

#endif // STROBER_SERVICE_DAEMON_H
