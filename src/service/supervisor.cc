#include "service/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/env.h"
#include "util/logging.h"

extern char **environ;

namespace strober {
namespace service {

namespace {

/** Per-slot supervision state. */
struct Slot
{
    const WorkerSpec *spec = nullptr;
    pid_t pid = -1;          //!< -1 = not running
    uint64_t startMs = 0;    //!< monotonic start of this attempt
    unsigned attempts = 0;   //!< spawns so far (1 = first run)
    uint64_t respawnAtMs = 0; //!< backoff gate; 0 = may spawn now
    bool finished = false;   //!< exited 0, or abandoned
    bool abandoned = false;  //!< gave up after maxRetries
    bool killedByUs = false; //!< this attempt was SIGKILLed for a cap
};

pid_t
spawn(const WorkerSpec &spec)
{
    if (spec.body) {
        pid_t pid = ::fork();
        if (pid == 0)
            _exit(spec.body());
        return pid;
    }

    // fork+exec. Everything the child touches between fork() and
    // execve() is prebuilt here so the child only runs
    // async-signal-safe code — mandatory when the daemon forks from a
    // thread.
    std::vector<char *> argv;
    for (const std::string &a : spec.argv)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    std::vector<char *> envp;
    for (char **e = environ; *e != nullptr; ++e)
        envp.push_back(*e);
    for (const std::string &e : spec.env)
        envp.push_back(const_cast<char *>(e.c_str()));
    envp.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid == 0) {
        ::execve(argv[0], argv.data(), envp.data());
        _exit(127); // exec failed
    }
    return pid;
}

} // namespace

SupervisionStats
superviseUntilDone(const std::vector<WorkerSpec> &specs,
                   const SupervisorConfig &cfg)
{
    SupervisionStats stats;
    if (specs.empty())
        return stats;

    std::vector<Slot> slots(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        slots[i].spec = &specs[i];

    unsigned maxLive = std::max(1u, cfg.slots);
    bool draining = false;
    uint64_t drainKillAtMs = 0;

    auto liveCount = [&slots] {
        size_t n = 0;
        for (const Slot &s : slots)
            n += s.pid > 0;
        return n;
    };

    for (;;) {
        uint64_t now = util::monotonicMs();

        if (!draining && cfg.stopRequested && cfg.stopRequested()) {
            draining = true;
            drainKillAtMs = now + cfg.stopGraceMs;
            for (Slot &s : slots) {
                if (s.pid > 0)
                    ::kill(s.pid, SIGTERM);
                // Never (re)spawn once draining.
                if (s.pid <= 0 && !s.finished) {
                    s.finished = true;
                    ++stats.drained;
                }
            }
        }
        if (draining && now >= drainKillAtMs) {
            for (Slot &s : slots) {
                if (s.pid > 0)
                    ::kill(s.pid, SIGKILL);
            }
        }

        // Reap.
        for (Slot &s : slots) {
            if (s.pid <= 0)
                continue;
            int wstatus = 0;
            pid_t r = ::waitpid(s.pid, &wstatus, WNOHANG);
            if (r == 0)
                continue;
            bool clean = r > 0 && WIFEXITED(wstatus) &&
                         WEXITSTATUS(wstatus) == 0;
            s.pid = -1;
            if (clean) {
                ++stats.cleanExits;
                s.finished = true;
                continue;
            }
            if (draining) {
                // Deaths during a drain (our own SIGKILL included) are
                // the drain doing its job, not crashes to retry.
                ++stats.drained;
                s.finished = true;
                continue;
            }
            ++stats.crashes;
            if (s.attempts > cfg.maxRetries) {
                // Out of budget: abandon the slot. Its unfinished work
                // stays Pending/Leased on disk; lease expiry gives it
                // to peers and collect() replays any remainder inline.
                s.finished = true;
                s.abandoned = true;
                ++stats.givenUp;
                warn("worker slot gave up after %u attempt(s)",
                     s.attempts);
                continue;
            }
            // Exponential backoff before the respawn: a worker that
            // dies instantly (bad binary, full disk) must not busy-loop
            // the supervisor.
            uint64_t shift = std::min(s.attempts, 16u);
            s.respawnAtMs =
                now + cfg.backoffBaseMs * (1ull << (shift - 1));
            ++stats.retries;
        }

        // Spawn / respawn.
        if (!draining) {
            for (Slot &s : slots) {
                if (s.finished || s.pid > 0)
                    continue;
                if (liveCount() >= maxLive)
                    break;
                if (s.respawnAtMs > now)
                    continue;
                pid_t pid = spawn(*s.spec);
                if (pid < 0) {
                    warn("fork failed: %s; retrying", std::strerror(errno));
                    s.respawnAtMs = now + cfg.backoffBaseMs;
                    continue;
                }
                s.pid = pid;
                s.startMs = now;
                s.killedByUs = false;
                ++s.attempts;
                ++stats.spawned;
            }
        }

        // Enforce the caps on live workers.
        if (!draining) {
            for (Slot &s : slots) {
                if (s.pid <= 0 || s.killedByUs)
                    continue;
                if (cfg.wallCapMs != 0 &&
                    now - s.startMs > cfg.wallCapMs) {
                    ::kill(s.pid, SIGKILL);
                    s.killedByUs = true;
                    ++stats.wallKills;
                    continue;
                }
                if (cfg.rssCapBytes != 0) {
                    uint64_t rss = util::processRssBytes(s.pid);
                    if (rss > cfg.rssCapBytes) {
                        ::kill(s.pid, SIGKILL);
                        s.killedByUs = true;
                        ++stats.rssKills;
                    }
                }
            }
        }

        bool allDone = true;
        for (const Slot &s : slots)
            allDone = allDone && s.finished && s.pid <= 0;
        if (allDone)
            return stats;

        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max<uint64_t>(
                1, cfg.pollIntervalMs)));
    }
}

} // namespace service
} // namespace strober
