#include "service/daemon.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/env.h"
#include "util/logging.h"

namespace strober {
namespace service {

namespace fs = std::filesystem;
using farm::wire::Reader;
using farm::wire::Writer;
using util::ErrorCode;
using util::errorf;
using util::Status;

namespace {

void
sendError(int fd, const std::string &message)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Error));
    w.str(message);
    writeFrame(fd, w); // best effort; connection may already be gone
}

void
sendAck(int fd)
{
    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Ack));
    writeFrame(fd, w);
}

bool
trimEnabled(const farm::ResultCache::TrimPolicy &p)
{
    return p.keepCount != SIZE_MAX || p.maxAgeSeconds != 0 ||
           p.maxTotalBytes != 0;
}

} // namespace

ServiceDaemon::ServiceDaemon(DaemonConfig config)
    : cfg(std::move(config)), store(cfg.effectiveCacheDir())
{
    if (!cfg.executor)
        fatal("DaemonConfig.executor is required");
    if (cfg.socketPath.empty() || cfg.rootDir.empty())
        fatal("DaemonConfig.socketPath and rootDir are required");
}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

Status
ServiceDaemon::start()
{
    std::error_code ec;
    fs::create_directories(cfg.rootDir, ec);
    if (ec) {
        return errorf(ErrorCode::IoError, "cannot create root dir '%s': %s",
                      cfg.rootDir.c_str(), ec.message().c_str());
    }

    if (::pipe(wakePipe) != 0) {
        return errorf(ErrorCode::IoError, "pipe failed: %s",
                      std::strerror(errno));
    }

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        return errorf(ErrorCode::IoError, "socket failed: %s",
                      std::strerror(errno));
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        return errorf(ErrorCode::InvalidArgument,
                      "socket path '%s' is too long (max %zu)",
                      cfg.socketPath.c_str(), sizeof(addr.sun_path) - 1);
    }
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str()); // stale socket from a dead daemon
    if (::bind(listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return errorf(ErrorCode::IoError, "bind('%s') failed: %s",
                      cfg.socketPath.c_str(), std::strerror(errno));
    }
    if (::listen(listenFd, 64) != 0) {
        return errorf(ErrorCode::IoError, "listen failed: %s",
                      std::strerror(errno));
    }

    {
        std::lock_guard<std::mutex> lk(mtx);
        started = true;
    }
    acceptThread = std::thread([this] { acceptLoop(); });
    unsigned runners = std::max(1u, cfg.runners);
    for (unsigned i = 0; i < runners; ++i)
        runnerThreads.emplace_back([this] { runnerLoop(); });
    return Status::ok();
}

void
ServiceDaemon::requestDrain()
{
    // Async-signal-safe: one atomic store plus one pipe write. The
    // accept thread observes the pipe and does the locked drain work
    // (canceling jobs, waking waiters) outside signal context.
    draining.store(true, std::memory_order_release);
    char byte = 1;
    if (wakePipe[1] >= 0) {
        ssize_t n = ::write(wakePipe[1], &byte, 1);
        (void)n; // a full pipe still wakes the poller
    }
}

void
ServiceDaemon::cancelQueuedLocked()
{
    while (!queue.empty()) {
        uint64_t id = queue.front();
        queue.pop_front();
        auto it = jobs.find(id);
        if (it == jobs.end() || it->second.state != JobState::Queued)
            continue;
        Job &job = it->second;
        job.state = JobState::Canceled;
        job.exitCode = 4;
        job.detail = "canceled: daemon draining before the job started";
        ++counters.completed;
        ++counters.canceled;
    }
    for (auto &[id, job] : jobs) {
        (void)id;
        if (job.state == JobState::Running && job.control)
            job.control->cancel.store(true, std::memory_order_relaxed);
    }
}

void
ServiceDaemon::acceptLoop()
{
    bool drainHandled = false;
    for (;;) {
        struct pollfd pfds[2];
        pfds[0].fd = listenFd;
        pfds[0].events = POLLIN;
        pfds[1].fd = wakePipe[0];
        pfds[1].events = POLLIN;
        int rc = ::poll(pfds, 2, 200);
        {
            std::lock_guard<std::mutex> lk(mtx);
            if (stopping)
                break;
        }
        if (draining.load(std::memory_order_acquire) && !drainHandled) {
            drainHandled = true;
            {
                std::lock_guard<std::mutex> lk(mtx);
                cancelQueuedLocked();
            }
            jobCv.notify_all();
            waiterCv.notify_all();
            // Keep accepting: clients still need Wait/Status/Stats to
            // observe the drain; only admission is refused.
        }
        if (rc <= 0)
            continue;
        if (pfds[1].revents & POLLIN) {
            char buf[64];
            ssize_t n = ::read(wakePipe[0], buf, sizeof(buf));
            (void)n;
        }
        if (!(pfds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lk(mtx);
        if (stopping) {
            ::close(fd);
            break;
        }
        connFds.push_back(fd);
        connThreads.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
ServiceDaemon::serveConnection(int fd)
{
    for (;;) {
        util::Result<Reader> frame = readFrame(fd);
        if (!frame.isOk()) {
            // EOF/shutdown is normal; a CRC or length violation is a
            // protocol error worth counting (and the connection dies
            // with it — other clients are unaffected).
            if (frame.status().code() == ErrorCode::Corrupt) {
                std::lock_guard<std::mutex> lk(mtx);
                ++counters.badFrames;
            }
            break;
        }
        Reader &r = *frame;
        uint64_t type = r.u64();
        if (r.failed()) {
            std::lock_guard<std::mutex> lk(mtx);
            ++counters.badFrames;
            break;
        }
        switch (static_cast<MsgType>(type)) {
          case MsgType::Submit:
            handleSubmit(fd, r);
            break;
          case MsgType::Status:
            handleStatusOrWait(fd, r, /*wait=*/false);
            break;
          case MsgType::Wait:
            handleStatusOrWait(fd, r, /*wait=*/true);
            break;
          case MsgType::Stats:
            handleStats(fd);
            break;
          case MsgType::Cancel:
            handleCancel(fd, r);
            break;
          case MsgType::Shutdown:
            sendAck(fd);
            requestDrain();
            break;
          default: {
            std::lock_guard<std::mutex> lk(mtx);
            ++counters.badFrames;
            sendError(fd, "unknown message type");
            ::close(fd);
            return;
          }
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lk(mtx);
    connFds.erase(std::remove(connFds.begin(), connFds.end(), fd),
                  connFds.end());
}

void
ServiceDaemon::handleSubmit(int fd, Reader &r)
{
    util::Result<SubmitRequest> req = SubmitRequest::decode(r);
    if (!req.isOk()) {
        {
            std::lock_guard<std::mutex> lk(mtx);
            ++counters.badFrames;
        }
        sendError(fd, req.status().toString());
        return;
    }

    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lk(mtx);
        ++counters.submitted;
        if (draining.load(std::memory_order_acquire) || stopping) {
            ++counters.drainRejected;
            Writer w;
            w.u64(static_cast<uint64_t>(MsgType::Overloaded));
            w.str("draining: daemon is shutting down");
            writeFrame(fd, w);
            return;
        }
        if (queue.size() >= cfg.maxQueue) {
            // Admission control: the queue is bounded by construction.
            // Refusing loudly beats buffering until the box OOMs.
            ++counters.overloaded;
            Writer w;
            w.u64(static_cast<uint64_t>(MsgType::Overloaded));
            w.str(strfmt("overloaded: %zu job(s) queued (bound %zu)",
                         queue.size(), cfg.maxQueue));
            writeFrame(fd, w);
            return;
        }
        id = nextJobId++;
        Job &job = jobs[id];
        job.request.id = id;
        job.request.submit = *req;
        job.request.jobDir =
            (fs::path(cfg.rootDir) / strfmt("job_%06llu",
                                            (unsigned long long)id))
                .string();
        job.control = std::make_unique<core::JobControl>();
        queue.push_back(id);
    }
    jobCv.notify_one();

    Writer w;
    w.u64(static_cast<uint64_t>(MsgType::Accepted));
    w.u64(id);
    writeFrame(fd, w);
}

JobStatusReply
ServiceDaemon::replyFor(uint64_t id, const Job &job) const
{
    JobStatusReply rep;
    rep.jobId = id;
    rep.state = job.state;
    rep.exitCode = job.exitCode;
    rep.detail = job.detail;
    if (jobStateFinal(job.state))
        rep.reportText = job.reportText;
    return rep;
}

void
ServiceDaemon::handleStatusOrWait(int fd, Reader &r, bool wait)
{
    uint64_t id = r.u64();
    uint64_t timeoutMs = wait ? r.u64() : 0;
    if (!r.atEnd()) {
        std::lock_guard<std::mutex> lk(mtx);
        ++counters.badFrames;
        sendError(fd, "malformed status/wait request");
        return;
    }
    JobStatusReply rep;
    {
        std::unique_lock<std::mutex> lk(mtx);
        auto it = jobs.find(id);
        if (it == jobs.end()) {
            lk.unlock();
            sendError(fd, strfmt("unknown job %llu",
                                 (unsigned long long)id));
            return;
        }
        if (wait) {
            auto final = [&] {
                return jobStateFinal(jobs[id].state) || stopping;
            };
            if (timeoutMs == 0) {
                waiterCv.wait(lk, final);
            } else {
                waiterCv.wait_for(lk,
                                  std::chrono::milliseconds(timeoutMs),
                                  final);
            }
        }
        rep = replyFor(id, jobs[id]);
    }
    Writer w;
    rep.encode(w);
    writeFrame(fd, w);
}

void
ServiceDaemon::handleStats(int fd)
{
    Writer w;
    encodeStats(w, statsVector());
    writeFrame(fd, w);
}

void
ServiceDaemon::handleCancel(int fd, Reader &r)
{
    uint64_t id = r.u64();
    if (!r.atEnd()) {
        std::lock_guard<std::mutex> lk(mtx);
        ++counters.badFrames;
        sendError(fd, "malformed cancel request");
        return;
    }
    bool known = false;
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = jobs.find(id);
        if (it != jobs.end()) {
            known = true;
            Job &job = it->second;
            if (job.state == JobState::Queued) {
                queue.erase(std::remove(queue.begin(), queue.end(), id),
                            queue.end());
                job.state = JobState::Canceled;
                job.exitCode = 4;
                job.detail = "canceled by client before start";
                ++counters.completed;
                ++counters.canceled;
            } else if (job.state == JobState::Running && job.control) {
                job.control->cancel.store(true,
                                          std::memory_order_relaxed);
            }
        }
    }
    waiterCv.notify_all();
    if (known)
        sendAck(fd);
    else
        sendError(fd, strfmt("unknown job %llu", (unsigned long long)id));
}

void
ServiceDaemon::runnerLoop()
{
    for (;;) {
        uint64_t id = 0;
        {
            std::unique_lock<std::mutex> lk(mtx);
            jobCv.wait(lk, [&] { return stopping || !queue.empty(); });
            if (queue.empty()) {
                if (stopping)
                    return;
                continue;
            }
            id = queue.front();
            queue.pop_front();
            Job &job = jobs[id];
            job.state = JobState::Running;
        }

        JobRequest request;
        core::JobControl *control = nullptr;
        uint64_t deadlineMs = 0;
        {
            std::lock_guard<std::mutex> lk(mtx);
            Job &job = jobs[id];
            request = job.request;
            control = job.control.get();
            deadlineMs = job.request.submit.deadlineMs != 0
                             ? job.request.submit.deadlineMs
                             : cfg.defaultDeadlineMs;
        }
        control->armDeadline(deadlineMs);

        JobOutcome outcome;
        try {
            outcome = cfg.executor(request, *control);
        } catch (const std::exception &e) {
            outcome.state = JobState::Failed;
            outcome.exitCode = 3;
            outcome.detail =
                strfmt("executor threw: %s (daemon survives)", e.what());
        }
        // A deadline that fired during execution wins the state label
        // even if the executor returned a (degraded) report — the
        // report text is kept either way, and the degraded-report rate
        // still counts it (the relabel is about *why*, not *what*).
        bool degradedReport = outcome.state == JobState::Degraded;
        if (outcome.state != JobState::Canceled &&
            control->deadlineExpired() &&
            (outcome.state == JobState::Degraded ||
             outcome.state == JobState::Failed)) {
            outcome.state = JobState::TimedOut;
        }

        uint64_t evicted = 0;
        if (trimEnabled(cfg.trim)) {
            // One trimmer at a time: ResultCache's counters are not
            // atomic, and concurrent directory sweeps would double-
            // count each other's removals.
            std::lock_guard<std::mutex> tlk(trimMutex);
            evicted = store.trim(cfg.trim).evicted;
        }

        {
            std::lock_guard<std::mutex> lk(mtx);
            Job &job = jobs[id];
            job.state = outcome.state;
            job.exitCode = outcome.exitCode;
            job.detail = outcome.detail;
            job.reportText = outcome.reportText;
            ++counters.completed;
            if (degradedReport)
                ++counters.degradedReports;
            switch (outcome.state) {
              case JobState::Degraded:
                break;
              case JobState::TimedOut:
                ++counters.timedOut;
                break;
              case JobState::Failed:
                ++counters.failed;
                break;
              case JobState::Canceled:
                ++counters.canceled;
                break;
              default:
                break;
            }
            counters.cacheHits += outcome.cacheHits;
            counters.cacheMisses += outcome.cacheMisses;
            counters.workerRetries += outcome.workerRetries;
            counters.workerKills += outcome.workerKills;
            counters.cacheEvictions += evicted;
            if (outcome.streamed)
                ++counters.streamJobs;
            if (outcome.earlyStopped)
                ++counters.streamEarlyStops;
            counters.streamSuperseded += outcome.supersededReplays;
        }
        waiterCv.notify_all();
    }
}

void
ServiceDaemon::waitDrained()
{
    std::unique_lock<std::mutex> lk(mtx);
    waiterCv.wait(lk, [&] {
        if (!draining.load(std::memory_order_acquire) && !stopping)
            return false;
        for (const auto &[id, job] : jobs) {
            (void)id;
            if (!jobStateFinal(job.state))
                return false;
        }
        return true;
    });
}

void
ServiceDaemon::stop()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (!started || stopping) {
            if (!started)
                return;
        }
        stopping = true;
        cancelQueuedLocked();
    }
    draining.store(true, std::memory_order_release);
    if (wakePipe[1] >= 0) {
        char byte = 1;
        ssize_t n = ::write(wakePipe[1], &byte, 1);
        (void)n;
    }
    jobCv.notify_all();
    waiterCv.notify_all();

    if (acceptThread.joinable())
        acceptThread.join();
    for (std::thread &t : runnerThreads) {
        if (t.joinable())
            t.join();
    }

    // Unblock connection threads parked in readFrame().
    {
        std::lock_guard<std::mutex> lk(mtx);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    waiterCv.notify_all();
    for (std::thread &t : connThreads) {
        if (t.joinable())
            t.join();
    }
    connThreads.clear();

    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (wakePipe[0] >= 0) {
        ::close(wakePipe[0]);
        ::close(wakePipe[1]);
        wakePipe[0] = wakePipe[1] = -1;
    }
    ::unlink(cfg.socketPath.c_str());
}

DaemonStats
ServiceDaemon::statsSnapshot() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return counters;
}

StatsVector
ServiceDaemon::statsVector() const
{
    std::lock_guard<std::mutex> lk(mtx);
    uint64_t queued = 0, running = 0, done = 0, degraded = 0, timedOut = 0,
             failed = 0, canceled = 0;
    for (const auto &[id, job] : jobs) {
        (void)id;
        switch (job.state) {
          case JobState::Queued:
            ++queued;
            break;
          case JobState::Running:
            ++running;
            break;
          case JobState::Done:
            ++done;
            break;
          case JobState::Degraded:
            ++degraded;
            break;
          case JobState::TimedOut:
            ++timedOut;
            break;
          case JobState::Failed:
            ++failed;
            break;
          case JobState::Canceled:
            ++canceled;
            break;
        }
    }
    StatsVector v;
    v.emplace_back("queue-depth", queue.size());
    v.emplace_back("queue-bound", cfg.maxQueue);
    v.emplace_back("draining",
                   draining.load(std::memory_order_acquire) ? 1 : 0);
    v.emplace_back("jobs-queued", queued);
    v.emplace_back("jobs-running", running);
    v.emplace_back("jobs-done", done);
    v.emplace_back("jobs-degraded", degraded);
    v.emplace_back("jobs-timed-out", timedOut);
    v.emplace_back("jobs-failed", failed);
    v.emplace_back("jobs-canceled", canceled);
    v.emplace_back("submitted", counters.submitted);
    v.emplace_back("overloaded-rejections", counters.overloaded);
    v.emplace_back("drain-rejections", counters.drainRejected);
    v.emplace_back("completed", counters.completed);
    v.emplace_back("degraded-reports", counters.degradedReports);
    v.emplace_back("cache-hits", counters.cacheHits);
    v.emplace_back("cache-misses", counters.cacheMisses);
    v.emplace_back("cache-evictions", counters.cacheEvictions);
    v.emplace_back("worker-retries", counters.workerRetries);
    v.emplace_back("worker-kills", counters.workerKills);
    v.emplace_back("bad-frames", counters.badFrames);
    v.emplace_back("stream-jobs", counters.streamJobs);
    v.emplace_back("stream-early-stops", counters.streamEarlyStops);
    v.emplace_back("stream-superseded-replays", counters.streamSuperseded);
    // Live gauge: streamed replays published but not yet observed done.
    // Clamped — the executor zeroes its residue at job end, but a
    // racing read between decrements must never wrap the u64 wire type.
    int64_t inFlight =
        cfg.streamInFlight
            ? cfg.streamInFlight->load(std::memory_order_relaxed)
            : 0;
    v.emplace_back("stream-inflight-replays",
                   inFlight > 0 ? (uint64_t)inFlight : 0);
    return v;
}

} // namespace service
} // namespace strober
