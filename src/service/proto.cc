#include "service/proto.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace strober {
namespace service {

using farm::wire::Reader;
using farm::wire::Writer;
using util::ErrorCode;
using util::errorf;
using util::Result;
using util::Status;

bool
jobStateFinal(JobState s)
{
    switch (s) {
      case JobState::Queued:
      case JobState::Running:
        return false;
      case JobState::Done:
      case JobState::Degraded:
      case JobState::TimedOut:
      case JobState::Failed:
      case JobState::Canceled:
        return true;
    }
    return true;
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Degraded:
        return "degraded";
      case JobState::TimedOut:
        return "timed-out";
      case JobState::Failed:
        return "failed";
      case JobState::Canceled:
        return "canceled";
    }
    return "unknown";
}

void
SubmitRequest::encode(Writer &w) const
{
    w.u64(static_cast<uint64_t>(MsgType::Submit));
    w.str(coreName);
    w.str(workloadName);
    w.u64(sampleSize);
    w.u64(replayLength);
    w.u64(deadlineMs);
    w.u64(workers);
    w.str(stimulusPath);
    w.f64(ciBound);
    w.u64(stream ? 1 : 0);
}

Result<SubmitRequest>
SubmitRequest::decode(Reader &r)
{
    SubmitRequest req;
    req.coreName = r.str();
    req.workloadName = r.str();
    req.sampleSize = r.u64();
    req.replayLength = r.u64();
    req.deadlineMs = r.u64();
    req.workers = r.u64();
    // Pre-trace clients end the payload here; stimulusPath is an
    // appended field and reads as empty from their frames.
    if (!r.atEnd())
        req.stimulusPath = r.str();
    // Streaming fields appended after that; pre-streaming clients'
    // frames end before them (ciBound 0, stream off).
    if (!r.atEnd())
        req.ciBound = r.f64();
    if (!r.atEnd())
        req.stream = r.u64() != 0;
    if (!r.atEnd())
        return errorf(ErrorCode::Corrupt, "malformed submit request");
    if (req.ciBound < 0 || req.ciBound != req.ciBound) {
        return errorf(ErrorCode::InvalidArgument,
                      "submit request with negative or NaN ci-bound");
    }
    if (req.coreName.empty() || req.sampleSize == 0 ||
        req.replayLength == 0) {
        return errorf(ErrorCode::InvalidArgument,
                      "submit request with empty core or zero "
                      "sample-size/replay-length");
    }
    if (req.workloadName.empty() == req.stimulusPath.empty()) {
        return errorf(ErrorCode::InvalidArgument,
                      "submit request must name exactly one of a "
                      "workload or a stimulus trace");
    }
    return req;
}

void
JobStatusReply::encode(Writer &w) const
{
    w.u64(static_cast<uint64_t>(MsgType::JobStatus));
    w.u64(jobId);
    w.u64(static_cast<uint64_t>(state));
    w.u64(static_cast<uint64_t>(exitCode));
    w.str(detail);
    w.str(reportText);
}

Result<JobStatusReply>
JobStatusReply::decode(Reader &r)
{
    JobStatusReply rep;
    rep.jobId = r.u64();
    uint64_t state = r.u64();
    if (state > static_cast<uint64_t>(JobState::Canceled) || r.failed())
        return errorf(ErrorCode::Corrupt, "malformed job-status reply");
    rep.state = static_cast<JobState>(state);
    rep.exitCode = static_cast<int64_t>(r.u64());
    rep.detail = r.str();
    rep.reportText = r.str();
    if (!r.atEnd())
        return errorf(ErrorCode::Corrupt, "malformed job-status reply");
    return rep;
}

void
encodeStats(Writer &w, const StatsVector &stats)
{
    w.u64(static_cast<uint64_t>(MsgType::StatsReply));
    w.u64(stats.size());
    for (const auto &[name, value] : stats) {
        w.str(name);
        w.u64(value);
    }
}

Result<StatsVector>
decodeStats(Reader &r)
{
    uint64_t n = r.u64();
    if (r.failed() || n > farm::wire::kMaxDim)
        return errorf(ErrorCode::Corrupt, "malformed stats reply");
    StatsVector stats;
    stats.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        std::string name = r.str();
        uint64_t value = r.u64();
        stats.emplace_back(std::move(name), value);
    }
    if (!r.atEnd())
        return errorf(ErrorCode::Corrupt, "malformed stats reply");
    return stats;
}

namespace {

/** write() the whole buffer, riding out EINTR and partial writes. */
Status
writeAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errorf(ErrorCode::IoError, "socket write failed: %s",
                          std::strerror(errno));
        }
        if (n == 0)
            return errorf(ErrorCode::IoError, "peer closed mid-write");
        off += static_cast<size_t>(n);
    }
    return Status::ok();
}

/** read() exactly @p len bytes; IoError on EOF/err. */
Status
readAll(int fd, char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::read(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errorf(ErrorCode::IoError, "socket read failed: %s",
                          std::strerror(errno));
        }
        if (n == 0)
            return errorf(ErrorCode::IoError,
                          "peer closed mid-frame (%zu of %zu bytes)", off,
                          len);
        off += static_cast<size_t>(n);
    }
    return Status::ok();
}

} // namespace

Status
writeFrame(int fd, const Writer &w)
{
    std::string payload = w.sealed();
    if (payload.size() > kMaxFrameBytes)
        return errorf(ErrorCode::InvalidArgument, "frame too large (%zu)",
                      payload.size());
    char hdr[4];
    uint32_t len = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<char>(len >> (8 * i));
    Status st = writeAll(fd, hdr, sizeof(hdr));
    if (!st.isOk())
        return st;
    return writeAll(fd, payload.data(), payload.size());
}

Result<Reader>
readFrame(int fd, uint64_t timeoutMs)
{
    if (timeoutMs > 0) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        int rc;
        do {
            rc = ::poll(&pfd, 1,
                        static_cast<int>(
                            timeoutMs > INT32_MAX ? INT32_MAX : timeoutMs));
        } while (rc < 0 && errno == EINTR);
        if (rc == 0)
            return errorf(ErrorCode::Timeout,
                          "no frame within %llu ms",
                          (unsigned long long)timeoutMs);
        if (rc < 0)
            return errorf(ErrorCode::IoError, "poll failed: %s",
                          std::strerror(errno));
    }
    char hdr[4];
    Status st = readAll(fd, hdr, sizeof(hdr));
    if (!st.isOk())
        return st;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<uint32_t>(static_cast<uint8_t>(hdr[i]))
               << (8 * i);
    if (len > kMaxFrameBytes)
        return errorf(ErrorCode::Corrupt,
                      "frame length %u exceeds the %u-byte cap", len,
                      kMaxFrameBytes);
    std::string payload(len, '\0');
    st = readAll(fd, payload.data(), payload.size());
    if (!st.isOk())
        return st;
    Reader r(std::move(payload));
    if (r.failed())
        return errorf(ErrorCode::Corrupt, "frame payload failed its CRC");
    return r;
}

} // namespace service
} // namespace strober
