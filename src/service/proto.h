/**
 * @file
 * Wire protocol of the `strober-serve` daemon.
 *
 * Transport: a SOCK_STREAM byte stream (AF_UNIX in practice) carrying
 * length-prefixed frames. Each frame is a little-endian u32 payload
 * length followed by that many bytes, and the payload itself is a
 * farm::wire sealed buffer (trailing CRC-32), so a frame is validated
 * twice: the length prefix bounds the read, the CRC proves integrity.
 * A malformed frame poisons only its connection — the daemon drops the
 * connection and every other client is unaffected.
 *
 * Every request/reply message starts with a u64 message type. Requests
 * and replies are strictly paired: one request frame in, one reply
 * frame out. Clients open a fresh connection per request (the daemon
 * also tolerates several requests per connection, in order).
 */

#ifndef STROBER_SERVICE_PROTO_H
#define STROBER_SERVICE_PROTO_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "farm/wire.h"
#include "util/status.h"

namespace strober {
namespace service {

/** Largest frame either side will accept (reports are ~KBs). */
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/** Request/reply discriminator (first u64 of every payload). */
enum class MsgType : uint64_t
{
    // Requests.
    Submit = 1,   //!< enqueue an estimate job
    Status = 2,   //!< query one job, non-blocking
    Wait = 3,     //!< block until a job reaches a final state
    Stats = 4,    //!< daemon counters (name/value pairs)
    Cancel = 5,   //!< cancel a queued or running job
    Shutdown = 6, //!< request a graceful drain (same as SIGTERM)

    // Replies.
    Accepted = 100,   //!< Submit admitted; carries the job id
    Overloaded = 101, //!< admission refused (queue full or draining)
    JobStatus = 102,  //!< Status/Wait reply
    StatsReply = 103,
    Ack = 104,        //!< Cancel/Shutdown acknowledged
    Error = 105,      //!< malformed request / unknown job
};

/** Lifecycle of a job inside the daemon. */
enum class JobState : uint64_t
{
    Queued = 0,
    Running = 1,
    Done = 2,     //!< clean, valid, non-degraded report
    Degraded = 3, //!< valid report with quarantined snapshots
    TimedOut = 4, //!< deadline hit; report (if any) is degraded/invalid
    Failed = 5,   //!< no report (setup failure, invalid estimate)
    Canceled = 6, //!< canceled or drained before completion
};

/** True for states a job can never leave. */
bool jobStateFinal(JobState s);

/** Stable lowercase name ("queued", "running", ...). */
const char *jobStateName(JobState s);

/** Submit request body. */
struct SubmitRequest
{
    std::string coreName;     //!< rocket | boom1w | boom2w
    /** Built-in workload name. Exactly one of workloadName /
     *  stimulusPath must be set. */
    std::string workloadName;
    /** Daemon-local path of a VCD trace to stream as stimulus
     *  (src/trace). The daemon streams the file from disk during the
     *  run — the trace is never buffered in memory or on the wire. */
    std::string stimulusPath;
    uint64_t sampleSize = 10;
    uint64_t replayLength = 64;
    /** Per-job wall-clock budget in ms; 0 = daemon default. */
    uint64_t deadlineMs = 0;
    /** Replay worker processes; 0 = daemon default. */
    uint64_t workers = 0;
    /** Adaptive termination: stop the run once the estimate's relative
     *  CI half-width drops under this bound (0 disables). Implies a
     *  streamed run. Appended field — absent from pre-streaming
     *  clients' frames and decodes as 0. */
    double ciBound = 0;
    /** Run with the streaming pipeline (workers replay mid-run) even
     *  without a CI bound. Appended field; decodes as false from old
     *  clients. */
    bool stream = false;

    void encode(farm::wire::Writer &w) const;
    static util::Result<SubmitRequest> decode(farm::wire::Reader &r);
};

/** Status/Wait reply body (after the MsgType and job id). */
struct JobStatusReply
{
    uint64_t jobId = 0;
    JobState state = JobState::Queued;
    int64_t exitCode = -1;   //!< report exit convention; -1 = not final
    std::string detail;      //!< human-readable (error, status message)
    std::string reportText;  //!< deterministic rendering; final states only

    void encode(farm::wire::Writer &w) const;
    static util::Result<JobStatusReply> decode(farm::wire::Reader &r);
};

/** Daemon counters: ordered name/value pairs. */
using StatsVector = std::vector<std::pair<std::string, uint64_t>>;

void encodeStats(farm::wire::Writer &w, const StatsVector &stats);
util::Result<StatsVector> decodeStats(farm::wire::Reader &r);

// --- Frame transport -----------------------------------------------------

/**
 * Write one frame: u32 length + @p w's sealed payload. Handles partial
 * writes and EINTR; fails with IoError on a closed/broken peer.
 */
util::Status writeFrame(int fd, const farm::wire::Writer &w);

/**
 * Read one frame and return a Reader over its (CRC-verified) payload.
 * @p timeoutMs > 0 bounds the wait for the *first* byte (poll); 0
 * blocks indefinitely. Fails with IoError on EOF/timeout and Corrupt
 * on an oversized or CRC-failing frame.
 */
util::Result<farm::wire::Reader> readFrame(int fd, uint64_t timeoutMs = 0);

} // namespace service
} // namespace strober

#endif // STROBER_SERVICE_PROTO_H
