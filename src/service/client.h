/**
 * @file
 * Client side of the strober-serve protocol. One connection per
 * request: connect, send one frame, read one reply, close — stateless
 * and safe to use from many processes/threads at once (the daemon
 * serializes admission). Shared by `strober-farm`'s client subcommands
 * and the service tests.
 */

#ifndef STROBER_SERVICE_CLIENT_H
#define STROBER_SERVICE_CLIENT_H

#include <cstdint>
#include <string>

#include "service/proto.h"
#include "util/status.h"

namespace strober {
namespace service {

/** Submit outcome: admitted with an id, or refused. */
struct SubmitResult
{
    bool accepted = false;
    uint64_t jobId = 0;
    std::string refusal; //!< Overloaded/Error detail when !accepted
};

class ServiceClient
{
  public:
    explicit ServiceClient(std::string socketPath)
        : path(std::move(socketPath))
    {
    }

    /** Enqueue a job. IoError means the daemon is unreachable;
     *  !accepted with ok() status means an explicit refusal. */
    util::Result<SubmitResult> submit(const SubmitRequest &req);

    /** Non-blocking job query. */
    util::Result<JobStatusReply> status(uint64_t jobId);

    /**
     * Block until the job reaches a final state. @p timeoutMs == 0
     * waits forever; otherwise fails with Timeout once the daemon-side
     * wait returns a non-final state past the budget.
     */
    util::Result<JobStatusReply> wait(uint64_t jobId, uint64_t timeoutMs);

    util::Result<StatsVector> stats();

    /** Cancel a queued/running job (ack'd even if already final). */
    util::Status cancel(uint64_t jobId);

    /** Ask the daemon to drain and exit (SIGTERM equivalent). */
    util::Status shutdownDaemon();

  private:
    std::string path;

    util::Result<int> connect();
    util::Result<farm::wire::Reader>
    roundTrip(const farm::wire::Writer &w, uint64_t readTimeoutMs = 0);
};

} // namespace service
} // namespace strober

#endif // STROBER_SERVICE_CLIENT_H
