/**
 * @file
 * Crash-only supervision of a pool of replay worker processes.
 *
 * The farm's durability contract (atomic manifest/cache writes,
 * content-addressed results) makes SIGKILL a *safe* — and therefore
 * the default — way to deal with a misbehaving worker: kill it, let
 * lease expiry hand its work to peers (or the collector), respawn.
 * The supervisor enforces, per worker:
 *
 *  - a wall-clock cap: a worker alive past the cap is SIGKILLed;
 *  - an RSS cap, polled from /proc/<pid>/status: a worker over budget
 *    is SIGKILLed (workers additionally self-impose RLIMIT_AS via
 *    STROBER_WORKER_RSS_MB as a belt-and-braces hard stop);
 *  - bounded retry with exponential backoff: a crashed/killed worker
 *    slot is respawned up to maxRetries times, after which the slot is
 *    abandoned (the collector replays its work inline);
 *  - graceful stop: when stopRequested() turns true the pool gets
 *    SIGTERM (workers checkpoint their leases and exit 0), then
 *    SIGKILL after a grace period.
 *
 * superviseUntilDone() is deliberately *synchronous* — the caller's
 * thread is the supervisor loop — so tests can drive it from a plain
 * single-threaded process and the daemon runs it inside a runner
 * thread without any shared mutable state beyond the JobControl.
 */

#ifndef STROBER_SERVICE_SUPERVISOR_H
#define STROBER_SERVICE_SUPERVISOR_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace strober {
namespace service {

/** How to start one worker. Exactly one of argv/body is used. */
struct WorkerSpec
{
    /** fork+exec this argv (argv[0] = binary path). Production path:
     *  safe to use from a multithreaded daemon because the child only
     *  calls async-signal-safe functions before execve(). */
    std::vector<std::string> argv;
    /** Extra "NAME=VALUE" entries appended to the child environment. */
    std::vector<std::string> env;
    /** Test path: fork and run this in the child (no exec). Only safe
     *  when the spawning process is single-threaded. Return value is
     *  the child's exit code. */
    std::function<int()> body;
};

struct SupervisorConfig
{
    unsigned slots = 1;            //!< concurrent workers
    uint64_t wallCapMs = 0;        //!< per-attempt wall cap; 0 = none
    uint64_t rssCapBytes = 0;      //!< per-worker RSS cap; 0 = none
    unsigned maxRetries = 2;       //!< respawns per slot after failures
    uint64_t backoffBaseMs = 50;   //!< retry n waits base * 2^n
    uint64_t pollIntervalMs = 20;  //!< supervision loop period
    uint64_t stopGraceMs = 2000;   //!< SIGTERM → SIGKILL window
    /** Polled once per loop; true = drain (SIGTERM, grace, SIGKILL). */
    std::function<bool()> stopRequested;
};

/** What happened across the whole supervised run. */
struct SupervisionStats
{
    uint64_t spawned = 0;    //!< total forks (first starts + retries)
    uint64_t cleanExits = 0; //!< workers that exited 0
    uint64_t crashes = 0;    //!< nonzero exits + signal deaths
    uint64_t wallKills = 0;  //!< SIGKILLs for the wall-clock cap
    uint64_t rssKills = 0;   //!< SIGKILLs for the RSS cap
    uint64_t retries = 0;    //!< respawns after a failure
    uint64_t givenUp = 0;    //!< slots abandoned after maxRetries
    uint64_t drained = 0;    //!< workers terminated by a stop request
};

/**
 * Run @p specs.size() workers (bounded by cfg.slots at a time) to
 * completion under the policy above. Returns the accumulated stats;
 * the farm's own durability makes any outcome safe to collect() after.
 */
SupervisionStats superviseUntilDone(const std::vector<WorkerSpec> &specs,
                                    const SupervisorConfig &cfg);

} // namespace service
} // namespace strober

#endif // STROBER_SERVICE_SUPERVISOR_H
