/**
 * @file
 * Target harnesses: one host-driver protocol over three execution
 * backends. A HostDriver (the "software side" of the simulation — memory
 * system, I/O devices) talks to the target through the same port-level
 * interface whether the target runs on
 *   - the fast word-level RTL interpreter (RtlHarness),
 *   - the FAME1 token simulator with snapshot sampling (FameHarness), or
 *   - the detailed gate-level simulator (GateHarness, used for ground
 *     truth in the Figure-8 validation).
 *
 * Per-cycle contract: the driver calls setInput() for the upcoming
 * target cycle (it may inspect the previous cycle's outputs with
 * getOutput()), the run loop calls clock(), and the outputs observed
 * during that cycle become visible to the next drive() call.
 */

#ifndef STROBER_CORE_HARNESS_H
#define STROBER_CORE_HARNESS_H

#include <cstdint>
#include <vector>

#include "fame/sampler.h"
#include "fame/token_sim.h"
#include "gate/gate_sim.h"
#include "sim/simulator.h"

namespace strober {
namespace core {

/** Port-level view of a running target. */
class TargetHarness
{
  public:
    virtual ~TargetHarness() = default;

    /** Drive input port @p port for the upcoming cycle. */
    virtual void setInput(size_t port, uint64_t value) = 0;
    /** Output port value observed during the last clocked cycle. */
    virtual uint64_t getOutput(size_t port) const = 0;
    /** Advance one target cycle. */
    virtual void clock() = 0;
    /** Target cycles executed. */
    virtual uint64_t cycles() const = 0;
};

/** The host-side model: memory system, I/O devices, completion check. */
class HostDriver
{
  public:
    virtual ~HostDriver() = default;
    /** Set this cycle's inputs (may read last cycle's outputs). */
    virtual void drive(TargetHarness &harness) = 0;
    /** @return true when the target program has finished. */
    virtual bool done() const = 0;
};

/** Run @p driver against @p harness. @return target cycles executed. */
uint64_t runLoop(TargetHarness &harness, HostDriver &driver,
                 uint64_t maxCycles);

/** Harness over the fast RTL simulator. */
class RtlHarness : public TargetHarness
{
  public:
    explicit RtlHarness(
        const rtl::Design &design,
        sim::Backend backend = sim::Backend::InterpretedFull);

    void setInput(size_t port, uint64_t value) override;
    uint64_t getOutput(size_t port) const override;
    void clock() override;
    uint64_t cycles() const override { return sim.cycle(); }

    sim::Simulator &simulator() { return sim; }

  private:
    const rtl::Design &dsn;
    sim::Simulator sim;
    // Port NodeIds resolved once here so the per-cycle loop does no
    // bounds-checked port-table chasing.
    std::vector<rtl::NodeId> inputNodes;
    std::vector<rtl::NodeId> outputNodes;
    std::vector<uint64_t> lastOutputs;
};

/** Harness over the gate-level simulator (ground-truth runs). */
class GateHarness : public TargetHarness
{
  public:
    explicit GateHarness(const gate::GateNetlist &netlist);

    void setInput(size_t port, uint64_t value) override;
    uint64_t getOutput(size_t port) const override;
    void clock() override;
    uint64_t cycles() const override { return sim.cycle(); }

    gate::GateSimulator &simulator() { return sim; }

  private:
    gate::GateSimulator sim;
    std::vector<uint64_t> lastOutputs;
};

/** Harness over the FAME1 token simulator with snapshot sampling. */
class FameHarness : public TargetHarness
{
  public:
    FameHarness(const fame::Fame1Design &fame,
                fame::SnapshotSampler *sampler,
                sim::Backend backend = sim::Backend::InterpretedFull);

    void setInput(size_t port, uint64_t value) override;
    uint64_t getOutput(size_t port) const override;
    void clock() override;
    uint64_t cycles() const override { return tsim.targetCycles(); }

    fame::TokenSimulator &tokenSim() { return tsim; }

  private:
    fame::TokenSimulator tsim;
    fame::SnapshotSampler *snapSampler; //!< may be null
    std::vector<uint64_t> pendingInputs;
    std::vector<uint64_t> lastOutputs;
};

} // namespace core
} // namespace strober

#endif // STROBER_CORE_HARNESS_H
