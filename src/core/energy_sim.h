/**
 * @file
 * The Strober energy-simulation flow (paper Sections III-B, IV): the
 * public entry point a user hands an arbitrary rtl::Design plus a
 * HostDriver, and gets back a workload-specific average-power estimate
 * with confidence intervals.
 *
 * Pipeline:
 *  1. FAME1-transform the design; run it fast under the host driver while
 *     reservoir-sampling replayable snapshots (performance measurement is
 *     cycle-exact — it IS the RTL).
 *  2. Push the same design through the ASIC flow: synthesis → placement →
 *     RTL/gate matching (this is independent of step 1 and cached).
 *  3. Replay every snapshot on the gate-level simulator, verify its
 *     outputs against the trace, run power analysis on its activity.
 *  4. Aggregate: sample mean + confidence interval over the population of
 *     all L-cycle intervals of the run (Section III-A estimators).
 */

#ifndef STROBER_CORE_ENERGY_SIM_H
#define STROBER_CORE_ENERGY_SIM_H

#include <memory>
#include <string>
#include <vector>

#include "core/harness.h"
#include "fame/fame1.h"
#include "fame/sampler.h"
#include "gate/matching.h"
#include "gate/placement.h"
#include "gate/replay.h"
#include "gate/state_loader.h"
#include "gate/synthesis.h"
#include "power/power_analysis.h"
#include "stats/sampling.h"

namespace strober {
namespace core {

/** Performance results of the fast simulation phase. */
struct RunStats
{
    uint64_t targetCycles = 0;
    uint64_t hostCycles = 0;       //!< incl. sampling + service stalls
    uint64_t recordCount = 0;      //!< reservoir record events
    uint64_t intervalsSeen = 0;    //!< population size N (in L-intervals)
    double wallSeconds = 0;        //!< measured wall-clock of the phase
    double simulatedHz = 0;        //!< targetCycles / wallSeconds
};

/** Mean + CI for one hierarchy group (Figure 9a bars + error bounds). */
struct GroupEstimate
{
    std::string group;
    stats::Estimate power; //!< watts
};

/** Final energy report. */
struct EnergyReport
{
    stats::Estimate averagePower;   //!< watts, with CI (Eq. 7)
    std::vector<GroupEstimate> groups;
    uint64_t population = 0;        //!< N (number of L-intervals)
    size_t snapshots = 0;           //!< n actually replayed
    uint64_t replayMismatches = 0;  //!< must be 0 for a valid estimate
    double replayWallSeconds = 0;
    double modeledLoadSeconds = 0;  //!< Section IV-C2 loader accounting

    /** Energy per cycle in joules (power / clock). */
    double energyPerCycle(double clockHz) const
    {
        return averagePower.mean / clockHz;
    }
};

/** End-to-end sample-based energy simulation of one design. */
class EnergySimulator
{
  public:
    struct Config
    {
        size_t sampleSize = 30;
        unsigned replayLength = 128;
        uint64_t seed = 0x5eed5eedULL;
        double confidence = 0.99;
        double clockHz = 1e9;           //!< target clock (paper: 1 GHz)
        bool samplingEnabled = true;
        /** Fast-simulator evaluation mode for phase 1. ActivityDriven is
         *  observationally equivalent to Full (the naive reference
         *  sweep, locked down by tests/test_differential.cc) and scales
         *  with per-cycle activity instead of design size. */
        sim::SimulatorMode simMode = sim::SimulatorMode::ActivityDriven;
        gate::LoaderKind loader = gate::LoaderKind::FastVpi;
        /** Host-service stall modeling: every @p hostServiceInterval
         *  target cycles the host services target I/O, costing
         *  @p hostServiceStall stalled host cycles (paper Section V-B:
         *  stalls every 256 cycles). */
        uint64_t hostServiceInterval = 256;
        uint64_t hostServiceStall = 16;
        /** Snapshots are independent; replay them on this many parallel
         *  gate-level simulator instances (paper Section III-B / IV-E's
         *  P). */
        unsigned parallelReplays = 1;
    };

    EnergySimulator(const rtl::Design &target, Config config);

    /** Phase 1: fast simulation with sampling. */
    RunStats run(HostDriver &driver, uint64_t maxCycles);

    /** Phases 2-4: ASIC flow (cached), replay, power aggregation. */
    EnergyReport estimate();

    /** Re-arm phase 1 for another workload on the same design. */
    void resetSampling();

    // --- Component access (benches, tests, examples) --------------------
    const fame::Fame1Design &fameDesign() const { return fame; }
    FameHarness &harness() { return *fameHarness; }
    fame::SnapshotSampler &sampler() { return *snapSampler; }
    const gate::SynthesisResult &synthesis();
    const gate::Placement &placement();
    const gate::MatchTable &matchTable();
    const Config &config() const { return cfg; }
    const rtl::Design &target() const { return dsn; }

  private:
    const rtl::Design &dsn;
    Config cfg;
    fame::Fame1Design fame;
    std::unique_ptr<fame::SnapshotSampler> snapSampler;
    std::unique_ptr<FameHarness> fameHarness;

    // Lazily-built ASIC-flow products.
    std::unique_ptr<gate::SynthesisResult> synth;
    std::unique_ptr<gate::Placement> placed;
    std::unique_ptr<gate::MatchTable> match;

    uint64_t lastRunCycles = 0;

    void buildAsicFlow();
};

/**
 * Ground truth (Figure 8 validation): run the whole workload at gate
 * level and return the exact average-power report. Slow by construction.
 */
power::PowerReport measureGroundTruth(EnergySimulator &sim,
                                      HostDriver &driver,
                                      uint64_t maxCycles);

} // namespace core
} // namespace strober

#endif // STROBER_CORE_ENERGY_SIM_H
