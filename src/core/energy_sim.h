/**
 * @file
 * The Strober energy-simulation flow (paper Sections III-B, IV): the
 * public entry point a user hands an arbitrary rtl::Design plus a
 * HostDriver, and gets back a workload-specific average-power estimate
 * with confidence intervals.
 *
 * Pipeline:
 *  1. FAME1-transform the design; run it fast under the host driver while
 *     reservoir-sampling replayable snapshots (performance measurement is
 *     cycle-exact — it IS the RTL).
 *  2. Push the same design through the ASIC flow: synthesis → placement →
 *     RTL/gate matching (this is independent of step 1 and cached).
 *  3. Replay every snapshot on the gate-level simulator, verify its
 *     outputs against the trace, run power analysis on its activity.
 *  4. Aggregate: sample mean + confidence interval over the population of
 *     all L-cycle intervals of the run (Section III-A estimators).
 */

#ifndef STROBER_CORE_ENERGY_SIM_H
#define STROBER_CORE_ENERGY_SIM_H

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/harness.h"
#include "fame/fame1.h"
#include "fame/sampler.h"
#include "gate/matching.h"
#include "gate/placement.h"
#include "gate/replay.h"
#include "gate/state_loader.h"
#include "gate/synthesis.h"
#include "power/power_analysis.h"
#include "stats/sampling.h"

namespace strober {

namespace inject {
class StallPlan;
} // namespace inject

namespace core {

class ReplayExecutor;
struct JobControl;

/** Performance results of the fast simulation phase. */
struct RunStats
{
    uint64_t targetCycles = 0;
    uint64_t hostCycles = 0;       //!< incl. sampling + service stalls
    uint64_t recordCount = 0;      //!< reservoir record events
    uint64_t intervalsSeen = 0;    //!< population size N (in L-intervals)
    double wallSeconds = 0;        //!< measured wall-clock of the phase
    double simulatedHz = 0;        //!< targetCycles / wallSeconds
};

/** Mean + CI for one hierarchy group (Figure 9a bars + error bounds). */
struct GroupEstimate
{
    std::string group;
    stats::Estimate power; //!< watts
};

/** How one sampled snapshot fared in the replay pipeline. */
enum class SnapshotStatus
{
    Replayed,  //!< verified replay; contributes to the estimate
    Diverged,  //!< outputs disagreed with the trace; quarantined
    LoadFailed, //!< state transfer failed (geometry/corruption)
    TimedOut,  //!< exceeded the per-snapshot watchdog budget
    ReplayError, //!< any other structured replay failure
};

/** Stable lowercase name ("replayed", "diverged", ...). */
const char *snapshotStatusName(SnapshotStatus status);

/** Per-snapshot record of the replay pipeline's fault handling. */
struct SnapshotOutcome
{
    size_t index = 0;         //!< position in the replayed sample
    uint64_t cycle = 0;       //!< capture cycle of the snapshot
    SnapshotStatus status = SnapshotStatus::Replayed;
    unsigned attempts = 0;    //!< replay attempts made (1 or 2)
    bool retriedOnAlternateLoader = false;
    uint64_t mismatches = 0;  //!< output mismatches of the last attempt
    std::string detail;       //!< diagnostic for non-Replayed outcomes

    bool replayed() const { return status == SnapshotStatus::Replayed; }
};

/**
 * Final energy report. When snapshots are quarantined the estimator
 * *degrades* instead of aborting (the Section III-A estimators are
 * well-defined over any surviving subsample): `degraded` is set, the
 * mean/CI cover the survivors only, and `outcomes` records what
 * happened to every snapshot. `valid` is cleared when no trustworthy
 * estimate exists at all (everything quarantined, survivor count under
 * the configured floor, drop count over the configured ceiling, or a
 * run too short to define the interval population) — `statusMessage`
 * says why.
 */
struct EnergyReport
{
    stats::Estimate averagePower;   //!< watts, with CI (Eq. 7)
    std::vector<GroupEstimate> groups;
    uint64_t population = 0;        //!< N (number of L-intervals)
    size_t snapshots = 0;           //!< n sampled (incl. quarantined)
    size_t droppedSnapshots = 0;    //!< quarantined, excluded from mean/CI
    uint64_t replayMismatches = 0;  //!< total mismatches observed
    double replayWallSeconds = 0;
    /** Per-phase wall clocks. A phased run's total is fastSim + replay;
     *  a streamed run (estimateStreaming) overlaps the two, and
     *  overlapWallSeconds measures how much replay wall ran concurrent
     *  with the fast sim — overlap / min(fastSim, replay) is the
     *  pipeline's overlap efficiency. Wall clocks are excluded from the
     *  deterministic rendering (farm::renderReportDeterministic). */
    double fastSimWallSeconds = 0;
    double overlapWallSeconds = 0;
    /** Adaptive termination fired: the run stopped once the CI met
     *  Config::ciBound. Only ever true for streamed runs; a
     *  false value is part of the deterministic rendering (streamed
     *  and phased reports stay byte-identical when no stop occurs). */
    bool earlyStopped = false;
    /** Streamed captures superseded by reservoir replacement (their
     *  queued or completed work was canceled/discarded). */
    size_t supersededReplays = 0;
    double modeledLoadSeconds = 0;  //!< Section IV-C2 loader accounting
    /** Replay-result cache accounting (src/farm). A plain in-process
     *  run counts every snapshot as a miss; a warm farm::ResultCache
     *  serves hits without any gate-level replay. Hits never change
     *  the numbers — only where they came from. */
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    bool degraded = false;          //!< some snapshots were quarantined
    bool valid = true;              //!< false: no trustworthy estimate
    std::string statusMessage;      //!< why degraded / invalid
    std::vector<SnapshotOutcome> outcomes; //!< per-snapshot records

    /** Energy per cycle in joules (power / clock). */
    double energyPerCycle(double clockHz) const
    {
        return averagePower.mean / clockHz;
    }
};

/** End-to-end sample-based energy simulation of one design. */
class EnergySimulator
{
  public:
    struct Config
    {
        size_t sampleSize = 30;
        unsigned replayLength = 128;
        uint64_t seed = 0x5eed5eedULL;
        double confidence = 0.99;
        double clockHz = 1e9;           //!< target clock (paper: 1 GHz)
        bool samplingEnabled = true;
        /** Fast-simulator backend for phase 1. Every backend is
         *  observationally equivalent (locked down four ways by
         *  tests/test_differential.cc); InterpretedActivity scales with
         *  per-cycle activity instead of design size, Compiled trades a
         *  one-time host-compiler invocation for the fastest sweeps,
         *  and CompiledParallel adds chunk-granular activity gating
         *  plus a worker pool (sim::setSimThreads / --sim-threads)
         *  with results bit-identical to every other backend. */
        sim::Backend backend = sim::Backend::InterpretedActivity;
        gate::LoaderKind loader = gate::LoaderKind::FastVpi;
        /** Host-service stall modeling: every @p hostServiceInterval
         *  target cycles the host services target I/O, costing
         *  @p hostServiceStall stalled host cycles (paper Section V-B:
         *  stalls every 256 cycles). */
        uint64_t hostServiceInterval = 256;
        uint64_t hostServiceStall = 16;
        /** Snapshots are independent; replay them on this many parallel
         *  gate-level simulator instances (paper Section III-B / IV-E's
         *  P). The report is bit-identical for any worker count. */
        unsigned parallelReplays = 1;

        // --- Fault tolerance (replay farm survival knobs) ---------------
        /** Watchdog: simulator steps one replay may consume (warm-up +
         *  trace + stalls) before it is declared hung and quarantined.
         *  0 derives a generous budget from the replay length and the
         *  retiming warm-up depth. */
        uint64_t replayTimeoutCycles = 0;
        /** A faulty snapshot gets one bounded retry (on the alternate
         *  LoaderKind, in case the state-transfer path itself is the
         *  fault) before quarantine. */
        bool retryFaultySnapshots = true;
        /** More quarantined snapshots than this invalidates the report
         *  (report.valid = false) instead of silently estimating from
         *  a sliver of the sample. */
        size_t maxDroppedSnapshots = std::numeric_limits<size_t>::max();
        /** Minimum surviving samples for a trustworthy CI; fewer clears
         *  report.valid. At least 2 survivors are always required (the
         *  Eq. 4 sample variance is undefined below that). */
        size_t minSurvivingSamples = 2;
        /** Fault injection: per-snapshot stall cycles simulating a hung
         *  gate-level simulator (tests; see src/inject). */
        const inject::StallPlan *stallPlan = nullptr;

        // --- Replay orchestration (src/farm) ----------------------------
        /** Pluggable replay execution for estimate(): nullptr runs the
         *  built-in in-process strided workers; a farm::CachingReplayExecutor
         *  adds a persistent content-addressed result cache so a warm
         *  re-estimate of an unchanged design replays nothing. Any
         *  executor must produce bit-identical reports (not owned). */
        ReplayExecutor *replayExecutor = nullptr;
        /** Optional job-scoped cancel/deadline flags (core/job_control.h,
         *  not owned). A passed deadline turns not-yet-started replays
         *  into deterministic TimedOut outcomes (degraded report); a
         *  cancel makes the farm orchestrator checkpoint and return
         *  ErrorCode::Canceled so a later run resumes bit-identically.
         *  Mutable because the flags are atomics the supervisor side
         *  stores to while replay threads poll. */
        JobControl *job = nullptr;

        // --- Streaming / adaptive termination (src/core/streaming.h) ----
        /** Adaptive accuracy knob for streamed runs: stop the fast sim
         *  AND the replay stream as soon as the Section III-A estimate's
         *  relativeError() (CI half-width over mean) drops below this
         *  bound, with the Eq. 8 floor of n >= 30 surviving replays.
         *  0 disables early termination (the default: streamed reports
         *  stay bit-identical to phased ones). Ignored by the phased
         *  estimate() path. */
        double ciBound = 0;
        /** Streamed-farm adaptive termination hook: polled at every
         *  replay-interval boundary of run(); returning true stops the
         *  fast sim there (the caller performs its own CI-bound check,
         *  e.g. over farm::StreamFeed completions, and throttles
         *  itself). Null = run to the driver/cycle-budget end.
         *  estimateStreaming() ignores it — the in-process pipeline has
         *  its own built-in check. Excluded from the replay cache
         *  fingerprint (an aggregation/termination knob, never a
         *  replay input). */
        std::function<bool()> earlyStopProbe;

        // --- Trace stimulus (src/trace) ---------------------------------
        /** Content hash of the external stimulus file driving this run
         *  (0 for generated workloads). Folded into the replay cache
         *  fingerprint so results from different traces never alias,
         *  and mirrored into farm shard manifests so detached workers
         *  reconstruct matching cache keys. */
        uint64_t stimulusFingerprint = 0;
    };

    EnergySimulator(const rtl::Design &target, Config config);

    /** Phase 1: fast simulation with sampling. */
    RunStats run(HostDriver &driver, uint64_t maxCycles);

    /** Phases 2-4: ASIC flow (cached), replay, power aggregation. */
    EnergyReport estimate();

    /**
     * Streamed pipeline: phases 1 and 3 run concurrently — snapshots
     * replay on cfg.parallelReplays worker threads while the fast sim
     * is still producing them (src/core/streaming.h), so end-to-end
     * latency approaches max(fast-sim, replay) instead of the sum.
     * Replaces run() + estimate() for one workload. With cfg.ciBound
     * == 0 the report is byte-identical (deterministic rendering) to
     * the phased path for any worker count; with a bound set, the run
     * stops early once the CI is tight enough and report.earlyStopped
     * records it. cfg.replayExecutor is not consulted (the stream has
     * its own workers); use the farm's stream feed for cached runs.
     */
    EnergyReport estimateStreaming(HostDriver &driver, uint64_t maxCycles,
                                   RunStats *outRun = nullptr);

    /** Re-arm phase 1 for another workload on the same design. */
    void resetSampling();

    // --- Component access (benches, tests, examples) --------------------
    const fame::Fame1Design &fameDesign() const { return fame; }
    FameHarness &harness() { return *fameHarness; }
    fame::SnapshotSampler &sampler() { return *snapSampler; }
    const gate::SynthesisResult &synthesis();
    const gate::Placement &placement();
    const gate::MatchTable &matchTable();
    const Config &config() const { return cfg; }
    const rtl::Design &target() const { return dsn; }

  private:
    const rtl::Design &dsn;
    Config cfg;
    fame::Fame1Design fame;
    std::unique_ptr<fame::SnapshotSampler> snapSampler;
    std::unique_ptr<FameHarness> fameHarness;

    // Lazily-built ASIC-flow products.
    std::unique_ptr<gate::SynthesisResult> synth;
    std::unique_ptr<gate::Placement> placed;
    std::unique_ptr<gate::MatchTable> match;

    uint64_t lastRunCycles = 0;
    double lastFastSimWall = 0;

    void buildAsicFlow();
    /** Shared short-run guard: population/snapshots must already be
     *  set; marks the report invalid (with the canonical status
     *  message) and returns true when there is nothing to estimate. */
    bool markShortRun(EnergyReport &report) const;
};

/**
 * Ground truth (Figure 8 validation): run the whole workload at gate
 * level and return the exact average-power report. Slow by construction.
 */
power::PowerReport measureGroundTruth(EnergySimulator &sim,
                                      HostDriver &driver,
                                      uint64_t maxCycles);

} // namespace core
} // namespace strober

#endif // STROBER_CORE_ENERGY_SIM_H
