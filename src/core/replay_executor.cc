#include "core/replay_executor.h"

#include <algorithm>
#include <exception>
#include <map>
#include <thread>

#include "core/job_control.h"
#include "inject/fault_injector.h"
#include "util/logging.h"

namespace strober {
namespace core {

namespace {

SnapshotStatus
classifyReplayError(util::ErrorCode code)
{
    switch (code) {
      case util::ErrorCode::Timeout:
        return SnapshotStatus::TimedOut;
      case util::ErrorCode::LoadFailure:
      case util::ErrorCode::GeometryMismatch:
      case util::ErrorCode::Corrupt:
        return SnapshotStatus::LoadFailed;
      default:
        return SnapshotStatus::ReplayError;
    }
}

} // namespace

uint64_t
resolveReplayBudget(const EnergySimulator::Config &cfg,
                    const gate::SynthesisResult &synth)
{
    if (cfg.replayTimeoutCycles)
        return cfg.replayTimeoutCycles;
    // A healthy replay consumes warm-up + L steps; give it generous
    // slack so only genuinely hung replays trip the watchdog.
    unsigned maxLat = 0;
    for (const gate::RetimeNetInfo &r : synth.netlist.retime())
        maxLat = std::max(maxLat, r.latency);
    return 4ull * (cfg.replayLength + maxLat) + 256;
}

ReplayRecord
replaySnapshot(gate::GateSimulator &gsim, const ReplayContext &ctx,
               const ReplayUnit &unit)
{
    ReplayRecord out;
    SnapshotOutcome &oc = out.outcome;
    oc.index = unit.index;
    oc.cycle = unit.snap->cycle();
    const EnergySimulator::Config &cfg = ctx.cfg;
    // Job deadline: a replay that has not started by the deadline is
    // recorded as a deterministic TimedOut outcome (attempts = 0, fixed
    // detail string) so the degraded report's bytes depend only on
    // *which* snapshots were cut off, never on wall-clock noise — and
    // the job still terminates with survivors-only statistics.
    if (cfg.job != nullptr && cfg.job->deadlineExpired()) {
        oc.status = SnapshotStatus::TimedOut;
        oc.attempts = 0;
        oc.detail = "job deadline exceeded before replay";
        return out;
    }
    const unsigned maxAttempts = cfg.retryFaultySnapshots ? 2 : 1;
    for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
        oc.attempts = attempt + 1;
        gate::ReplayOptions opts;
        opts.loader = attempt == 0 ? cfg.loader
                                   : gate::alternateLoader(cfg.loader);
        oc.retriedOnAlternateLoader = attempt > 0;
        opts.cycleBudget = ctx.cycleBudget;
        if (cfg.stallPlan)
            opts.injectedStallCycles = cfg.stallPlan->stallFor(unit.index);
        try {
            util::Result<gate::GateReplayResult> r = gate::replayOnGate(
                gsim, ctx.target, ctx.match, *unit.snap, opts);
            if (!r.isOk()) {
                oc.status = classifyReplayError(r.status().code());
                oc.detail = r.status().toString();
                continue; // bounded retry, then quarantine
            }
            out.modeledLoadSeconds += r->load.modeledSeconds;
            if (r->outputMismatches) {
                oc.status = SnapshotStatus::Diverged;
                oc.mismatches = r->outputMismatches;
                oc.detail = r->firstMismatch;
                continue;
            }
            oc.status = SnapshotStatus::Replayed;
            oc.mismatches = 0;
            oc.detail.clear();
            power::PowerReport p =
                power::analyzePower(ctx.synth.netlist, ctx.placement,
                                    r->activity, cfg.clockHz);
            out.totalWatts = p.totalWatts();
            out.groups.clear();
            for (const power::GroupPower &g : p.groups)
                out.groups.emplace_back(g.group, g.total());
        } catch (const std::exception &e) {
            // Defense in depth: an exception escaping a replay must
            // cost one sample, not the whole farm run.
            oc.status = SnapshotStatus::ReplayError;
            oc.detail = strfmt("unexpected exception: %s", e.what());
            continue;
        }
        break;
    }
    return out;
}

void
InProcessReplayExecutor::replayAll(const ReplayContext &ctx,
                                   const std::vector<ReplayUnit> &units,
                                   std::vector<ReplayRecord> &records)
{
    if (units.empty())
        return;
    // Snapshots are independent (paper Section III-B), so fan the
    // replays out over P gate-level simulator instances. Each worker
    // owns a fixed stride of unit indices and all per-snapshot state is
    // slot-indexed, so aggregation is bit-identical for any P.
    unsigned parallel = std::max(1u, ctx.cfg.parallelReplays);
    parallel = std::min<unsigned>(parallel, units.size());
    auto worker = [&](unsigned workerIdx) {
        gate::GateSimulator gsim(ctx.synth.netlist);
        for (size_t i = workerIdx; i < units.size(); i += parallel)
            records[i] = replaySnapshot(gsim, ctx, units[i]);
    };
    if (parallel == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        for (unsigned t = 0; t < parallel; ++t)
            threads.emplace_back(worker, t);
        for (std::thread &t : threads)
            t.join();
    }
}

EnergyReport
aggregateReplayRecords(std::vector<ReplayRecord> records,
                       uint64_t population,
                       const EnergySimulator::Config &cfg)
{
    EnergyReport report;
    report.population = population;
    report.snapshots = records.size();

    // Aggregate in snapshot order: survivors feed the estimators,
    // quarantined snapshots are accounted and excluded — the paper's
    // statistics are exactly as valid over the surviving subsample,
    // just with a wider interval.
    stats::SampleStats totalPower;
    std::map<std::string, stats::SampleStats> groupPower;
    for (ReplayRecord &r : records) {
        const SnapshotOutcome &oc = r.outcome;
        report.replayMismatches += oc.mismatches;
        report.modeledLoadSeconds += r.modeledLoadSeconds;
        if (r.fromCache)
            ++report.cacheHits;
        else
            ++report.cacheMisses;
        if (!oc.replayed()) {
            ++report.droppedSnapshots;
            warn("snapshot %zu (cycle %llu) quarantined after %u "
                 "attempt(s): %s: %s",
                 oc.index, (unsigned long long)oc.cycle, oc.attempts,
                 snapshotStatusName(oc.status), oc.detail.c_str());
        } else {
            totalPower.add(r.totalWatts);
            for (const auto &[name, watts] : r.groups)
                groupPower[name].add(watts);
        }
        report.outcomes.push_back(std::move(r.outcome));
    }
    report.degraded = report.droppedSnapshots > 0;

    size_t survivors = records.size() - report.droppedSnapshots;
    size_t sampleFloor = std::max<size_t>(cfg.minSurvivingSamples, 2);
    if (survivors == 0) {
        report.valid = false;
        report.statusMessage = strfmt(
            "all %zu snapshots quarantined; no estimate", records.size());
        warn("estimate(): %s", report.statusMessage.c_str());
        return report;
    }

    uint64_t effPopulation =
        std::max<uint64_t>(report.population, records.size());
    if (survivors == 1) {
        // A single survivor defines a mean but no variance (Eq. 4
        // needs n >= 2); report the point estimate, flagged invalid.
        report.averagePower.mean = totalPower.mean();
        report.averagePower.confidence = cfg.confidence;
    } else {
        report.averagePower =
            totalPower.estimate(cfg.confidence, effPopulation);
        for (auto &[name, samples] : groupPower) {
            GroupEstimate g;
            g.group = name;
            g.power = samples.estimate(cfg.confidence, effPopulation);
            report.groups.push_back(std::move(g));
        }
    }

    if (report.droppedSnapshots > cfg.maxDroppedSnapshots) {
        report.valid = false;
        report.statusMessage = strfmt(
            "%zu snapshots quarantined, over the configured ceiling of "
            "%zu", report.droppedSnapshots, cfg.maxDroppedSnapshots);
    } else if (survivors < sampleFloor) {
        report.valid = false;
        report.statusMessage = strfmt(
            "only %zu of %zu snapshots survived replay, under the "
            "minimum-sample floor of %zu",
            survivors, records.size(), sampleFloor);
    } else if (report.degraded) {
        report.statusMessage = strfmt(
            "degraded: %zu of %zu snapshots quarantined; estimate uses "
            "the %zu survivors (CI widened accordingly)",
            report.droppedSnapshots, records.size(), survivors);
    }
    if (!report.valid)
        warn("estimate(): %s", report.statusMessage.c_str());
    return report;
}

} // namespace core
} // namespace strober
