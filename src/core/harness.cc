#include "core/harness.h"

#include "util/logging.h"

namespace strober {
namespace core {

uint64_t
runLoop(TargetHarness &harness, HostDriver &driver, uint64_t maxCycles)
{
    while (!driver.done() && harness.cycles() < maxCycles) {
        driver.drive(harness);
        harness.clock();
    }
    return harness.cycles();
}

RtlHarness::RtlHarness(const rtl::Design &design, sim::Backend backend)
    : dsn(design), sim(design, backend)
{
    inputNodes = design.inputs();
    outputNodes.reserve(design.outputs().size());
    for (const rtl::OutputPort &o : design.outputs())
        outputNodes.push_back(o.node);
    lastOutputs.assign(design.outputs().size(), 0);
}

void
RtlHarness::setInput(size_t port, uint64_t value)
{
    if (port >= inputNodes.size())
        panic("setInput port %zu out of range", port);
    sim.poke(inputNodes[port], value);
}

uint64_t
RtlHarness::getOutput(size_t port) const
{
    return lastOutputs.at(port);
}

void
RtlHarness::clock()
{
    for (size_t o = 0; o < outputNodes.size(); ++o)
        lastOutputs[o] = sim.peek(outputNodes[o]);
    sim.step();
}

GateHarness::GateHarness(const gate::GateNetlist &netlist) : sim(netlist)
{
    lastOutputs.assign(netlist.outputs().size(), 0);
}

void
GateHarness::setInput(size_t port, uint64_t value)
{
    sim.pokePort(port, value);
}

uint64_t
GateHarness::getOutput(size_t port) const
{
    return lastOutputs.at(port);
}

void
GateHarness::clock()
{
    for (size_t o = 0; o < sim.netlist().outputs().size(); ++o)
        lastOutputs[o] = sim.peekPort(o);
    sim.step();
}

namespace {

fame::TokenSimulator::Config
tokenConfig(sim::Backend backend)
{
    fame::TokenSimulator::Config cfg;
    cfg.backend = backend;
    return cfg;
}

} // namespace

FameHarness::FameHarness(const fame::Fame1Design &fame,
                         fame::SnapshotSampler *sampler,
                         sim::Backend backend)
    : tsim(fame, tokenConfig(backend)), snapSampler(sampler)
{
    pendingInputs.assign(fame.targetInputs.size(), 0);
    lastOutputs.assign(fame.targetOutputs.size(), 0);
}

void
FameHarness::setInput(size_t port, uint64_t value)
{
    pendingInputs.at(port) = value;
}

uint64_t
FameHarness::getOutput(size_t port) const
{
    return lastOutputs.at(port);
}

void
FameHarness::clock()
{
    if (snapSampler)
        snapSampler->poll(tsim);
    for (size_t i = 0; i < pendingInputs.size(); ++i)
        tsim.enqueueInput(i, pendingInputs[i]);
    if (!tsim.tryStep())
        panic("lock-step FAME harness failed to fire");
    for (size_t o = 0; o < lastOutputs.size(); ++o)
        lastOutputs[o] = tsim.dequeueOutput(o);
}

} // namespace core
} // namespace strober
