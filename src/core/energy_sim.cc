#include "core/energy_sim.h"

#include <chrono>

#include "core/replay_executor.h"
#include "util/logging.h"

namespace strober {
namespace core {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

EnergySimulator::EnergySimulator(const rtl::Design &target, Config config)
    : dsn(target), cfg(config), fame(fame::fame1Transform(target))
{
    resetSampling();
}

void
EnergySimulator::resetSampling()
{
    fame::SnapshotSampler::Config scfg;
    scfg.sampleSize = cfg.sampleSize;
    scfg.replayLength = cfg.replayLength;
    scfg.seed = cfg.seed;
    scfg.enabled = cfg.samplingEnabled;
    snapSampler = std::make_unique<fame::SnapshotSampler>(fame, scfg);
    fameHarness = std::make_unique<FameHarness>(fame, snapSampler.get(),
                                                cfg.backend);
    lastRunCycles = 0;
}

RunStats
EnergySimulator::run(HostDriver &driver, uint64_t maxCycles)
{
    RunStats stats;
    double start = nowSeconds();
    fame::TokenSimulator &tsim = fameHarness->tokenSim();
    uint64_t nextService = cfg.hostServiceInterval;
    uint64_t nextProbe = cfg.earlyStopProbe ? cfg.replayLength : 0;
    while (!driver.done() && tsim.targetCycles() < maxCycles) {
        driver.drive(*fameHarness);
        fameHarness->clock();
        if (cfg.hostServiceInterval &&
            tsim.targetCycles() >= nextService) {
            tsim.addHostStallCycles(cfg.hostServiceStall);
            nextService += cfg.hostServiceInterval;
        }
        if (nextProbe != 0 && tsim.targetCycles() >= nextProbe) {
            if (cfg.earlyStopProbe())
                break;
            nextProbe += cfg.replayLength;
        }
    }
    stats.wallSeconds = nowSeconds() - start;
    stats.targetCycles = tsim.targetCycles();
    stats.hostCycles = tsim.hostCycles();
    stats.recordCount = snapSampler->recordCount();
    stats.intervalsSeen = snapSampler->intervalsSeen();
    stats.simulatedHz = stats.wallSeconds > 0
                            ? static_cast<double>(stats.targetCycles) /
                                  stats.wallSeconds
                            : 0;
    lastRunCycles = stats.targetCycles;
    lastFastSimWall = stats.wallSeconds;
    return stats;
}

void
EnergySimulator::buildAsicFlow()
{
    if (synth)
        return;
    synth = std::make_unique<gate::SynthesisResult>(gate::synthesize(dsn));
    placed = std::make_unique<gate::Placement>(gate::place(synth->netlist));
    match = std::make_unique<gate::MatchTable>(
        gate::matchDesigns(dsn, synth->netlist, synth->guide));
}

const gate::SynthesisResult &
EnergySimulator::synthesis()
{
    buildAsicFlow();
    return *synth;
}

const gate::Placement &
EnergySimulator::placement()
{
    buildAsicFlow();
    return *placed;
}

const gate::MatchTable &
EnergySimulator::matchTable()
{
    buildAsicFlow();
    return *match;
}

const char *
snapshotStatusName(SnapshotStatus status)
{
    switch (status) {
      case SnapshotStatus::Replayed:
        return "replayed";
      case SnapshotStatus::Diverged:
        return "diverged";
      case SnapshotStatus::LoadFailed:
        return "load-failed";
      case SnapshotStatus::TimedOut:
        return "timed-out";
      case SnapshotStatus::ReplayError:
        return "replay-error";
    }
    return "unknown";
}

// No complete interval was ever captured: there is nothing to replay
// and (for a short run) N = floor(cycles/L) is zero, so any CI would be
// meaningless. Report the condition instead of computing garbage.
// Shared by the phased and streamed paths so both emit the exact same
// invalid report.
bool
EnergySimulator::markShortRun(EnergyReport &report) const
{
    if (report.snapshots != 0 && report.population != 0)
        return false;
    report.valid = false;
    report.degraded = true;
    if (lastRunCycles < cfg.replayLength) {
        report.statusMessage = strfmt(
            "run of %llu target cycles is shorter than one replay "
            "interval (L = %u): zero complete intervals, no estimate",
            (unsigned long long)lastRunCycles, cfg.replayLength);
    } else {
        report.statusMessage =
            "no complete snapshots; run a workload with sampling "
            "enabled first";
    }
    warn("estimate(): %s", report.statusMessage.c_str());
    return true;
}

EnergyReport
EnergySimulator::estimate()
{
    buildAsicFlow();
    EnergyReport report;

    auto snapshots = snapSampler->snapshots();
    report.population = lastRunCycles / cfg.replayLength;
    report.snapshots = snapshots.size();
    report.fastSimWallSeconds = lastFastSimWall;
    if (markShortRun(report))
        return report;

    double start = nowSeconds();

    std::vector<ReplayUnit> units(snapshots.size());
    for (size_t i = 0; i < snapshots.size(); ++i)
        units[i] = ReplayUnit{i, snapshots[i]};
    std::vector<ReplayRecord> records(units.size());

    ReplayContext ctx{dsn,
                      *synth,
                      *placed,
                      *match,
                      snapSampler->chains(),
                      cfg,
                      resolveReplayBudget(cfg, *synth)};
    InProcessReplayExecutor builtin;
    ReplayExecutor &executor =
        cfg.replayExecutor ? *cfg.replayExecutor : builtin;
    executor.replayAll(ctx, units, records);

    uint64_t population = report.population;
    report = aggregateReplayRecords(std::move(records), population, cfg);
    report.replayWallSeconds = nowSeconds() - start;
    report.fastSimWallSeconds = lastFastSimWall;
    return report;
}

power::PowerReport
measureGroundTruth(EnergySimulator &sim, HostDriver &driver,
                   uint64_t maxCycles)
{
    const gate::SynthesisResult &synth = sim.synthesis();
    GateHarness harness(synth.netlist);
    harness.simulator().clearActivity();
    runLoop(harness, driver, maxCycles);
    if (harness.cycles() == 0)
        fatal("ground-truth run executed zero cycles");
    gate::ActivityReport activity{
        harness.simulator().toggleCounts(),
        harness.simulator().macroStats(),
        harness.simulator().activityCycles()};
    return power::analyzePower(synth.netlist, sim.placement(), activity,
                               sim.config().clockHz);
}

} // namespace core
} // namespace strober
