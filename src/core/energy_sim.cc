#include "core/energy_sim.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "util/logging.h"

namespace strober {
namespace core {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

EnergySimulator::EnergySimulator(const rtl::Design &target, Config config)
    : dsn(target), cfg(config), fame(fame::fame1Transform(target))
{
    resetSampling();
}

void
EnergySimulator::resetSampling()
{
    fame::SnapshotSampler::Config scfg;
    scfg.sampleSize = cfg.sampleSize;
    scfg.replayLength = cfg.replayLength;
    scfg.seed = cfg.seed;
    scfg.enabled = cfg.samplingEnabled;
    snapSampler = std::make_unique<fame::SnapshotSampler>(fame, scfg);
    fameHarness = std::make_unique<FameHarness>(fame, snapSampler.get(),
                                                cfg.simMode);
    lastRunCycles = 0;
}

RunStats
EnergySimulator::run(HostDriver &driver, uint64_t maxCycles)
{
    RunStats stats;
    double start = nowSeconds();
    fame::TokenSimulator &tsim = fameHarness->tokenSim();
    uint64_t nextService = cfg.hostServiceInterval;
    while (!driver.done() && tsim.targetCycles() < maxCycles) {
        driver.drive(*fameHarness);
        fameHarness->clock();
        if (cfg.hostServiceInterval &&
            tsim.targetCycles() >= nextService) {
            tsim.addHostStallCycles(cfg.hostServiceStall);
            nextService += cfg.hostServiceInterval;
        }
    }
    stats.wallSeconds = nowSeconds() - start;
    stats.targetCycles = tsim.targetCycles();
    stats.hostCycles = tsim.hostCycles();
    stats.recordCount = snapSampler->recordCount();
    stats.intervalsSeen = snapSampler->intervalsSeen();
    stats.simulatedHz = stats.wallSeconds > 0
                            ? static_cast<double>(stats.targetCycles) /
                                  stats.wallSeconds
                            : 0;
    lastRunCycles = stats.targetCycles;
    return stats;
}

void
EnergySimulator::buildAsicFlow()
{
    if (synth)
        return;
    synth = std::make_unique<gate::SynthesisResult>(gate::synthesize(dsn));
    placed = std::make_unique<gate::Placement>(gate::place(synth->netlist));
    match = std::make_unique<gate::MatchTable>(
        gate::matchDesigns(dsn, synth->netlist, synth->guide));
}

const gate::SynthesisResult &
EnergySimulator::synthesis()
{
    buildAsicFlow();
    return *synth;
}

const gate::Placement &
EnergySimulator::placement()
{
    buildAsicFlow();
    return *placed;
}

const gate::MatchTable &
EnergySimulator::matchTable()
{
    buildAsicFlow();
    return *match;
}

EnergyReport
EnergySimulator::estimate()
{
    buildAsicFlow();
    EnergyReport report;

    auto snapshots = snapSampler->snapshots();
    if (snapshots.empty())
        fatal("no complete snapshots; run a workload with sampling "
              "enabled first");

    report.population = lastRunCycles / cfg.replayLength;
    report.snapshots = snapshots.size();

    double start = nowSeconds();

    // Snapshots are independent (paper Section III-B), so fan the
    // replays out over P gate-level simulator instances.
    unsigned parallel = std::max(1u, cfg.parallelReplays);
    parallel = std::min<unsigned>(parallel, snapshots.size());
    struct SnapResult
    {
        uint64_t mismatches = 0;
        std::string firstMismatch;
        uint64_t cycle = 0;
        double modeledLoadSeconds = 0;
        double totalWatts = 0;
        std::vector<std::pair<std::string, double>> groups;
    };
    std::vector<SnapResult> results(snapshots.size());

    auto worker = [&](unsigned workerIdx) {
        gate::GateSimulator gsim(synth->netlist);
        for (size_t i = workerIdx; i < snapshots.size(); i += parallel) {
            const fame::ReplayableSnapshot *snap = snapshots[i];
            gate::GateReplayResult r = gate::replayOnGate(
                gsim, dsn, *match, *snap, cfg.loader);
            SnapResult &out = results[i];
            out.mismatches = r.outputMismatches;
            out.firstMismatch = r.firstMismatch;
            out.cycle = snap->cycle();
            out.modeledLoadSeconds = r.load.modeledSeconds;
            power::PowerReport p = power::analyzePower(
                synth->netlist, *placed, r.activity, cfg.clockHz);
            out.totalWatts = p.totalWatts();
            for (const power::GroupPower &g : p.groups)
                out.groups.emplace_back(g.group, g.total());
        }
    };
    if (parallel == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        for (unsigned t = 0; t < parallel; ++t)
            threads.emplace_back(worker, t);
        for (std::thread &t : threads)
            t.join();
    }

    stats::SampleStats totalPower;
    std::map<std::string, stats::SampleStats> groupPower;
    for (const SnapResult &r : results) {
        report.replayMismatches += r.mismatches;
        if (r.mismatches) {
            warn("snapshot at cycle %llu failed replay verification: %s",
                 (unsigned long long)r.cycle, r.firstMismatch.c_str());
        }
        report.modeledLoadSeconds += r.modeledLoadSeconds;
        totalPower.add(r.totalWatts);
        for (const auto &[name, watts] : r.groups)
            groupPower[name].add(watts);
    }
    report.replayWallSeconds = nowSeconds() - start;

    uint64_t population = std::max<uint64_t>(report.population,
                                             snapshots.size());
    report.averagePower = totalPower.estimate(cfg.confidence, population);
    for (auto &[name, samples] : groupPower) {
        GroupEstimate g;
        g.group = name;
        g.power = samples.estimate(cfg.confidence, population);
        report.groups.push_back(std::move(g));
    }
    return report;
}

power::PowerReport
measureGroundTruth(EnergySimulator &sim, HostDriver &driver,
                   uint64_t maxCycles)
{
    const gate::SynthesisResult &synth = sim.synthesis();
    GateHarness harness(synth.netlist);
    harness.simulator().clearActivity();
    runLoop(harness, driver, maxCycles);
    if (harness.cycles() == 0)
        fatal("ground-truth run executed zero cycles");
    gate::ActivityReport activity{
        harness.simulator().toggleCounts(),
        harness.simulator().macroStats(),
        harness.simulator().activityCycles()};
    return power::analyzePower(synth.netlist, sim.placement(), activity,
                               sim.config().clockHz);
}

} // namespace core
} // namespace strober
