#include "core/energy_sim.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <thread>

#include "inject/fault_injector.h"
#include "util/logging.h"

namespace strober {
namespace core {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

EnergySimulator::EnergySimulator(const rtl::Design &target, Config config)
    : dsn(target), cfg(config), fame(fame::fame1Transform(target))
{
    resetSampling();
}

void
EnergySimulator::resetSampling()
{
    fame::SnapshotSampler::Config scfg;
    scfg.sampleSize = cfg.sampleSize;
    scfg.replayLength = cfg.replayLength;
    scfg.seed = cfg.seed;
    scfg.enabled = cfg.samplingEnabled;
    snapSampler = std::make_unique<fame::SnapshotSampler>(fame, scfg);
    fameHarness = std::make_unique<FameHarness>(fame, snapSampler.get(),
                                                cfg.simMode);
    lastRunCycles = 0;
}

RunStats
EnergySimulator::run(HostDriver &driver, uint64_t maxCycles)
{
    RunStats stats;
    double start = nowSeconds();
    fame::TokenSimulator &tsim = fameHarness->tokenSim();
    uint64_t nextService = cfg.hostServiceInterval;
    while (!driver.done() && tsim.targetCycles() < maxCycles) {
        driver.drive(*fameHarness);
        fameHarness->clock();
        if (cfg.hostServiceInterval &&
            tsim.targetCycles() >= nextService) {
            tsim.addHostStallCycles(cfg.hostServiceStall);
            nextService += cfg.hostServiceInterval;
        }
    }
    stats.wallSeconds = nowSeconds() - start;
    stats.targetCycles = tsim.targetCycles();
    stats.hostCycles = tsim.hostCycles();
    stats.recordCount = snapSampler->recordCount();
    stats.intervalsSeen = snapSampler->intervalsSeen();
    stats.simulatedHz = stats.wallSeconds > 0
                            ? static_cast<double>(stats.targetCycles) /
                                  stats.wallSeconds
                            : 0;
    lastRunCycles = stats.targetCycles;
    return stats;
}

void
EnergySimulator::buildAsicFlow()
{
    if (synth)
        return;
    synth = std::make_unique<gate::SynthesisResult>(gate::synthesize(dsn));
    placed = std::make_unique<gate::Placement>(gate::place(synth->netlist));
    match = std::make_unique<gate::MatchTable>(
        gate::matchDesigns(dsn, synth->netlist, synth->guide));
}

const gate::SynthesisResult &
EnergySimulator::synthesis()
{
    buildAsicFlow();
    return *synth;
}

const gate::Placement &
EnergySimulator::placement()
{
    buildAsicFlow();
    return *placed;
}

const gate::MatchTable &
EnergySimulator::matchTable()
{
    buildAsicFlow();
    return *match;
}

const char *
snapshotStatusName(SnapshotStatus status)
{
    switch (status) {
      case SnapshotStatus::Replayed:
        return "replayed";
      case SnapshotStatus::Diverged:
        return "diverged";
      case SnapshotStatus::LoadFailed:
        return "load-failed";
      case SnapshotStatus::TimedOut:
        return "timed-out";
      case SnapshotStatus::ReplayError:
        return "replay-error";
    }
    return "unknown";
}

namespace {

SnapshotStatus
classifyReplayError(util::ErrorCode code)
{
    switch (code) {
      case util::ErrorCode::Timeout:
        return SnapshotStatus::TimedOut;
      case util::ErrorCode::LoadFailure:
      case util::ErrorCode::GeometryMismatch:
      case util::ErrorCode::Corrupt:
        return SnapshotStatus::LoadFailed;
      default:
        return SnapshotStatus::ReplayError;
    }
}

} // namespace

EnergyReport
EnergySimulator::estimate()
{
    buildAsicFlow();
    EnergyReport report;

    auto snapshots = snapSampler->snapshots();
    report.population = lastRunCycles / cfg.replayLength;
    report.snapshots = snapshots.size();

    // No complete interval was ever captured: there is nothing to
    // replay and (for a short run) N = floor(cycles/L) is zero, so any
    // CI would be meaningless. Report the condition instead of
    // computing garbage.
    if (snapshots.empty() || report.population == 0) {
        report.valid = false;
        report.degraded = true;
        if (lastRunCycles < cfg.replayLength) {
            report.statusMessage = strfmt(
                "run of %llu target cycles is shorter than one replay "
                "interval (L = %u): zero complete intervals, no estimate",
                (unsigned long long)lastRunCycles, cfg.replayLength);
        } else {
            report.statusMessage =
                "no complete snapshots; run a workload with sampling "
                "enabled first";
        }
        warn("estimate(): %s", report.statusMessage.c_str());
        return report;
    }

    double start = nowSeconds();

    // Snapshots are independent (paper Section III-B), so fan the
    // replays out over P gate-level simulator instances. Each worker
    // owns a fixed stride of snapshot indices and all per-snapshot
    // state is indexed, so the aggregate below is bit-identical for
    // any worker count.
    unsigned parallel = std::max(1u, cfg.parallelReplays);
    parallel = std::min<unsigned>(parallel, snapshots.size());
    struct SnapResult
    {
        SnapshotOutcome outcome;
        double modeledLoadSeconds = 0;
        double totalWatts = 0;
        std::vector<std::pair<std::string, double>> groups;
    };
    std::vector<SnapResult> results(snapshots.size());

    // Watchdog budget: a healthy replay consumes warm-up + L steps;
    // give it generous slack so only genuinely hung replays trip it.
    uint64_t budget = cfg.replayTimeoutCycles;
    if (budget == 0) {
        unsigned maxLat = 0;
        for (const gate::RetimeNetInfo &r : synth->netlist.retime())
            maxLat = std::max(maxLat, r.latency);
        budget = 4ull * (cfg.replayLength + maxLat) + 256;
    }

    auto worker = [&](unsigned workerIdx) {
        gate::GateSimulator gsim(synth->netlist);
        for (size_t i = workerIdx; i < snapshots.size(); i += parallel) {
            const fame::ReplayableSnapshot *snap = snapshots[i];
            SnapResult &out = results[i];
            SnapshotOutcome &oc = out.outcome;
            oc.index = i;
            oc.cycle = snap->cycle();
            const unsigned maxAttempts = cfg.retryFaultySnapshots ? 2 : 1;
            for (unsigned attempt = 0; attempt < maxAttempts; ++attempt) {
                oc.attempts = attempt + 1;
                gate::ReplayOptions opts;
                opts.loader = attempt == 0
                                  ? cfg.loader
                                  : gate::alternateLoader(cfg.loader);
                oc.retriedOnAlternateLoader = attempt > 0;
                opts.cycleBudget = budget;
                if (cfg.stallPlan)
                    opts.injectedStallCycles = cfg.stallPlan->stallFor(i);
                try {
                    util::Result<gate::GateReplayResult> r =
                        gate::replayOnGate(gsim, dsn, *match, *snap, opts);
                    if (!r.isOk()) {
                        oc.status = classifyReplayError(r.status().code());
                        oc.detail = r.status().toString();
                        continue; // bounded retry, then quarantine
                    }
                    out.modeledLoadSeconds += r->load.modeledSeconds;
                    if (r->outputMismatches) {
                        oc.status = SnapshotStatus::Diverged;
                        oc.mismatches = r->outputMismatches;
                        oc.detail = r->firstMismatch;
                        continue;
                    }
                    oc.status = SnapshotStatus::Replayed;
                    oc.mismatches = 0;
                    oc.detail.clear();
                    power::PowerReport p = power::analyzePower(
                        synth->netlist, *placed, r->activity, cfg.clockHz);
                    out.totalWatts = p.totalWatts();
                    for (const power::GroupPower &g : p.groups)
                        out.groups.emplace_back(g.group, g.total());
                } catch (const std::exception &e) {
                    // Defense in depth: an exception escaping a replay
                    // must cost one sample, not the whole farm run.
                    oc.status = SnapshotStatus::ReplayError;
                    oc.detail = strfmt("unexpected exception: %s",
                                       e.what());
                    continue;
                }
                break;
            }
        }
    };
    if (parallel == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        for (unsigned t = 0; t < parallel; ++t)
            threads.emplace_back(worker, t);
        for (std::thread &t : threads)
            t.join();
    }

    // Aggregate in snapshot order: survivors feed the estimators,
    // quarantined snapshots are accounted and excluded — the paper's
    // statistics are exactly as valid over the surviving subsample,
    // just with a wider interval.
    stats::SampleStats totalPower;
    std::map<std::string, stats::SampleStats> groupPower;
    for (SnapResult &r : results) {
        const SnapshotOutcome &oc = r.outcome;
        report.replayMismatches += oc.mismatches;
        report.modeledLoadSeconds += r.modeledLoadSeconds;
        if (!oc.replayed()) {
            ++report.droppedSnapshots;
            warn("snapshot %zu (cycle %llu) quarantined after %u "
                 "attempt(s): %s: %s",
                 oc.index, (unsigned long long)oc.cycle, oc.attempts,
                 snapshotStatusName(oc.status), oc.detail.c_str());
        } else {
            totalPower.add(r.totalWatts);
            for (const auto &[name, watts] : r.groups)
                groupPower[name].add(watts);
        }
        report.outcomes.push_back(std::move(r.outcome));
    }
    report.replayWallSeconds = nowSeconds() - start;
    report.degraded = report.droppedSnapshots > 0;

    size_t survivors = snapshots.size() - report.droppedSnapshots;
    size_t sampleFloor = std::max<size_t>(cfg.minSurvivingSamples, 2);
    if (survivors == 0) {
        report.valid = false;
        report.statusMessage = strfmt(
            "all %zu snapshots quarantined; no estimate", snapshots.size());
        warn("estimate(): %s", report.statusMessage.c_str());
        return report;
    }

    uint64_t population = std::max<uint64_t>(report.population,
                                             snapshots.size());
    if (survivors == 1) {
        // A single survivor defines a mean but no variance (Eq. 4
        // needs n >= 2); report the point estimate, flagged invalid.
        report.averagePower.mean = totalPower.mean();
        report.averagePower.confidence = cfg.confidence;
    } else {
        report.averagePower =
            totalPower.estimate(cfg.confidence, population);
        for (auto &[name, samples] : groupPower) {
            GroupEstimate g;
            g.group = name;
            g.power = samples.estimate(cfg.confidence, population);
            report.groups.push_back(std::move(g));
        }
    }

    if (report.droppedSnapshots > cfg.maxDroppedSnapshots) {
        report.valid = false;
        report.statusMessage = strfmt(
            "%zu snapshots quarantined, over the configured ceiling of "
            "%zu", report.droppedSnapshots, cfg.maxDroppedSnapshots);
    } else if (survivors < sampleFloor) {
        report.valid = false;
        report.statusMessage = strfmt(
            "only %zu of %zu snapshots survived replay, under the "
            "minimum-sample floor of %zu",
            survivors, snapshots.size(), sampleFloor);
    } else if (report.degraded) {
        report.statusMessage = strfmt(
            "degraded: %zu of %zu snapshots quarantined; estimate uses "
            "the %zu survivors (CI widened accordingly)",
            report.droppedSnapshots, snapshots.size(), survivors);
    }
    if (!report.valid)
        warn("estimate(): %s", report.statusMessage.c_str());
    return report;
}

power::PowerReport
measureGroundTruth(EnergySimulator &sim, HostDriver &driver,
                   uint64_t maxCycles)
{
    const gate::SynthesisResult &synth = sim.synthesis();
    GateHarness harness(synth.netlist);
    harness.simulator().clearActivity();
    runLoop(harness, driver, maxCycles);
    if (harness.cycles() == 0)
        fatal("ground-truth run executed zero cycles");
    gate::ActivityReport activity{
        harness.simulator().toggleCounts(),
        harness.simulator().macroStats(),
        harness.simulator().activityCycles()};
    return power::analyzePower(synth.netlist, sim.placement(), activity,
                               sim.config().clockHz);
}

} // namespace core
} // namespace strober
