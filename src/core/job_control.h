/**
 * @file
 * Cooperative cancellation and deadlines for long-running estimate
 * jobs (the service tier's supervision contract).
 *
 * A JobControl is a pair of lock-free flags shared between whoever
 * supervises a job (daemon runner thread, signal handler, test) and
 * the replay pipeline executing it:
 *
 *  - `cancel` requests a graceful *drain*: stop at the next safe
 *    checkpoint, persist progress (leases reverted to Pending), and
 *    return ErrorCode::Canceled. Nothing is quarantined — a later run
 *    resumes and produces the bit-identical report.
 *  - `deadlineUnixMs` is a hard wall-clock budget: replays that have
 *    not *started* by the deadline are recorded as deterministic
 *    SnapshotStatus::TimedOut outcomes, so the job still terminates
 *    with a (degraded) report whose surviving numbers obey the pure
 *    replay function. A timed-out job is a *result*, a drained job is
 *    a checkpoint.
 *
 * Both fields are plain atomics so a signal handler may store to them
 * (async-signal-safe) and replay worker threads may poll them without
 * locks.
 */

#ifndef STROBER_CORE_JOB_CONTROL_H
#define STROBER_CORE_JOB_CONTROL_H

#include <atomic>
#include <cstdint>

namespace strober {
namespace core {

/** Shared cancel/deadline flags for one estimate job. */
struct JobControl
{
    /** Drain request: checkpoint at the next boundary and stop. */
    std::atomic<bool> cancel{false};

    /** Absolute wall-clock deadline (unix epoch ms); 0 = none. */
    std::atomic<uint64_t> deadlineUnixMs{0};

    bool canceled() const
    {
        return cancel.load(std::memory_order_relaxed);
    }

    /** True once the wall clock has passed an armed deadline. */
    bool deadlineExpired() const;

    /** Either drain requested or deadline passed. */
    bool stopRequested() const
    {
        return canceled() || deadlineExpired();
    }

    /** Arm the deadline @p budgetMs from now (0 disarms). */
    void armDeadline(uint64_t budgetMs);

    /** Clear both flags (reuse between jobs). */
    void reset()
    {
        cancel.store(false, std::memory_order_relaxed);
        deadlineUnixMs.store(0, std::memory_order_relaxed);
    }
};

/**
 * Process-wide JobControl for single-job processes (farm worker, CLI
 * run): SIGTERM handlers store to it, the orchestrator polls it.
 */
JobControl &globalJobControl();

} // namespace core
} // namespace strober

#endif // STROBER_CORE_JOB_CONTROL_H
