#include "core/job_control.h"

#include "util/env.h"

namespace strober {
namespace core {

bool
JobControl::deadlineExpired() const
{
    uint64_t dl = deadlineUnixMs.load(std::memory_order_relaxed);
    return dl != 0 && util::nowUnixMs() >= dl;
}

void
JobControl::armDeadline(uint64_t budgetMs)
{
    uint64_t dl = budgetMs == 0 ? 0 : util::nowUnixMs() + budgetMs;
    deadlineUnixMs.store(dl, std::memory_order_relaxed);
}

JobControl &
globalJobControl()
{
    static JobControl control;
    return control;
}

} // namespace core
} // namespace strober
