#include "core/streaming.h"

#include <algorithm>
#include <chrono>

#include "gate/gate_sim.h"
#include "stats/sampling.h"
#include "util/logging.h"

namespace strober {
namespace core {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

StreamingReplayPipeline::StreamingReplayPipeline(const ReplayContext &ctx,
                                                 unsigned workerCount,
                                                 size_t queueBound)
    : ctx(ctx), bound(std::max<size_t>(queueBound, 1))
{
    unsigned n = std::max(1u, workerCount);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this] { workerMain(); });
}

StreamingReplayPipeline::~StreamingReplayPipeline()
{
    finish();
}

void
StreamingReplayPipeline::onSnapshotReady(
    size_t slot, uint64_t generation,
    std::shared_ptr<const fame::ReplayableSnapshot> snap)
{
    std::unique_lock<std::mutex> lk(mtx);
    // Backpressure: the bound tracks the reservoir size and eviction
    // dequeues eagerly, so this wait only ever fires when replay is
    // pathologically slower than capture.
    spaceCv.wait(lk, [&] { return queue.size() < bound || closed; });
    if (closed)
        return;
    queue.push_back(Item{slot, generation, std::move(snap)});
    ++counters.published;
    readyCv.notify_one();
}

void
StreamingReplayPipeline::onSlotEvicted(size_t slot, uint64_t generation)
{
    std::lock_guard<std::mutex> lk(mtx);
    auto key = std::make_pair(slot, generation);
    superseded.insert(key);
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->slot == slot && it->generation == generation) {
            queue.erase(it);
            ++counters.supersededQueued;
            spaceCv.notify_one();
            return;
        }
    }
    auto res = results.find(key);
    if (res != results.end()) {
        results.erase(res);
        ++counters.supersededResults;
    }
    // Otherwise the capture is replaying right now; the worker checks
    // the superseded set before publishing and discards the result.
}

void
StreamingReplayPipeline::workerMain()
{
    // Built lazily: a streamed run with fewer samples than workers
    // should not pay for idle gate simulators.
    std::unique_ptr<gate::GateSimulator> gsim;
    for (;;) {
        Item item;
        {
            std::unique_lock<std::mutex> lk(mtx);
            readyCv.wait(lk, [&] { return !queue.empty() || closed; });
            if (queue.empty())
                return;
            item = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
            if (counters.firstReplayStart == 0)
                counters.firstReplayStart = nowSeconds();
            spaceCv.notify_one();
        }
        if (!gsim)
            gsim = std::make_unique<gate::GateSimulator>(ctx.synth.netlist);
        // Provisional index = reservoir slot; the aggregation step maps
        // it to the final compacted sample index (re-replaying when the
        // index itself is replay-relevant, i.e. under a stall plan).
        ReplayUnit unit{item.slot, item.snap.get()};
        ReplayRecord rec = replaySnapshot(*gsim, ctx, unit);
        {
            std::lock_guard<std::mutex> lk(mtx);
            --inFlight;
            ++counters.replaysCompleted;
            counters.lastReplayEnd = nowSeconds();
            auto key = std::make_pair(item.slot, item.generation);
            if (superseded.count(key))
                ++counters.supersededResults;
            else
                results[key] = std::move(rec);
            resultsVersion.fetch_add(1, std::memory_order_release);
            doneCv.notify_all();
        }
    }
}

bool
StreamingReplayPipeline::ciBoundMet(double bound_, double confidence,
                                    uint64_t populationSize,
                                    size_t reservoirSize)
{
    if (bound_ <= 0)
        return false;
    // Lock-free fast path: this runs once per fast-sim cycle, and the
    // answer can only change when a replay completes.
    if (resultsVersion.load(std::memory_order_acquire) == ciCheckedVersion)
        return false;
    std::lock_guard<std::mutex> lk(mtx);
    ciCheckedVersion = resultsVersion.load(std::memory_order_relaxed);
    // Eq. 8 floor: n >= 30 for the normal approximation to hold,
    // clamped to the reservoir size so tiny configured samples can
    // still terminate once fully replayed.
    size_t floorN = std::min<size_t>(30, reservoirSize);
    stats::SampleStats power;
    for (const auto &kv : results) {
        if (kv.second.outcome.replayed())
            power.add(kv.second.totalWatts);
    }
    if (power.size() < std::max<size_t>(floorN, 2))
        return false;
    if (populationSize < power.size())
        return false;
    stats::Estimate est = power.estimate(confidence, populationSize);
    return est.mean > 0 && est.relativeError() < bound_;
}

void
StreamingReplayPipeline::cancelQueued()
{
    std::lock_guard<std::mutex> lk(mtx);
    counters.canceledOnStop += queue.size();
    queue.clear();
    spaceCv.notify_all();
}

bool
StreamingReplayPipeline::waitIdle(uint64_t maxWaitMs)
{
    std::unique_lock<std::mutex> lk(mtx);
    return doneCv.wait_for(lk, std::chrono::milliseconds(maxWaitMs), [&] {
        return queue.empty() && inFlight == 0;
    });
}

void
StreamingReplayPipeline::finish()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        closed = true;
        readyCv.notify_all();
        spaceCv.notify_all();
    }
    for (std::thread &t : workers) {
        if (t.joinable())
            t.join();
    }
}

bool
StreamingReplayPipeline::takeResult(size_t slot, uint64_t generation,
                                    ReplayRecord &out)
{
    std::lock_guard<std::mutex> lk(mtx);
    auto it = results.find(std::make_pair(slot, generation));
    if (it == results.end())
        return false;
    out = std::move(it->second);
    results.erase(it);
    return true;
}

std::vector<ReplayRecord>
StreamingReplayPipeline::takeSurvivors()
{
    std::lock_guard<std::mutex> lk(mtx);
    std::vector<ReplayRecord> out;
    out.reserve(results.size());
    for (auto &kv : results)
        out.push_back(std::move(kv.second));
    results.clear();
    return out;
}

StreamingStats
StreamingReplayPipeline::stats() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return counters;
}

EnergyReport
EnergySimulator::estimateStreaming(HostDriver &driver, uint64_t maxCycles,
                                   RunStats *outRun)
{
    // The ASIC-flow products are independent of the fast sim (pipeline
    // step 2) and replay consumes them immediately, so build them
    // before the clock starts.
    buildAsicFlow();

    ReplayContext ctx{dsn,
                      *synth,
                      *placed,
                      *match,
                      snapSampler->chains(),
                      cfg,
                      resolveReplayBudget(cfg, *synth)};
    StreamingReplayPipeline pipeline(ctx, std::max(1u, cfg.parallelReplays),
                                     cfg.sampleSize + 1);
    snapSampler->setObserver(&pipeline);

    bool earlyStopped = false;
    RunStats rstats;
    double t0 = nowSeconds();
    fame::TokenSimulator &tsim = fameHarness->tokenSim();
    uint64_t nextService = cfg.hostServiceInterval;
    while (!driver.done() && tsim.targetCycles() < maxCycles) {
        driver.drive(*fameHarness);
        fameHarness->clock();
        if (cfg.hostServiceInterval && tsim.targetCycles() >= nextService) {
            tsim.addHostStallCycles(cfg.hostServiceStall);
            nextService += cfg.hostServiceInterval;
        }
        if (cfg.ciBound > 0 &&
            pipeline.ciBoundMet(
                cfg.ciBound, cfg.confidence,
                std::max<uint64_t>(tsim.targetCycles() / cfg.replayLength,
                                   1),
                cfg.sampleSize)) {
            earlyStopped = true;
            break;
        }
    }
    rstats.wallSeconds = nowSeconds() - t0;
    rstats.targetCycles = tsim.targetCycles();
    rstats.hostCycles = tsim.hostCycles();
    rstats.recordCount = snapSampler->recordCount();
    rstats.intervalsSeen = snapSampler->intervalsSeen();
    rstats.simulatedHz =
        rstats.wallSeconds > 0
            ? static_cast<double>(rstats.targetCycles) / rstats.wallSeconds
            : 0;
    lastRunCycles = rstats.targetCycles;
    lastFastSimWall = rstats.wallSeconds;
    if (outRun)
        *outRun = rstats;

    // Publish a capture that completed exactly at the final cycle.
    snapSampler->flushPending();

    uint64_t population = lastRunCycles / cfg.replayLength;
    if (earlyStopped) {
        pipeline.cancelQueued();
    } else if (cfg.ciBound > 0) {
        // The bound can also be crossed while the queue tail drains
        // after the fast sim already finished — stopping the replay
        // side alone still saves the remaining replays.
        while (!pipeline.waitIdle(5)) {
            if (pipeline.ciBoundMet(cfg.ciBound, cfg.confidence,
                                    std::max<uint64_t>(population, 1),
                                    cfg.sampleSize)) {
                earlyStopped = true;
                pipeline.cancelQueued();
                break;
            }
        }
    }
    pipeline.finish();
    snapSampler->setObserver(nullptr);

    EnergyReport report;
    report.population = population;

    std::vector<ReplayRecord> records;
    if (earlyStopped) {
        // The frozen decision set: completed current-generation
        // replays, slot order. Reindex compactly for the rendering.
        records = pipeline.takeSurvivors();
        for (size_t i = 0; i < records.size(); ++i)
            records[i].outcome.index = i;
        report.snapshots = records.size();
    } else {
        auto snapshots = snapSampler->snapshots();
        std::vector<size_t> slots = snapSampler->completeSlots();
        report.snapshots = snapshots.size();
        report.fastSimWallSeconds = lastFastSimWall;
        report.earlyStopped = false;
        report.supersededReplays = pipeline.stats().superseded();
        if (markShortRun(report))
            return report;
        records.resize(snapshots.size());
        std::unique_ptr<gate::GateSimulator> fixup;
        for (size_t i = 0; i < snapshots.size(); ++i) {
            size_t slot = slots[i];
            uint64_t gen = snapSampler->generationOf(slot);
            ReplayRecord rec;
            bool have = pipeline.takeResult(slot, gen, rec);
            // Under a fault-injection stall plan the replay itself is a
            // function of the sample index, so a record replayed under
            // a shifted provisional index (slot != final compacted
            // index, possible when an incomplete trailing capture
            // vacates an earlier slot) must be redone with the real
            // one. Without a stall plan the index is labeling only.
            bool indexSensitive = cfg.stallPlan != nullptr && slot != i;
            if (have && !indexSensitive) {
                rec.outcome.index = i;
                records[i] = std::move(rec);
                continue;
            }
            if (!fixup)
                fixup =
                    std::make_unique<gate::GateSimulator>(synth->netlist);
            records[i] =
                replaySnapshot(*fixup, ctx, ReplayUnit{i, snapshots[i]});
        }
    }

    StreamingStats ss = pipeline.stats();
    report = aggregateReplayRecords(std::move(records),
                                    std::max<uint64_t>(population, 1), cfg);
    double replayEnd = nowSeconds();
    double fastEndAbs = t0 + lastFastSimWall;
    double replayStart =
        ss.firstReplayStart > 0 ? ss.firstReplayStart : fastEndAbs;
    report.fastSimWallSeconds = lastFastSimWall;
    report.replayWallSeconds = replayEnd - replayStart;
    report.overlapWallSeconds = std::max(
        0.0, std::min(fastEndAbs, ss.lastReplayEnd) - replayStart);
    report.earlyStopped = earlyStopped;
    report.supersededReplays = ss.superseded();
    return report;
}

} // namespace core
} // namespace strober

