/**
 * @file
 * Pluggable replay execution for EnergySimulator::estimate() (paper
 * Section III-B / IV-E: snapshots are independent, so *how* they are
 * replayed — one thread, P strided threads, a multi-process farm with a
 * persistent result cache — must not change the numbers).
 *
 * The contract every executor must honor: records[i] is a pure function
 * of (snapshot i, design products, replay-relevant config). Aggregation
 * runs in snapshot order over the records, so any executor that fills
 * each slot with that pure-function value yields a report bit-identical
 * to the single-threaded reference — for any worker count, any shard
 * assignment, and any cache hit pattern (tests/test_farm.cc locks this
 * down).
 */

#ifndef STROBER_CORE_REPLAY_EXECUTOR_H
#define STROBER_CORE_REPLAY_EXECUTOR_H

#include <utility>
#include <vector>

#include "core/energy_sim.h"

namespace strober {
namespace core {

/** One unit of replay work: a sampled snapshot and its sample index. */
struct ReplayUnit
{
    size_t index = 0;
    const fame::ReplayableSnapshot *snap = nullptr;
};

/**
 * The per-snapshot value an executor must produce: the outcome record
 * plus the power numbers of a verified replay. `fromCache` marks
 * results served by a farm::ResultCache instead of a fresh gate-level
 * replay; it feeds the report's hit/miss accounting only and never
 * changes the numbers.
 */
struct ReplayRecord
{
    SnapshotOutcome outcome;
    double modeledLoadSeconds = 0;
    double totalWatts = 0;
    std::vector<std::pair<std::string, double>> groups;
    bool fromCache = false;
};

/** Everything a replay needs besides the snapshot itself. */
struct ReplayContext
{
    const rtl::Design &target;
    const gate::SynthesisResult &synth;
    const gate::Placement &placement;
    const gate::MatchTable &match;
    /** Capture geometry of the snapshots (content-digest input for
     *  caching executors; replay itself does not consume it). */
    const fame::ScanChains &chains;
    const EnergySimulator::Config &cfg;
    uint64_t cycleBudget = 0; //!< resolved watchdog budget (never 0)
};

/**
 * Watchdog budget for one replay: the configured value, or a generous
 * multiple of warm-up + L derived from the netlist's retiming depth so
 * only genuinely hung replays trip it.
 */
uint64_t resolveReplayBudget(const EnergySimulator::Config &cfg,
                             const gate::SynthesisResult &synth);

/**
 * Replay one snapshot with the full fault-handling path: bounded retry
 * on the alternate loader, watchdog, divergence classification,
 * exception containment, power analysis of a verified replay. This is
 * THE per-snapshot pure function; every executor (in-process threads,
 * farm worker processes) funnels through it.
 */
ReplayRecord replaySnapshot(gate::GateSimulator &gsim,
                            const ReplayContext &ctx,
                            const ReplayUnit &unit);

/** Replays a batch of snapshots, one record per unit. */
class ReplayExecutor
{
  public:
    virtual ~ReplayExecutor() = default;

    /** Short stable name for diagnostics ("in-process", "caching"). */
    virtual const char *name() const = 0;

    /**
     * Fill records[k] for units[k]. @p records arrives pre-sized to
     * units.size(); executors must write every slot.
     */
    virtual void replayAll(const ReplayContext &ctx,
                           const std::vector<ReplayUnit> &units,
                           std::vector<ReplayRecord> &records) = 0;
};

/**
 * The default executor: cfg.parallelReplays strided worker threads,
 * each owning a private GateSimulator (exactly the historical
 * estimate() loop).
 */
class InProcessReplayExecutor : public ReplayExecutor
{
  public:
    const char *name() const override { return "in-process"; }
    void replayAll(const ReplayContext &ctx,
                   const std::vector<ReplayUnit> &units,
                   std::vector<ReplayRecord> &records) override;
};

/**
 * Aggregate per-snapshot records into the final report (survivors feed
 * the Section III-A estimators, quarantined snapshots are accounted and
 * excluded, validity gates applied). Shared by estimate() and the farm
 * collector so both produce bit-identical reports from equal records.
 * Sets everything except replayWallSeconds (a wall-clock the caller
 * owns).
 */
EnergyReport aggregateReplayRecords(std::vector<ReplayRecord> records,
                                    uint64_t population,
                                    const EnergySimulator::Config &cfg);

} // namespace core
} // namespace strober

#endif // STROBER_CORE_REPLAY_EXECUTOR_H
