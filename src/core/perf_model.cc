#include "core/perf_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace strober {
namespace core {

PerfModelResult
evaluatePerfModel(const PerfModelParams &p)
{
    if (p.sampleSize == 0 || p.replayLength == 0 || p.totalCycles == 0)
        fatal("perf model needs positive N, n and L");

    PerfModelResult r;
    double n = static_cast<double>(p.sampleSize);
    double bigN = static_cast<double>(p.totalCycles);
    double l = static_cast<double>(p.replayLength);

    r.tRun = bigN / p.fpgaSimHz;
    double intervalsPerSample = bigN / l / n;
    r.expectedRecords =
        intervalsPerSample > 1.0 ? 2.0 * n * std::log(intervalsPerSample)
                                 : n;
    r.tSample = p.recordSeconds * r.expectedRecords;
    r.tFpgaSim = r.tRun + r.tSample;

    r.tReplay = n *
                (p.loadSeconds + l / p.gateSimHz +
                 p.powerAnalysisSeconds) /
                static_cast<double>(p.parallelReplays);

    r.tOverall = std::max(p.fpgaSynthSeconds + r.tFpgaSim,
                          p.asicFlowSeconds) +
                 r.tReplay;

    r.tMicroarchSim = bigN / p.uarchSimHz;
    r.tGateLevelSim = bigN / p.gateSimHz;
    r.speedupVsMicroarch = r.tMicroarchSim / r.tOverall;
    r.speedupVsGateLevel = r.tGateLevelSim / r.tOverall;
    return r;
}

} // namespace core
} // namespace strober
