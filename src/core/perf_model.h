/**
 * @file
 * The analytic simulation-performance model of paper Section IV-E:
 *
 *   T_overall = max(T_FPGAsyn + T_FPGAsim, T_ASIC) + T_replay
 *   T_FPGAsim = N / K_f + T_rec * 2 n ln(N / (n L))
 *   T_replay  = n (T_load + L / K_g + T_power) / P
 *
 * Defaults reproduce the paper's worked example for the two-way BOOM
 * processor: 100 B cycles, n = 100 snapshots of L = 1000 cycles, 10
 * parallel gate-level instances -> ~9.4 hours overall, vs ~3.86 days on
 * a 300 kHz microarchitectural software simulator and ~264 years on
 * 12 Hz gate-level simulation.
 */

#ifndef STROBER_CORE_PERF_MODEL_H
#define STROBER_CORE_PERF_MODEL_H

#include <cstdint>

namespace strober {
namespace core {

/** Inputs to the Section IV-E model (times in seconds, rates in Hz). */
struct PerfModelParams
{
    double fpgaSynthSeconds = 3600;     //!< T_FPGAsyn (~1 h for BOOM-2w)
    double fpgaSimHz = 3.6e6;           //!< K_f
    double gateSimHz = 12;              //!< K_g
    double recordSeconds = 1.3;         //!< T_rec per snapshot read-out
    double loadSeconds = 3;             //!< T_load per snapshot
    double powerAnalysisSeconds = 150;  //!< T_power per snapshot
    double asicFlowSeconds = 3.5 * 3600; //!< T_ASIC (syn+pnr+formal)
    double uarchSimHz = 300e3;          //!< software simulator baseline

    uint64_t totalCycles = 100'000'000'000ull; //!< N
    uint64_t sampleSize = 100;                 //!< n
    uint64_t replayLength = 1000;              //!< L
    unsigned parallelReplays = 10;             //!< P
};

/** Model outputs (seconds unless noted). */
struct PerfModelResult
{
    double tRun = 0;        //!< N / K_f
    double tSample = 0;     //!< T_rec * 2 n ln(N/(nL))
    double tFpgaSim = 0;    //!< tRun + tSample
    double tReplay = 0;
    double tOverall = 0;
    double expectedRecords = 0;     //!< 2 n ln(N/(nL))
    double tMicroarchSim = 0;       //!< N / uarchSimHz
    double tGateLevelSim = 0;       //!< N / gateSimHz
    double speedupVsMicroarch = 0;  //!< tMicroarchSim / tOverall
    double speedupVsGateLevel = 0;  //!< tGateLevelSim / tOverall
};

/** Evaluate the model. */
PerfModelResult evaluatePerfModel(const PerfModelParams &params);

} // namespace core
} // namespace strober

#endif // STROBER_CORE_PERF_MODEL_H
