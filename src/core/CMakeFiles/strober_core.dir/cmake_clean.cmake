file(REMOVE_RECURSE
  "CMakeFiles/strober_core.dir/energy_sim.cc.o"
  "CMakeFiles/strober_core.dir/energy_sim.cc.o.d"
  "CMakeFiles/strober_core.dir/harness.cc.o"
  "CMakeFiles/strober_core.dir/harness.cc.o.d"
  "CMakeFiles/strober_core.dir/perf_model.cc.o"
  "CMakeFiles/strober_core.dir/perf_model.cc.o.d"
  "CMakeFiles/strober_core.dir/replay_executor.cc.o"
  "CMakeFiles/strober_core.dir/replay_executor.cc.o.d"
  "libstrober_core.a"
  "libstrober_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
