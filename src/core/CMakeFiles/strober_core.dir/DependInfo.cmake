
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy_sim.cc" "src/core/CMakeFiles/strober_core.dir/energy_sim.cc.o" "gcc" "src/core/CMakeFiles/strober_core.dir/energy_sim.cc.o.d"
  "/root/repo/src/core/harness.cc" "src/core/CMakeFiles/strober_core.dir/harness.cc.o" "gcc" "src/core/CMakeFiles/strober_core.dir/harness.cc.o.d"
  "/root/repo/src/core/perf_model.cc" "src/core/CMakeFiles/strober_core.dir/perf_model.cc.o" "gcc" "src/core/CMakeFiles/strober_core.dir/perf_model.cc.o.d"
  "/root/repo/src/core/replay_executor.cc" "src/core/CMakeFiles/strober_core.dir/replay_executor.cc.o" "gcc" "src/core/CMakeFiles/strober_core.dir/replay_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/fame/CMakeFiles/strober_fame.dir/DependInfo.cmake"
  "/root/repo/src/gate/CMakeFiles/strober_gate.dir/DependInfo.cmake"
  "/root/repo/src/inject/CMakeFiles/strober_inject.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/strober_power.dir/DependInfo.cmake"
  "/root/repo/src/stats/CMakeFiles/strober_stats.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/strober_util.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/strober_sim.dir/DependInfo.cmake"
  "/root/repo/src/codegen/CMakeFiles/strober_codegen.dir/DependInfo.cmake"
  "/root/repo/src/rtl/CMakeFiles/strober_rtl.dir/DependInfo.cmake"
  "/root/repo/src/lint/CMakeFiles/strober_lint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
