# Empty dependencies file for strober_core.
# This may be replaced when dependencies are built.
