file(REMOVE_RECURSE
  "libstrober_core.a"
)
