/**
 * @file
 * In-process streaming replay pipeline: overlaps the fast FAME-1
 * simulation (phase 1) with gate-level snapshot replay (phase 3) so
 * end-to-end latency approaches max(fast-sim, replay) instead of their
 * sum (ROADMAP "Streaming/adaptive sampling pipeline"; the same
 * stage-pipelining insight LightningSim applies to trace analysis).
 *
 * The pipeline subscribes to fame::SnapshotSampler as a SampleObserver:
 * every completed capture is pushed onto a bounded queue drained by
 * replay worker threads, each owning a private gate-level simulator and
 * funnelling through core::replaySnapshot — the same per-snapshot pure
 * function every other executor uses. Reservoir replacement cancels
 * superseded work: an eviction dequeues the old capture if it has not
 * started, or discards its result if it has; either way the superseded
 * generation never reaches the report.
 *
 * Determinism: with early stop disabled, EnergySimulator::
 * estimateStreaming() produces a report byte-identical (under
 * farm::renderReportDeterministic) to run() + estimate() for any worker
 * count. Replays run with a provisional index (the reservoir slot); at
 * aggregation the final compacted sample index is restored, and any
 * record whose replay-relevant inputs depended on the provisional index
 * (fault-injection stall plans) is transparently re-replayed with the
 * final index. Adaptive termination (Config::ciBound) trades that
 * bit-identity for latency: the run stops as soon as the Section III-A
 * confidence interval is tight enough (Eq. 8 n >= 30 floor).
 */

#ifndef STROBER_CORE_STREAMING_H
#define STROBER_CORE_STREAMING_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/replay_executor.h"
#include "fame/sampler.h"

namespace strober {
namespace core {

/** Counters a streamed run exposes (report fields, service gauges). */
struct StreamingStats
{
    uint64_t published = 0;         //!< captures entering the queue
    uint64_t replaysCompleted = 0;  //!< replays run (incl. discarded)
    uint64_t supersededQueued = 0;  //!< evicted before replay started
    uint64_t supersededResults = 0; //!< evicted during/after replay
    uint64_t canceledOnStop = 0;    //!< dropped by early termination
    double firstReplayStart = 0;    //!< steady-clock s (0 = no replay)
    double lastReplayEnd = 0;

    uint64_t superseded() const
    {
        return supersededQueued + supersededResults;
    }
};

/**
 * Bounded-queue fan-out from the sampler to replay worker threads.
 * Observer callbacks run on the fast-sim thread; replay runs on the
 * worker threads; all shared state sits behind one mutex (the per-item
 * critical sections are tiny next to a gate-level replay).
 */
class StreamingReplayPipeline : public fame::SampleObserver
{
  public:
    /**
     * @p ctx must outlive the pipeline. @p workers replay threads start
     * immediately (>= 1 enforced); the queue bound tracks the reservoir
     * size, which eager eviction dequeues keep it under in practice.
     */
    StreamingReplayPipeline(const ReplayContext &ctx, unsigned workers,
                            size_t queueBound);
    ~StreamingReplayPipeline() override;

    StreamingReplayPipeline(const StreamingReplayPipeline &) = delete;
    StreamingReplayPipeline &
    operator=(const StreamingReplayPipeline &) = delete;

    // fame::SampleObserver
    void onSnapshotReady(size_t slot, uint64_t generation,
                         std::shared_ptr<const fame::ReplayableSnapshot>
                             snap) override;
    void onSlotEvicted(size_t slot, uint64_t generation) override;

    /**
     * Adaptive-termination check: recompute the survey-sampling CI over
     * the completed current-generation replays, in slot order, against
     * population @p populationSize. True once the replayed count meets
     * the Eq. 8 floor (n >= 30, clamped to the reservoir size) AND the
     * estimate's relativeError() drops below @p bound. Cheap (one
     * relaxed atomic load, no lock) when nothing completed since the
     * last call — it runs once per fast-sim cycle. Single-caller: only
     * the orchestrating thread may invoke it.
     */
    bool ciBoundMet(double bound, double confidence,
                    uint64_t populationSize, size_t reservoirSize);

    /** Early stop: drop everything still queued (counted canceled).
     *  In-flight replays finish and are kept. */
    void cancelQueued();

    /** Block until the queue is empty and no replay is in flight, or
     *  @p maxWaitMs passed. Used by the drain loop so ciBoundMet can
     *  fire between completions after the fast sim already ended. */
    bool waitIdle(uint64_t maxWaitMs);

    /** Close the queue, drain remaining work and join the workers.
     *  Idempotent; the destructor calls it too. */
    void finish();

    /**
     * Post-finish: move the record for capture (@p slot, @p generation)
     * out of the pipeline. False if that capture never completed replay
     * (canceled, superseded, or publish raced the shutdown) — the
     * caller replays it inline.
     */
    bool takeResult(size_t slot, uint64_t generation, ReplayRecord &out);

    /**
     * Post-finish: all surviving (current-generation) records in slot
     * order, for early-stopped aggregation.
     */
    std::vector<ReplayRecord> takeSurvivors();

    StreamingStats stats() const;

  private:
    struct Item
    {
        size_t slot;
        uint64_t generation;
        std::shared_ptr<const fame::ReplayableSnapshot> snap;
    };

    void workerMain();

    const ReplayContext &ctx;
    size_t bound;

    mutable std::mutex mtx;
    std::condition_variable readyCv; //!< queue gained work / closed
    std::condition_variable spaceCv; //!< queue has room again
    std::condition_variable doneCv;  //!< a replay completed / went idle
    std::deque<Item> queue;
    std::map<std::pair<size_t, uint64_t>, ReplayRecord> results;
    std::set<std::pair<size_t, uint64_t>> superseded;
    StreamingStats counters;
    unsigned inFlight = 0;
    bool closed = false;
    std::atomic<uint64_t> resultsVersion{0};
    uint64_t ciCheckedVersion = 0; //!< CI-thread private

    std::vector<std::thread> workers;
};

} // namespace core
} // namespace strober

#endif // STROBER_CORE_STREAMING_H
