#include "isa/encoding.h"

#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace isa {

namespace {

// Major opcode fields (bits [6:0]).
constexpr unsigned kOpLui = 0x37;
constexpr unsigned kOpAuipc = 0x17;
constexpr unsigned kOpJal = 0x6f;
constexpr unsigned kOpJalr = 0x67;
constexpr unsigned kOpBranch = 0x63;
constexpr unsigned kOpLoad = 0x03;
constexpr unsigned kOpStore = 0x23;
constexpr unsigned kOpImm = 0x13;
constexpr unsigned kOpReg = 0x33;
constexpr unsigned kOpSystem = 0x73;
constexpr unsigned kOpFence = 0x0f;

} // namespace

bool
DecodedInst::writesRd() const
{
    switch (op) {
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
      case Opcode::Fence: case Opcode::Ecall: case Opcode::Illegal:
        return false;
      default:
        return rd != 0;
    }
}

uint32_t
encodeR(unsigned funct7, unsigned rs2, unsigned rs1, unsigned funct3,
        unsigned rd, unsigned opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
encodeI(int32_t imm, unsigned rs1, unsigned funct3, unsigned rd,
        unsigned opcode)
{
    return (static_cast<uint32_t>(imm & 0xfff) << 20) | (rs1 << 15) |
           (funct3 << 12) | (rd << 7) | opcode;
}

uint32_t
encodeS(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
        unsigned opcode)
{
    uint32_t u = static_cast<uint32_t>(imm);
    return (bits(u, 11, 5) << 25) | (rs2 << 20) | (rs1 << 15) |
           (funct3 << 12) | (bits(u, 4, 0) << 7) | opcode;
}

uint32_t
encodeB(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
        unsigned opcode)
{
    uint32_t u = static_cast<uint32_t>(imm);
    return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (rs2 << 20) |
           (rs1 << 15) | (funct3 << 12) | (bits(u, 4, 1) << 8) |
           (bit(u, 11) << 7) | opcode;
}

uint32_t
encodeU(int32_t imm, unsigned rd, unsigned opcode)
{
    return (static_cast<uint32_t>(imm) & 0xfffff000u) | (rd << 7) | opcode;
}

uint32_t
encodeJ(int32_t imm, unsigned rd, unsigned opcode)
{
    uint32_t u = static_cast<uint32_t>(imm);
    return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) | (bit(u, 11) << 20) |
           (bits(u, 19, 12) << 12) | (rd << 7) | opcode;
}

DecodedInst
decode(uint32_t raw)
{
    DecodedInst d;
    d.raw = raw;
    unsigned opcode = raw & 0x7f;
    unsigned funct3 = bits(raw, 14, 12);
    unsigned funct7 = bits(raw, 31, 25);
    d.rd = static_cast<uint8_t>(bits(raw, 11, 7));
    d.rs1 = static_cast<uint8_t>(bits(raw, 19, 15));
    d.rs2 = static_cast<uint8_t>(bits(raw, 24, 20));

    auto immI = [&] {
        return static_cast<int32_t>(raw) >> 20;
    };
    auto immS = [&] {
        return static_cast<int32_t>(
            (static_cast<int32_t>(raw & 0xfe000000) >> 20) |
            bits(raw, 11, 7));
    };
    auto immB = [&] {
        uint32_t u = (bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                     (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1);
        return static_cast<int32_t>(signExtend(u, 13));
    };
    auto immU = [&] {
        return static_cast<int32_t>(raw & 0xfffff000u);
    };
    auto immJ = [&] {
        uint32_t u = (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                     (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1);
        return static_cast<int32_t>(signExtend(u, 21));
    };

    switch (opcode) {
      case kOpLui:
        d.op = Opcode::Lui;
        d.imm = immU();
        break;
      case kOpAuipc:
        d.op = Opcode::Auipc;
        d.imm = immU();
        break;
      case kOpJal:
        d.op = Opcode::Jal;
        d.imm = immJ();
        break;
      case kOpJalr:
        d.op = funct3 == 0 ? Opcode::Jalr : Opcode::Illegal;
        d.imm = immI();
        break;
      case kOpBranch: {
        static const Opcode map[8] = {Opcode::Beq, Opcode::Bne,
                                      Opcode::Illegal, Opcode::Illegal,
                                      Opcode::Blt, Opcode::Bge,
                                      Opcode::Bltu, Opcode::Bgeu};
        d.op = map[funct3];
        d.imm = immB();
        break;
      }
      case kOpLoad: {
        static const Opcode map[8] = {Opcode::Lb, Opcode::Lh, Opcode::Lw,
                                      Opcode::Illegal, Opcode::Lbu,
                                      Opcode::Lhu, Opcode::Illegal,
                                      Opcode::Illegal};
        d.op = map[funct3];
        d.imm = immI();
        break;
      }
      case kOpStore: {
        static const Opcode map[8] = {Opcode::Sb, Opcode::Sh, Opcode::Sw,
                                      Opcode::Illegal, Opcode::Illegal,
                                      Opcode::Illegal, Opcode::Illegal,
                                      Opcode::Illegal};
        d.op = map[funct3];
        d.imm = immS();
        break;
      }
      case kOpImm:
        switch (funct3) {
          case 0: d.op = Opcode::Addi; d.imm = immI(); break;
          case 2: d.op = Opcode::Slti; d.imm = immI(); break;
          case 3: d.op = Opcode::Sltiu; d.imm = immI(); break;
          case 4: d.op = Opcode::Xori; d.imm = immI(); break;
          case 6: d.op = Opcode::Ori; d.imm = immI(); break;
          case 7: d.op = Opcode::Andi; d.imm = immI(); break;
          case 1:
            d.op = funct7 == 0 ? Opcode::Slli : Opcode::Illegal;
            d.imm = static_cast<int32_t>(d.rs2);
            break;
          case 5:
            if (funct7 == 0)
                d.op = Opcode::Srli;
            else if (funct7 == 0x20)
                d.op = Opcode::Srai;
            else
                d.op = Opcode::Illegal;
            d.imm = static_cast<int32_t>(d.rs2);
            break;
        }
        break;
      case kOpReg:
        if (funct7 == 0x01) {
            static const Opcode map[8] = {Opcode::Mul, Opcode::Mulh,
                                          Opcode::Mulhsu, Opcode::Mulhu,
                                          Opcode::Div, Opcode::Divu,
                                          Opcode::Rem, Opcode::Remu};
            d.op = map[funct3];
        } else if (funct7 == 0x00) {
            static const Opcode map[8] = {Opcode::Add, Opcode::Sll,
                                          Opcode::Slt, Opcode::Sltu,
                                          Opcode::Xor, Opcode::Srl,
                                          Opcode::Or, Opcode::And};
            d.op = map[funct3];
        } else if (funct7 == 0x20) {
            if (funct3 == 0)
                d.op = Opcode::Sub;
            else if (funct3 == 5)
                d.op = Opcode::Sra;
            else
                d.op = Opcode::Illegal;
        } else {
            d.op = Opcode::Illegal;
        }
        break;
      case kOpSystem:
        if (funct3 == 2) { // CSRRS
            d.op = Opcode::Csrrs;
            d.csr = bits(raw, 31, 20);
        } else if (raw == 0x00000073) {
            d.op = Opcode::Ecall;
        } else {
            d.op = Opcode::Illegal;
        }
        break;
      case kOpFence:
        d.op = Opcode::Fence;
        break;
      default:
        d.op = Opcode::Illegal;
        break;
    }
    return d;
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Lui: return "lui";
      case Opcode::Auipc: return "auipc";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::Lb: return "lb";
      case Opcode::Lh: return "lh";
      case Opcode::Lw: return "lw";
      case Opcode::Lbu: return "lbu";
      case Opcode::Lhu: return "lhu";
      case Opcode::Sb: return "sb";
      case Opcode::Sh: return "sh";
      case Opcode::Sw: return "sw";
      case Opcode::Addi: return "addi";
      case Opcode::Slti: return "slti";
      case Opcode::Sltiu: return "sltiu";
      case Opcode::Xori: return "xori";
      case Opcode::Ori: return "ori";
      case Opcode::Andi: return "andi";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Srai: return "srai";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Sll: return "sll";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Xor: return "xor";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Or: return "or";
      case Opcode::And: return "and";
      case Opcode::Mul: return "mul";
      case Opcode::Mulh: return "mulh";
      case Opcode::Mulhsu: return "mulhsu";
      case Opcode::Mulhu: return "mulhu";
      case Opcode::Div: return "div";
      case Opcode::Divu: return "divu";
      case Opcode::Rem: return "rem";
      case Opcode::Remu: return "remu";
      case Opcode::Csrrs: return "csrrs";
      case Opcode::Fence: return "fence";
      case Opcode::Ecall: return "ecall";
      case Opcode::Illegal: return "illegal";
    }
    return "?";
}

std::string
disassemble(uint32_t raw)
{
    DecodedInst d = decode(raw);
    const char *n = opcodeName(d.op);
    switch (d.op) {
      case Opcode::Lui:
      case Opcode::Auipc:
        return strfmt("%s x%u, 0x%x", n, d.rd,
                      static_cast<uint32_t>(d.imm) >> 12);
      case Opcode::Jal:
        return strfmt("%s x%u, %d", n, d.rd, d.imm);
      case Opcode::Jalr:
        return strfmt("%s x%u, %d(x%u)", n, d.rd, d.imm, d.rs1);
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
        return strfmt("%s x%u, x%u, %d", n, d.rs1, d.rs2, d.imm);
      case Opcode::Lb: case Opcode::Lh: case Opcode::Lw:
      case Opcode::Lbu: case Opcode::Lhu:
        return strfmt("%s x%u, %d(x%u)", n, d.rd, d.imm, d.rs1);
      case Opcode::Sb: case Opcode::Sh: case Opcode::Sw:
        return strfmt("%s x%u, %d(x%u)", n, d.rs2, d.imm, d.rs1);
      case Opcode::Addi: case Opcode::Slti: case Opcode::Sltiu:
      case Opcode::Xori: case Opcode::Ori: case Opcode::Andi:
      case Opcode::Slli: case Opcode::Srli: case Opcode::Srai:
        return strfmt("%s x%u, x%u, %d", n, d.rd, d.rs1, d.imm);
      case Opcode::Csrrs:
        return strfmt("%s x%u, 0x%x, x%u", n, d.rd, d.csr, d.rs1);
      case Opcode::Fence:
      case Opcode::Ecall:
      case Opcode::Illegal:
        return n;
      default: // R-type
        return strfmt("%s x%u, x%u, x%u", n, d.rd, d.rs1, d.rs2);
    }
}

} // namespace isa
} // namespace strober
