#include "isa/iss.h"

#include "isa/memmap.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace isa {

Iss::Iss(uint32_t ramBytes) : ram(ramBytes, 0)
{
    if (ramBytes % 4)
        fatal("RAM size must be word aligned");
}

void
Iss::loadProgram(const Program &program)
{
    if (program.base + program.sizeBytes() > ram.size())
        fatal("program does not fit in %zu-byte RAM", ram.size());
    for (size_t i = 0; i < program.words.size(); ++i)
        writeWord(program.base + 4 * static_cast<uint32_t>(i),
                  program.words[i]);
    pcReg = program.entry;
}

void
Iss::setReg(unsigned idx, uint32_t value)
{
    if (idx != 0)
        regs[idx] = value;
}

uint32_t
Iss::readWord(uint32_t addr) const
{
    if (addr % 4 || addr + 4 > ram.size())
        fatal("ISS readWord 0x%08x out of range/misaligned", addr);
    return static_cast<uint32_t>(ram[addr]) |
           (static_cast<uint32_t>(ram[addr + 1]) << 8) |
           (static_cast<uint32_t>(ram[addr + 2]) << 16) |
           (static_cast<uint32_t>(ram[addr + 3]) << 24);
}

void
Iss::writeWord(uint32_t addr, uint32_t value)
{
    if (addr % 4 || addr + 4 > ram.size())
        fatal("ISS writeWord 0x%08x out of range/misaligned", addr);
    ram[addr] = static_cast<uint8_t>(value);
    ram[addr + 1] = static_cast<uint8_t>(value >> 8);
    ram[addr + 2] = static_cast<uint8_t>(value >> 16);
    ram[addr + 3] = static_cast<uint8_t>(value >> 24);
}

uint32_t
Iss::load(uint32_t addr, unsigned bytes, bool isSigned)
{
    if (addr % bytes)
        fatal("ISS misaligned %u-byte load at 0x%08x (pc 0x%08x)", bytes,
              addr, pcReg);
    if (addr + bytes > ram.size())
        fatal("ISS load at 0x%08x outside RAM (pc 0x%08x)", addr, pcReg);
    uint32_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<uint32_t>(ram[addr + i]) << (8 * i);
    if (isSigned)
        v = static_cast<uint32_t>(signExtend(v, 8 * bytes));
    return v;
}

void
Iss::store(uint32_t addr, unsigned bytes, uint32_t value)
{
    if (addr % bytes)
        fatal("ISS misaligned %u-byte store at 0x%08x (pc 0x%08x)", bytes,
              addr, pcReg);
    if (isMmio(addr)) {
        if (addr == kMmioExit) {
            stopped = true;
            exitValue = value;
        } else if (addr == kMmioPutchar) {
            console += static_cast<char>(value & 0xff);
        }
        return;
    }
    if (addr + bytes > ram.size())
        fatal("ISS store at 0x%08x outside RAM (pc 0x%08x)", addr, pcReg);
    for (unsigned i = 0; i < bytes; ++i)
        ram[addr + i] = static_cast<uint8_t>(value >> (8 * i));
}

Commit
Iss::step()
{
    Commit c;
    if (stopped)
        return c;

    uint32_t inst = readWord(pcReg);
    DecodedInst d = decode(inst);
    c.pc = pcReg;
    c.inst = inst;
    c.decoded = d;

    uint32_t rs1 = regs[d.rs1];
    uint32_t rs2 = regs[d.rs2];
    uint32_t nextPc = pcReg + 4;
    uint32_t result = 0;
    bool writeRd = d.writesRd();

    switch (d.op) {
      case Opcode::Lui:
        result = static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Auipc:
        result = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Jal:
        result = pcReg + 4;
        nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Jalr:
        result = pcReg + 4;
        nextPc = (rs1 + static_cast<uint32_t>(d.imm)) & ~1u;
        break;
      case Opcode::Beq:
        if (rs1 == rs2) nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Bne:
        if (rs1 != rs2) nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Blt:
        if (static_cast<int32_t>(rs1) < static_cast<int32_t>(rs2))
            nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Bge:
        if (static_cast<int32_t>(rs1) >= static_cast<int32_t>(rs2))
            nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Bltu:
        if (rs1 < rs2) nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Bgeu:
        if (rs1 >= rs2) nextPc = pcReg + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Lb:
        result = load(rs1 + static_cast<uint32_t>(d.imm), 1, true);
        break;
      case Opcode::Lh:
        result = load(rs1 + static_cast<uint32_t>(d.imm), 2, true);
        break;
      case Opcode::Lw:
        result = load(rs1 + static_cast<uint32_t>(d.imm), 4, false);
        break;
      case Opcode::Lbu:
        result = load(rs1 + static_cast<uint32_t>(d.imm), 1, false);
        break;
      case Opcode::Lhu:
        result = load(rs1 + static_cast<uint32_t>(d.imm), 2, false);
        break;
      case Opcode::Sb:
        store(rs1 + static_cast<uint32_t>(d.imm), 1, rs2);
        break;
      case Opcode::Sh:
        store(rs1 + static_cast<uint32_t>(d.imm), 2, rs2);
        break;
      case Opcode::Sw:
        store(rs1 + static_cast<uint32_t>(d.imm), 4, rs2);
        break;
      case Opcode::Addi:
        result = rs1 + static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Slti:
        result = static_cast<int32_t>(rs1) < d.imm;
        break;
      case Opcode::Sltiu:
        result = rs1 < static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Xori:
        result = rs1 ^ static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Ori:
        result = rs1 | static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Andi:
        result = rs1 & static_cast<uint32_t>(d.imm);
        break;
      case Opcode::Slli:
        result = rs1 << (d.imm & 31);
        break;
      case Opcode::Srli:
        result = rs1 >> (d.imm & 31);
        break;
      case Opcode::Srai:
        result =
            static_cast<uint32_t>(static_cast<int32_t>(rs1) >> (d.imm & 31));
        break;
      case Opcode::Add:
        result = rs1 + rs2;
        break;
      case Opcode::Sub:
        result = rs1 - rs2;
        break;
      case Opcode::Sll:
        result = rs1 << (rs2 & 31);
        break;
      case Opcode::Slt:
        result = static_cast<int32_t>(rs1) < static_cast<int32_t>(rs2);
        break;
      case Opcode::Sltu:
        result = rs1 < rs2;
        break;
      case Opcode::Xor:
        result = rs1 ^ rs2;
        break;
      case Opcode::Srl:
        result = rs1 >> (rs2 & 31);
        break;
      case Opcode::Sra:
        result =
            static_cast<uint32_t>(static_cast<int32_t>(rs1) >> (rs2 & 31));
        break;
      case Opcode::Or:
        result = rs1 | rs2;
        break;
      case Opcode::And:
        result = rs1 & rs2;
        break;
      case Opcode::Mul:
        result = rs1 * rs2;
        break;
      case Opcode::Mulh:
        result = static_cast<uint32_t>(
            (static_cast<int64_t>(static_cast<int32_t>(rs1)) *
             static_cast<int64_t>(static_cast<int32_t>(rs2))) >> 32);
        break;
      case Opcode::Mulhsu:
        result = static_cast<uint32_t>(
            (static_cast<int64_t>(static_cast<int32_t>(rs1)) *
             static_cast<int64_t>(static_cast<uint64_t>(rs2))) >> 32);
        break;
      case Opcode::Mulhu:
        result = static_cast<uint32_t>(
            (static_cast<uint64_t>(rs1) * static_cast<uint64_t>(rs2)) >> 32);
        break;
      case Opcode::Div:
        if (rs2 == 0)
            result = UINT32_MAX;
        else if (rs1 == 0x80000000u && rs2 == UINT32_MAX)
            result = 0x80000000u; // overflow case
        else
            result = static_cast<uint32_t>(static_cast<int32_t>(rs1) /
                                           static_cast<int32_t>(rs2));
        break;
      case Opcode::Divu:
        result = rs2 == 0 ? UINT32_MAX : rs1 / rs2;
        break;
      case Opcode::Rem:
        if (rs2 == 0)
            result = rs1;
        else if (rs1 == 0x80000000u && rs2 == UINT32_MAX)
            result = 0;
        else
            result = static_cast<uint32_t>(static_cast<int32_t>(rs1) %
                                           static_cast<int32_t>(rs2));
        break;
      case Opcode::Remu:
        result = rs2 == 0 ? rs1 : rs1 % rs2;
        break;
      case Opcode::Csrrs:
        c.isCsrRead = true;
        switch (d.csr) {
          case kCsrCycle: // untimed: cycle == instret
          case kCsrInstret:
            result = static_cast<uint32_t>(retired);
            break;
          case kCsrCycleH:
          case kCsrInstretH:
            result = static_cast<uint32_t>(retired >> 32);
            break;
          case kCsrHpm3:
          case kCsrHpm4:
            result = 0; // microarchitectural; cores supply real values
            break;
          default:
            fatal("ISS: unimplemented CSR 0x%x at pc 0x%08x", d.csr, pcReg);
        }
        break;
      case Opcode::Fence:
        break;
      case Opcode::Ecall:
        stopped = true;
        exitValue = regs[10]; // a0
        break;
      case Opcode::Illegal:
        fatal("ISS: illegal instruction 0x%08x at pc 0x%08x", inst, pcReg);
    }

    if (writeRd) {
        regs[d.rd] = result;
        c.wroteRd = true;
        c.rd = d.rd;
        c.rdValue = result;
    }
    pcReg = nextPc;
    ++retired;
    return c;
}

void
Iss::run(uint64_t maxInstructions)
{
    uint64_t executed = 0;
    while (!stopped) {
        step();
        if (++executed >= maxInstructions)
            fatal("ISS: exceeded %llu instructions without halting",
                  (unsigned long long)maxInstructions);
    }
}

} // namespace isa
} // namespace strober
