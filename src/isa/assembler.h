/**
 * @file
 * A small two-pass RV32IM assembler: enough to write the paper's
 * microbenchmarks and case-study workloads as readable assembly inside
 * the repository (the paper uses the RISC-V GCC toolchain, which is not
 * available offline; the assembler is the substitution).
 *
 * Supported syntax:
 *  - labels        `loop:` (own line or before an instruction)
 *  - comments      `# ...` or `// ...` to end of line
 *  - directives    `.word v[, v...]`, `.space nbytes`, `.align nbytes`,
 *                  `.org addr`
 *  - registers     x0..x31 and ABI names (zero, ra, sp, a0.., s0.., t0..)
 *  - all RV32IM instructions (see isa/encoding.h)
 *  - pseudo-ops    nop, li, la, mv, not, neg, seqz, snez, j, jr, call,
 *                  ret, beqz, bnez, bltz, bgez, bgtz, blez, bgt, ble,
 *                  bgtu, bleu, csrr, rdcycle, rdinstret
 *
 * `li`/`la` with a label or out-of-range immediate always expand to
 * exactly two instructions (lui+addi) so that label addresses are stable
 * across passes.
 */

#ifndef STROBER_ISA_ASSEMBLER_H
#define STROBER_ISA_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace strober {
namespace isa {

/** An assembled, loadable program image. */
struct Program
{
    uint32_t base = 0;                //!< load address of words[0]
    uint32_t entry = 0;               //!< initial PC
    std::vector<uint32_t> words;      //!< contiguous 32-bit image
    std::map<std::string, uint32_t> symbols; //!< label -> address

    uint32_t sizeBytes() const
    {
        return static_cast<uint32_t>(words.size() * 4);
    }
    /** Address of a label (fatal if absent). */
    uint32_t symbol(const std::string &name) const;
};

/**
 * Assemble @p source at load address @p base. Calls fatal() with the
 * offending line on any syntax or range error.
 */
Program assemble(const std::string &source, uint32_t base = 0);

} // namespace isa
} // namespace strober

#endif // STROBER_ISA_ASSEMBLER_H
