/**
 * @file
 * The SoC memory map shared by the golden ISS, the RTL cores' testbench
 * glue and the workloads.
 *
 * RAM occupies [0, ramBytes). The MMIO window plays the role of the
 * paper's target I/O devices, which Strober maps to host software; writes
 * to it are serviced by the simulation host, not by target RTL.
 */

#ifndef STROBER_ISA_MEMMAP_H
#define STROBER_ISA_MEMMAP_H

#include <cstdint>

namespace strober {
namespace isa {

constexpr uint32_t kRamBase = 0x00000000;
constexpr uint32_t kMmioBase = 0x40000000;
/** Writing N here halts the program with exit code N. */
constexpr uint32_t kMmioExit = kMmioBase + 0x0;
/** Writing here prints the low byte to the host console. */
constexpr uint32_t kMmioPutchar = kMmioBase + 0x4;

constexpr bool
isMmio(uint32_t addr)
{
    return addr >= kMmioBase && addr < kMmioBase + 0x1000;
}

} // namespace isa
} // namespace strober

#endif // STROBER_ISA_MEMMAP_H
