/**
 * @file
 * Golden instruction-set simulator for the RV32IM subset.
 *
 * The ISS is the functional reference the RTL cores are verified against:
 * the core testbenches compare their commit streams (pc, rd, value)
 * instruction-by-instruction against Iss::step(). It is untimed — the
 * cycle CSR reads as the instruction count.
 */

#ifndef STROBER_ISA_ISS_H
#define STROBER_ISA_ISS_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/encoding.h"

namespace strober {
namespace isa {

/** Architectural effect of one retired instruction. */
struct Commit
{
    uint32_t pc = 0;
    uint32_t inst = 0;
    DecodedInst decoded;
    bool wroteRd = false;
    uint8_t rd = 0;
    uint32_t rdValue = 0;
    bool isCsrRead = false; //!< value is timing-dependent; don't compare
};

/** Untimed RV32IM functional simulator. */
class Iss
{
  public:
    explicit Iss(uint32_t ramBytes = 1 << 20);

    /** Copy a program image into RAM and set the PC to its entry. */
    void loadProgram(const Program &program);

    /** Execute one instruction; no-op when halted. */
    Commit step();

    /** Run until halted or @p maxInstructions executed. */
    void run(uint64_t maxInstructions = 100'000'000);

    bool halted() const { return stopped; }
    uint32_t exitCode() const { return exitValue; }
    uint64_t instret() const { return retired; }
    const std::string &consoleOutput() const { return console; }

    uint32_t pc() const { return pcReg; }
    uint32_t reg(unsigned idx) const { return regs[idx]; }
    void setReg(unsigned idx, uint32_t value);
    void setPc(uint32_t value) { pcReg = value; }

    /** Aligned word access into RAM (fatal outside RAM). */
    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);

    uint32_t ramBytes() const { return static_cast<uint32_t>(ram.size()); }

  private:
    std::vector<uint8_t> ram;
    uint32_t regs[32] = {};
    uint32_t pcReg = 0;
    uint64_t retired = 0;
    bool stopped = false;
    uint32_t exitValue = 0;
    std::string console;

    uint32_t load(uint32_t addr, unsigned bytes, bool isSigned);
    void store(uint32_t addr, unsigned bytes, uint32_t value);
};

} // namespace isa
} // namespace strober

#endif // STROBER_ISA_ISS_H
