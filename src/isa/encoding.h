/**
 * @file
 * RV32IM instruction encodings, decoder and disassembler.
 *
 * The repository's target designs implement the RV32IM subset below (the
 * paper's Rocket/BOOM implement RV64G; a 32-bit integer subset keeps gate
 * counts tractable while exercising the same pipeline structures). FENCE
 * decodes as a no-op; CSRRS is supported read-only for the cycle/instret
 * counters the Figure-10 workload needs.
 */

#ifndef STROBER_ISA_ENCODING_H
#define STROBER_ISA_ENCODING_H

#include <cstdint>
#include <string>

namespace strober {
namespace isa {

/** Architectural opcodes after decode. */
enum class Opcode : uint8_t {
    Lui, Auipc, Jal, Jalr,
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    Lb, Lh, Lw, Lbu, Lhu,
    Sb, Sh, Sw,
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    Csrrs,   //!< read-only CSR access (cycle/instret and their 'h' halves)
    Fence,   //!< decoded, executes as a no-op
    Ecall,   //!< environment call; the SoC treats it as a halt request
    Illegal,
};

/** CSR addresses implemented by the cores and the ISS. */
enum Csr : uint32_t {
    kCsrCycle = 0xc00,
    kCsrInstret = 0xc02,
    kCsrCycleH = 0xc80,
    kCsrInstretH = 0xc82,
    kCsrHpm3 = 0xc03,  //!< I$ miss counter on the SoCs
    kCsrHpm4 = 0xc04,  //!< D$ miss counter on the SoCs
};

/** A decoded instruction. */
struct DecodedInst
{
    Opcode op = Opcode::Illegal;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;    //!< sign-extended immediate (shamt for shifts)
    uint32_t csr = 0;   //!< CSR address for Csrrs
    uint32_t raw = 0;

    bool isLoad() const
    {
        return op >= Opcode::Lb && op <= Opcode::Lhu;
    }
    bool isStore() const
    {
        return op >= Opcode::Sb && op <= Opcode::Sw;
    }
    bool isBranch() const
    {
        return op >= Opcode::Beq && op <= Opcode::Bgeu;
    }
    bool isMulDiv() const
    {
        return op >= Opcode::Mul && op <= Opcode::Remu;
    }
    bool writesRd() const;
};

/** Decode one 32-bit instruction word. */
DecodedInst decode(uint32_t raw);

/** @return assembly text for @p raw ("addi x1, x2, -4"). */
std::string disassemble(uint32_t raw);

/** @return the mnemonic for an opcode ("addi"). */
const char *opcodeName(Opcode op);

// --- Encoders (used by the assembler and by tests) -----------------------

uint32_t encodeR(unsigned funct7, unsigned rs2, unsigned rs1,
                 unsigned funct3, unsigned rd, unsigned opcode);
uint32_t encodeI(int32_t imm, unsigned rs1, unsigned funct3, unsigned rd,
                 unsigned opcode);
uint32_t encodeS(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
                 unsigned opcode);
uint32_t encodeB(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3,
                 unsigned opcode);
uint32_t encodeU(int32_t imm, unsigned rd, unsigned opcode);
uint32_t encodeJ(int32_t imm, unsigned rd, unsigned opcode);

} // namespace isa
} // namespace strober

#endif // STROBER_ISA_ENCODING_H
