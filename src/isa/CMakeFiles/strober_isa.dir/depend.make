# Empty dependencies file for strober_isa.
# This may be replaced when dependencies are built.
