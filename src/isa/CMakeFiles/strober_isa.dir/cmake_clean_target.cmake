file(REMOVE_RECURSE
  "libstrober_isa.a"
)
