file(REMOVE_RECURSE
  "CMakeFiles/strober_isa.dir/assembler.cc.o"
  "CMakeFiles/strober_isa.dir/assembler.cc.o.d"
  "CMakeFiles/strober_isa.dir/encoding.cc.o"
  "CMakeFiles/strober_isa.dir/encoding.cc.o.d"
  "CMakeFiles/strober_isa.dir/iss.cc.o"
  "CMakeFiles/strober_isa.dir/iss.cc.o.d"
  "libstrober_isa.a"
  "libstrober_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strober_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
