#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "isa/encoding.h"
#include "util/bits.h"
#include "util/logging.h"

namespace strober {
namespace isa {

namespace {

/** Context for error messages. */
struct LineRef
{
    int number;
    const std::string *text;
};

[[noreturn]] void
asmError(const LineRef &line, const std::string &msg)
{
    fatal("assembler line %d: %s\n  | %s", line.number, msg.c_str(),
          line.text->c_str());
}

int
regNumber(const std::string &name)
{
    static const std::map<std::string, int> abi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},  {"gp", 3},  {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},  {"s0", 8},  {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31}};
    auto it = abi.find(name);
    if (it != abi.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'x') {
        int n = 0;
        for (size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return -1;
            n = n * 10 + (name[i] - '0');
        }
        return n <= 31 ? n : -1;
    }
    return -1;
}

uint32_t
csrNumber(const std::string &name, const LineRef &line)
{
    if (name == "cycle")
        return kCsrCycle;
    if (name == "instret")
        return kCsrInstret;
    if (name == "cycleh")
        return kCsrCycleH;
    if (name == "instreth")
        return kCsrInstretH;
    if (name == "hpmcounter3" || name == "imiss")
        return kCsrHpm3;
    if (name == "hpmcounter4" || name == "dmiss")
        return kCsrHpm4;
    if (name.rfind("0x", 0) == 0)
        return static_cast<uint32_t>(std::stoul(name, nullptr, 16));
    asmError(line, "unknown CSR '" + name + "'");
}

/** Tokenized instruction line: mnemonic + comma-separated operands. */
struct Stmt
{
    std::string mnemonic;
    std::vector<std::string> operands;
    LineRef line;
};

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/** Parse "imm(reg)" into offset expression and register. */
bool
splitMemOperand(const std::string &op, std::string &offset, std::string &reg)
{
    size_t open = op.find('(');
    if (open == std::string::npos || op.back() != ')')
        return false;
    offset = trim(op.substr(0, open));
    if (offset.empty())
        offset = "0";
    reg = trim(op.substr(open + 1, op.size() - open - 2));
    return true;
}

class Assembler
{
  public:
    Assembler(const std::string &source, uint32_t base) : baseAddr(base)
    {
        parse(source);
    }

    Program
    run()
    {
        // Pass 1: lay out statements and record label addresses.
        layout();
        // Pass 2: encode with all symbols known.
        Program p;
        p.base = baseAddr;
        p.entry = baseAddr;
        p.symbols = symbols;
        p.words.assign((topAddr - baseAddr) / 4, 0);
        encodeAll(p);
        return p;
    }

  private:
    uint32_t baseAddr;
    uint32_t topAddr = 0;
    std::vector<std::string> lines; //!< raw text kept for diagnostics
    std::vector<Stmt> stmts;
    std::vector<uint32_t> stmtAddr;
    std::map<std::string, uint32_t> symbols;

    void
    parse(const std::string &source)
    {
        std::istringstream in(source);
        std::string raw;
        int lineNo = 0;
        while (std::getline(in, raw)) {
            ++lineNo;
            lines.push_back(raw);
        }
        for (int i = 0; i < static_cast<int>(lines.size()); ++i) {
            std::string text = lines[i];
            size_t hash = text.find('#');
            if (hash != std::string::npos)
                text = text.substr(0, hash);
            size_t slashes = text.find("//");
            if (slashes != std::string::npos)
                text = text.substr(0, slashes);
            text = trim(text);

            // Peel off leading labels.
            for (;;) {
                size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string label = trim(text.substr(0, colon));
                if (label.empty() || label.find(' ') != std::string::npos ||
                    label.find('\t') != std::string::npos) {
                    break; // ':' inside an operand — not a label
                }
                Stmt s;
                s.mnemonic = ":label";
                s.operands = {label};
                s.line = {i + 1, &lines[i]};
                stmts.push_back(s);
                text = trim(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            Stmt s;
            s.line = {i + 1, &lines[i]};
            size_t sp = text.find_first_of(" \t");
            if (sp == std::string::npos) {
                s.mnemonic = text;
            } else {
                s.mnemonic = text.substr(0, sp);
                std::string rest = trim(text.substr(sp + 1));
                std::string cur;
                int depth = 0;
                for (char c : rest) {
                    if (c == '(')
                        ++depth;
                    if (c == ')')
                        --depth;
                    if (c == ',' && depth == 0) {
                        s.operands.push_back(trim(cur));
                        cur.clear();
                    } else {
                        cur += c;
                    }
                }
                if (!trim(cur).empty())
                    s.operands.push_back(trim(cur));
            }
            std::transform(s.mnemonic.begin(), s.mnemonic.end(),
                           s.mnemonic.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            stmts.push_back(s);
        }
    }

    /** Number of 32-bit words a statement occupies (pass-stable). */
    uint32_t
    sizeWords(const Stmt &s, uint32_t addr)
    {
        const std::string &m = s.mnemonic;
        if (m == ":label")
            return 0;
        if (m == ".word")
            return static_cast<uint32_t>(s.operands.size());
        if (m == ".space") {
            uint32_t bytes = parseNumber(s.operands.at(0), s.line);
            if (bytes % 4)
                asmError(s.line, ".space must be a multiple of 4");
            return bytes / 4;
        }
        if (m == ".align") {
            uint32_t align = parseNumber(s.operands.at(0), s.line);
            if (!isPow2(align) || align < 4)
                asmError(s.line, ".align takes a power-of-two >= 4");
            uint32_t next = (addr + align - 1) & ~(align - 1);
            return (next - addr) / 4;
        }
        if (m == ".org") {
            uint32_t target = parseNumber(s.operands.at(0), s.line);
            if (target < addr)
                asmError(s.line, ".org moves backwards");
            if ((target - addr) % 4)
                asmError(s.line, ".org misaligned");
            return (target - addr) / 4;
        }
        if (m == "li") {
            // Immediate value known in pass 1: exact size. Labels: 2.
            if (isNumber(s.operands.at(1))) {
                int64_t v = parseSigned(s.operands[1], s.line);
                return fitsImm12(v) ? 1 : 2;
            }
            return 2;
        }
        if (m == "la")
            return 2;
        return 1; // every other instruction/pseudo is one word
    }

    void
    layout()
    {
        uint32_t addr = baseAddr;
        stmtAddr.resize(stmts.size());
        for (size_t i = 0; i < stmts.size(); ++i) {
            const Stmt &s = stmts[i];
            stmtAddr[i] = addr;
            if (s.mnemonic == ":label") {
                const std::string &label = s.operands[0];
                if (symbols.count(label))
                    asmError(s.line, "duplicate label '" + label + "'");
                symbols[label] = addr;
                continue;
            }
            addr += 4 * sizeWords(s, addr);
        }
        topAddr = addr;
    }

    static bool
    isNumber(const std::string &t)
    {
        if (t.empty())
            return false;
        size_t i = (t[0] == '-' || t[0] == '+') ? 1 : 0;
        if (i >= t.size())
            return false;
        return std::isdigit(static_cast<unsigned char>(t[i])) != 0;
    }

    uint32_t
    parseNumber(const std::string &t, const LineRef &line)
    {
        return static_cast<uint32_t>(parseSigned(t, line));
    }

    int64_t
    parseSigned(const std::string &t, const LineRef &line)
    {
        try {
            size_t used = 0;
            long long v = std::stoll(t, &used, 0);
            if (used != t.size())
                asmError(line, "trailing junk in number '" + t + "'");
            return v;
        } catch (const std::exception &) {
            asmError(line, "bad number '" + t + "'");
        }
    }

    /** Evaluate a symbol, number, or symbol+number expression. */
    int64_t
    evalExpr(const std::string &t, const LineRef &line)
    {
        if (isNumber(t))
            return parseSigned(t, line);
        size_t plus = t.find('+');
        std::string sym = plus == std::string::npos ? t : trim(t.substr(0, plus));
        int64_t off = 0;
        if (plus != std::string::npos)
            off = parseSigned(trim(t.substr(plus + 1)), line);
        auto it = symbols.find(sym);
        if (it == symbols.end())
            asmError(line, "undefined symbol '" + sym + "'");
        return static_cast<int64_t>(it->second) + off;
    }

    static bool fitsImm12(int64_t v) { return v >= -2048 && v <= 2047; }

    int
    reg(const Stmt &s, size_t idx)
    {
        if (idx >= s.operands.size())
            asmError(s.line, "missing operand");
        int r = regNumber(s.operands[idx]);
        if (r < 0)
            asmError(s.line, "bad register '" + s.operands[idx] + "'");
        return r;
    }

    int64_t
    imm(const Stmt &s, size_t idx)
    {
        if (idx >= s.operands.size())
            asmError(s.line, "missing operand");
        return evalExpr(s.operands[idx], s.line);
    }

    int32_t
    branchOffset(const Stmt &s, size_t idx, uint32_t pc)
    {
        int64_t target = imm(s, idx);
        int64_t off = target - static_cast<int64_t>(pc);
        if (off < -4096 || off > 4094 || (off & 1))
            asmError(s.line, "branch target out of range");
        return static_cast<int32_t>(off);
    }

    int32_t
    jalOffset(const Stmt &s, size_t idx, uint32_t pc)
    {
        int64_t target = imm(s, idx);
        int64_t off = target - static_cast<int64_t>(pc);
        if (off < -(1 << 20) || off >= (1 << 20) || (off & 1))
            asmError(s.line, "jump target out of range");
        return static_cast<int32_t>(off);
    }

    void
    emit(Program &p, uint32_t &addr, uint32_t word)
    {
        p.words.at((addr - baseAddr) / 4) = word;
        addr += 4;
    }

    void
    emitLi(Program &p, uint32_t &addr, int rd, int64_t value,
           const LineRef &line, bool forceTwo)
    {
        if (value < INT32_MIN || value > static_cast<int64_t>(UINT32_MAX))
            asmError(line, "immediate does not fit in 32 bits");
        int32_t v = static_cast<int32_t>(value);
        if (!forceTwo && fitsImm12(v)) {
            emit(p, addr, encodeI(v, 0, 0, rd, 0x13));
            return;
        }
        int32_t hi = (v + 0x800) & 0xfffff000;
        int32_t lo = v - hi;
        emit(p, addr, encodeU(hi, rd, 0x37));
        emit(p, addr, encodeI(lo, rd, 0, rd, 0x13));
    }

    void
    encodeAll(Program &p)
    {
        for (size_t i = 0; i < stmts.size(); ++i) {
            const Stmt &s = stmts[i];
            uint32_t addr = stmtAddr[i];
            encodeStmt(p, s, addr);
        }
    }

    void
    encodeStmt(Program &p, const Stmt &s, uint32_t addr)
    {
        const std::string &m = s.mnemonic;
        const LineRef &ln = s.line;
        if (m == ":label")
            return;

        // --- Directives -------------------------------------------------
        if (m == ".word") {
            for (const std::string &op : s.operands)
                emit(p, addr, static_cast<uint32_t>(evalExpr(op, ln)));
            return;
        }
        if (m == ".space" || m == ".align" || m == ".org")
            return; // zero fill, already laid out

        // --- Pseudo-instructions ---------------------------------------
        if (m == "nop") {
            emit(p, addr, encodeI(0, 0, 0, 0, 0x13));
            return;
        }
        if (m == "li") {
            int rd = reg(s, 0);
            bool forceTwo = !isNumber(s.operands.at(1));
            emitLi(p, addr, rd, imm(s, 1), ln, forceTwo);
            return;
        }
        if (m == "la") {
            int rd = reg(s, 0);
            emitLi(p, addr, rd, imm(s, 1), ln, /*forceTwo=*/true);
            return;
        }
        if (m == "mv") {
            emit(p, addr, encodeI(0, reg(s, 1), 0, reg(s, 0), 0x13));
            return;
        }
        if (m == "not") {
            emit(p, addr, encodeI(-1, reg(s, 1), 4, reg(s, 0), 0x13));
            return;
        }
        if (m == "neg") {
            emit(p, addr, encodeR(0x20, reg(s, 1), 0, 0, reg(s, 0), 0x33));
            return;
        }
        if (m == "seqz") {
            emit(p, addr, encodeI(1, reg(s, 1), 3, reg(s, 0), 0x13));
            return;
        }
        if (m == "snez") {
            emit(p, addr, encodeR(0, reg(s, 1), 0, 3, reg(s, 0), 0x33));
            return;
        }
        if (m == "j") {
            emit(p, addr, encodeJ(jalOffset(s, 0, addr), 0, 0x6f));
            return;
        }
        if (m == "call") {
            emit(p, addr, encodeJ(jalOffset(s, 0, addr), 1, 0x6f));
            return;
        }
        if (m == "jr") {
            emit(p, addr, encodeI(0, reg(s, 0), 0, 0, 0x67));
            return;
        }
        if (m == "ret") {
            emit(p, addr, encodeI(0, 1, 0, 0, 0x67));
            return;
        }
        if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez" ||
            m == "bgtz" || m == "blez") {
            int rs = reg(s, 0);
            int32_t off = branchOffset(s, 1, addr);
            if (m == "beqz")
                emit(p, addr, encodeB(off, 0, rs, 0, 0x63));
            else if (m == "bnez")
                emit(p, addr, encodeB(off, 0, rs, 1, 0x63));
            else if (m == "bltz")
                emit(p, addr, encodeB(off, 0, rs, 4, 0x63));
            else if (m == "bgez")
                emit(p, addr, encodeB(off, 0, rs, 5, 0x63));
            else if (m == "bgtz") // 0 < rs
                emit(p, addr, encodeB(off, rs, 0, 4, 0x63));
            else // blez: 0 >= ... i.e. rs <= 0 -> 0 >= rs -> bge 0, rs
                emit(p, addr, encodeB(off, rs, 0, 5, 0x63));
            return;
        }
        if (m == "bgt" || m == "ble" || m == "bgtu" || m == "bleu") {
            int a = reg(s, 0), b = reg(s, 1);
            int32_t off = branchOffset(s, 2, addr);
            if (m == "bgt")
                emit(p, addr, encodeB(off, a, b, 4, 0x63)); // blt b,a
            else if (m == "ble")
                emit(p, addr, encodeB(off, a, b, 5, 0x63)); // bge b,a
            else if (m == "bgtu")
                emit(p, addr, encodeB(off, a, b, 6, 0x63));
            else
                emit(p, addr, encodeB(off, a, b, 7, 0x63));
            return;
        }
        if (m == "csrr") {
            emit(p, addr, encodeI(static_cast<int32_t>(
                                      csrNumber(s.operands.at(1), ln)),
                                  0, 2, reg(s, 0), 0x73));
            return;
        }
        if (m == "rdcycle" || m == "rdinstret") {
            uint32_t csr = m == "rdcycle" ? kCsrCycle : kCsrInstret;
            emit(p, addr,
                 encodeI(static_cast<int32_t>(csr), 0, 2, reg(s, 0), 0x73));
            return;
        }
        if (m == "ecall") {
            emit(p, addr, 0x00000073u);
            return;
        }
        if (m == "fence") {
            emit(p, addr, 0x0000000fu);
            return;
        }

        // --- Real instructions -----------------------------------------
        struct RSpec { unsigned f7, f3; };
        static const std::map<std::string, RSpec> rops = {
            {"add", {0x00, 0}}, {"sub", {0x20, 0}}, {"sll", {0x00, 1}},
            {"slt", {0x00, 2}}, {"sltu", {0x00, 3}}, {"xor", {0x00, 4}},
            {"srl", {0x00, 5}}, {"sra", {0x20, 5}}, {"or", {0x00, 6}},
            {"and", {0x00, 7}}, {"mul", {0x01, 0}}, {"mulh", {0x01, 1}},
            {"mulhsu", {0x01, 2}}, {"mulhu", {0x01, 3}}, {"div", {0x01, 4}},
            {"divu", {0x01, 5}}, {"rem", {0x01, 6}}, {"remu", {0x01, 7}}};
        auto rit = rops.find(m);
        if (rit != rops.end()) {
            emit(p, addr, encodeR(rit->second.f7, reg(s, 2), reg(s, 1),
                                  rit->second.f3, reg(s, 0), 0x33));
            return;
        }

        static const std::map<std::string, unsigned> iops = {
            {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4},
            {"ori", 6}, {"andi", 7}};
        auto iit = iops.find(m);
        if (iit != iops.end()) {
            int64_t v = imm(s, 2);
            if (!fitsImm12(v))
                asmError(ln, "immediate out of 12-bit range");
            emit(p, addr, encodeI(static_cast<int32_t>(v), reg(s, 1),
                                  iit->second, reg(s, 0), 0x13));
            return;
        }
        if (m == "slli" || m == "srli" || m == "srai") {
            int64_t sh = imm(s, 2);
            if (sh < 0 || sh > 31)
                asmError(ln, "shift amount out of range");
            unsigned f3 = m == "slli" ? 1 : 5;
            unsigned f7 = m == "srai" ? 0x20 : 0;
            emit(p, addr, encodeR(f7, static_cast<unsigned>(sh), reg(s, 1),
                                  f3, reg(s, 0), 0x13));
            return;
        }

        static const std::map<std::string, unsigned> loads = {
            {"lb", 0}, {"lh", 1}, {"lw", 2}, {"lbu", 4}, {"lhu", 5}};
        auto lit = loads.find(m);
        if (lit != loads.end()) {
            std::string off, base;
            if (!splitMemOperand(s.operands.at(1), off, base))
                asmError(ln, "expected imm(reg) operand");
            int64_t o = evalExpr(off, ln);
            if (!fitsImm12(o))
                asmError(ln, "load offset out of range");
            int baseReg = regNumber(base);
            if (baseReg < 0)
                asmError(ln, "bad base register '" + base + "'");
            emit(p, addr, encodeI(static_cast<int32_t>(o), baseReg,
                                  lit->second, reg(s, 0), 0x03));
            return;
        }

        static const std::map<std::string, unsigned> stores = {
            {"sb", 0}, {"sh", 1}, {"sw", 2}};
        auto sit = stores.find(m);
        if (sit != stores.end()) {
            std::string off, base;
            if (!splitMemOperand(s.operands.at(1), off, base))
                asmError(ln, "expected imm(reg) operand");
            int64_t o = evalExpr(off, ln);
            if (!fitsImm12(o))
                asmError(ln, "store offset out of range");
            int baseReg = regNumber(base);
            if (baseReg < 0)
                asmError(ln, "bad base register '" + base + "'");
            emit(p, addr, encodeS(static_cast<int32_t>(o), reg(s, 0),
                                  baseReg, sit->second, 0x23));
            return;
        }

        static const std::map<std::string, unsigned> branches = {
            {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5},
            {"bltu", 6}, {"bgeu", 7}};
        auto bit = branches.find(m);
        if (bit != branches.end()) {
            emit(p, addr, encodeB(branchOffset(s, 2, addr), reg(s, 1),
                                  reg(s, 0), bit->second, 0x63));
            return;
        }

        if (m == "lui" || m == "auipc") {
            int64_t v = imm(s, 1);
            if (v < 0 || v > 0xfffff)
                asmError(ln, "U-type immediate out of range");
            emit(p, addr, encodeU(static_cast<int32_t>(v << 12), reg(s, 0),
                                  m == "lui" ? 0x37 : 0x17));
            return;
        }
        if (m == "jal") {
            // jal rd, label  |  jal label (rd = ra)
            if (s.operands.size() == 1) {
                emit(p, addr, encodeJ(jalOffset(s, 0, addr), 1, 0x6f));
            } else {
                emit(p, addr,
                     encodeJ(jalOffset(s, 1, addr), reg(s, 0), 0x6f));
            }
            return;
        }
        if (m == "jalr") {
            // jalr rd, imm(rs)  |  jalr rs
            if (s.operands.size() == 1) {
                emit(p, addr, encodeI(0, reg(s, 0), 0, 1, 0x67));
                return;
            }
            std::string off, base;
            if (!splitMemOperand(s.operands.at(1), off, base))
                asmError(ln, "expected imm(reg) operand");
            int baseReg = regNumber(base);
            if (baseReg < 0)
                asmError(ln, "bad base register");
            emit(p, addr, encodeI(static_cast<int32_t>(evalExpr(off, ln)),
                                  baseReg, 0, reg(s, 0), 0x67));
            return;
        }

        asmError(ln, "unknown mnemonic '" + m + "'");
    }
};

} // namespace

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("no symbol named '%s'", name.c_str());
    return it->second;
}

Program
assemble(const std::string &source, uint32_t base)
{
    Assembler a(source, base);
    return a.run();
}

} // namespace isa
} // namespace strober
